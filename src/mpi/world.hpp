// A simulated message-passing world (the substrate for the ScaLAPACK-style
// baseline the paper compares against).
//
// Each rank runs as a real thread executing real computation; a per-rank
// Lamport-style clock tracks simulated time:
//   * compute(io)  advances the rank's clock by the cost model's time;
//   * send         advances the sender by bytes/bw and stamps the message
//                  with its arrival time (send completion + latency);
//   * recv         blocks for the message, then advances the receiver to
//                  max(own clock, arrival) + bytes/bw;
//   * barrier      synchronizes all clocks to the maximum.
// The simulated makespan is the maximum rank clock at the end — this is
// what surfaces the 1-D LU panel-factorization critical path and the
// constant-per-rank communication volume that limit the baseline's
// scalability at high node counts (paper §7.5).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/io_stats.hpp"

namespace mri::mpi {

class Comm;

class World {
 public:
  /// `cluster` provides per-rank speed factors and the cost model.
  explicit World(const Cluster& cluster);

  int size() const { return cluster_->size(); }

  /// Runs `fn(comm)` on every rank concurrently; returns when all finish.
  /// Rethrows the first rank exception.
  void run(const std::function<void(Comm&)>& fn);

  /// Maximum rank clock after run() — the simulated makespan.
  double sim_seconds() const;

  /// Aggregate traffic / compute across all ranks.
  IoStats total_io() const;

 private:
  friend class Comm;

  struct Message {
    std::vector<double> payload;
    double arrival_time = 0.0;
  };

  using ChannelKey = std::tuple<int, int, int>;  // (src, dst, tag)

  void post(int src, int dst, int tag, Message msg);
  Message take(int src, int dst, int tag);
  void barrier_wait(std::vector<double>* clocks_snapshot, int rank);
  void abort();

  const Cluster* cluster_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<ChannelKey, std::deque<Message>> channels_;

  // Set when a rank threw: wakes peers blocked in recv/barrier so the whole
  // world unwinds instead of deadlocking.
  bool aborted_ = false;

  // Barrier state.
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_clock_ = 0.0;

  std::vector<double> clocks_;
  std::vector<IoStats> rank_io_;
};

/// Per-rank handle passed to the rank function.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  /// Advances this rank's simulated clock by the compute/IO cost and
  /// accounts the flops.
  void compute(const IoStats& io);

  /// Charges a local disk read/write (matrix load / result store).
  void read_local(std::uint64_t bytes);
  void write_local(std::uint64_t bytes);

  /// Buffered (non-blocking) send of a double payload.
  void send(int dst, std::vector<double> payload, int tag = 0);

  /// Blocking receive from `src` with `tag`.
  std::vector<double> recv(int src, int tag = 0);

  /// Binomial-tree broadcast; on non-root ranks `payload` is replaced.
  void bcast(std::vector<double>* payload, int root, int tag = 0);

  /// Synchronizes all ranks (clocks jump to the global maximum).
  void barrier();

  double clock() const;

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  double transfer_seconds(std::uint64_t bytes) const;

  World* world_;
  int rank_;
};

}  // namespace mri::mpi
