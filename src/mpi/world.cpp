#include "mpi/world.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace mri::mpi {

namespace {

/// Thrown into ranks blocked on a peer that died; filtered out in run() in
/// favour of the original error.
class AbortedError : public Error {
 public:
  AbortedError() : Error("MPI world aborted: a peer rank failed") {}
};

}  // namespace

World::World(const Cluster& cluster) : cluster_(&cluster) {
  clocks_.assign(static_cast<std::size_t>(cluster.size()), 0.0);
  rank_io_.assign(static_cast<std::size_t>(cluster.size()), IoStats{});
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  std::fill(rank_io_.begin(), rank_io_.end(), IoStats{});
  {
    std::lock_guard<std::mutex> lock(mu_);
    channels_.clear();
    barrier_waiting_ = 0;
    barrier_max_clock_ = 0.0;
    aborted_ = false;
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size()));
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
        Comm comm(this, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort();  // wake peers blocked in recv/barrier
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the original failure over secondary AbortedErrors.
  std::exception_ptr aborted;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const AbortedError&) {
      aborted = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (aborted) std::rethrow_exception(aborted);
}

void World::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  cv_.notify_all();
}

double World::sim_seconds() const {
  double m = 0.0;
  for (double c : clocks_) m = std::max(m, c);
  return m;
}

IoStats World::total_io() const {
  IoStats total;
  for (const auto& io : rank_io_) total += io;
  return total;
}

void World::post(int src, int dst, int tag, Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  channels_[ChannelKey{src, dst, tag}].push_back(std::move(msg));
  cv_.notify_all();
}

World::Message World::take(int src, int dst, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  const ChannelKey key{src, dst, tag};
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    auto it = channels_.find(key);
    return it != channels_.end() && !it->second.empty();
  });
  if (aborted_) {
    auto it = channels_.find(key);
    if (it == channels_.end() || it->second.empty()) throw AbortedError();
  }
  auto& queue = channels_[key];
  Message msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

void World::barrier_wait(std::vector<double>* clocks, int rank) {
  std::unique_lock<std::mutex> lock(mu_);
  barrier_max_clock_ =
      std::max(barrier_max_clock_, (*clocks)[static_cast<std::size_t>(rank)]);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == size()) {
    // Last arrival releases everyone; all clocks jump to the max.
    for (double& c : *clocks) c = std::max(c, barrier_max_clock_);
    barrier_waiting_ = 0;
    barrier_max_clock_ = 0.0;
    ++barrier_generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock,
             [&] { return aborted_ || barrier_generation_ != my_generation; });
    if (aborted_ && barrier_generation_ == my_generation) throw AbortedError();
  }
}

// ---------------------------------------------------------------------------
// Comm

double Comm::transfer_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) /
         world_->cluster_->cost_model().network_bandwidth;
}

void Comm::compute(const IoStats& io) {
  world_->clocks_[static_cast<std::size_t>(rank_)] +=
      world_->cluster_->cost_model().compute_seconds(
          io, world_->cluster_->speed_factor(rank_));
  world_->rank_io_[static_cast<std::size_t>(rank_)] += io;
}

void Comm::read_local(std::uint64_t bytes) {
  IoStats io;
  io.bytes_read = bytes;
  world_->clocks_[static_cast<std::size_t>(rank_)] +=
      static_cast<double>(bytes) /
      world_->cluster_->cost_model().disk_bandwidth;
  world_->rank_io_[static_cast<std::size_t>(rank_)] += io;
}

void Comm::write_local(std::uint64_t bytes) {
  IoStats io;
  io.bytes_written = bytes;
  world_->clocks_[static_cast<std::size_t>(rank_)] +=
      static_cast<double>(bytes) /
      world_->cluster_->cost_model().disk_bandwidth;
  world_->rank_io_[static_cast<std::size_t>(rank_)] += io;
}

void Comm::send(int dst, std::vector<double> payload, int tag) {
  MRI_REQUIRE(dst >= 0 && dst < size() && dst != rank_,
              "bad send destination " << dst);
  const std::uint64_t bytes = payload.size() * sizeof(double);
  double& clock = world_->clocks_[static_cast<std::size_t>(rank_)];
  clock += transfer_seconds(bytes);
  IoStats io;
  io.bytes_transferred = bytes;
  world_->rank_io_[static_cast<std::size_t>(rank_)] += io;

  World::Message msg;
  msg.arrival_time =
      clock + world_->cluster_->cost_model().message_latency_seconds;
  msg.payload = std::move(payload);
  world_->post(rank_, dst, tag, std::move(msg));
}

std::vector<double> Comm::recv(int src, int tag) {
  MRI_REQUIRE(src >= 0 && src < size() && src != rank_,
              "bad recv source " << src);
  World::Message msg = world_->take(src, rank_, tag);
  double& clock = world_->clocks_[static_cast<std::size_t>(rank_)];
  const std::uint64_t bytes = msg.payload.size() * sizeof(double);
  clock = std::max(clock, msg.arrival_time) + transfer_seconds(bytes);
  return std::move(msg.payload);
}

void Comm::bcast(std::vector<double>* payload, int root, int tag) {
  MRI_REQUIRE(payload != nullptr, "bcast payload must not be null");
  // Binomial tree rooted at `root`: rank r's virtual id is (r - root) mod p.
  const int p = size();
  const int vid = ((rank_ - root) % p + p) % p;
  // Receive from parent (unless root).
  if (vid != 0) {
    // Parent: clear the lowest set bit of vid.
    const int parent_vid = vid & (vid - 1);
    const int parent = (parent_vid + root) % p;
    *payload = recv(parent, tag);
  }
  // Forward to children (vid + 2^k for 2^k below vid's lowest set bit),
  // largest subtree first so deep chains start as early as possible.
  const int low = vid == 0 ? p : (vid & -vid);
  int top = 1;
  while ((top << 1) < p) top <<= 1;
  for (int bit = top; bit >= 1; bit >>= 1) {
    if (bit >= low) continue;  // not this node's subtree
    const int child_vid = vid | bit;
    if (child_vid >= p) continue;
    const int child = (child_vid + root) % p;
    send(child, *payload, tag);
  }
}

void Comm::barrier() { world_->barrier_wait(&world_->clocks_, rank_); }

double Comm::clock() const {
  return world_->clocks_[static_cast<std::size_t>(rank_)];
}

}  // namespace mri::mpi
