// Deterministic load generation for the inversion service.
//
// Two sources of requests:
//   * generate_load() — synthetic multi-tenant load for benches and tests:
//     per-tenant Poisson arrivals (open loop) or an all-at-time-zero burst
//     (closed loop / saturation). Fully reproducible: the same options give
//     the same request sequence on every platform — inter-arrival gaps are
//     sampled with a hand-rolled inverse-CDF exponential over mt19937_64
//     bits (std::exponential_distribution is implementation-defined), and
//     per-tenant streams are seeded by FNV-1a of the tenant name so adding
//     a tenant never perturbs the others' arrivals.
//   * parse_request_trace() — the CLI's --serve input: a line-oriented text
//     format declaring tenant shares and a request list (see README.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/scheduler.hpp"
#include "matrix/matrix.hpp"
#include "service/request.hpp"

namespace mri::service {

/// One tenant's synthetic workload.
struct TenantLoad {
  std::string tenant;
  int weight = 1;
  /// Requests this tenant submits over the run.
  int requests = 8;
  /// Mean arrival rate in requests per simulated second (open loop only).
  double arrival_rate = 1.0;
  /// Matrix spec for every request (seeds vary per request).
  Index order = 48;
  int priority = 0;
  double deadline_seconds = 0.0;
};

struct LoadGenOptions {
  std::vector<TenantLoad> tenants;
  std::uint64_t seed = 42;
  /// Closed loop: every request arrives at t=0 (a saturating burst the
  /// admission queue and fair-share policy carve up). Open loop: Poisson
  /// arrivals at each tenant's arrival_rate.
  bool closed_loop = false;
};

/// Tenant shares implied by the load (for InversionService / SlotPool).
std::vector<mr::TenantShare> shares_of(const LoadGenOptions& options);

/// The merged request sequence, sorted by (arrival, tenant, per-tenant
/// index). Matrix seeds are derived from `seed`, the tenant name and the
/// request index, so every request inverts a distinct matrix.
std::vector<InversionRequest> generate_load(const LoadGenOptions& options);

/// Parsed --serve input: the tenant table plus the request list.
struct RequestTrace {
  std::vector<mr::TenantShare> shares;
  std::vector<InversionRequest> requests;
};

/// Parses the request-trace text format. Lines (blank and '#'-comment lines
/// are skipped):
///   tenant <name> <weight>
///   request <tenant> <arrival_seconds> <order> <seed> [priority] [deadline]
/// Every request's tenant must have been declared first. Throws
/// InvalidArgument with the offending line number on malformed input.
RequestTrace parse_request_trace(const std::string& text);

}  // namespace mri::service
