// One tenant's inversion request as the service's admission queue sees it:
// a matrix spec (the service generates the paper's uniform-random workload
// from a seed rather than shipping matrices through the queue), the tenant
// identity the fair-share policy schedules under, and the scheduling hints
// (priority, deadline) the dispatcher orders a tenant's own backlog by.
#pragma once

#include <cstdint>
#include <string>

#include "matrix/matrix.hpp"

namespace mri::service {

struct InversionRequest {
  /// Fair-share identity; must have a share in the service's tenant table
  /// when one is configured.
  std::string tenant = "default";

  /// Matrix spec: invert a random_matrix(order, seed) — the paper's §7
  /// workload. The service materialises it at dispatch time.
  Index order = 64;
  std::uint64_t seed = 1;

  /// Master block size for this request; 0 = the service-wide default.
  Index nb = 0;

  /// Higher dispatches first among this tenant's queued requests. Priority
  /// never crosses tenants — cross-tenant order is the fair-share policy's.
  int priority = 0;

  /// Advisory SLO hint in simulated seconds after arrival (0 = none): among
  /// equal-priority requests of one tenant, tighter deadlines go first, and
  /// the run report counts a miss when finish > arrival + deadline.
  double deadline_seconds = 0.0;

  /// Absolute simulated arrival time. Requests are admitted in this order.
  double arrival_seconds = 0.0;
};

}  // namespace mri::service
