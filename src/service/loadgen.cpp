#include "service/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <tuple>

#include "common/error.hpp"

namespace mri::service {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Inverse-CDF exponential from the generator's top 53 bits — identical
/// output on every standard library.
double exp_gap(std::mt19937_64& rng, double rate) {
  const double u =
      static_cast<double>(rng() >> 11) * 0x1.0p-53;  // u in [0, 1)
  return -std::log1p(-u) / rate;
}

}  // namespace

std::vector<mr::TenantShare> shares_of(const LoadGenOptions& options) {
  std::vector<mr::TenantShare> shares;
  shares.reserve(options.tenants.size());
  for (const TenantLoad& t : options.tenants) {
    shares.push_back({t.tenant, t.weight});
  }
  return shares;
}

std::vector<InversionRequest> generate_load(const LoadGenOptions& options) {
  MRI_REQUIRE(!options.tenants.empty(), "load generation needs >= 1 tenant");
  struct Keyed {
    InversionRequest request;
    int index;  // per-tenant submission index, for the deterministic sort
  };
  std::vector<Keyed> merged;
  for (const TenantLoad& t : options.tenants) {
    MRI_REQUIRE(!t.tenant.empty(), "load-gen tenants need non-empty names");
    MRI_REQUIRE(t.requests >= 1, "tenant '" << t.tenant << "' submits "
                                            << t.requests << " requests");
    MRI_REQUIRE(t.order >= 1, "tenant '" << t.tenant
                                         << "' has non-positive order "
                                         << t.order);
    MRI_REQUIRE(options.closed_loop || t.arrival_rate > 0.0,
                "tenant '" << t.tenant << "' has arrival_rate "
                           << t.arrival_rate
                           << "; open-loop load needs a positive rate");
    std::mt19937_64 rng(options.seed ^ fnv1a(t.tenant));
    double clock = 0.0;
    for (int i = 0; i < t.requests; ++i) {
      InversionRequest r;
      r.tenant = t.tenant;
      r.order = t.order;
      // Distinct, reproducible matrix per request (never seed 0, which
      // some generators treat as degenerate).
      r.seed = (options.seed ^ fnv1a(t.tenant)) + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull + 1;
      r.priority = t.priority;
      r.deadline_seconds = t.deadline_seconds;
      if (!options.closed_loop) clock += exp_gap(rng, t.arrival_rate);
      r.arrival_seconds = clock;
      merged.push_back({std::move(r), i});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.request.arrival_seconds, a.request.tenant, a.index) <
           std::tie(b.request.arrival_seconds, b.request.tenant, b.index);
  });
  std::vector<InversionRequest> requests;
  requests.reserve(merged.size());
  for (Keyed& k : merged) requests.push_back(std::move(k.request));
  return requests;
}

RequestTrace parse_request_trace(const std::string& text) {
  RequestTrace trace;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') continue;
    if (kind == "tenant") {
      mr::TenantShare share;
      MRI_REQUIRE(static_cast<bool>(fields >> share.tenant >> share.weight),
                  "request trace line " << lineno
                                        << ": expected 'tenant <name> "
                                           "<weight>', got '" << line << "'");
      MRI_REQUIRE(share.weight >= 1, "request trace line "
                                         << lineno << ": tenant '"
                                         << share.tenant
                                         << "' has non-positive weight "
                                         << share.weight);
      for (const mr::TenantShare& seen : trace.shares) {
        MRI_REQUIRE(seen.tenant != share.tenant,
                    "request trace line " << lineno << ": tenant '"
                                          << share.tenant
                                          << "' declared twice");
      }
      trace.shares.push_back(std::move(share));
    } else if (kind == "request") {
      InversionRequest r;
      long long order = 0;
      MRI_REQUIRE(
          static_cast<bool>(fields >> r.tenant >> r.arrival_seconds >> order >>
                            r.seed),
          "request trace line "
              << lineno
              << ": expected 'request <tenant> <arrival_seconds> <order> "
                 "<seed> [priority] [deadline_seconds]', got '" << line
              << "'");
      MRI_REQUIRE(order >= 1, "request trace line " << lineno
                                                    << ": matrix order "
                                                    << order
                                                    << " must be >= 1");
      MRI_REQUIRE(r.arrival_seconds >= 0.0,
                  "request trace line " << lineno << ": arrival "
                                        << r.arrival_seconds
                                        << " must be >= 0");
      r.order = static_cast<Index>(order);
      fields >> r.priority;                // optional
      fields >> r.deadline_seconds;        // optional
      MRI_REQUIRE(r.deadline_seconds >= 0.0,
                  "request trace line " << lineno << ": deadline "
                                        << r.deadline_seconds
                                        << " must be >= 0 (0 = none)");
      bool declared = false;
      for (const mr::TenantShare& seen : trace.shares) {
        declared = declared || seen.tenant == r.tenant;
      }
      MRI_REQUIRE(declared, "request trace line "
                                << lineno << ": tenant '" << r.tenant
                                << "' was not declared; add 'tenant "
                                << r.tenant << " <weight>' above it");
      trace.requests.push_back(std::move(r));
    } else {
      MRI_REQUIRE(false, "request trace line "
                             << lineno << ": unknown directive '" << kind
                             << "' (expected 'tenant' or 'request')");
    }
  }
  MRI_REQUIRE(!trace.requests.empty(),
              "request trace has no 'request' lines");
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const InversionRequest& a, const InversionRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  return trace;
}

}  // namespace mri::service
