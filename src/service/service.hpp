// Multi-tenant inversion service over one shared simulated cluster.
//
// InversionService::run() plays a request sequence through a discrete-event
// loop on the simulated clock: arrivals pass admission control (bounded
// queue, per-tenant quotas — see admission.hpp), the fair-share picker
// chooses dispatch order (fair_share.hpp), and every admitted request runs
// as its own inversion pipeline (a mr::JobGraph with the request's dispatch
// time as origin) leasing slots from ONE SlotPool under the tenant's
// fair-share identity. Up to max_concurrent requests overlap on the
// timeline; the pool's per-slot occupancy makes each request's phases see
// exactly the slots earlier-dispatched requests still hold.
//
// Determinism: the loop is single-threaded over simulated time; at equal
// event times completions process before arrivals (a freed execution slot
// is visible to the request arriving "at the same instant"), completions
// tie-break by request id, and all scheduling state (picker deficits,
// admission counts, pool occupancy) evolves only at event boundaries. The
// same request sequence therefore yields bit-identical reports on every
// run — the property the service bench's reproducibility check enforces.
//
// Execution is real (matrices are generated, inverted and checked into the
// DFS); only time is simulated. Dispatch places a request's whole pipeline
// synchronously, so requests' real executions are serialized even when
// their simulated spans overlap — the DFS sees one request at a time.
#pragma once

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/inverter.hpp"
#include "core/options.hpp"
#include "dfs/dfs.hpp"
#include "mapreduce/scheduler.hpp"
#include "service/admission.hpp"
#include "service/request.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/metrics.hpp"
#include "sim/run_report.hpp"

namespace mri::service {

/// Service-level retry for requests whose pipeline fails mid-run (chaos
/// faults: transient read errors, node loss mid-pipeline). A failed attempt
/// re-enters the dispatch queue after a capped exponential backoff and
/// re-runs from scratch in a fresh per-attempt work directory (re-ingesting
/// its input, so blocks land on surviving nodes). Retries bypass admission
/// (the request was admitted once); they compete for execution slots like
/// any queued request. A request is abandoned as unrecoverable when its
/// retries are exhausted, its data loss is permanent (UnrecoverableBlock),
/// or the next attempt could not start before its deadline.
struct RetryPolicy {
  int max_retries = 2;
  double backoff_seconds = 60.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 900.0;
  /// Abandon instead of retrying when the backoff would push the next
  /// attempt past arrival + deadline (requests without a deadline never
  /// abort early).
  bool respect_deadline = true;
};

/// Backoff before retry attempt `attempts_done` (1 = first retry) under
/// `retry`: backoff_seconds escalated by backoff_multiplier per prior
/// attempt, clamped at max_backoff_seconds. The clamp is applied at every
/// step, so extreme settings (hundreds of retries, large multipliers) can
/// never overflow the double range to infinity mid-escalation.
double retry_backoff(const RetryPolicy& retry, int attempts_done);

struct ServiceOptions {
  /// Per-tenant fair-share weights (SlotPool::set_shares). Empty = no slot
  /// policy: one first-come first-served pool, every tenant weight 1 in the
  /// dispatch order. When set, every request's tenant must appear here.
  std::vector<mr::TenantShare> shares;

  /// Execution slots: requests whose pipelines may overlap on the timeline.
  int max_concurrent = 2;

  AdmissionOptions admission;

  RetryPolicy retry;

  /// Template inversion options for every request. work_dir becomes the
  /// per-request directory "<work_dir>/r<id>" ("<work_dir>/r<id>a<k>" for
  /// retry attempt k); nb is the default for requests that don't set their
  /// own. Selecting the spin engine here puts every request's intermediates
  /// on the memory tier and enables memory-budget admission (see
  /// AdmissionOptions::memory_budget_bytes_per_tenant); lineage recovery is
  /// a per-pipeline concern the service does not yet wire into its
  /// concurrent dispatch loop — chaos losses of memory-tier intermediates
  /// fall back to the existing service-level retry path.
  core::InversionOptions inversion;
};

struct ServiceResult {
  /// Cluster-level run report over every admitted request's jobs, plus the
  /// per-tenant SLO aggregates and request lanes (aggregate_tenant_reports).
  RunReport report;
  /// Per-request accounting in request-id (arrival) order; feedstock of
  /// report.tenants and report.request_spans.
  std::vector<RequestStat> stats;
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  /// Service-level retries consumed and requests abandoned as
  /// unrecoverable, across all tenants (chaos runs; zero otherwise).
  int retries = 0;
  int unrecoverable = 0;
  /// Simulated time the last admitted request finished.
  double makespan = 0.0;
};

class InversionService {
 public:
  /// All pointers are borrowed. `failures`, `metrics` and `chaos` may be
  /// null. A chaos engine must already be bound to the DFS
  /// (Dfs::bind_chaos()); the service advances it along the simulated clock
  /// and feeds it retry/abandon accounting. An engine's applied-event state
  /// is monotonic, so reuse one engine for at most one run — comparing runs
  /// means building a fresh engine (and DFS) per run.
  InversionService(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
                   ServiceOptions options, FailureInjector* failures = nullptr,
                   MetricsRegistry* metrics = nullptr,
                   ChaosEngine* chaos = nullptr);

  /// Plays `requests` (any order; sorted by arrival internally, stable) to
  /// completion and returns the merged report. May be called repeatedly;
  /// each run starts from an idle service but shares the DFS and metrics.
  ServiceResult run(std::vector<InversionRequest> requests);

 private:
  const Cluster* cluster_;
  dfs::Dfs* fs_;
  ThreadPool* pool_;
  ServiceOptions options_;
  FailureInjector* failures_;
  MetricsRegistry* metrics_;
  ChaosEngine* chaos_;
};

}  // namespace mri::service
