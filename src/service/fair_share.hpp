// Dispatch-order policy for the inversion service: weighted deficit
// fairness across tenants, priority/deadline order within a tenant.
//
// This is the queue-side half of fair sharing; the slot-side half is
// mr::SlotPool's share masking. The picker chooses WHICH queued request
// dispatches next (the tenant furthest below its weighted share of consumed
// slot-seconds goes first); the pool then bounds HOW MUCH of the cluster
// that request's phases may lease while other tenants are active. Both are
// deterministic: every tie falls back to pick counts, then names/ids.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mapreduce/scheduler.hpp"
#include "service/request.hpp"

namespace mri::service {

class FairSharePicker {
 public:
  /// `shares` may be empty (every tenant weight 1 — plain fair queueing).
  explicit FairSharePicker(const std::vector<mr::TenantShare>& shares) {
    for (const mr::TenantShare& s : shares) weight_[s.tenant] = s.weight;
  }

  /// Charges finished work so the deficit ordering reflects actual
  /// consumption, not request counts (a tenant of big inversions is not
  /// owed more turns because a tenant of small ones completed more).
  void charge(const std::string& tenant, double slot_seconds) {
    used_[tenant] += slot_seconds;
  }

  /// Picks the next request to dispatch: position into `queue` (indices
  /// into `requests`, arrival order). Tenant order: smallest
  /// used-slot-seconds/weight, then fewest picks, then name. Within the
  /// chosen tenant: highest priority, tightest deadline (0 = none = loosest),
  /// then arrival order.
  std::size_t pick(const std::vector<std::size_t>& queue,
                   const std::vector<InversionRequest>& requests) {
    MRI_REQUIRE(!queue.empty(), "pick() on an empty queue");
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (before(requests[queue[i]], requests[queue[best]])) best = i;
    }
    const std::string& tenant = requests[queue[best]].tenant;
    ++picks_[tenant];
    return best;
  }

  double used_of(const std::string& tenant) const {
    const auto it = used_.find(tenant);
    return it == used_.end() ? 0.0 : it->second;
  }

 private:
  int weight_of(const std::string& tenant) const {
    const auto it = weight_.find(tenant);
    return it == weight_.end() ? 1 : it->second;
  }
  int picks_of(const std::string& tenant) const {
    const auto it = picks_.find(tenant);
    return it == picks_.end() ? 0 : it->second;
  }

  bool before(const InversionRequest& a, const InversionRequest& b) const {
    if (a.tenant != b.tenant) {
      const double da = used_of(a.tenant) / weight_of(a.tenant);
      const double db = used_of(b.tenant) / weight_of(b.tenant);
      if (da != db) return da < db;
      const int pa = picks_of(a.tenant), pb = picks_of(b.tenant);
      if (pa != pb) return pa < pb;
      return a.tenant < b.tenant;
    }
    if (a.priority != b.priority) return a.priority > b.priority;
    // 0 means "no deadline", which sorts after any real deadline.
    const bool a_has = a.deadline_seconds > 0.0, b_has = b.deadline_seconds > 0.0;
    if (a_has != b_has) return a_has;
    if (a_has && a.deadline_seconds != b.deadline_seconds) {
      return a.deadline_seconds < b.deadline_seconds;
    }
    return false;  // equal keys: keep arrival (queue) order
  }

  std::map<std::string, int> weight_;
  std::map<std::string, double> used_;  // charged slot-seconds per tenant
  std::map<std::string, int> picks_;
};

}  // namespace mri::service
