#include "service/service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "dfs/path.hpp"
#include "mapreduce/pipeline.hpp"
#include "mapreduce/runtime.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "service/fair_share.hpp"

namespace mri::service {

namespace {

double trace_slot_seconds(const std::vector<TaskTraceEvent>& events) {
  double total = 0.0;
  for (const TaskTraceEvent& e : events) total += e.end - e.start;
  return total;
}

}  // namespace

double retry_backoff(const RetryPolicy& retry, int attempts_done) {
  // Clamp multiplicatively at every step: the naive "multiply then clamp
  // once" escalation overflows to +inf after ~700 doublings, and an infinite
  // backoff wedges the retry queue forever. Once the cap is hit, further
  // steps cannot change the answer, so return early.
  double b = std::min(retry.backoff_seconds, retry.max_backoff_seconds);
  for (int i = 1; i < attempts_done; ++i) {
    if (b >= retry.max_backoff_seconds) return retry.max_backoff_seconds;
    b = std::min(b * retry.backoff_multiplier, retry.max_backoff_seconds);
  }
  return b;
}

InversionService::InversionService(const Cluster* cluster, dfs::Dfs* fs,
                                   ThreadPool* pool, ServiceOptions options,
                                   FailureInjector* failures,
                                   MetricsRegistry* metrics,
                                   ChaosEngine* chaos)
    : cluster_(cluster), fs_(fs), pool_(pool), options_(std::move(options)),
      failures_(failures), metrics_(metrics), chaos_(chaos) {
  MRI_REQUIRE(cluster != nullptr && fs != nullptr && pool != nullptr,
              "InversionService needs a cluster, a DFS and a thread pool");
  MRI_REQUIRE(options_.max_concurrent >= 1,
              "max_concurrent must be >= 1, got " << options_.max_concurrent);
  MRI_REQUIRE(options_.retry.max_retries >= 0 &&
                  options_.retry.backoff_seconds >= 0.0 &&
                  options_.retry.backoff_multiplier >= 1.0 &&
                  options_.retry.max_backoff_seconds >=
                      options_.retry.backoff_seconds,
              "invalid retry policy: max_retries "
                  << options_.retry.max_retries << ", backoff "
                  << options_.retry.backoff_seconds << "s x"
                  << options_.retry.backoff_multiplier << " capped at "
                  << options_.retry.max_backoff_seconds << 's');
}

ServiceResult InversionService::run(std::vector<InversionRequest> requests) {
  ServiceResult out;
  out.submitted = static_cast<int>(requests.size());

  // Request ids are arrival order; stats[id] is that request's record.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const InversionRequest& a, const InversionRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  const std::size_t n = requests.size();
  for (std::size_t i = 0; i < n; ++i) {
    const InversionRequest& r = requests[i];
    MRI_REQUIRE(r.order >= 1, "request r" << i << " has matrix order "
                                          << r.order);
    MRI_REQUIRE(r.arrival_seconds >= 0.0,
                "request r" << i << " arrives at " << r.arrival_seconds);
    if (!options_.shares.empty()) {
      bool known = false;
      for (const mr::TenantShare& s : options_.shares) {
        known = known || s.tenant == r.tenant;
      }
      MRI_REQUIRE(known, "request r"
                             << i << " is from tenant '" << r.tenant
                             << "', which has no share in the service's "
                                "tenant table; add it to ServiceOptions::"
                                "shares or clear the table for FCFS");
    }
  }

  mr::SlotPool slot_pool(cluster_->total_slots());
  if (!options_.shares.empty()) slot_pool.set_shares(options_.shares);
  AdmissionController admission(options_.admission);
  FairSharePicker picker(options_.shares);
  core::MapReduceInverter inverter(cluster_, fs_, pool_, failures_, metrics_,
                                   chaos_);

  auto weight_of = [&](const std::string& tenant) {
    for (const mr::TenantShare& s : options_.shares) {
      if (s.tenant == tenant) return s.weight;
    }
    return 1;
  };

  // Memory-budget admission (spin engine only): an order-n inversion keeps
  // roughly the partition pieces, the L/U factors and the inverse slices on
  // the memory tier at once — estimate 3 matrices of n² doubles. The charge
  // is held from admission until the request leaves the system.
  auto memory_footprint = [&](const InversionRequest& r) -> std::uint64_t {
    if (!options_.inversion.spin() ||
        options_.admission.memory_budget_bytes_per_tenant == 0) {
      return 0;
    }
    const std::uint64_t n = static_cast<std::uint64_t>(r.order);
    return 3 * n * n * sizeof(double);
  };

  out.stats.resize(n);
  std::vector<mr::JobResult> all_jobs;
  std::vector<MasterSpan> all_master_spans;

  struct Running {
    std::size_t id;
    double finish;
  };
  /// A failed request waiting out its backoff before re-entering the queue.
  struct PendingRetry {
    std::size_t id;
    double ready;
  };
  std::vector<Running> running;
  std::vector<std::size_t> queue;  // admitted, waiting; arrival order
  std::vector<PendingRetry> retries;
  std::vector<int> attempt(n, 0);  // per-request attempt counter
  std::size_t next_arrival = 0;
  double clock = 0.0;

  const RetryPolicy& retry = options_.retry;
  auto backoff_for = [&retry](int attempts_done) {
    return retry_backoff(retry, attempts_done);
  };

  // Dispatch one queued request: place its whole pipeline on the timeline
  // starting at `now`, leasing slots from the shared pool as the tenant.
  // A pipeline that dies mid-run (chaos faults surface as mri::Error) is
  // either re-queued after a backoff or abandoned as unrecoverable.
  auto dispatch_one = [&](double now) {
    const std::size_t at = picker.pick(queue, requests);
    const std::size_t id = queue[at];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(at));
    const InversionRequest& r = requests[id];
    RequestStat& stat = out.stats[id];
    const bool is_retry = attempt[id] > 0;
    // Retries left admission's bounded queue on their first dispatch.
    if (!is_retry) admission.on_dispatch(r.tenant);

    core::InversionOptions opts = options_.inversion;
    // Fresh work dir per attempt: the retry re-ingests its input from
    // scratch, placing blocks on whatever nodes are still alive.
    std::string leaf = "r";
    leaf += std::to_string(id);
    if (is_retry) {
      leaf += 'a';
      leaf += std::to_string(attempt[id]);
    }
    opts.work_dir = dfs::join(options_.inversion.work_dir, leaf);
    if (r.nb > 0) opts.nb = r.nb;

    mr::JobRunner runner(cluster_, fs_, pool_, failures_, metrics_, chaos_);
    mr::JobGraphOptions graph_options;
    graph_options.shared_pool = &slot_pool;
    graph_options.origin_seconds = now;
    graph_options.tenant = options_.shares.empty() ? std::string() : r.tenant;
    // A failed pipeline strands jobs nobody wait()s for; the service owns
    // the failure story, so keep the teardown quiet.
    graph_options.abandoned_error_handler =
        [](const std::string&, std::exception_ptr) {};
    mr::Pipeline pipeline(&runner, std::move(graph_options));

    if (!is_retry) stat.dispatch = now;
    try {
      const Matrix a = random_matrix(r.order, r.seed);
      core::MapReduceInverter::Result result =
          inverter.invert_on(pipeline, a, opts);
      const double finish = pipeline.total_sim_seconds();

      stat.finish = finish;
      for (const mr::JobResult& job : result.jobs) {
        stat.slot_seconds += trace_slot_seconds(job.map_trace) +
                             trace_slot_seconds(job.reduce_trace);
      }
      picker.charge(r.tenant, stat.slot_seconds);

      all_jobs.insert(all_jobs.end(), result.jobs.begin(), result.jobs.end());
      all_master_spans.insert(all_master_spans.end(),
                              result.master_spans.begin(),
                              result.master_spans.end());
      running.push_back({id, finish});
      out.makespan = std::max(out.makespan, finish);
      MRI_DEBUG() << "service: r" << id << " (" << r.tenant << ", order "
                  << r.order << ") dispatched at " << now << ", finishes at "
                  << finish;
    } catch (const Error& e) {
      // Half-placed pipelines have no meaningful makespan; the failure
      // surfaces at the dispatch instant. UnrecoverableBlock is thrown for
      // permanent data loss but may reach us wrapped in a JobError, so
      // classify by the message it stamps.
      const std::string what = e.what();
      const bool permanent = what.find("unrecoverable") != std::string::npos;
      ++attempt[id];
      const double ready = now + backoff_for(attempt[id]);
      bool can_retry = !permanent && attempt[id] <= retry.max_retries;
      if (can_retry && retry.respect_deadline && r.deadline_seconds > 0.0 &&
          ready > r.arrival_seconds + r.deadline_seconds) {
        can_retry = false;
      }
      if (can_retry) {
        ++stat.retries;
        ++out.retries;
        if (chaos_ != nullptr) chaos_->note_request_retry();
        retries.push_back({id, ready});
        MRI_INFO() << "service: r" << id << " (" << r.tenant
                   << ") attempt " << attempt[id] << " failed at " << now
                   << " (" << what << "); retrying at " << ready;
      } else {
        stat.unrecoverable = true;
        stat.finish = now;
        ++out.unrecoverable;
        if (chaos_ != nullptr) chaos_->note_request_unrecoverable();
        slot_pool.release(r.tenant);
        admission.release_memory(r.tenant, memory_footprint(r));
        out.makespan = std::max(out.makespan, now);
        MRI_WARN() << "service: r" << id << " (" << r.tenant
                   << ") abandoned after " << attempt[id] << " attempt(s): "
                   << what;
      }
    }
  };

  auto dispatch_all = [&](double now) {
    while (static_cast<int>(running.size()) < options_.max_concurrent &&
           !queue.empty()) {
      dispatch_one(now);
    }
  };

  while (next_arrival < n || !running.empty() || !retries.empty()) {
    // Earliest completion; ties by request id so the order is a function of
    // the schedule, not of vector layout.
    std::size_t done = running.size();
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (done == running.size() ||
          running[i].finish < running[done].finish ||
          (running[i].finish == running[done].finish &&
           running[i].id < running[done].id)) {
        done = i;
      }
    }
    const double next_completion = done < running.size()
                                       ? running[done].finish
                                       : std::numeric_limits<double>::infinity();
    // Earliest backoff expiry, same id tie-break.
    std::size_t due = retries.size();
    for (std::size_t i = 0; i < retries.size(); ++i) {
      if (due == retries.size() || retries[i].ready < retries[due].ready ||
          (retries[i].ready == retries[due].ready &&
           retries[i].id < retries[due].id)) {
        due = i;
      }
    }
    const double next_retry = due < retries.size()
                                  ? retries[due].ready
                                  : std::numeric_limits<double>::infinity();
    const double arrival = next_arrival < n
                               ? requests[next_arrival].arrival_seconds
                               : std::numeric_limits<double>::infinity();

    if (next_completion <= next_retry && next_completion <= arrival) {
      // Completion first at ties: the freed slot (and the tenant's now-idle
      // share) is visible to the simultaneous retry or arrival.
      clock = next_completion;
      if (chaos_ != nullptr) chaos_->advance_to(clock);
      const std::size_t id = running[done].id;
      slot_pool.release(requests[id].tenant);
      admission.release_memory(requests[id].tenant,
                               memory_footprint(requests[id]));
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(done));
      dispatch_all(clock);
      continue;
    }
    if (next_retry <= arrival) {
      // Backoff expired: the request re-enters the dispatch queue (its
      // tenant share was never released, so fair-share state is unchanged).
      clock = next_retry;
      if (chaos_ != nullptr) chaos_->advance_to(clock);
      queue.push_back(retries[due].id);
      retries.erase(retries.begin() + static_cast<std::ptrdiff_t>(due));
      dispatch_all(clock);
      continue;
    }

    clock = arrival;
    if (chaos_ != nullptr) chaos_->advance_to(clock);
    const std::size_t id = next_arrival++;
    const InversionRequest& r = requests[id];
    RequestStat& stat = out.stats[id];
    stat.tenant = r.tenant;
    stat.weight = weight_of(r.tenant);
    stat.arrival = r.arrival_seconds;
    stat.deadline_seconds = r.deadline_seconds;
    if (admission.try_admit(r.tenant, memory_footprint(r))) {
      // The tenant has work in the system from now until completion; its
      // share stops being borrowable (work-conserving redistribution).
      slot_pool.acquire(r.tenant);
      queue.push_back(id);
      ++out.admitted;
    } else {
      stat.rejected = true;
      stat.dispatch = stat.finish = r.arrival_seconds;
      ++out.rejected;
      MRI_DEBUG() << "service: r" << id << " (" << r.tenant
                  << ") rejected at " << clock << " (queue "
                  << admission.queued() << ")";
    }
    dispatch_all(clock);
  }
  MRI_CHECK_MSG(queue.empty(), "service loop ended with queued requests");

  out.report = mr::build_run_report(all_jobs, *cluster_, metrics_,
                                    all_master_spans, chaos_,
                                    /*engine_stats=*/nullptr, fs_);
  aggregate_tenant_reports(&out.report, out.stats);
  return out;
}

}  // namespace mri::service
