// Admission control for the inversion service: a bounded wait queue with
// per-tenant quotas. The service is work-conserving (a request only waits
// when every execution slot is taken), so the queue bound is a bound on
// backlog — at offered load beyond capacity, excess requests are rejected
// at arrival instead of growing the queue without limit, and each tenant's
// rejections are counted for its run report.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/error.hpp"

namespace mri::service {

struct AdmissionOptions {
  /// Most requests allowed to wait (not counting running ones). The bound
  /// is checked at arrival, before the greedy dispatch that may immediately
  /// drain the new request — so with a free execution slot (empty queue by
  /// the work-conserving invariant) a request is never rejected.
  int max_queue_depth = 8;

  /// Per-tenant cap on waiting requests; 0 = only the global bound. Stops
  /// one bursty tenant from occupying the whole queue.
  int per_tenant_queue_limit = 0;

  /// Per-tenant cap on the estimated memory-tier footprint of in-flight
  /// requests (queued + running), in bytes; 0 = unlimited. Meaningful for
  /// spin-engine services, where every request's intermediates live in the
  /// workers' block caches: a tenant whose admitted requests would together
  /// exceed the budget is rejected at arrival instead of thrashing the
  /// cache. The service estimates a request's footprint from its matrix
  /// order (see InversionService) and releases it at completion/abandon.
  std::uint64_t memory_budget_bytes_per_tenant = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options) : options_(options) {
    MRI_REQUIRE(options_.max_queue_depth >= 1,
                "admission needs max_queue_depth >= 1, got "
                    << options_.max_queue_depth
                    << " (a zero-depth queue would reject every request "
                       "that cannot dispatch in the same instant)");
    MRI_REQUIRE(options_.per_tenant_queue_limit >= 0,
                "per_tenant_queue_limit must be >= 0, got "
                    << options_.per_tenant_queue_limit);
  }

  /// Admits the request into the wait queue when every bound allows it;
  /// otherwise counts a rejection against `tenant` and returns false.
  /// `memory_bytes` is the request's estimated memory-tier footprint,
  /// charged against the tenant's budget until release_memory() (pass 0 for
  /// disk-tier requests or when no budget is configured).
  bool try_admit(const std::string& tenant, std::uint64_t memory_bytes = 0) {
    const bool global_full = queued_ >= options_.max_queue_depth;
    const bool tenant_full =
        options_.per_tenant_queue_limit > 0 &&
        queued_of(tenant) >= options_.per_tenant_queue_limit;
    const bool memory_full =
        options_.memory_budget_bytes_per_tenant > 0 &&
        memory_of(tenant) + memory_bytes >
            options_.memory_budget_bytes_per_tenant;
    if (global_full || tenant_full || memory_full) {
      ++rejected_[tenant];
      return false;
    }
    ++queued_;
    ++per_tenant_[tenant];
    memory_[tenant] += memory_bytes;
    return true;
  }

  /// The tenant's request left the system (finished or was abandoned); its
  /// memory-budget charge frees up. No-op for zero charges.
  void release_memory(const std::string& tenant, std::uint64_t memory_bytes) {
    if (memory_bytes == 0) return;
    MRI_CHECK_MSG(memory_of(tenant) >= memory_bytes,
                  "memory release of " << memory_bytes << " bytes exceeds "
                      "tenant '" << tenant << "' in-flight charge");
    memory_[tenant] -= memory_bytes;
  }

  std::uint64_t memory_of(const std::string& tenant) const {
    const auto it = memory_.find(tenant);
    return it == memory_.end() ? 0 : it->second;
  }

  /// The dispatcher moved one of `tenant`'s requests from waiting to
  /// running; its queue slot frees up.
  void on_dispatch(const std::string& tenant) {
    MRI_CHECK_MSG(queued_ > 0 && queued_of(tenant) > 0,
                  "dispatch of tenant '" << tenant
                                         << "' with no queued request");
    --queued_;
    --per_tenant_[tenant];
  }

  int queued() const { return queued_; }
  int queued_of(const std::string& tenant) const {
    const auto it = per_tenant_.find(tenant);
    return it == per_tenant_.end() ? 0 : it->second;
  }
  int rejected_of(const std::string& tenant) const {
    const auto it = rejected_.find(tenant);
    return it == rejected_.end() ? 0 : it->second;
  }
  int total_rejected() const {
    int total = 0;
    for (const auto& [tenant, n] : rejected_) total += n;
    return total;
  }

 private:
  AdmissionOptions options_;
  int queued_ = 0;
  std::map<std::string, int> per_tenant_;  // waiting requests per tenant
  std::map<std::string, int> rejected_;
  /// In-flight memory-budget charges per tenant (admit -> release).
  std::map<std::string, std::uint64_t> memory_;
};

}  // namespace mri::service
