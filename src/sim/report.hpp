// Run-level report shared by both inversion systems (the MapReduce pipeline
// and the ScaLAPACK-style baseline) so benches can print them side by side.
#pragma once

#include "sim/io_stats.hpp"

namespace mri {

struct SimReport {
  /// Simulated wall-clock seconds for the whole run.
  double sim_seconds = 0.0;
  /// Aggregate I/O and flops across all nodes.
  IoStats io;
  /// MapReduce jobs launched (0 for the MPI baseline).
  int jobs = 0;
  /// Injected task failures recovered by re-execution.
  int failures_recovered = 0;
  /// Serial time spent on the master node (leaf LU decompositions).
  double master_seconds = 0.0;
};

}  // namespace mri
