// Run-level aggregation of scheduler traces, plus JSON export.
//
// A run is a sequence of scheduled phases (two per MapReduce job) laid out
// on the run's simulated timeline. From the raw per-attempt events this
// module derives the quantities the paper argues with: waves of tasks,
// slot utilization, straggler spread, and the failure-recovery timeline
// (§7.4). Two export shapes are provided:
//   * run_report_json()  — machine-readable summary (schema in README.md);
//   * chrome_trace_json() — Chrome trace_event format; load the file in
//     chrome://tracing (or ui.perfetto.dev) to see the per-slot timeline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/chaos.hpp"
#include "sim/io_stats.hpp"
#include "sim/trace.hpp"

namespace mri {

/// One network link's traffic totals over a phase or a whole run, from the
/// flow-level simulator (racked topologies only). Kept free of src/net types
/// so report consumers need no network dependency; `name` may be empty in
/// per-phase lanes (index into the run-level links gives it).
struct LinkReport {
  std::string name;
  std::uint64_t bytes = 0;
  double busy_seconds = 0.0;
  double peak_utilization = 0.0;  // fraction of link capacity, in [0, 1]
};

/// Flow-level network accounting for the run. `enabled` is false (and
/// everything zero/empty) unless a racked topology was attached to the
/// cluster.
struct NetworkReport {
  bool enabled = false;
  std::string topology = "flat";
  int racks = 0;
  double oversubscription = 1.0;
  bool rack_aware_placement = false;
  /// Recorded DFS/shuffle transfer bytes split by distance travelled.
  std::uint64_t node_local_bytes = 0;
  std::uint64_t rack_local_bytes = 0;
  std::uint64_t cross_rack_bytes = 0;
  /// Task attempts dispatched inside (vs outside) their home rack.
  int rack_local_attempts = 0;
  int cross_rack_attempts = 0;
  /// Per-link totals, indexed by topology link id.
  std::vector<LinkReport> links;
};

/// One scheduled phase placed on the run timeline. Event times inside
/// `events` are phase-relative; add `start` for run-relative times.
struct PhaseTrace {
  std::string job;
  std::string phase;  // "map" or "reduce"
  double start = 0.0;     // run-relative phase start (after job launch)
  double duration = 0.0;  // scheduler-reported phase duration
  std::vector<TaskTraceEvent> events;
  /// Per-link loads of this phase (racked topologies only; else empty).
  std::vector<LinkReport> link_loads;
};

/// Aggregates computed from one PhaseTrace by aggregate_run_report().
struct PhaseReport {
  std::string job;
  std::string phase;
  int tasks = 0;
  int attempts = 0;  // includes failed attempts and speculative backups
  int failures = 0;
  int backups = 0;
  /// Max number of attempts any single slot executed (1 = one wave).
  int waves = 0;
  double duration = 0.0;
  /// Sum of attempt spans; utilization = busy / (total_slots * duration).
  double busy_seconds = 0.0;
  double slot_utilization = 0.0;
  /// Straggler spread over per-task effective completion times.
  double median_task_end = 0.0;
  double max_task_end = 0.0;
  double straggler_ratio = 0.0;  // max / median (1.0 when degenerate)
};

/// One recovered failure: when the attempt died and when its retry started,
/// both run-relative.
struct FailureRecovery {
  std::string job;
  std::string phase;
  int task = 0;
  int attempt = 0;  // the attempt that died
  int node = 0;     // the node lost with it
  double failed_at = 0.0;
  double retry_start = 0.0;  // < 0 when no retry event was found
};

/// One job's [start, end) extent on the run timeline — the per-job lane of
/// the Chrome trace, where concurrently scheduled jobs visibly overlap.
struct JobSpan {
  std::string job;
  double start = 0.0;
  double end = 0.0;
};

/// One service request's lifecycle on the run timeline (service layer):
/// arrival -> dispatch is queue wait, dispatch -> finish is execution.
/// Rejected requests carry dispatch == finish == arrival.
struct RequestSpan {
  std::string request;  // "r<id>"
  std::string tenant;
  double arrival = 0.0;
  double dispatch = 0.0;
  double finish = 0.0;
  bool rejected = false;
};

/// Raw per-request accounting the service feeds aggregate_tenant_reports().
struct RequestStat {
  std::string tenant;
  int weight = 1;
  bool rejected = false;
  double arrival = 0.0;
  double dispatch = 0.0;
  double finish = 0.0;
  /// Sum of this request's task-attempt spans (its cluster occupancy).
  double slot_seconds = 0.0;
  /// Advisory deadline (seconds after arrival; 0 = none).
  double deadline_seconds = 0.0;
  /// Service-level retries this request consumed (fault recovery).
  int retries = 0;
  /// The request exhausted its retry budget (or hit permanent data loss /
  /// its deadline) and was abandoned; `finish` is the abandon time.
  bool unrecoverable = false;
};

/// Per-tenant SLO aggregates derived from RequestStats.
struct TenantReport {
  std::string tenant;
  int weight = 1;
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  double queue_wait_mean = 0.0;
  double queue_wait_max = 0.0;
  double latency_p50 = 0.0;  // arrival -> finish, admitted requests only
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double slot_seconds = 0.0;
  /// Admitted requests that finished after arrival + deadline (requests
  /// without a deadline hint never count).
  int deadline_misses = 0;
  /// Service-level retries across the tenant's requests, and requests
  /// abandoned as unrecoverable after exhausting them.
  int retries = 0;
  int unrecoverable = 0;
};

/// Fault-recovery accounting for one run: what the chaos engine broke and
/// what every layer paid to absorb it. Job-side fields (tasks_recomputed,
/// attempts_killed, recovery_io, recovery_seconds) are summed from
/// JobResults; DFS/service-side fields come from the engine's RecoveryStats.
/// All zero for a chaos-free run.
struct RecoveryReport {
  int nodes_killed = 0;
  int nodes_degraded = 0;
  int read_errors_injected = 0;
  int tasks_recomputed = 0;      // completed maps re-executed (outputs died)
  int attempts_killed = 0;       // in-flight attempts lost to node outages
  std::uint64_t re_replicated_bytes = 0;
  std::uint64_t re_replicated_blocks = 0;
  std::uint64_t blocks_lost = 0;  // blocks with every replica gone
  double re_replication_seconds = 0.0;
  /// Reduce-phase stall waiting for map recomputation waves (summed).
  double recovery_seconds = 0.0;
  IoStats recovery_io;  // wasted + re-done task footprint (included in io)
  int request_retries = 0;
  int requests_unrecoverable = 0;
  /// SPIN-engine lineage recovery (zero unless the in-memory engine handled
  /// a node kill): memory-tier partitions rebuilt by recomputation, the
  /// ascending-depth waves that rebuilt them, and the simulated re-execution
  /// cost — the in-memory counterpart of re_replicated_bytes/seconds.
  int partitions_recomputed = 0;
  int lineage_waves = 0;
  double lineage_recompute_seconds = 0.0;
  std::uint64_t lineage_recomputed_bytes = 0;
  /// Erasure-coded stripe repair after node kills (zero on replicated runs):
  /// cells rebuilt by decoding k survivors, and the bytes they restored —
  /// the EC counterpart of re_replicated_blocks/bytes.
  int ec_cells_reconstructed = 0;
  std::uint64_t ec_reconstructed_bytes = 0;
  /// Injected read errors that a replica/cell failover absorbed (the
  /// "dfs_read_errors_survived" counter).
  std::uint64_t read_errors_survived = 0;
};

/// One integrity repair on the run timeline: a corrupt copy re-materialized
/// from a healthy replica ("copy"), decoded from k clean survivors ("ec"),
/// or recomputed from lineage ("lineage") — triggered by a verifying read
/// or by the background scrubber.
struct IntegrityRepairSpan {
  double at = 0.0;
  int node = 0;
  std::string path;
  int cell = 0;
  std::uint64_t bytes = 0;
  std::string kind = "copy";
  bool by_scrubber = false;
};

/// One background scrubber pass over the namespace.
struct ScrubPassSpan {
  double at = 0.0;
  double seconds = 0.0;
  std::uint64_t bytes_scanned = 0;
  std::int64_t cells_verified = 0;
  std::int64_t cells_repaired = 0;
};

/// End-to-end data-integrity accounting: write-path checksumming,
/// verify-on-read, silent-corruption injection, read-repair and the
/// background scrubber. Always present in the report (stable schema); on a
/// run with verification off and no corruption every field is zero, which
/// keeps pre-integrity reports bit-identical. Kept free of src/dfs types so
/// report consumers need no DFS dependency.
struct IntegrityReport {
  bool verify_checksums = false;
  double scrub_interval_seconds = 0.0;
  std::int64_t cells_checksummed = 0;  // cells CRC'd on the write path
  std::int64_t cells_verified = 0;     // cells CRC-checked on read/scrub
  std::uint64_t bytes_verified = 0;
  std::int64_t corruptions_injected = 0;
  std::int64_t corruptions_detected = 0;
  std::int64_t cells_repaired_copy = 0;
  std::int64_t cells_repaired_ec = 0;
  std::int64_t cells_repaired_lineage = 0;
  std::int64_t cells_quarantined = 0;
  std::int64_t scrub_passes = 0;
  std::uint64_t scrub_bytes_scanned = 0;
  double scrub_seconds = 0.0;
  std::vector<IntegrityRepairSpan> repairs;
  std::vector<ScrubPassSpan> scrub_spans;
};

/// One cache eviction spilled to local disk, on the run timeline (`at` is
/// the start of the map phase of the job whose admission evicted it).
struct EngineSpillSpan {
  double at = 0.0;
  std::string path;
  std::uint64_t bytes = 0;
};

/// One memory-tier partition rebuilt from lineage after a node kill.
struct EngineRecomputeSpan {
  double at = 0.0;        // when the partition's recovery wave starts
  double duration = 0.0;  // the producing task's simulated re-run time
  int wave = 0;           // 0-based ascending-depth wave index
  std::string path;
  std::uint64_t bytes = 0;
};

/// SPIN-style in-memory engine accounting: block-cache behaviour, lineage
/// tracking and recovery totals. `enabled` is false (everything zero/empty)
/// on Hadoop-style disk-tier runs. Kept free of src/engine types so report
/// consumers need no engine dependency.
struct EngineReport {
  bool enabled = false;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  /// Consumer-side touches of resident entries — the reads that stream at
  /// memory bandwidth (pipeline fusion between producer and consumer jobs).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_resident_bytes = 0;  // at end of run
  std::uint64_t cache_peak_resident_bytes = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t tracked_partitions = 0;  // lineage records live at end of run
  int partitions_recomputed = 0;
  int lineage_waves = 0;
  double recompute_seconds = 0.0;
  std::uint64_t recomputed_bytes = 0;
  /// Job map-phase stalls waiting for lineage recovery (summed over jobs).
  double lineage_stall_seconds = 0.0;
  std::vector<EngineSpillSpan> spills;
  std::vector<EngineRecomputeSpan> recomputes;
};

/// One erasure-coded stripe repair after a node kill, on the run timeline:
/// `cells` cells decoded back from k survivors and re-placed, costing
/// `seconds` (k-survivor fan-in through the network model + decode CPU).
struct StorageReconstruction {
  double at = 0.0;
  int node = 0;  // the killed node whose cells were rebuilt
  int cells = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

/// DFS storage-policy accounting: logical vs physical footprint, parity and
/// reconstruction traffic, and the namenode hot-block cache. Always present
/// in the report (stable schema); on replicated runs `policy` is "replicate",
/// ec_k/ec_m are zero and every EC counter stays zero. Kept free of src/dfs
/// types so report consumers need no DFS dependency.
struct StorageReport {
  std::string policy = "replicate";
  int ec_k = 0;
  int ec_m = 0;
  /// Bytes of file content the namespace holds vs bytes actually resident
  /// on datanodes (replicas or data+parity cells); overhead is their ratio.
  std::uint64_t logical_bytes = 0;
  std::uint64_t physical_bytes = 0;
  double physical_overhead = 0.0;  // physical / logical (0 when no data)
  /// DFS-side EC traffic totals (from the MetricsRegistry).
  std::uint64_t parity_bytes = 0;
  std::uint64_t reconstructed_bytes = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t cells_reconstructed = 0;
  /// Namenode hot-block cache (zero when disabled).
  std::uint64_t hot_cache_capacity_bytes = 0;
  std::uint64_t hot_cache_resident_bytes = 0;
  std::uint64_t hot_cache_resident_files = 0;
  std::uint64_t hot_cache_hits = 0;
  std::uint64_t hot_cache_hit_bytes = 0;
  /// Stripe repairs after node kills, in kill order.
  std::vector<StorageReconstruction> reconstructions;
};

/// Compute-kernel engine accounting: which GEMM/TRSM backend and multiply
/// strategy the run used, and the kernel work it executed. Always present
/// in the report (stable schema); defaults describe a run that did no
/// kernel work on the default configuration. Kept free of src/linalg types
/// so report consumers need no kernel dependency.
struct KernelReport {
  std::string backend;  // "naive" | "tiled" | "simd" | "threaded"
  std::string multiply_strategy = "wrap";
  int replication = 1;
  int multiply_rounds = 1;
  std::uint64_t gemm_calls = 0;
  std::uint64_t trsm_calls = 0;
  std::uint64_t kernel_flops = 0;
  /// Wall-clock spent inside kernels and the implied GFLOP/s — real-machine
  /// measurements (for CostModel calibration), NOT simulation outputs.
  /// Deliberately EXCLUDED from run_report_json() so same-seed reports stay
  /// bit-identical across hosts and runs.
  double kernel_seconds = 0.0;
  double achieved_gflops = 0.0;
};

struct RunReport {
  double sim_seconds = 0.0;
  IoStats io;  // full run footprint (includes speculative re-work)
  int jobs = 0;
  int failures_recovered = 0;
  int backups_run = 0;
  int total_slots = 0;
  std::uint64_t shuffle_local_bytes = 0;
  std::uint64_t shuffle_remote_bytes = 0;
  /// DFS-side totals from the MetricsRegistry, when one was attached.
  IoStats dfs_io;
  std::map<std::string, std::uint64_t> counters;
  std::vector<PhaseTrace> phases;
  /// Per-job [start, end) lanes on the run timeline.
  std::vector<JobSpan> job_spans;
  /// Serial master-node work (leaf LUs, determinant reads) between jobs;
  /// previously an invisible gap in the timeline.
  std::vector<MasterSpan> master_spans;
  /// Derived by aggregate_run_report().
  std::vector<PhaseReport> phase_reports;
  std::vector<FailureRecovery> failure_timeline;
  double master_seconds = 0.0;       // sum over master_spans
  double busy_slot_seconds = 0.0;    // sum of attempt spans over all phases
  /// Cluster-wide slot utilization over the whole run:
  /// busy_slot_seconds / (total_slots * sim_seconds).
  double cluster_utilization = 0.0;
  /// Service-layer lanes and aggregates (empty for single-run reports);
  /// filled by aggregate_tenant_reports().
  std::vector<RequestSpan> request_spans;
  std::vector<TenantReport> tenants;
  /// Jain's fairness index over per-tenant weighted slot-seconds
  /// ((Σx)² / (n·Σx²), x = slot_seconds/weight): 1.0 = perfectly
  /// proportional sharing, 1/n = one tenant got everything.
  double fairness_index = 1.0;
  /// Chaos-run recovery accounting (all zero without a chaos engine), and
  /// the fault events that actually fired during the run (absolute run
  /// seconds) — rendered as the Chrome trace's "faults" lane.
  RecoveryReport recovery;
  std::vector<ChaosEvent> chaos_events;
  /// Flow-level network accounting (disabled/empty on flat runs); rendered
  /// as the Chrome trace's "network" lane.
  NetworkReport network;
  /// SPIN in-memory engine accounting (disabled/empty on disk-tier runs);
  /// rendered as the Chrome trace's "engine" lane.
  EngineReport engine;
  /// DFS storage-policy accounting (all-zero EC fields on replicated runs);
  /// rendered as the Chrome trace's "storage" lane.
  StorageReport storage;
  /// Data-integrity accounting (all zero with verification off and no
  /// corruption); rendered as the Chrome trace's "integrity" lane.
  IntegrityReport integrity;
  /// Kernel-engine identity and work totals (default-constructed when the
  /// caller didn't sample the kernel counters).
  KernelReport kernel;
};

/// Fills `phase_reports` and `failure_timeline` from `phases`; overwrites
/// any previous aggregation. `total_slots` must be set by the caller.
void aggregate_run_report(RunReport* report);

/// Interpolated percentile of `values` (q in [0,1]); 0.0 when empty.
double percentile(std::vector<double> values, double q);

/// Fills `request_spans`, `tenants` and `fairness_index` from per-request
/// stats (service layer); overwrites any previous aggregation. Stats must be
/// in request-id order — span names are assigned "r0", "r1", ...
void aggregate_tenant_reports(RunReport* report,
                              const std::vector<RequestStat>& stats);

/// Machine-readable run report (one JSON object; schema in README.md).
std::string run_report_json(const RunReport& report);

/// Chrome trace_event JSON: one complete ("ph":"X") event per attempt with
/// pid = node, tid = global slot, timestamps in microseconds. Additional
/// lanes: one per job (the job_spans, under a "jobs" pseudo-process, where
/// DAG-overlapped jobs visibly run concurrently), one for the master's
/// serial work (the master_spans, under a "master" pseudo-process), and —
/// on chaos runs — a "faults" pseudo-process with instant markers for
/// kills/degrades/read errors plus the recovery-wave attempt spans.
std::string chrome_trace_json(const RunReport& report);

}  // namespace mri
