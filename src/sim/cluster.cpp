#include "sim/cluster.hpp"

#include "common/error.hpp"
#include "common/random.hpp"

namespace mri {

Cluster::Cluster(int num_nodes, CostModel model, std::uint64_t seed)
    : model_(model) {
  MRI_REQUIRE(num_nodes >= 1, "cluster needs at least one node");
  MRI_REQUIRE(model.node_speed_variance >= 0.0 &&
                  model.node_speed_variance < 1.0,
              "node_speed_variance must be in [0, 1)");
  speed_factors_.reserve(static_cast<std::size_t>(num_nodes));
  Xoshiro256 rng(seed);
  for (int i = 0; i < num_nodes; ++i) {
    // Uniform spread in [1 - v, 1 + v]; node 0 pinned to nominal speed so the
    // master's single-node LU cost is stable across cluster sizes.
    double f = 1.0;
    if (i > 0 && model.node_speed_variance > 0.0) {
      f = rng.uniform(1.0 - model.node_speed_variance,
                      1.0 + model.node_speed_variance);
    }
    speed_factors_.push_back(f);
  }
}

double Cluster::speed_factor(int node) const {
  MRI_REQUIRE(node >= 0 && node < size(), "node index out of range");
  return speed_factors_[static_cast<std::size_t>(node)];
}

}  // namespace mri
