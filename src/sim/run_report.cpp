#include "sim/run_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mri {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

}  // namespace

void aggregate_run_report(RunReport* report) {
  report->phase_reports.clear();
  report->failure_timeline.clear();
  report->master_seconds = 0.0;
  for (const MasterSpan& span : report->master_spans) {
    report->master_seconds += span.end - span.start;
  }
  report->busy_slot_seconds = 0.0;
  for (const PhaseTrace& phase : report->phases) {
    for (const TaskTraceEvent& e : phase.events) {
      report->busy_slot_seconds += e.end - e.start;
    }
  }
  report->cluster_utilization =
      report->total_slots > 0 && report->sim_seconds > 0.0
          ? report->busy_slot_seconds /
                (static_cast<double>(report->total_slots) *
                 report->sim_seconds)
          : 0.0;

  for (const PhaseTrace& phase : report->phases) {
    PhaseReport pr;
    pr.job = phase.job;
    pr.phase = phase.phase;
    pr.duration = phase.duration;

    std::map<int, double> task_end;          // effective completion per task
    std::map<int, int> attempts_per_slot;
    for (const TaskTraceEvent& e : phase.events) {
      ++pr.attempts;
      if (e.failed) ++pr.failures;
      if (e.backup) ++pr.backups;
      pr.busy_seconds += e.end - e.start;
      ++attempts_per_slot[e.slot];
      // Failed attempts never complete the task; winners and truncated
      // losers share the same end, so max over the rest is the completion.
      if (!e.failed) {
        auto [it, inserted] = task_end.emplace(e.task, e.end);
        if (!inserted) it->second = std::max(it->second, e.end);
      } else {
        task_end.emplace(e.task, 0.0);  // count the task even if all failed
      }
    }
    pr.tasks = static_cast<int>(task_end.size());
    for (const auto& [slot, n] : attempts_per_slot) {
      pr.waves = std::max(pr.waves, n);
    }
    if (report->total_slots > 0 && pr.duration > 0.0) {
      pr.slot_utilization =
          pr.busy_seconds /
          (static_cast<double>(report->total_slots) * pr.duration);
    }
    std::vector<double> ends;
    ends.reserve(task_end.size());
    for (const auto& [task, end] : task_end) ends.push_back(end);
    pr.median_task_end = median_of(ends);
    pr.max_task_end = ends.empty() ? 0.0 : *std::max_element(ends.begin(),
                                                             ends.end());
    pr.straggler_ratio =
        pr.median_task_end > 0.0 ? pr.max_task_end / pr.median_task_end : 1.0;
    report->phase_reports.push_back(std::move(pr));

    // Failure-recovery timeline: each failed attempt paired with the start
    // of the next attempt of the same task.
    for (const TaskTraceEvent& e : phase.events) {
      if (!e.failed) continue;
      FailureRecovery f;
      f.job = phase.job;
      f.phase = phase.phase;
      f.task = e.task;
      f.attempt = e.attempt;
      f.node = e.node;
      f.failed_at = phase.start + e.end;
      f.retry_start = -1.0;
      for (const TaskTraceEvent& r : phase.events) {
        if (r.task == e.task && r.attempt == e.attempt + 1 && !r.backup) {
          f.retry_start = phase.start + r.start;
          break;
        }
      }
      report->failure_timeline.push_back(std::move(f));
    }
  }
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  // Linear interpolation between closest ranks (numpy's default).
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

void aggregate_tenant_reports(RunReport* report,
                              const std::vector<RequestStat>& stats) {
  report->request_spans.clear();
  report->tenants.clear();
  report->fairness_index = 1.0;

  // Request lanes, in request-id order (the order the service assigned ids).
  report->request_spans.reserve(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const RequestStat& s = stats[i];
    RequestSpan span;
    // Built in two steps: gcc 12 false-positives -Wrestrict on the
    // `const char* + std::string&&` overload here under -O2.
    span.request = "r";
    span.request += std::to_string(i);
    span.tenant = s.tenant;
    span.arrival = s.arrival;
    span.dispatch = s.rejected ? s.arrival : s.dispatch;
    span.finish = s.rejected ? s.arrival : s.finish;
    span.rejected = s.rejected;
    report->request_spans.push_back(std::move(span));
  }

  // Group by tenant; map keeps the output deterministic (sorted by name).
  std::map<std::string, std::vector<const RequestStat*>> by_tenant;
  for (const RequestStat& s : stats) by_tenant[s.tenant].push_back(&s);

  for (const auto& [tenant, reqs] : by_tenant) {
    TenantReport tr;
    tr.tenant = tenant;
    std::vector<double> latencies;
    double wait_sum = 0.0;
    for (const RequestStat* s : reqs) {
      tr.weight = s->weight;  // identical for all of a tenant's requests
      ++tr.submitted;
      if (s->rejected) {
        ++tr.rejected;
        continue;
      }
      ++tr.admitted;
      tr.retries += s->retries;
      const double wait = s->dispatch - s->arrival;
      wait_sum += wait;
      tr.queue_wait_max = std::max(tr.queue_wait_max, wait);
      if (s->unrecoverable) {
        // Abandoned requests were dispatched and held slots until the
        // abandon time, but never produced a result; keep them out of the
        // latency percentiles and deadline accounting.
        ++tr.unrecoverable;
        tr.slot_seconds += s->slot_seconds;
        continue;
      }
      latencies.push_back(s->finish - s->arrival);
      tr.slot_seconds += s->slot_seconds;
      if (s->deadline_seconds > 0.0 &&
          s->finish > s->arrival + s->deadline_seconds) {
        ++tr.deadline_misses;
      }
    }
    if (tr.admitted > 0) wait_sum /= tr.admitted;
    tr.queue_wait_mean = wait_sum;
    tr.latency_p50 = percentile(latencies, 0.50);
    tr.latency_p95 = percentile(latencies, 0.95);
    tr.latency_p99 = percentile(latencies, 0.99);
    report->tenants.push_back(std::move(tr));
  }

  // Jain's fairness index over x_i = slot_seconds_i / weight_i, counting
  // only tenants that actually ran work (an idle tenant is not unfairness).
  std::vector<double> shares;
  for (const TenantReport& tr : report->tenants) {
    if (tr.slot_seconds > 0.0 && tr.weight > 0) {
      shares.push_back(tr.slot_seconds / tr.weight);
    }
  }
  if (shares.size() > 1) {
    double sum = 0.0, sum_sq = 0.0;
    for (double x : shares) {
      sum += x;
      sum_sq += x * x;
    }
    report->fairness_index =
        sum_sq > 0.0
            ? (sum * sum) / (static_cast<double>(shares.size()) * sum_sq)
            : 1.0;
  }
}

namespace {

// Minimal JSON writer: the strings we emit (job names, counter names) are
// plain identifiers, but escape defensively anyway.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_num(std::ostringstream& os, double v) {
  // JSON has no NaN/Inf; clamp defensively.
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

void append_io(std::ostringstream& os, const char* key, const IoStats& io) {
  os << '"' << key << "\":{"
     << "\"bytes_written\":" << io.bytes_written
     << ",\"bytes_read\":" << io.bytes_read
     << ",\"bytes_transferred\":" << io.bytes_transferred
     << ",\"bytes_replicated\":" << io.bytes_replicated
     << ",\"bytes_written_memory\":" << io.bytes_written_memory
     << ",\"bytes_read_memory\":" << io.bytes_read_memory
     << ",\"bytes_spilled\":" << io.bytes_spilled
     << ",\"bytes_parity\":" << io.bytes_parity
     << ",\"bytes_reconstructed\":" << io.bytes_reconstructed
     << ",\"degraded_reads\":" << io.degraded_reads
     << ",\"mults\":" << io.mults << ",\"adds\":" << io.adds << '}';
}

}  // namespace

std::string run_report_json(const RunReport& report) {
  std::ostringstream os;
  os.precision(12);
  os << "{\"sim_seconds\":";
  append_num(os, report.sim_seconds);
  os << ",\"jobs\":" << report.jobs
     << ",\"failures_recovered\":" << report.failures_recovered
     << ",\"backups_run\":" << report.backups_run
     << ",\"total_slots\":" << report.total_slots
     << ",\"busy_slot_seconds\":";
  append_num(os, report.busy_slot_seconds);
  os << ",\"cluster_utilization\":";
  append_num(os, report.cluster_utilization);
  os << ',';
  append_io(os, "io", report.io);
  os << ",\"shuffle\":{\"local_bytes\":" << report.shuffle_local_bytes
     << ",\"remote_bytes\":" << report.shuffle_remote_bytes << "},";
  append_io(os, "dfs_io", report.dfs_io);
  // Network keys are always present (stable schema); disabled with an empty
  // link list on flat runs.
  const NetworkReport& net = report.network;
  os << ",\"network\":{\"enabled\":" << (net.enabled ? "true" : "false")
     << ",\"topology\":\"" << json_escape(net.topology)
     << "\",\"racks\":" << net.racks << ",\"oversubscription\":";
  append_num(os, net.oversubscription);
  os << ",\"rack_aware_placement\":"
     << (net.rack_aware_placement ? "true" : "false")
     << ",\"node_local_bytes\":" << net.node_local_bytes
     << ",\"rack_local_bytes\":" << net.rack_local_bytes
     << ",\"cross_rack_bytes\":" << net.cross_rack_bytes
     << ",\"rack_local_attempts\":" << net.rack_local_attempts
     << ",\"cross_rack_attempts\":" << net.cross_rack_attempts
     << ",\"links\":[";
  {
    bool first_link = true;
    for (const LinkReport& l : net.links) {
      if (!first_link) os << ',';
      first_link = false;
      os << "{\"name\":\"" << json_escape(l.name) << "\",\"bytes\":" << l.bytes
         << ",\"busy_seconds\":";
      append_num(os, l.busy_seconds);
      os << ",\"peak_utilization\":";
      append_num(os, l.peak_utilization);
      os << '}';
    }
  }
  os << "]}";
  // Recovery keys are always present (stable schema); all zero and an
  // empty event list on chaos-free runs.
  const RecoveryReport& rec = report.recovery;
  os << ",\"recovery\":{\"nodes_killed\":" << rec.nodes_killed
     << ",\"nodes_degraded\":" << rec.nodes_degraded
     << ",\"read_errors_injected\":" << rec.read_errors_injected
     << ",\"read_errors_survived\":" << rec.read_errors_survived
     << ",\"tasks_recomputed\":" << rec.tasks_recomputed
     << ",\"attempts_killed\":" << rec.attempts_killed
     << ",\"re_replicated_bytes\":" << rec.re_replicated_bytes
     << ",\"re_replicated_blocks\":" << rec.re_replicated_blocks
     << ",\"blocks_lost\":" << rec.blocks_lost
     << ",\"re_replication_seconds\":";
  append_num(os, rec.re_replication_seconds);
  os << ",\"recovery_seconds\":";
  append_num(os, rec.recovery_seconds);
  os << ",\"request_retries\":" << rec.request_retries
     << ",\"requests_unrecoverable\":" << rec.requests_unrecoverable
     << ",\"partitions_recomputed\":" << rec.partitions_recomputed
     << ",\"lineage_waves\":" << rec.lineage_waves
     << ",\"lineage_recompute_seconds\":";
  append_num(os, rec.lineage_recompute_seconds);
  os << ",\"lineage_recomputed_bytes\":" << rec.lineage_recomputed_bytes
     << ",\"ec_cells_reconstructed\":" << rec.ec_cells_reconstructed
     << ",\"ec_reconstructed_bytes\":" << rec.ec_reconstructed_bytes << ',';
  append_io(os, "recovery_io", rec.recovery_io);
  os << '}';
  // Engine keys are always present (stable schema); disabled with empty
  // event lists on Hadoop-style disk-tier runs.
  const EngineReport& eng = report.engine;
  os << ",\"engine\":{\"enabled\":" << (eng.enabled ? "true" : "false")
     << ",\"cache\":{\"insertions\":" << eng.cache_insertions
     << ",\"evictions\":" << eng.cache_evictions
     << ",\"hits\":" << eng.cache_hits
     << ",\"resident_bytes\":" << eng.cache_resident_bytes
     << ",\"peak_resident_bytes\":" << eng.cache_peak_resident_bytes
     << ",\"spilled_bytes\":" << eng.spilled_bytes
     << "},\"tracked_partitions\":" << eng.tracked_partitions
     << ",\"partitions_recomputed\":" << eng.partitions_recomputed
     << ",\"lineage_waves\":" << eng.lineage_waves
     << ",\"recompute_seconds\":";
  append_num(os, eng.recompute_seconds);
  os << ",\"recomputed_bytes\":" << eng.recomputed_bytes
     << ",\"lineage_stall_seconds\":";
  append_num(os, eng.lineage_stall_seconds);
  os << ",\"spills\":[";
  {
    bool first_spill = true;
    for (const EngineSpillSpan& s : eng.spills) {
      if (!first_spill) os << ',';
      first_spill = false;
      os << "{\"at\":";
      append_num(os, s.at);
      os << ",\"path\":\"" << json_escape(s.path) << "\",\"bytes\":" << s.bytes
         << '}';
    }
  }
  os << "],\"recomputes\":[";
  {
    bool first_rc = true;
    for (const EngineRecomputeSpan& r : eng.recomputes) {
      if (!first_rc) os << ',';
      first_rc = false;
      os << "{\"at\":";
      append_num(os, r.at);
      os << ",\"duration\":";
      append_num(os, r.duration);
      os << ",\"wave\":" << r.wave << ",\"path\":\"" << json_escape(r.path)
         << "\",\"bytes\":" << r.bytes << '}';
    }
  }
  os << "]}";
  // Storage keys are always present (stable schema); on replicated runs the
  // policy is "replicate" and every EC/cache counter is zero.
  const StorageReport& sto = report.storage;
  os << ",\"storage\":{\"policy\":\"" << json_escape(sto.policy)
     << "\",\"ec_k\":" << sto.ec_k << ",\"ec_m\":" << sto.ec_m
     << ",\"logical_bytes\":" << sto.logical_bytes
     << ",\"physical_bytes\":" << sto.physical_bytes
     << ",\"physical_overhead\":";
  append_num(os, sto.physical_overhead);
  os << ",\"parity_bytes\":" << sto.parity_bytes
     << ",\"reconstructed_bytes\":" << sto.reconstructed_bytes
     << ",\"degraded_reads\":" << sto.degraded_reads
     << ",\"cells_reconstructed\":" << sto.cells_reconstructed
     << ",\"hot_cache\":{\"capacity_bytes\":" << sto.hot_cache_capacity_bytes
     << ",\"resident_bytes\":" << sto.hot_cache_resident_bytes
     << ",\"resident_files\":" << sto.hot_cache_resident_files
     << ",\"hits\":" << sto.hot_cache_hits
     << ",\"hit_bytes\":" << sto.hot_cache_hit_bytes
     << "},\"reconstructions\":[";
  {
    bool first_rcn = true;
    for (const StorageReconstruction& r : sto.reconstructions) {
      if (!first_rcn) os << ',';
      first_rcn = false;
      os << "{\"at\":";
      append_num(os, r.at);
      os << ",\"node\":" << r.node << ",\"cells\":" << r.cells
         << ",\"bytes\":" << r.bytes << ",\"seconds\":";
      append_num(os, r.seconds);
      os << '}';
    }
  }
  os << "]}";
  // Integrity keys are always present (stable schema); with verification
  // off and no corruption every counter is zero and both lists are empty.
  const IntegrityReport& integ = report.integrity;
  os << ",\"integrity\":{\"verify_checksums\":"
     << (integ.verify_checksums ? "true" : "false")
     << ",\"scrub_interval_seconds\":";
  append_num(os, integ.scrub_interval_seconds);
  os << ",\"cells_checksummed\":" << integ.cells_checksummed
     << ",\"cells_verified\":" << integ.cells_verified
     << ",\"bytes_verified\":" << integ.bytes_verified
     << ",\"corruptions_injected\":" << integ.corruptions_injected
     << ",\"corruptions_detected\":" << integ.corruptions_detected
     << ",\"cells_repaired_copy\":" << integ.cells_repaired_copy
     << ",\"cells_repaired_ec\":" << integ.cells_repaired_ec
     << ",\"cells_repaired_lineage\":" << integ.cells_repaired_lineage
     << ",\"cells_quarantined\":" << integ.cells_quarantined
     << ",\"scrub_passes\":" << integ.scrub_passes
     << ",\"scrub_bytes_scanned\":" << integ.scrub_bytes_scanned
     << ",\"scrub_seconds\":";
  append_num(os, integ.scrub_seconds);
  os << ",\"repairs\":[";
  {
    bool first_rep = true;
    for (const IntegrityRepairSpan& r : integ.repairs) {
      if (!first_rep) os << ',';
      first_rep = false;
      os << "{\"at\":";
      append_num(os, r.at);
      os << ",\"node\":" << r.node << ",\"path\":\"" << json_escape(r.path)
         << "\",\"cell\":" << r.cell << ",\"bytes\":" << r.bytes
         << ",\"kind\":\"" << json_escape(r.kind) << "\",\"by_scrubber\":"
         << (r.by_scrubber ? "true" : "false") << '}';
    }
  }
  os << "],\"scrubs\":[";
  {
    bool first_scrub = true;
    for (const ScrubPassSpan& s : integ.scrub_spans) {
      if (!first_scrub) os << ',';
      first_scrub = false;
      os << "{\"at\":";
      append_num(os, s.at);
      os << ",\"seconds\":";
      append_num(os, s.seconds);
      os << ",\"bytes_scanned\":" << s.bytes_scanned
         << ",\"cells_verified\":" << s.cells_verified
         << ",\"cells_repaired\":" << s.cells_repaired << '}';
    }
  }
  os << "]}";
  // Kernel keys are always present (stable schema). Wall-clock kernel
  // timings (kernel_seconds / achieved_gflops) are intentionally NOT
  // emitted: they vary per host, and same-seed reports must stay
  // bit-identical.
  const KernelReport& ker = report.kernel;
  os << ",\"kernel\":{\"backend\":\"" << json_escape(ker.backend)
     << "\",\"multiply_strategy\":\"" << json_escape(ker.multiply_strategy)
     << "\",\"replication\":" << ker.replication
     << ",\"multiply_rounds\":" << ker.multiply_rounds
     << ",\"gemm_calls\":" << ker.gemm_calls
     << ",\"trsm_calls\":" << ker.trsm_calls
     << ",\"kernel_flops\":" << ker.kernel_flops << '}';
  os << ",\"chaos_events\":[";
  bool first_event = true;
  for (const ChaosEvent& e : report.chaos_events) {
    if (!first_event) os << ',';
    first_event = false;
    os << "{\"kind\":\""
       << (e.kind == ChaosEventKind::kKillNode       ? "kill"
           : e.kind == ChaosEventKind::kDegradeNode  ? "degrade"
           : e.kind == ChaosEventKind::kCorruptBlock ? "corrupt_block"
                                                     : "read_error")
       << "\",\"at\":";
    append_num(os, e.at);
    os << ",\"node\":" << e.node << ",\"factor\":";
    append_num(os, e.factor);
    os << '}';
  }
  os << "],\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : report.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"phases\":[";
  first = true;
  for (const PhaseReport& p : report.phase_reports) {
    if (!first) os << ',';
    first = false;
    os << "{\"job\":\"" << json_escape(p.job) << "\",\"phase\":\"" << p.phase
       << "\",\"tasks\":" << p.tasks << ",\"attempts\":" << p.attempts
       << ",\"failures\":" << p.failures << ",\"backups\":" << p.backups
       << ",\"waves\":" << p.waves << ",\"duration\":";
    append_num(os, p.duration);
    os << ",\"busy_seconds\":";
    append_num(os, p.busy_seconds);
    os << ",\"slot_utilization\":";
    append_num(os, p.slot_utilization);
    os << ",\"median_task_end\":";
    append_num(os, p.median_task_end);
    os << ",\"max_task_end\":";
    append_num(os, p.max_task_end);
    os << ",\"straggler_ratio\":";
    append_num(os, p.straggler_ratio);
    os << '}';
  }
  os << "],\"job_spans\":[";
  first = true;
  for (const JobSpan& s : report.job_spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"job\":\"" << json_escape(s.job) << "\",\"start\":";
    append_num(os, s.start);
    os << ",\"end\":";
    append_num(os, s.end);
    os << '}';
  }
  os << "],\"master\":{\"seconds\":";
  append_num(os, report.master_seconds);
  os << ",\"spans\":[";
  first = true;
  for (const MasterSpan& s : report.master_spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"start\":";
    append_num(os, s.start);
    os << ",\"end\":";
    append_num(os, s.end);
    os << '}';
  }
  os << "]},\"failure_timeline\":[";
  first = true;
  for (const FailureRecovery& f : report.failure_timeline) {
    if (!first) os << ',';
    first = false;
    os << "{\"job\":\"" << json_escape(f.job) << "\",\"phase\":\"" << f.phase
       << "\",\"task\":" << f.task << ",\"attempt\":" << f.attempt
       << ",\"node\":" << f.node << ",\"failed_at\":";
    append_num(os, f.failed_at);
    os << ",\"retry_start\":";
    append_num(os, f.retry_start);
    os << '}';
  }
  // Service-layer keys are always present (stable schema for the service
  // bench's consumers); both arrays are empty for single-run reports.
  os << "],\"fairness_index\":";
  append_num(os, report.fairness_index);
  os << ",\"tenants\":[";
  first = true;
  for (const TenantReport& t : report.tenants) {
    if (!first) os << ',';
    first = false;
    os << "{\"tenant\":\"" << json_escape(t.tenant)
       << "\",\"weight\":" << t.weight << ",\"submitted\":" << t.submitted
       << ",\"admitted\":" << t.admitted << ",\"rejected\":" << t.rejected
       << ",\"queue_wait_mean\":";
    append_num(os, t.queue_wait_mean);
    os << ",\"queue_wait_max\":";
    append_num(os, t.queue_wait_max);
    os << ",\"latency_p50\":";
    append_num(os, t.latency_p50);
    os << ",\"latency_p95\":";
    append_num(os, t.latency_p95);
    os << ",\"latency_p99\":";
    append_num(os, t.latency_p99);
    os << ",\"slot_seconds\":";
    append_num(os, t.slot_seconds);
    os << ",\"deadline_misses\":" << t.deadline_misses
       << ",\"retries\":" << t.retries
       << ",\"unrecoverable\":" << t.unrecoverable << '}';
  }
  os << "],\"requests\":[";
  first = true;
  for (const RequestSpan& r : report.request_spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"request\":\"" << json_escape(r.request) << "\",\"tenant\":\""
       << json_escape(r.tenant) << "\",\"arrival\":";
    append_num(os, r.arrival);
    os << ",\"dispatch\":";
    append_num(os, r.dispatch);
    os << ",\"finish\":";
    append_num(os, r.finish);
    os << ",\"rejected\":" << (r.rejected ? "true" : "false") << '}';
  }
  os << "]}";
  return os.str();
}

std::string chrome_trace_json(const RunReport& report) {
  // Pseudo-process ids for the run-level lanes, far above any node id.
  constexpr int kJobsPid = 1000000;
  constexpr int kMasterPid = 1000001;
  constexpr int kRequestsPid = 1000002;
  constexpr int kFaultsPid = 1000003;
  constexpr int kNetworkPid = 1000004;
  constexpr int kEnginePid = 1000005;
  constexpr int kStoragePid = 1000006;
  constexpr int kIntegrityPid = 1000007;
  std::ostringstream os;
  os.precision(12);
  os << "[";
  bool first = true;
  // Process metadata so chrome://tracing labels the per-node swimlanes.
  std::map<int, bool> nodes_seen;
  for (const PhaseTrace& phase : report.phases) {
    for (const TaskTraceEvent& e : phase.events) nodes_seen[e.node] = true;
  }
  for (const auto& [node, seen] : nodes_seen) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << node
       << ",\"args\":{\"name\":\"node " << node << "\"}}";
  }
  if (!report.job_spans.empty()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kJobsPid
       << ",\"args\":{\"name\":\"jobs\"}}";
    // One lane (tid) per job: overlap-scheduled jobs render side by side.
    int lane = 0;
    for (const JobSpan& s : report.job_spans) {
      os << ",{\"ph\":\"X\",\"name\":\"" << json_escape(s.job)
         << "\",\"cat\":\"job\",\"pid\":" << kJobsPid << ",\"tid\":" << lane
         << ",\"ts\":";
      append_num(os, s.start * 1e6);
      os << ",\"dur\":";
      append_num(os, (s.end - s.start) * 1e6);
      os << ",\"args\":{}}";
      ++lane;
    }
  }
  if (!report.master_spans.empty()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kMasterPid
       << ",\"args\":{\"name\":\"master\"}}";
    for (const MasterSpan& s : report.master_spans) {
      os << ",{\"ph\":\"X\",\"name\":\"master work\",\"cat\":\"master\","
            "\"pid\":" << kMasterPid << ",\"tid\":0,\"ts\":";
      append_num(os, s.start * 1e6);
      os << ",\"dur\":";
      append_num(os, (s.end - s.start) * 1e6);
      os << ",\"args\":{\"mults\":" << s.io.mults
         << ",\"bytes_read\":" << s.io.bytes_read << "}}";
    }
  }
  if (!report.request_spans.empty()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kRequestsPid
       << ",\"args\":{\"name\":\"requests\"}}";
    // One lane per request: queued (arrival->dispatch) then run
    // (dispatch->finish); rejected requests render as instant markers.
    int lane = 0;
    for (const RequestSpan& r : report.request_spans) {
      if (r.rejected) {
        os << ",{\"ph\":\"i\",\"name\":\"" << json_escape(r.request)
           << " rejected\",\"cat\":\"request\",\"pid\":" << kRequestsPid
           << ",\"tid\":" << lane << ",\"ts\":";
        append_num(os, r.arrival * 1e6);
        os << ",\"s\":\"t\",\"args\":{\"tenant\":\"" << json_escape(r.tenant)
           << "\"}}";
      } else {
        os << ",{\"ph\":\"X\",\"name\":\"" << json_escape(r.request)
           << " queued\",\"cat\":\"request\",\"pid\":" << kRequestsPid
           << ",\"tid\":" << lane << ",\"ts\":";
        append_num(os, r.arrival * 1e6);
        os << ",\"dur\":";
        append_num(os, (r.dispatch - r.arrival) * 1e6);
        os << ",\"args\":{\"tenant\":\"" << json_escape(r.tenant) << "\"}}";
        os << ",{\"ph\":\"X\",\"name\":\"" << json_escape(r.request)
           << " run\",\"cat\":\"request\",\"pid\":" << kRequestsPid
           << ",\"tid\":" << lane << ",\"ts\":";
        append_num(os, r.dispatch * 1e6);
        os << ",\"dur\":";
        append_num(os, (r.finish - r.dispatch) * 1e6);
        os << ",\"args\":{\"tenant\":\"" << json_escape(r.tenant) << "\"}}";
      }
      ++lane;
    }
  }
  // Fault lane: every chaos event that fired, as an instant marker, plus
  // the recovery-wave attempts as spans (mirrored from their node lanes so
  // the damage and the repair read side by side).
  const bool any_recovery = [&report] {
    for (const PhaseTrace& phase : report.phases) {
      for (const TaskTraceEvent& e : phase.events) {
        if (e.recovery) return true;
      }
    }
    return false;
  }();
  if (!report.chaos_events.empty() || any_recovery) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kFaultsPid
       << ",\"args\":{\"name\":\"faults\"}}";
    for (const ChaosEvent& e : report.chaos_events) {
      const char* what = e.kind == ChaosEventKind::kKillNode ? "kill node "
                         : e.kind == ChaosEventKind::kDegradeNode
                             ? "degrade node "
                         : e.kind == ChaosEventKind::kCorruptBlock
                             ? "corrupt block node "
                             : "read error node ";
      os << ",{\"ph\":\"i\",\"name\":\"" << what << e.node
         << "\",\"cat\":\"chaos\",\"pid\":" << kFaultsPid
         << ",\"tid\":0,\"ts\":";
      append_num(os, e.at * 1e6);
      os << ",\"s\":\"g\",\"args\":{\"node\":" << e.node << ",\"factor\":";
      append_num(os, e.factor);
      os << "}}";
    }
    for (const PhaseTrace& phase : report.phases) {
      for (const TaskTraceEvent& e : phase.events) {
        if (!e.recovery) continue;
        os << ",{\"ph\":\"X\",\"name\":\"recompute " << json_escape(phase.job)
           << '/' << phase.phase << " t" << e.task
           << "\",\"cat\":\"recovery\",\"pid\":" << kFaultsPid
           << ",\"tid\":1,\"ts\":";
        append_num(os, (phase.start + e.start) * 1e6);
        os << ",\"dur\":";
        append_num(os, (e.end - e.start) * 1e6);
        os << ",\"args\":{\"task\":" << e.task << ",\"node\":" << e.node
           << "}}";
      }
    }
  }
  // Network lane: per phase, one span per link that carried traffic, over
  // the phase's extent; args carry the link's bytes/busy/peak so hovering a
  // span shows where the phase's traffic concentrated.
  const bool any_link_loads = [&report] {
    for (const PhaseTrace& phase : report.phases) {
      for (const LinkReport& l : phase.link_loads) {
        if (l.bytes > 0) return true;
      }
    }
    return false;
  }();
  if (any_link_loads) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kNetworkPid
       << ",\"args\":{\"name\":\"network\"}}";
    for (const PhaseTrace& phase : report.phases) {
      for (std::size_t i = 0; i < phase.link_loads.size(); ++i) {
        const LinkReport& l = phase.link_loads[i];
        if (l.bytes == 0) continue;
        std::string name = l.name;
        if (name.empty() && i < report.network.links.size()) {
          name = report.network.links[i].name;
        }
        if (name.empty()) name = "link " + std::to_string(i);
        os << ",{\"ph\":\"X\",\"name\":\"" << json_escape(name) << "\",\"cat\""
           << ":\"network\",\"pid\":" << kNetworkPid << ",\"tid\":" << i
           << ",\"ts\":";
        append_num(os, phase.start * 1e6);
        os << ",\"dur\":";
        append_num(os, phase.duration * 1e6);
        os << ",\"args\":{\"bytes\":" << l.bytes << ",\"busy_seconds\":";
        append_num(os, l.busy_seconds);
        os << ",\"peak_utilization\":";
        append_num(os, l.peak_utilization);
        os << "}}";
      }
    }
  }
  // Engine lane: cache spills as instant markers (tid 0) and lineage
  // recomputations as spans stacked by recovery wave (tid 1 + wave), so a
  // node kill's rebuild reads next to the faults lane it responds to.
  if (!report.engine.spills.empty() || !report.engine.recomputes.empty()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kEnginePid
       << ",\"args\":{\"name\":\"engine\"}}";
    for (const EngineSpillSpan& s : report.engine.spills) {
      os << ",{\"ph\":\"i\",\"name\":\"spill " << json_escape(s.path)
         << "\",\"cat\":\"engine\",\"pid\":" << kEnginePid
         << ",\"tid\":0,\"ts\":";
      append_num(os, s.at * 1e6);
      os << ",\"s\":\"t\",\"args\":{\"bytes\":" << s.bytes << "}}";
    }
    for (const EngineRecomputeSpan& r : report.engine.recomputes) {
      os << ",{\"ph\":\"X\",\"name\":\"recompute " << json_escape(r.path)
         << "\",\"cat\":\"engine\",\"pid\":" << kEnginePid
         << ",\"tid\":" << 1 + r.wave << ",\"ts\":";
      append_num(os, r.at * 1e6);
      os << ",\"dur\":";
      append_num(os, r.duration * 1e6);
      os << ",\"args\":{\"wave\":" << r.wave << ",\"bytes\":" << r.bytes
         << "}}";
    }
  }
  // Storage lane: one span per EC stripe reconstruction, stacked in kill
  // order, so decode-based repair reads next to the faults lane that
  // triggered it.
  if (!report.storage.reconstructions.empty()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kStoragePid
       << ",\"args\":{\"name\":\"storage\"}}";
    int lane = 0;
    for (const StorageReconstruction& r : report.storage.reconstructions) {
      os << ",{\"ph\":\"X\",\"name\":\"reconstruct node " << r.node
         << "\",\"cat\":\"storage\",\"pid\":" << kStoragePid
         << ",\"tid\":" << lane << ",\"ts\":";
      append_num(os, r.at * 1e6);
      os << ",\"dur\":";
      append_num(os, r.seconds * 1e6);
      os << ",\"args\":{\"node\":" << r.node << ",\"cells\":" << r.cells
         << ",\"bytes\":" << r.bytes << "}}";
      ++lane;
    }
  }
  // Integrity lane: scrubber passes as spans (tid 0) and individual repairs
  // as instant markers (tid 1), so detection-and-repair reads next to the
  // faults lane that injected the corruption.
  if (!report.integrity.repairs.empty() ||
      !report.integrity.scrub_spans.empty()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << kIntegrityPid
       << ",\"args\":{\"name\":\"integrity\"}}";
    for (const ScrubPassSpan& s : report.integrity.scrub_spans) {
      os << ",{\"ph\":\"X\",\"name\":\"scrub pass\",\"cat\":\"integrity\","
            "\"pid\":" << kIntegrityPid << ",\"tid\":0,\"ts\":";
      append_num(os, s.at * 1e6);
      os << ",\"dur\":";
      append_num(os, s.seconds * 1e6);
      os << ",\"args\":{\"bytes_scanned\":" << s.bytes_scanned
         << ",\"cells_verified\":" << s.cells_verified
         << ",\"cells_repaired\":" << s.cells_repaired << "}}";
    }
    for (const IntegrityRepairSpan& r : report.integrity.repairs) {
      os << ",{\"ph\":\"i\",\"name\":\"repair " << json_escape(r.kind) << ' '
         << json_escape(r.path) << "\",\"cat\":\"integrity\",\"pid\":"
         << kIntegrityPid << ",\"tid\":1,\"ts\":";
      append_num(os, r.at * 1e6);
      os << ",\"s\":\"t\",\"args\":{\"node\":" << r.node << ",\"path\":\""
         << json_escape(r.path) << "\",\"cell\":" << r.cell
         << ",\"bytes\":" << r.bytes << ",\"by_scrubber\":"
         << (r.by_scrubber ? "true" : "false") << "}}";
    }
  }
  for (const PhaseTrace& phase : report.phases) {
    for (const TaskTraceEvent& e : phase.events) {
      const double ts_us = (phase.start + e.start) * 1e6;
      const double dur_us = (e.end - e.start) * 1e6;
      if (!first) os << ',';
      first = false;
      os << "{\"ph\":\"X\",\"name\":\"" << json_escape(phase.job) << '/'
         << phase.phase << " t" << e.task << " a" << e.attempt
         << (e.recovery       ? " (recovery)"
             : e.chaos        ? " (node lost)"
             : e.backup       ? " (backup)"
             : e.failed       ? " (failed)"
                              : "")
         << "\",\"cat\":\"" << phase.phase << "\",\"pid\":" << e.node
         << ",\"tid\":" << e.slot << ",\"ts\":";
      append_num(os, ts_us);
      os << ",\"dur\":";
      append_num(os, dur_us);
      os << ",\"args\":{\"task\":" << e.task << ",\"attempt\":" << e.attempt
         << ",\"failed\":" << (e.failed ? "true" : "false")
         << ",\"backup\":" << (e.backup ? "true" : "false")
         << ",\"chaos\":" << (e.chaos ? "true" : "false")
         << ",\"recovery\":" << (e.recovery ? "true" : "false") << "}}";
    }
  }
  os << "]";
  return os.str();
}

}  // namespace mri
