// Seeded, deterministic chaos engine: the fault schedule for a whole run.
//
// Section 7.4 of the paper is the fault-tolerance claim — a failed mapper
// stretched a 5-hour inversion to 8 hours, yet the run completed, which
// ScaLAPACK/MPI cannot do. The chaos engine generalizes the old one-shot
// task-level injector to whole-node faults on the simulated timeline:
//   * kKillNode      — a datanode/tasktracker dies at simulated time `at`:
//                      its DFS blocks are lost (the namenode re-replicates
//                      from survivors), its slots leave the pool, in-flight
//                      attempts fail, and completed map outputs that lived
//                      on it are re-executed (Hadoop node-loss semantics);
//   * kDegradeNode   — the node survives but slows down by `factor`
//                      (a straggler; speculation is the countermeasure);
//   * kBlockReadError — one read from the node fails; the DFS reader fails
//                      over to another replica (or surfaces a transient
//                      DfsError when there is none);
//   * kCorruptBlock  — a block copy on the node silently rots: reads of it
//                      *succeed* with wrong bytes. Undetectable unless DFS
//                      checksum verification is on, in which case the reader
//                      treats the mismatch like a failed replica and
//                      read-repairs the copy. Explicit events pick the
//                      node's largest block (matrix data, not metadata);
//                      background bit-rot (ChaosOptions::bitrot_rate) picks
//                      by the event's seeded salt.
//
// The schedule is fixed up front: explicit events via add_event() and/or
// MTBF-driven sampling from a seeded RNG via sample_faults(). Two engines
// built with the same options and events produce bit-identical runs — the
// acceptance bar for every chaos test and bench in this repo.
//
// Layering: mri_sim cannot see the DFS, so the engine applies node kills
// through a registered handler (Dfs::bind_chaos() installs one that runs
// the namenode repair and reports re-replication totals back). advance_to()
// is driver-thread only; the query side (kill_time, speed_factor,
// should_fail_task) is thread-safe for concurrent scheduler/task threads.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/io_stats.hpp"

namespace mri {

enum class ChaosEventKind {
  kKillNode,
  kDegradeNode,
  kBlockReadError,
  kCorruptBlock
};

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kKillNode;
  double at = 0.0;       // absolute simulated seconds
  int node = 0;
  double factor = 1.0;   // kDegradeNode: speed multiplier (< 1 = slower)
  /// kCorruptBlock: seeds the deterministic bit-flip pattern AND (when
  /// nonzero) the victim-block pick among the node's blocks; 0 means "pick
  /// the node's largest block" (explicit --corrupt-block events, which
  /// target matrix data rather than tiny metadata files).
  std::uint64_t salt = 0;
};

struct ChaosOptions {
  std::uint64_t seed = 0;
  /// Per-node mean time between failures for sample_faults(); 0 disables
  /// sampling (explicit events only).
  double mtbf_seconds = 0.0;
  /// Faults are sampled in [0, horizon_seconds).
  double horizon_seconds = 0.0;
  /// Fraction of sampled faults that degrade the node instead of killing
  /// it (a straggler, the §7.2 heterogeneity story, not a death).
  double degrade_fraction = 0.0;
  double degrade_factor = 0.25;
  /// Node 0 hosts the jobtracker/namenode; killing it would end the run,
  /// not stretch it, so sampling spares it by default.
  bool spare_master = true;
  /// Background silent bit-rot rate for sample_bitrot(): expected
  /// kCorruptBlock events per node per simulated second. 0 disables
  /// sampling (explicit --corrupt-block events only).
  double bitrot_rate = 0.0;
};

/// What one applied node kill cost the DFS: re-replication traffic for the
/// under-replicated blocks, plus blocks whose last replica died.
struct NodeKillOutcome {
  std::uint64_t re_replicated_bytes = 0;
  int re_replicated_blocks = 0;
  int blocks_lost = 0;
  /// Simulated duration of the repair traffic when the DFS routed it
  /// through the flow-level network model (racked topology); 0 means "not
  /// flow-simulated" and the engine falls back to bytes / bandwidth.
  double re_replication_seconds = 0.0;
  /// Files that lost every replica of at least one block with this kill
  /// (reported by the DFS; the SPIN engine recomputes the lineage-tracked
  /// ones instead of letting reads hit UnrecoverableBlock).
  std::vector<std::string> lost_files;
  /// Lineage-recovery totals, filled by the SPIN engine's kill handler
  /// (which wraps the DFS handler): partitions it rebuilt by re-running the
  /// producing tasks, how many dependency waves that took, and the
  /// simulated cost of those waves.
  int partitions_recomputed = 0;
  int lineage_waves = 0;
  double recompute_seconds = 0.0;
  std::uint64_t recomputed_bytes = 0;
  /// Erasure-coded reconstruction totals for this kill: lost stripe cells
  /// rebuilt from k survivors (EC files repair by decode fan-in instead of
  /// replica copy; both are folded into re_replication_seconds).
  int ec_cells_reconstructed = 0;
  std::uint64_t ec_reconstructed_bytes = 0;
};

/// Recovery totals the engine itself observed while applying events, plus
/// service-level retry accounting fed in via note_*(). Task-level recompute
/// totals live in JobResult (the runtime owns that side).
struct RecoveryStats {
  int nodes_killed = 0;
  int nodes_degraded = 0;
  int read_errors_injected = 0;
  /// kCorruptBlock events applied (injected silent corruptions; whether
  /// they were *detected* is the integrity layer's story, not chaos's).
  int blocks_corrupted = 0;
  std::uint64_t re_replicated_bytes = 0;
  int re_replicated_blocks = 0;
  int blocks_lost = 0;
  /// Simulated seconds of background re-replication traffic (bytes over the
  /// network bandwidth handed to the engine); informational, the pipeline
  /// does not block on it, matching HDFS background re-replication.
  double re_replication_seconds = 0.0;
  int request_retries = 0;
  int requests_unrecoverable = 0;
  /// Lineage-recovery aggregates across all kills (SPIN engine only; all
  /// zero under the replication-based recovery path).
  int partitions_recomputed = 0;
  int lineage_waves = 0;
  double lineage_recompute_seconds = 0.0;
  std::uint64_t lineage_recomputed_bytes = 0;
  /// Erasure-coded cell reconstructions across all kills (zero on pure
  /// replication runs).
  int ec_cells_reconstructed = 0;
  std::uint64_t ec_reconstructed_bytes = 0;
};

/// A task-level failure rule, retained from the original FailureInjector:
/// kill attempt `attempt` of task `task_index` of the first job whose name
/// contains `job_name_substring`. One-shot: each rule fires once.
struct TaskFailureRule {
  std::string job_name_substring;
  int task_index = 0;
  int attempt = 0;
  bool map_task = true;
};

class ChaosEngine {
 public:
  ChaosEngine() = default;
  explicit ChaosEngine(ChaosOptions options);

  const ChaosOptions& options() const { return options_; }

  /// Adds one explicit fault to the schedule. kKillNode events are
  /// idempotent per node: only the earliest kill of a node takes effect.
  void add_event(ChaosEvent event);

  /// Samples MTBF-driven faults for nodes [0, num_nodes) from the seeded
  /// RNG; deterministic in (seed, num_nodes, options). Each node draws
  /// exponential inter-arrival times until the horizon; a fault degrades
  /// the node with probability degrade_fraction, otherwise kills it (and
  /// ends that node's stream). Requires mtbf_seconds > 0 and
  /// horizon_seconds > 0.
  void sample_faults(int num_nodes);

  /// Samples background silent-corruption events for nodes [0, num_nodes)
  /// with exponential inter-arrivals at bitrot_rate per node per second
  /// within the horizon; deterministic in (seed, num_nodes, options) and
  /// independent of sample_faults() (distinct per-node streams). Each event
  /// carries a nonzero salt that seeds both the victim pick and the flip
  /// pattern. Requires bitrot_rate > 0 and horizon_seconds > 0.
  void sample_bitrot(int num_nodes);

  /// Deterministically samples a kill time in [0, horizon) for an explicit
  /// --kill-node without a time; distinct per (seed, node).
  double sample_kill_time(int node) const;

  bool enabled() const;
  std::vector<ChaosEvent> events() const;  // sorted by (at, insertion)

  /// Absolute time the node dies; +infinity when it never does.
  double kill_time(int node) const;

  /// Chaos speed multiplier for work starting at absolute time `t` on
  /// `node` (product of all degrade events at or before `t`; 1.0 when
  /// none). Multiplies the cluster's static per-node speed factor.
  double speed_factor(int node, double t) const;

  /// Handler invoked when a kill event is applied (the DFS side: mark the
  /// datanode dead, re-replicate, report totals). Installed by
  /// Dfs::bind_chaos(); the Dfs must outlive the engine's last advance_to().
  using KillHandler = std::function<NodeKillOutcome(int node)>;
  /// Kill handler that also receives the event's simulated time — the SPIN
  /// engine needs `at` to stamp when recomputed partitions become readable
  /// again. An untimed KillHandler is wrapped into this form internally.
  using TimedKillHandler = std::function<NodeKillOutcome(int node, double at)>;
  /// Handler for kBlockReadError events (arms one failing read on a node).
  using ReadErrorHandler = std::function<void(int node)>;
  /// Handler for kCorruptBlock events: silently corrupts one block copy on
  /// `node` at simulated time `at` with flip-pattern seed `salt` (0 = pick
  /// the node's largest block). Installed by Dfs::bind_chaos().
  using CorruptHandler =
      std::function<void(int node, double at, std::uint64_t salt)>;
  /// Invoked at the end of every advance_to(t) with the new simulated time,
  /// after due events are applied — the hook the DFS background scrubber
  /// hangs off so scrub passes land at job/phase boundaries on every
  /// driver (batch runtime and service loop alike).
  using ScrubHandler = std::function<void(double t)>;
  void set_kill_handler(KillHandler handler);
  void set_kill_handler(TimedKillHandler handler);
  void set_read_error_handler(ReadErrorHandler handler);
  void set_corrupt_handler(CorruptHandler handler);
  void set_scrub_handler(ScrubHandler handler);
  /// Network bandwidth used to convert re-replicated bytes into
  /// re_replication_seconds (0 leaves the seconds at 0).
  void set_network_bandwidth(double bytes_per_second);

  /// Applies every not-yet-applied event with at <= t in (time, insertion)
  /// order. Driver-thread only: called at job/phase boundaries (the end of
  /// JobRunner::finish) and on service clock advances, mirroring how the
  /// real computation runs eagerly while simulated consequences land at
  /// placement time. Events are applied exactly once; advance_to() never
  /// rewinds.
  void advance_to(double t);

  /// Service-level retry accounting (the service layer calls these).
  void note_request_retry();
  void note_request_unrecoverable();

  RecoveryStats stats() const;

  // -- task-level rules (FailureInjector compatibility surface) -----------
  void add_task_rule(TaskFailureRule rule);
  /// Drops pending rules AND resets the injected count (the old
  /// FailureInjector::clear() forgot the count; see the regression test).
  void clear_task_rules();
  /// True exactly once per matching (job, task, attempt).
  bool should_fail_task(const std::string& job_name, int task_index,
                        int attempt, bool map_task);
  std::uint64_t injected_task_count() const;

 private:
  struct Scheduled {
    ChaosEvent event;
    bool applied = false;
  };

  mutable std::mutex mu_;
  ChaosOptions options_;
  std::vector<Scheduled> events_;  // insertion order; applied in (at, order)
  TimedKillHandler kill_handler_;
  ReadErrorHandler read_error_handler_;
  CorruptHandler corrupt_handler_;
  ScrubHandler scrub_handler_;
  double network_bandwidth_ = 0.0;
  RecoveryStats stats_;
  std::vector<TaskFailureRule> task_rules_;
  std::uint64_t injected_tasks_ = 0;
};

}  // namespace mri
