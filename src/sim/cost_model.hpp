// Cost model for the simulated cluster.
//
// The paper evaluates on Amazon EC2 medium instances (1 virtual core, 2 EC2
// compute units ≈ a 2007-era 1.0–1.2 GHz Opteron/Xeon, 3.7 GB RAM) and large
// instances (2 medium cores, higher performance variance, 30–60 MB/s copy
// bandwidth vs a steady 60 MB/s on medium). Hadoop 1.x job launch overhead
// is tens of seconds; the paper's nb=3200 is chosen to balance the master's
// single-node LU time against that launch time.
//
// Simulated time for a task is
//     cpu   = flops / node_speed
//   + read  = local_read / disk_bw + remote_read / net_bw, where remote_read
//             is the read share of bytes_transferred (transferred minus the
//             replication pipeline, clamped to bytes_read) — node-local
//             reads never touch the network
//   + write = bytes_written / disk_bw + bytes_replicated / net_bw
//   + task_overhead
// and a job is launch_overhead + sum over task waves of the slowest task.
#pragma once

#include <cstdint>

#include "sim/io_stats.hpp"

namespace mri {

struct CostModel {
  /// Sustained double-precision rate of one core (flops/s).
  double flops_per_second = 1.0e9;
  /// Local disk streaming bandwidth (bytes/s).
  double disk_bandwidth = 60.0e6;
  /// Point-to-point network bandwidth per node (bytes/s).
  double network_bandwidth = 60.0e6;
  /// Effective memory-store bandwidth for the in-memory intermediate tier
  /// (the §8 Spark-style extension).
  double memory_bandwidth = 3.0e9;
  /// Reed–Solomon decode throughput for rebuilding lost erasure-coded cells
  /// (bytes of reconstructed output per second). Table-driven GF(2^8)
  /// decode runs at a few GB/s per core on commodity hardware (ISA-L /
  /// Jerasure ballpark); degraded reads and node-loss reconstruction charge
  /// bytes_reconstructed at this rate.
  double ec_decode_bandwidth = 2.0e9;
  /// CRC32C throughput for block-checksum computation and verification
  /// (bytes/s). Hardware-assisted CRC32C (SSE4.2 crc32 / ARMv8 CRC
  /// extensions) streams at several GB/s per core; write-path
  /// checksumming, verify-on-read and the scrubber all charge
  /// bytes_checksummed at this rate.
  double checksum_bandwidth = 4.0e9;
  /// Constant cost of launching one MapReduce job (scheduling, JVM spin-up).
  double job_launch_seconds = 15.0;
  /// Per-task-attempt overhead (task setup, heartbeat granularity).
  double task_overhead_seconds = 0.5;
  /// Time for the jobtracker to declare a silent task dead (Hadoop 1.x
  /// mapred.task.timeout default: 10 minutes). A failed attempt's
  /// re-execution can start only after detection AND a free slot (§7.4).
  double failure_detection_seconds = 600.0;

  /// Hadoop-style speculative execution: once a phase's median completion
  /// is known, tasks projected to finish later than
  /// speculative_threshold x median get a backup attempt on an idle slot;
  /// the earlier finisher wins. Mitigates the per-node speed variance the
  /// paper measured on EC2 large instances (§7.4).
  bool speculative_execution = false;
  double speculative_threshold = 1.2;
  /// Concurrent task slots per node.
  int slots_per_node = 1;
  /// Relative per-node speed spread (0 = homogeneous; the paper measured
  /// high variance between "identical" large instances).
  double node_speed_variance = 0.0;

  /// One-way message latency for the message-passing (ScaLAPACK) baseline.
  double message_latency_seconds = 5.0e-4;

  /// Effective compute slowdown of column-strided kernels when upper factors
  /// are NOT stored transposed (§6.3: every B-element access touches a new
  /// page; the paper reports a 2-3x end-to-end kernel penalty). Applied to
  /// the flop accounting of tasks running the untransposed layout.
  double column_stride_penalty = 2.5;

  /// EC2 medium instance (the default experimental platform of the paper).
  static CostModel ec2_medium();
  /// EC2 large instance: two cores, faster aggregate compute, slower and
  /// noisier copy bandwidth (30–60 MB/s measured in the paper).
  static CostModel ec2_large();

  /// Simulated seconds a task with the given footprint takes on a node with
  /// speed `speed_factor` (1.0 = nominal).
  double task_seconds(const IoStats& io, double speed_factor = 1.0) const;

  /// Same, without the per-task overhead — used for work done directly on
  /// the master node (the leaf LU decompositions), which is not a task.
  double compute_seconds(const IoStats& io, double speed_factor = 1.0) const;

  /// Seconds spent on the in-memory intermediate tier: cache-resident writes
  /// and node-local reads stream at memory bandwidth, spilled bytes pay the
  /// disk path. The SINGLE conversion point for the memory tier — both
  /// compute_seconds and the scheduler's racked flow accounting call this,
  /// so attempt timing and cost-model totals cannot drift apart.
  double memory_tier_seconds(const IoStats& io) const;

  /// CPU seconds to Reed–Solomon-decode `bytes` of lost cell data. The
  /// SINGLE conversion point for EC decode cost — compute_seconds, the
  /// scheduler's racked flow accounting and Dfs node-loss reconstruction
  /// all call this.
  double ec_decode_seconds(std::uint64_t bytes) const;

  /// CPU seconds to CRC32C-checksum `bytes`. The SINGLE conversion point
  /// for checksum cost — compute_seconds and the Dfs scrubber both call
  /// this.
  double checksum_seconds(std::uint64_t bytes) const;

  /// Exact rescaling for running the paper's experiments on matrices shrunk
  /// by a linear factor S (n_sim = n_paper / S, nb_sim = nb_paper / S).
  /// Flops shrink by S³ but bytes only by S², so making I/O S× cheaper and
  /// fixed overheads S³× cheaper yields simulated times that are exactly
  /// (1/S³) of a full-scale run under the original model; multiply reported
  /// times by S³ to quote paper-scale hours. Curve *shapes* (scalability,
  /// optimization ratios, crossovers) are preserved exactly.
  CostModel scaled_down(double linear_factor) const;
};

}  // namespace mri
