// Thread-safe global metrics registry.
//
// Tasks account their own IoStats locally (no contention on the hot path);
// the registry aggregates job-level and run-level totals plus named counters
// for things like task attempts and failures.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/io_stats.hpp"

namespace mri {

class MetricsRegistry {
 public:
  void add_io(const IoStats& io);
  IoStats io_totals() const;

  void increment(const std::string& counter, std::uint64_t delta = 1);
  std::uint64_t value(const std::string& counter) const;
  std::map<std::string, std::uint64_t> counters() const;

  void reset();

 private:
  mutable std::mutex mu_;
  IoStats io_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mri
