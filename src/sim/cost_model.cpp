#include "sim/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mri {

CostModel CostModel::ec2_medium() {
  CostModel m;
  m.flops_per_second = 1.0e9;
  m.disk_bandwidth = 60.0e6;
  m.network_bandwidth = 60.0e6;
  m.job_launch_seconds = 15.0;
  m.task_overhead_seconds = 0.5;
  m.slots_per_node = 1;
  m.node_speed_variance = 0.05;
  return m;
}

CostModel CostModel::ec2_large() {
  CostModel m;
  m.flops_per_second = 2.0e9;  // two medium cores per instance
  m.disk_bandwidth = 45.0e6;   // paper: 30-60 MB/s copies between large nodes
  m.network_bandwidth = 45.0e6;
  m.job_launch_seconds = 15.0;
  m.task_overhead_seconds = 0.5;
  m.slots_per_node = 2;
  m.node_speed_variance = 0.30;  // paper: high variance between large nodes
  return m;
}

CostModel CostModel::scaled_down(double linear_factor) const {
  MRI_REQUIRE(linear_factor >= 1.0, "scaled_down expects a factor >= 1");
  const double s3 = linear_factor * linear_factor * linear_factor;
  CostModel m = *this;
  m.disk_bandwidth *= linear_factor;
  m.network_bandwidth *= linear_factor;
  m.memory_bandwidth *= linear_factor;
  m.ec_decode_bandwidth *= linear_factor;
  m.checksum_bandwidth *= linear_factor;
  m.job_launch_seconds /= s3;
  m.task_overhead_seconds /= s3;
  m.message_latency_seconds /= s3;
  m.failure_detection_seconds /= s3;
  return m;
}

double CostModel::task_seconds(const IoStats& io, double speed_factor) const {
  return task_overhead_seconds + compute_seconds(io, speed_factor);
}

double CostModel::compute_seconds(const IoStats& io, double speed_factor) const {
  double t = 0.0;
  t += static_cast<double>(io.flops()) / (flops_per_second * speed_factor);
  // Only the network-crossing part of the reads pays the network path.
  // bytes_transferred counts remote reads plus the replication pipeline
  // (charged separately below), so remote reads are transferred minus
  // replicated, clamped into [0, bytes_read]; the rest of bytes_read is
  // node-local and streams at disk bandwidth.
  const std::uint64_t network_bytes =
      io.bytes_transferred - std::min(io.bytes_transferred,
                                      io.bytes_replicated);
  const std::uint64_t remote_read = std::min(network_bytes, io.bytes_read);
  const std::uint64_t local_read = io.bytes_read - remote_read;
  t += static_cast<double>(local_read) / disk_bandwidth;
  t += static_cast<double>(remote_read) / network_bandwidth;
  t += static_cast<double>(io.bytes_written) / disk_bandwidth;
  t += static_cast<double>(io.bytes_replicated) / network_bandwidth;
  t += static_cast<double>(io.bytes_parity) / disk_bandwidth;
  t += ec_decode_seconds(io.bytes_reconstructed);
  t += checksum_seconds(io.bytes_checksummed);
  t += memory_tier_seconds(io);
  return t;
}

double CostModel::memory_tier_seconds(const IoStats& io) const {
  return static_cast<double>(io.bytes_written_memory + io.bytes_read_memory) /
             memory_bandwidth +
         static_cast<double>(io.bytes_spilled) / disk_bandwidth;
}

double CostModel::ec_decode_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / ec_decode_bandwidth;
}

double CostModel::checksum_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / checksum_bandwidth;
}

}  // namespace mri
