#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/random.hpp"

namespace mri {

ChaosEngine::ChaosEngine(ChaosOptions options) : options_(options) {
  MRI_REQUIRE(options_.mtbf_seconds >= 0.0, "MTBF must be >= 0");
  MRI_REQUIRE(options_.horizon_seconds >= 0.0, "chaos horizon must be >= 0");
  MRI_REQUIRE(options_.degrade_fraction >= 0.0 &&
                  options_.degrade_fraction <= 1.0,
              "degrade fraction must be in [0, 1]");
  MRI_REQUIRE(options_.degrade_factor > 0.0 && options_.degrade_factor <= 1.0,
              "degrade factor must be in (0, 1]");
  MRI_REQUIRE(options_.bitrot_rate >= 0.0, "bitrot rate must be >= 0");
}

void ChaosEngine::add_event(ChaosEvent event) {
  MRI_REQUIRE(event.node >= 0, "chaos event targets negative node "
                                   << event.node);
  MRI_REQUIRE(event.at >= 0.0, "chaos event at negative time " << event.at);
  if (event.kind == ChaosEventKind::kDegradeNode) {
    MRI_REQUIRE(event.factor > 0.0 && event.factor <= 1.0,
                "degrade factor must be in (0, 1], got " << event.factor);
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Scheduled{event, false});
}

void ChaosEngine::sample_faults(int num_nodes) {
  MRI_REQUIRE(options_.mtbf_seconds > 0.0,
              "sample_faults() needs mtbf_seconds > 0");
  MRI_REQUIRE(options_.horizon_seconds > 0.0,
              "sample_faults() needs horizon_seconds > 0");
  MRI_REQUIRE(num_nodes >= 1, "sample_faults() needs at least one node");
  std::lock_guard<std::mutex> lock(mu_);
  const int first = options_.spare_master ? 1 : 0;
  for (int node = first; node < num_nodes; ++node) {
    // One independent stream per node so the schedule does not depend on
    // the number of nodes sampled before this one.
    Xoshiro256 rng(options_.seed ^
                   (0x9e3779b97f4a7c15ull *
                    static_cast<std::uint64_t>(node + 1)));
    double t = 0.0;
    while (true) {
      const double u = rng.next_double();
      t += -options_.mtbf_seconds * std::log1p(-u);
      if (t >= options_.horizon_seconds) break;
      ChaosEvent ev;
      ev.at = t;
      ev.node = node;
      if (rng.next_double() < options_.degrade_fraction) {
        ev.kind = ChaosEventKind::kDegradeNode;
        ev.factor = options_.degrade_factor;
        events_.push_back(Scheduled{ev, false});
      } else {
        ev.kind = ChaosEventKind::kKillNode;
        events_.push_back(Scheduled{ev, false});
        break;  // a dead node samples no further faults
      }
    }
  }
}

void ChaosEngine::sample_bitrot(int num_nodes) {
  MRI_REQUIRE(options_.bitrot_rate > 0.0,
              "sample_bitrot() needs bitrot_rate > 0");
  MRI_REQUIRE(options_.horizon_seconds > 0.0,
              "sample_bitrot() needs horizon_seconds > 0");
  MRI_REQUIRE(num_nodes >= 1, "sample_bitrot() needs at least one node");
  std::lock_guard<std::mutex> lock(mu_);
  const double mean_interval = 1.0 / options_.bitrot_rate;
  const int first = options_.spare_master ? 1 : 0;
  for (int node = first; node < num_nodes; ++node) {
    // Per-node stream, mixed with a different constant than sample_faults()
    // so bit-rot and kill/degrade schedules stay independent.
    Xoshiro256 rng(options_.seed ^
                   (0x94d049bb133111ebull *
                    static_cast<std::uint64_t>(node + 1)));
    double t = 0.0;
    while (true) {
      const double u = rng.next_double();
      t += -mean_interval * std::log1p(-u);
      if (t >= options_.horizon_seconds) break;
      ChaosEvent ev;
      ev.kind = ChaosEventKind::kCorruptBlock;
      ev.at = t;
      ev.node = node;
      ev.salt = rng.next() | 1ull;  // nonzero: salted victim pick
      events_.push_back(Scheduled{ev, false});
    }
  }
}

double ChaosEngine::sample_kill_time(int node) const {
  MRI_REQUIRE(options_.horizon_seconds > 0.0,
              "sampling a kill time needs horizon_seconds > 0");
  Xoshiro256 rng(options_.seed ^
                 (0xbf58476d1ce4e5b9ull *
                  static_cast<std::uint64_t>(node + 1)));
  return rng.next_double() * options_.horizon_seconds;
}

bool ChaosEngine::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !events_.empty();
}

std::vector<ChaosEvent> ChaosEngine::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChaosEvent> out;
  out.reserve(events_.size());
  for (const Scheduled& s : events_) out.push_back(s.event);
  std::stable_sort(out.begin(), out.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

double ChaosEngine::kill_time(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  double t = std::numeric_limits<double>::infinity();
  for (const Scheduled& s : events_) {
    if (s.event.kind == ChaosEventKind::kKillNode && s.event.node == node) {
      t = std::min(t, s.event.at);
    }
  }
  return t;
}

double ChaosEngine::speed_factor(int node, double t) const {
  std::lock_guard<std::mutex> lock(mu_);
  double factor = 1.0;
  for (const Scheduled& s : events_) {
    if (s.event.kind == ChaosEventKind::kDegradeNode && s.event.node == node &&
        s.event.at <= t) {
      factor *= s.event.factor;
    }
  }
  return factor;
}

void ChaosEngine::set_kill_handler(KillHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handler) {
    kill_handler_ = [h = std::move(handler)](int node, double) {
      return h(node);
    };
  } else {
    kill_handler_ = nullptr;
  }
}

void ChaosEngine::set_kill_handler(TimedKillHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_handler_ = std::move(handler);
}

void ChaosEngine::set_read_error_handler(ReadErrorHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  read_error_handler_ = std::move(handler);
}

void ChaosEngine::set_corrupt_handler(CorruptHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_handler_ = std::move(handler);
}

void ChaosEngine::set_scrub_handler(ScrubHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  scrub_handler_ = std::move(handler);
}

void ChaosEngine::set_network_bandwidth(double bytes_per_second) {
  std::lock_guard<std::mutex> lock(mu_);
  network_bandwidth_ = bytes_per_second;
}

void ChaosEngine::advance_to(double t) {
  // Collect due events under the lock, apply handlers outside it: the kill
  // handler walks the namenode and must be free to call back into query
  // methods from DFS internals without deadlocking.
  struct Due {
    ChaosEvent event;
    std::size_t index;
  };
  std::vector<Due> due;
  TimedKillHandler kill;
  ReadErrorHandler read_error;
  CorruptHandler corrupt;
  ScrubHandler scrub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (!events_[i].applied && events_[i].event.at <= t) {
        // Kills are idempotent per node: only the earliest takes effect
        // (kill_time() already reports the minimum); a duplicate must not
        // re-invoke the handler or double-count nodes_killed.
        bool duplicate_kill = false;
        if (events_[i].event.kind == ChaosEventKind::kKillNode) {
          for (std::size_t j = 0; j < events_.size() && !duplicate_kill; ++j) {
            duplicate_kill =
                j != i && events_[j].applied &&
                events_[j].event.kind == ChaosEventKind::kKillNode &&
                events_[j].event.node == events_[i].event.node;
          }
        }
        if (!duplicate_kill) due.push_back(Due{events_[i].event, i});
        events_[i].applied = true;
      }
    }
    kill = kill_handler_;
    read_error = read_error_handler_;
    corrupt = corrupt_handler_;
    scrub = scrub_handler_;
  }
  std::stable_sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
    return a.event.at < b.event.at;
  });

  for (const Due& d : due) {
    switch (d.event.kind) {
      case ChaosEventKind::kKillNode: {
        NodeKillOutcome outcome;
        if (kill) outcome = kill(d.event.node, d.event.at);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.nodes_killed;
        stats_.re_replicated_bytes += outcome.re_replicated_bytes;
        stats_.re_replicated_blocks += outcome.re_replicated_blocks;
        stats_.blocks_lost += outcome.blocks_lost;
        stats_.partitions_recomputed += outcome.partitions_recomputed;
        stats_.lineage_waves += outcome.lineage_waves;
        stats_.lineage_recompute_seconds += outcome.recompute_seconds;
        stats_.lineage_recomputed_bytes += outcome.recomputed_bytes;
        stats_.ec_cells_reconstructed += outcome.ec_cells_reconstructed;
        stats_.ec_reconstructed_bytes += outcome.ec_reconstructed_bytes;
        if (outcome.re_replication_seconds > 0.0) {
          // The DFS simulated the repair flows on the racked topology; its
          // contended duration supersedes the scalar bytes/bandwidth model.
          stats_.re_replication_seconds += outcome.re_replication_seconds;
        } else if (network_bandwidth_ > 0.0) {
          stats_.re_replication_seconds +=
              static_cast<double>(outcome.re_replicated_bytes) /
              network_bandwidth_;
        }
        break;
      }
      case ChaosEventKind::kDegradeNode: {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.nodes_degraded;
        break;
      }
      case ChaosEventKind::kBlockReadError: {
        if (read_error) read_error(d.event.node);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.read_errors_injected;
        break;
      }
      case ChaosEventKind::kCorruptBlock: {
        if (corrupt) corrupt(d.event.node, d.event.at, d.event.salt);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.blocks_corrupted;
        break;
      }
    }
  }
  // Scrub passes run at job/phase boundaries — exactly the advance points —
  // after the faults due at this time have landed, so a scrubber configured
  // here sees (and proactively repairs) everything injected up to t.
  if (scrub) scrub(t);
}

void ChaosEngine::note_request_retry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.request_retries;
}

void ChaosEngine::note_request_unrecoverable() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.requests_unrecoverable;
}

RecoveryStats ChaosEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChaosEngine::add_task_rule(TaskFailureRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  task_rules_.push_back(std::move(rule));
}

void ChaosEngine::clear_task_rules() {
  std::lock_guard<std::mutex> lock(mu_);
  task_rules_.clear();
  injected_tasks_ = 0;
}

bool ChaosEngine::should_fail_task(const std::string& job_name, int task_index,
                                   int attempt, bool map_task) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = task_rules_.begin(); it != task_rules_.end(); ++it) {
    if (it->task_index == task_index && it->attempt == attempt &&
        it->map_task == map_task &&
        job_name.find(it->job_name_substring) != std::string::npos) {
      task_rules_.erase(it);  // one-shot
      ++injected_tasks_;
      return true;
    }
  }
  return false;
}

std::uint64_t ChaosEngine::injected_task_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_tasks_;
}

}  // namespace mri
