#include "sim/metrics.hpp"

namespace mri {

void MetricsRegistry::add_io(const IoStats& io) {
  std::lock_guard<std::mutex> lock(mu_);
  io_ += io;
}

IoStats MetricsRegistry::io_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_;
}

void MetricsRegistry::increment(const std::string& counter,
                                std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[counter] += delta;
}

std::uint64_t MetricsRegistry::value(const std::string& counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  io_ = IoStats{};
  counters_.clear();
}

}  // namespace mri
