// Deterministic failure injection for the MapReduce runtime.
//
// Section 7.4 of the paper describes a run in which one mapper inverting a
// triangular matrix failed and was only re-executed once another mapper's
// slot freed up, stretching a 5-hour run to 8 hours. The injector lets tests
// and benches reproduce exactly this: fail a chosen task attempt of a chosen
// job; the scheduler then re-runs it and the simulated clock reflects the
// serialization.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mri {

struct FailureRule {
  /// Substring matched against the job name ("lu-level-0", "invert", ...).
  std::string job_name_substring;
  /// Task index within the job's map (or reduce) phase.
  int task_index = 0;
  /// Which attempt to kill (0 = first execution).
  int attempt = 0;
  /// Whether the rule targets a map task (true) or reduce task (false).
  bool map_task = true;
};

class FailureInjector {
 public:
  void add_rule(FailureRule rule);
  void clear();

  /// Returns true exactly once per matching (job, task, attempt); the
  /// runtime treats this as the task process dying.
  bool should_fail(const std::string& job_name, int task_index, int attempt,
                   bool map_task);

  std::uint64_t injected_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<FailureRule> rules_;
  std::uint64_t injected_ = 0;
};

}  // namespace mri
