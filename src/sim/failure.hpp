// Deterministic task-level failure injection — compatibility shim.
//
// Section 7.4 of the paper describes a run in which one mapper inverting a
// triangular matrix failed and was only re-executed once another mapper's
// slot freed up, stretching a 5-hour run to 8 hours. The injector lets tests
// and benches reproduce exactly this: fail a chosen task attempt of a chosen
// job; the scheduler then re-runs it and the simulated clock reflects the
// serialization.
//
// The implementation moved into ChaosEngine (which generalizes injection to
// whole-node kills, stragglers and block-read errors); FailureInjector is a
// thin facade over an owned engine's task-rule surface, kept so existing
// callers and benches keep compiling unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "sim/chaos.hpp"

namespace mri {

/// Legacy name for the task-level rule; see TaskFailureRule.
using FailureRule = TaskFailureRule;

class FailureInjector {
 public:
  void add_rule(FailureRule rule);

  /// Drops pending rules and resets injected_count() (a reused injector
  /// used to report stale counts).
  void clear();

  /// Returns true exactly once per matching (job, task, attempt); the
  /// runtime treats this as the task process dying.
  bool should_fail(const std::string& job_name, int task_index, int attempt,
                   bool map_task);

  std::uint64_t injected_count() const;

  /// The engine backing this injector, for callers that want to mix task
  /// rules with node-level chaos through one object.
  ChaosEngine& engine() { return engine_; }
  const ChaosEngine& engine() const { return engine_; }

 private:
  ChaosEngine engine_;
};

}  // namespace mri
