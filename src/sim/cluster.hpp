// Simulated compute cluster: a set of nodes with per-node speed factors and
// task slots, plus the cost model they share.
//
// The per-node speed factors are drawn deterministically from the seed so a
// given (size, variance, seed) triple always describes the same "cluster" —
// important for reproducing the paper's observation that nominally identical
// EC2 large instances have noticeably different performance.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cost_model.hpp"

namespace mri::net {
class Topology;
}  // namespace mri::net

namespace mri {

class Cluster {
 public:
  Cluster(int num_nodes, CostModel model, std::uint64_t seed = 42);

  int size() const { return static_cast<int>(speed_factors_.size()); }
  const CostModel& cost_model() const { return model_; }

  /// Relative speed of node i (1.0 = nominal; spread by node_speed_variance).
  double speed_factor(int node) const;

  /// Total concurrent task slots across the cluster.
  int total_slots() const { return size() * model_.slots_per_node; }

  /// Attaches a network topology. Null or a flat topology keeps the scalar
  /// network model (the scheduler's pre-topology code path, bit-identical);
  /// a racked topology makes the scheduler charge network time through the
  /// flow simulator. The same topology should be handed to the DFS
  /// (Dfs::set_topology) so placement and transfer endpoints agree.
  void set_topology(std::shared_ptr<const net::Topology> topology) {
    topology_ = std::move(topology);
  }
  const std::shared_ptr<const net::Topology>& topology() const {
    return topology_;
  }

 private:
  CostModel model_;
  std::vector<double> speed_factors_;
  std::shared_ptr<const net::Topology> topology_;
};

}  // namespace mri
