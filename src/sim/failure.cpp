#include "sim/failure.hpp"

namespace mri {

void FailureInjector::add_rule(FailureRule rule) {
  engine_.add_task_rule(std::move(rule));
}

void FailureInjector::clear() { engine_.clear_task_rules(); }

bool FailureInjector::should_fail(const std::string& job_name, int task_index,
                                  int attempt, bool map_task) {
  return engine_.should_fail_task(job_name, task_index, attempt, map_task);
}

std::uint64_t FailureInjector::injected_count() const {
  return engine_.injected_task_count();
}

}  // namespace mri
