#include "sim/failure.hpp"

namespace mri {

void FailureInjector::add_rule(FailureRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FailureInjector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

bool FailureInjector::should_fail(const std::string& job_name, int task_index,
                                  int attempt, bool map_task) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->task_index == task_index && it->attempt == attempt &&
        it->map_task == map_task &&
        job_name.find(it->job_name_substring) != std::string::npos) {
      rules_.erase(it);  // one-shot
      ++injected_;
      return true;
    }
  }
  return false;
}

std::uint64_t FailureInjector::injected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

}  // namespace mri
