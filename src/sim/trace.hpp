// Per-attempt trace records produced by the phase scheduler.
//
// One TaskTraceEvent is the simulated lifetime of one task attempt on one
// slot — the same tuple Hadoop's JobTracker exposes per attempt. The
// scheduler guarantees that events sharing a slot never overlap and that a
// phase's duration equals the latest event end (losing speculative copies
// and killed originals are truncated at the moment the winner finished).
#pragma once

#include "sim/io_stats.hpp"

namespace mri {

struct TaskTraceEvent {
  int task = 0;     // task index within the phase
  int attempt = 0;  // 0 = first execution; backups get the next free index
  int node = 0;     // cluster node the attempt ran on
  int slot = 0;     // global slot id: node * slots_per_node + local slot
  double start = 0.0;  // phase-relative simulated seconds
  double end = 0.0;    // when the attempt finished, died, or was killed
  bool failed = false;  // injected failure: the attempt died mid-run
  bool backup = false;  // speculative copy launched by speculate()
  bool chaos = false;   // killed by a chaos node-loss event mid-attempt
  /// Re-execution of a completed map task whose output died with its node
  /// (Hadoop node-loss semantics; see JobRunner::finish).
  bool recovery = false;
};

/// One stretch of serial work on the master node (leaf LU decompositions,
/// factor-file combining, determinant reads) charged between jobs. Times are
/// run-relative simulated seconds; before the JobGraph executor these spans
/// were invisible gaps in the run timeline.
struct MasterSpan {
  double start = 0.0;
  double end = 0.0;
  IoStats io;  // the footprint that was charged for this span
};

}  // namespace mri
