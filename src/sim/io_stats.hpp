// Byte / flop accounting shared by the DFS, the MapReduce runtime and the
// MPI simulator. These counters are what Tables 1 and 2 of the paper are
// about, so we track them exactly:
//
//   bytes_written      logical bytes written to the DFS (before replication)
//   bytes_read         logical bytes read from the DFS
//   bytes_transferred  bytes that crossed the (simulated) network: every DFS
//                      read (HDFS reads are remote in the paper's model) plus
//                      explicit message-passing traffic in the MPI simulator
//   bytes_replicated   extra copies written for fault tolerance (repl - 1)
//   bytes_written_memory  writes to the in-memory tier (the §8 Spark-style
//                      extension): no disk, no replication pipeline
//   bytes_read_memory  node-local reads served straight from the memory tier
//                      (SPIN-style cache hits); charged at memory bandwidth
//                      instead of the paper's remote-HDFS-read model
//   bytes_spilled      memory-tier bytes evicted to disk under cache
//                      pressure; charged at disk bandwidth on top of the
//                      original memory write
//   bytes_parity       Reed–Solomon parity cells written for erasure-coded
//                      files (the EC analogue of bytes_replicated's extra
//                      copies); charged at disk bandwidth
//   bytes_reconstructed  bytes of lost EC cells rebuilt by decode, either on
//                      a degraded read or during node-loss reconstruction;
//                      charged at the CostModel's ec_decode_bandwidth
//   degraded_reads     number of EC stripe reads that had to decode around
//                      at least one lost cell
//   bytes_checksummed  bytes run through CRC32C on the DFS write path and on
//                      verify-on-read / scrub; charged as checksum CPU at
//                      the CostModel's checksum_bandwidth
//   mults / adds       floating-point multiply / add operations
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace mri {

struct IoStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t bytes_replicated = 0;
  std::uint64_t bytes_written_memory = 0;
  std::uint64_t bytes_read_memory = 0;
  std::uint64_t bytes_spilled = 0;
  std::uint64_t bytes_parity = 0;
  std::uint64_t bytes_reconstructed = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t bytes_checksummed = 0;
  std::uint64_t mults = 0;
  std::uint64_t adds = 0;

  IoStats& operator+=(const IoStats& other) {
    bytes_written += other.bytes_written;
    bytes_read += other.bytes_read;
    bytes_transferred += other.bytes_transferred;
    bytes_replicated += other.bytes_replicated;
    bytes_written_memory += other.bytes_written_memory;
    bytes_read_memory += other.bytes_read_memory;
    bytes_spilled += other.bytes_spilled;
    bytes_parity += other.bytes_parity;
    bytes_reconstructed += other.bytes_reconstructed;
    degraded_reads += other.degraded_reads;
    bytes_checksummed += other.bytes_checksummed;
    mults += other.mults;
    adds += other.adds;
    return *this;
  }

  /// Component-wise difference; used for stage splits. The minuend must
  /// dominate in every field — a stage split that doesn't is a bug, and
  /// letting it wrap to ~2^64 poisons every downstream report, so each
  /// field is checked loudly here instead.
  IoStats& operator-=(const IoStats& other) {
    MRI_REQUIRE(bytes_written >= other.bytes_written,
                "IoStats subtraction underflows bytes_written");
    MRI_REQUIRE(bytes_read >= other.bytes_read,
                "IoStats subtraction underflows bytes_read");
    MRI_REQUIRE(bytes_transferred >= other.bytes_transferred,
                "IoStats subtraction underflows bytes_transferred");
    MRI_REQUIRE(bytes_replicated >= other.bytes_replicated,
                "IoStats subtraction underflows bytes_replicated");
    MRI_REQUIRE(bytes_written_memory >= other.bytes_written_memory,
                "IoStats subtraction underflows bytes_written_memory");
    MRI_REQUIRE(bytes_read_memory >= other.bytes_read_memory,
                "IoStats subtraction underflows bytes_read_memory");
    MRI_REQUIRE(bytes_spilled >= other.bytes_spilled,
                "IoStats subtraction underflows bytes_spilled");
    MRI_REQUIRE(bytes_parity >= other.bytes_parity,
                "IoStats subtraction underflows bytes_parity");
    MRI_REQUIRE(bytes_reconstructed >= other.bytes_reconstructed,
                "IoStats subtraction underflows bytes_reconstructed");
    MRI_REQUIRE(degraded_reads >= other.degraded_reads,
                "IoStats subtraction underflows degraded_reads");
    MRI_REQUIRE(bytes_checksummed >= other.bytes_checksummed,
                "IoStats subtraction underflows bytes_checksummed");
    MRI_REQUIRE(mults >= other.mults, "IoStats subtraction underflows mults");
    MRI_REQUIRE(adds >= other.adds, "IoStats subtraction underflows adds");
    bytes_written -= other.bytes_written;
    bytes_read -= other.bytes_read;
    bytes_transferred -= other.bytes_transferred;
    bytes_replicated -= other.bytes_replicated;
    bytes_written_memory -= other.bytes_written_memory;
    bytes_read_memory -= other.bytes_read_memory;
    bytes_spilled -= other.bytes_spilled;
    bytes_parity -= other.bytes_parity;
    bytes_reconstructed -= other.bytes_reconstructed;
    degraded_reads -= other.degraded_reads;
    bytes_checksummed -= other.bytes_checksummed;
    mults -= other.mults;
    adds -= other.adds;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
  friend IoStats operator-(IoStats a, const IoStats& b) { return a -= b; }

  std::uint64_t flops() const { return mults + adds; }

  bool operator==(const IoStats&) const = default;
};

}  // namespace mri
