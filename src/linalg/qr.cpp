#include "linalg/qr.hpp"

#include <cmath>
#include <vector>

#include "linalg/triangular.hpp"
#include "matrix/ops.hpp"

namespace mri {

QrResult qr_decompose(const Matrix& a) {
  MRI_REQUIRE(a.square(), "qr_decompose expects a square matrix");
  const Index n = a.rows();
  Matrix r = a;
  Matrix q = Matrix::identity(n);
  std::vector<double> v(static_cast<std::size_t>(n));

  for (Index k = 0; k < n - 1; ++k) {
    // Householder vector for column k of the trailing block.
    double norm = 0.0;
    for (Index i = k; i < n; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // column already zero below diagonal

    const double alpha = r(k, k) >= 0.0 ? -norm : norm;
    double vnorm2 = 0.0;
    for (Index i = k; i < n; ++i) {
      v[static_cast<std::size_t>(i)] = r(i, k) - (i == k ? alpha : 0.0);
      vnorm2 += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    }
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;

    // R <- (I - beta v v^T) R on the trailing columns.
    for (Index j = k; j < n; ++j) {
      double dot = 0.0;
      for (Index i = k; i < n; ++i) dot += v[static_cast<std::size_t>(i)] * r(i, j);
      dot *= beta;
      for (Index i = k; i < n; ++i) r(i, j) -= dot * v[static_cast<std::size_t>(i)];
    }
    // Q <- Q (I - beta v v^T): accumulate the product of reflections.
    for (Index i = 0; i < n; ++i) {
      double dot = 0.0;
      for (Index j = k; j < n; ++j) dot += q(i, j) * v[static_cast<std::size_t>(j)];
      dot *= beta;
      for (Index j = k; j < n; ++j) q(i, j) -= dot * v[static_cast<std::size_t>(j)];
    }
  }

  // Zero out round-off below the diagonal of R.
  for (Index i = 1; i < n; ++i)
    for (Index j = 0; j < i; ++j) r(i, j) = 0.0;

  return QrResult{std::move(q), std::move(r)};
}

Matrix qr_invert(const Matrix& a) {
  QrResult qr = qr_decompose(a);
  for (Index i = 0; i < qr.r.rows(); ++i) {
    if (qr.r(i, i) == 0.0) {
      throw NumericalError("singular matrix in QR inversion at diagonal " +
                           std::to_string(i));
    }
  }
  return matmul(invert_upper_direct(qr.r), transpose(qr.q));
}

std::int64_t qr_pipeline_steps(Index n) { return n; }

IoStats qr_cost(Index n) {
  IoStats io;
  const auto cube = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n);
  io.mults = 2 * cube / 3;
  io.adds = 2 * cube / 3;
  return io;
}

}  // namespace mri
