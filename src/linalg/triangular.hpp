// Triangular kernels: Eq. 4 inversion and the two substitution solves that
// the block LU step parallelizes (Eq. 6).
//
// Column independence is the property the paper's final MapReduce job
// exploits: invert_lower_columns() computes an arbitrary subset of columns of
// L⁻¹, which is exactly what one mapper does for its interleaved column set.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"
#include "sim/io_stats.hpp"

namespace mri {

/// L⁻¹ for a lower-triangular L (diagonal may be non-unit). Eq. 4.
Matrix invert_lower(const Matrix& l);

/// U⁻¹ for an upper-triangular U, computed the way the paper's
/// implementation does (§4.1/§5.4): invert Uᵀ — a lower triangular matrix —
/// and transpose the result.
Matrix invert_upper_via_transpose(const Matrix& u);

/// U⁻¹ computed directly by back substitution (reference for tests).
Matrix invert_upper_direct(const Matrix& u);

/// Selected columns of L⁻¹ (Eq. 4 per column). Returns an l.rows() x
/// columns.size() matrix whose k-th column is column columns[k] of L⁻¹.
Matrix invert_lower_columns(const Matrix& l, const std::vector<Index>& columns);

/// Solves L·X = B for X (forward substitution; columns of X independent).
/// L must be lower-triangular with nonzero diagonal.
Matrix solve_lower(const Matrix& l, const Matrix& b);

/// Solves X·U = B for X (each row of X independent — the L2' computation of
/// Eq. 6). U must be upper-triangular with nonzero diagonal.
Matrix solve_upper_right(const Matrix& u, const Matrix& b);

/// Same solve, but given Uᵀ (lower triangular) — the §6.3 layout: the inner
/// loop streams rows of Uᵀ instead of striding columns of U.
Matrix solve_upper_right_from_transpose(const Matrix& ut, const Matrix& b);

/// Flop cost of inverting an n-order triangular matrix (~n³/6 each op).
IoStats triangular_inverse_cost(Index n);

/// Flop cost of a triangular solve with an n-order factor and m right-hand
/// sides (~n²m/2 each op).
IoStats triangular_solve_cost(Index n, Index rhs);

}  // namespace mri
