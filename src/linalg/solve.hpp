// Single-node composite routines built from the kernels: full inversion via
// LU (the serial reference the MapReduce pipeline must agree with) and
// linear-system solving.
#pragma once

#include <vector>

#include "linalg/lu.hpp"
#include "matrix/matrix.hpp"

namespace mri {

/// A⁻¹ = U⁻¹ · L⁻¹ · P computed serially — the ground truth for the
/// distributed pipeline tests.
Matrix invert_via_lu(const Matrix& a);

/// Solves A·x = b via LU (forward + back substitution; no explicit inverse).
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

/// Solves A·X = B for matrix right-hand sides.
Matrix solve_matrix(const Matrix& a, const Matrix& b);

}  // namespace mri
