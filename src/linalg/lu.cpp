#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/kernels/kernel.hpp"

namespace mri {

Matrix LuResult::unit_lower() const {
  const Index n = packed.rows();
  Matrix l(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) l(i, j) = packed(i, j);
    l(i, i) = 1.0;
  }
  return l;
}

Matrix LuResult::upper() const {
  const Index n = packed.rows();
  Matrix u(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) u(i, j) = packed(i, j);
  return u;
}

namespace {

// Panel width for the blocked right-looking factorization: wide enough that
// the trailing update dominates (and runs as one kernel GEMM), narrow
// enough that the panel stays cache-resident.
constexpr Index kLuPanel = 64;

// Unblocked partial-pivoted factorization of panel columns [j0, j1) over
// rows [j0, n). Row swaps apply to the WHOLE matrix (already-factored L
// columns on the left, not-yet-updated trailing columns on the right) so
// the packed format stays consistent; the rank-1 updates are restricted to
// the panel's columns — the trailing block is updated later by one GEMM.
void factor_panel(Matrix* a_ptr, Permutation* perm, Index j0, Index j1) {
  Matrix& a = *a_ptr;
  const Index n = a.rows();
  for (Index i = j0; i < j1; ++i) {
    // Partial pivoting: pick the row with the largest |entry| in column i.
    Index pivot = i;
    double best = std::abs(a(i, i));
    for (Index j = i + 1; j < n; ++j) {
      const double v = std::abs(a(j, i));
      if (v > best) {
        best = v;
        pivot = j;
      }
    }
    if (best == 0.0) {
      throw NumericalError("singular matrix: no usable pivot in column " +
                           std::to_string(i));
    }
    if (pivot != i) {
      std::swap_ranges(a.row(i).begin(), a.row(i).end(), a.row(pivot).begin());
      perm->swap(i, pivot);
    }

    const double inv_pivot = 1.0 / a(i, i);
    for (Index j = i + 1; j < n; ++j) a(j, i) *= inv_pivot;

    for (Index j = i + 1; j < n; ++j) {
      const double lji = a(j, i);
      if (lji == 0.0) continue;
      const double* ui = a.row(i).data();
      double* uj = a.row(j).data();
      for (Index k = i + 1; k < j1; ++k) uj[k] -= lji * ui[k];
    }
  }
}

}  // namespace

LuResult lu_decompose(Matrix a) {
  MRI_REQUIRE(a.square(), "lu_decompose expects a square matrix, got "
                              << a.rows() << "x" << a.cols());
  const Index n = a.rows();
  Permutation perm(n);

  // Blocked right-looking LU: factor a panel unblocked, solve the panel's U
  // row block with a unit-lower TRSM, then update the trailing submatrix
  // with one GEMM — both on the kernel engine, so the O(n³) bulk runs at
  // the selected backend's speed. For n <= panel this degenerates to the
  // historical unblocked loop exactly.
  kernels::KernelContext ctx;
  double* ad = a.data().data();
  for (Index j0 = 0; j0 < n; j0 += kLuPanel) {
    const Index j1 = std::min<Index>(j0 + kLuPanel, n);
    factor_panel(&a, &perm, j0, j1);
    if (j1 < n) {
      // U12 = L11⁻¹ · A12 (L11 unit lower, in the panel's strictly-lower
      // part).
      ctx.trsm_lower_left(/*unit_diag=*/true, j1 - j0, n - j1,
                          ad + j0 * n + j0, n, ad + j0 * n + j1, n);
      // A22 -= L21 · U12.
      ctx.gemm(kernels::GemmMode::kSubtract, n - j1, n - j1, j1 - j0,
               ad + j1 * n + j0, n, ad + j0 * n + j1, n, ad + j1 * n + j1, n);
    }
  }

  return LuResult{std::move(a), std::move(perm)};
}

IoStats lu_cost(Index n) {
  IoStats io;
  const auto cube = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n);
  io.mults = cube / 3;
  io.adds = cube / 3;
  return io;
}

}  // namespace mri
