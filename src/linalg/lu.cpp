#include "linalg/lu.hpp"

#include <cmath>
#include <utility>

namespace mri {

Matrix LuResult::unit_lower() const {
  const Index n = packed.rows();
  Matrix l(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) l(i, j) = packed(i, j);
    l(i, i) = 1.0;
  }
  return l;
}

Matrix LuResult::upper() const {
  const Index n = packed.rows();
  Matrix u(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) u(i, j) = packed(i, j);
  return u;
}

LuResult lu_decompose(Matrix a) {
  MRI_REQUIRE(a.square(), "lu_decompose expects a square matrix, got "
                              << a.rows() << "x" << a.cols());
  const Index n = a.rows();
  Permutation perm(n);

  for (Index i = 0; i < n; ++i) {
    // Partial pivoting: pick the row with the largest |entry| in column i.
    Index pivot = i;
    double best = std::abs(a(i, i));
    for (Index j = i + 1; j < n; ++j) {
      const double v = std::abs(a(j, i));
      if (v > best) {
        best = v;
        pivot = j;
      }
    }
    if (best == 0.0) {
      throw NumericalError("singular matrix: no usable pivot in column " +
                           std::to_string(i));
    }
    if (pivot != i) {
      std::swap_ranges(a.row(i).begin(), a.row(i).end(), a.row(pivot).begin());
      perm.swap(i, pivot);
    }

    const double inv_pivot = 1.0 / a(i, i);
    for (Index j = i + 1; j < n; ++j) a(j, i) *= inv_pivot;

    for (Index j = i + 1; j < n; ++j) {
      const double lji = a(j, i);
      if (lji == 0.0) continue;
      const double* ui = a.row(i).data();
      double* uj = a.row(j).data();
      for (Index k = i + 1; k < n; ++k) uj[k] -= lji * ui[k];
    }
  }

  return LuResult{std::move(a), std::move(perm)};
}

IoStats lu_cost(Index n) {
  IoStats io;
  const auto cube = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n);
  io.mults = cube / 3;
  io.adds = cube / 3;
  return io;
}

}  // namespace mri
