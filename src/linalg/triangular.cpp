#include "linalg/triangular.hpp"

#include "linalg/kernels/kernel.hpp"
#include "matrix/ops.hpp"

namespace mri {

namespace {

void check_lower(const Matrix& l) {
  MRI_REQUIRE(l.square(), "expected a square lower-triangular matrix");
  for (Index i = 0; i < l.rows(); ++i) {
    MRI_REQUIRE(l(i, i) != 0.0,
                "triangular matrix is singular at diagonal " << i);
  }
}

void check_upper(const Matrix& u) {
  MRI_REQUIRE(u.square(), "expected a square upper-triangular matrix");
  for (Index i = 0; i < u.rows(); ++i) {
    MRI_REQUIRE(u(i, i) != 0.0,
                "triangular matrix is singular at diagonal " << i);
  }
}

}  // namespace

Matrix invert_lower(const Matrix& l) {
  check_lower(l);
  const Index n = l.rows();
  Matrix inv(n, n);
  // Eq. 4, column by column.
  for (Index j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / l(j, j);
    for (Index i = j + 1; i < n; ++i) {
      double sum = 0.0;
      const double* li = l.row(i).data();
      for (Index k = j; k < i; ++k) sum += li[k] * inv(k, j);
      inv(i, j) = -sum / l(i, i);
    }
  }
  return inv;
}

Matrix invert_upper_via_transpose(const Matrix& u) {
  return transpose(invert_lower(transpose(u)));
}

Matrix invert_upper_direct(const Matrix& u) {
  check_upper(u);
  const Index n = u.rows();
  Matrix inv(n, n);
  for (Index j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / u(j, j);
    for (Index i = j - 1; i >= 0; --i) {
      double sum = 0.0;
      const double* ui = u.row(i).data();
      for (Index k = i + 1; k <= j; ++k) sum += ui[k] * inv(k, j);
      inv(i, j) = -sum / u(i, i);
    }
  }
  return inv;
}

Matrix invert_lower_columns(const Matrix& l, const std::vector<Index>& columns) {
  check_lower(l);
  const Index n = l.rows();
  Matrix out(n, static_cast<Index>(columns.size()));
  std::vector<double> col(static_cast<std::size_t>(n));
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const Index j = columns[c];
    MRI_REQUIRE(j >= 0 && j < n, "column index " << j << " out of order " << n);
    std::fill(col.begin(), col.end(), 0.0);
    col[static_cast<std::size_t>(j)] = 1.0 / l(j, j);
    for (Index i = j + 1; i < n; ++i) {
      double sum = 0.0;
      const double* li = l.row(i).data();
      for (Index k = j; k < i; ++k) sum += li[k] * col[static_cast<std::size_t>(k)];
      col[static_cast<std::size_t>(i)] = -sum / l(i, i);
    }
    for (Index i = 0; i < n; ++i) out(i, static_cast<Index>(c)) = col[static_cast<std::size_t>(i)];
  }
  return out;
}

Matrix solve_lower(const Matrix& l, const Matrix& b) {
  check_lower(l);
  MRI_REQUIRE(l.rows() == b.rows(), "solve_lower shape mismatch: "
                                        << l.rows() << " vs " << b.rows());
  // Forward substitution as a blocked TRSM through the kernel engine: the
  // bulk of the work becomes GEMM trailing updates on the selected backend.
  Matrix x = b;
  kernels::KernelContext ctx;
  ctx.trsm_lower_left(/*unit_diag=*/false, l.rows(), b.cols(),
                      l.data().data(), l.cols(), x.data().data(), x.cols());
  return x;
}

Matrix solve_upper_right(const Matrix& u, const Matrix& b) {
  check_upper(u);
  MRI_REQUIRE(u.rows() == b.cols(), "solve_upper_right shape mismatch: "
                                        << u.rows() << " vs " << b.cols());
  const Index n = u.rows(), rows = b.rows();
  Matrix x = b;
  // Row i of X solves x_i · U = b_i: left-to-right substitution.
  for (Index i = 0; i < rows; ++i) {
    double* xi = x.row(i).data();
    for (Index j = 0; j < n; ++j) {
      double sum = xi[j];
      for (Index k = 0; k < j; ++k) sum -= xi[k] * u(k, j);
      xi[j] = sum / u(j, j);
    }
  }
  return x;
}

Matrix solve_upper_right_from_transpose(const Matrix& ut, const Matrix& b) {
  check_lower(ut);
  MRI_REQUIRE(ut.rows() == b.cols(),
              "solve_upper_right_from_transpose shape mismatch: " << ut.rows()
                                                                  << " vs "
                                                                  << b.cols());
  // Right-solve against the transposed-stored factor: the kernel TRSM's
  // trailing updates stream rows of Uᵀ (gemm_bt), preserving the §6.3
  // layout argument on every backend.
  Matrix x = b;
  kernels::KernelContext ctx;
  ctx.trsm_upper_right_from_transpose(b.rows(), ut.rows(), ut.data().data(),
                                      ut.cols(), x.data().data(), x.cols());
  return x;
}

IoStats triangular_inverse_cost(Index n) {
  IoStats io;
  const auto cube = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n);
  io.mults = cube / 6;
  io.adds = cube / 6;
  return io;
}

IoStats triangular_solve_cost(Index n, Index rhs) {
  IoStats io;
  const auto work = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(rhs) / 2;
  io.mults = work;
  io.adds = work;
  return io;
}

}  // namespace mri
