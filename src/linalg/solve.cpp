#include "linalg/solve.hpp"

#include "linalg/triangular.hpp"
#include "matrix/ops.hpp"

namespace mri {

Matrix invert_via_lu(const Matrix& a) {
  LuResult lu = lu_decompose(a);
  const Matrix l_inv = invert_lower(lu.unit_lower());
  const Matrix u_inv = invert_upper_via_transpose(lu.upper());
  // A⁻¹ = U⁻¹ L⁻¹ P: column k of U⁻¹L⁻¹ lands at column S[k].
  return lu.perm.apply_to_columns(matmul(u_inv, l_inv));
}

Matrix solve_matrix(const Matrix& a, const Matrix& b) {
  MRI_REQUIRE(a.rows() == b.rows(), "solve shape mismatch: " << a.rows()
                                                             << " vs "
                                                             << b.rows());
  LuResult lu = lu_decompose(a);
  // P·A·X = P·B  =>  L·U·X = P·B.
  const Matrix pb = lu.perm.apply_to_rows(b);
  const Matrix y = solve_lower(lu.unit_lower(), pb);
  // Back substitution with U.
  const Matrix u = lu.upper();
  const Index n = u.rows(), m = y.cols();
  Matrix x = y;
  for (Index i = n - 1; i >= 0; --i) {
    double* xi = x.row(i).data();
    const double* ui = u.row(i).data();
    for (Index k = i + 1; k < n; ++k) {
      const double uik = ui[k];
      if (uik == 0.0) continue;
      const double* xk = x.row(k).data();
      for (Index j = 0; j < m; ++j) xi[j] -= uik * xk[j];
    }
    const double inv_d = 1.0 / ui[i];
    for (Index j = 0; j < m; ++j) xi[j] *= inv_d;
  }
  return x;
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  MRI_REQUIRE(static_cast<Index>(b.size()) == a.rows(),
              "solve vector length mismatch");
  Matrix bm(a.rows(), 1, std::vector<double>(b));
  Matrix x = solve_matrix(a, bm);
  std::vector<double> out(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) out[static_cast<std::size_t>(i)] = x(i, 0);
  return out;
}

}  // namespace mri
