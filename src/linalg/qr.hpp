// Householder QR decomposition and QR-based inversion (§2 baseline).
//
// The paper rejects QR for MapReduce because the Gram-Schmidt-style process
// is an n-step sequential chain; we implement it (with the numerically
// superior Householder reflections) as a single-node baseline and to measure
// the method-choice ablation.
#pragma once

#include "matrix/matrix.hpp"
#include "sim/io_stats.hpp"

namespace mri {

struct QrResult {
  Matrix q;  // orthogonal (n x n)
  Matrix r;  // upper triangular (n x n)
};

/// Householder QR: A = Q·R. Requires square A.
QrResult qr_decompose(const Matrix& a);

/// A⁻¹ = R⁻¹·Qᵀ. Throws NumericalError if R is singular.
Matrix qr_invert(const Matrix& a);

/// Pipeline length a QR MapReduce implementation would need (paper §4.2).
std::int64_t qr_pipeline_steps(Index n);

/// ~(4/3)n³ flops for Householder QR of an n x n matrix.
IoStats qr_cost(Index n);

}  // namespace mri
