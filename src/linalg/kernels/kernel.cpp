#include "linalg/kernels/kernel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

#include "common/error.hpp"
#include "linalg/kernels/detail.hpp"

namespace mri::kernels {

namespace {

// Process-global monotone counters. Incremented once per public entry point
// (relaxed: they are statistics, not synchronization); wall time is kept in
// integer nanoseconds so fetch_add works everywhere.
std::atomic<std::uint64_t> g_gemm_calls{0};
std::atomic<std::uint64_t> g_trsm_calls{0};
std::atomic<std::uint64_t> g_flops{0};
std::atomic<std::uint64_t> g_nanos{0};

class ScopedKernelTimer {
 public:
  ScopedKernelTimer() : start_(std::chrono::steady_clock::now()) {}
  ~ScopedKernelTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    g_nanos.fetch_add(static_cast<std::uint64_t>(ns),
                      std::memory_order_relaxed);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// -1 = not chosen yet; otherwise a Backend value. set_default_backend wins
// over the env var, which wins over hardware detection.
std::atomic<int> g_default_backend{-1};

Backend initial_default() {
  if (const char* env = std::getenv("MRI_KERNEL_BACKEND")) {
    Backend b;
    if (parse_backend(env, &b) && backend_available(b)) return b;
  }
  return detail::simd_supported() ? Backend::kSimd : Backend::kTiled;
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kNaive: return "naive";
    case Backend::kTiled: return "tiled";
    case Backend::kSimd: return "simd";
    case Backend::kThreaded: return "threaded";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, Backend* out) {
  MRI_REQUIRE(out != nullptr, "null backend out-param");
  if (name == "naive") {
    *out = Backend::kNaive;
  } else if (name == "tiled") {
    *out = Backend::kTiled;
  } else if (name == "simd") {
    *out = Backend::kSimd;
  } else if (name == "threaded") {
    *out = Backend::kThreaded;
  } else {
    return false;
  }
  return true;
}

bool backend_available(Backend backend) {
  // kSimd silently degrades to kTiled in dispatch, but callers asking
  // "can this CPU actually run it" get the real answer.
  return backend != Backend::kSimd || detail::simd_supported();
}

Backend default_backend() {
  int v = g_default_backend.load(std::memory_order_relaxed);
  if (v < 0) {
    const Backend chosen = initial_default();
    int expected = -1;
    if (g_default_backend.compare_exchange_strong(
            expected, static_cast<int>(chosen), std::memory_order_relaxed)) {
      return chosen;
    }
    v = expected;  // somebody else chose first; use their value
  }
  return static_cast<Backend>(v);
}

void set_default_backend(Backend backend) {
  g_default_backend.store(static_cast<int>(backend),
                          std::memory_order_relaxed);
}

KernelCounters counters_snapshot() {
  KernelCounters c;
  c.gemm_calls = g_gemm_calls.load(std::memory_order_relaxed);
  c.trsm_calls = g_trsm_calls.load(std::memory_order_relaxed);
  c.flops = g_flops.load(std::memory_order_relaxed);
  c.seconds =
      static_cast<double>(g_nanos.load(std::memory_order_relaxed)) * 1e-9;
  return c;
}

IoStats kernel_cost(Backend /*variant*/, std::int64_t r, std::int64_t k,
                    std::int64_t c) {
  // Every current variant executes the classic 2·r·k·c flops; the variant
  // parameter records kernel identity without perturbing the model.
  IoStats io;
  io.mults = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(k) *
             static_cast<std::uint64_t>(c);
  io.adds = io.mults;
  return io;
}

namespace detail {

Backend resolve(Backend backend) {
  if (backend == Backend::kSimd && !simd_supported()) return Backend::kTiled;
  return backend;
}

void gemm_naive(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc) {
  // Textbook ijk: the inner k loop strides down a column of B — the §6.3
  // ablation's cache-hostile baseline, kept exactly this slow on purpose.
  for (std::int64_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::int64_t p = 0; p < k; ++p) sum += ai[p] * b[p * ldb + j];
      switch (mode) {
        case GemmMode::kAssign: ci[j] = sum; break;
        case GemmMode::kAccumulate: ci[j] += sum; break;
        case GemmMode::kSubtract: ci[j] -= sum; break;
      }
    }
  }
}

void gemm_bt_naive(GemmMode mode, std::int64_t m, std::int64_t n,
                   std::int64_t k, const double* a, std::int64_t lda,
                   const double* bt, std::int64_t ldbt, double* c,
                   std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const double* btj = bt + j * ldbt;
      double sum = 0.0;
      for (std::int64_t p = 0; p < k; ++p) sum += ai[p] * btj[p];
      switch (mode) {
        case GemmMode::kAssign: ci[j] = sum; break;
        case GemmMode::kAccumulate: ci[j] += sum; break;
        case GemmMode::kSubtract: ci[j] -= sum; break;
      }
    }
  }
}

void dispatch_gemm(Backend backend, int threads, GemmMode mode, std::int64_t m,
                   std::int64_t n, std::int64_t k, const double* a,
                   std::int64_t lda, const double* b, std::int64_t ldb,
                   double* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate product is all zeros; only kAssign has visible effect.
    if (mode == GemmMode::kAssign) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0);
      }
    }
    return;
  }
  switch (resolve(backend)) {
    case Backend::kNaive:
      gemm_naive(mode, m, n, k, a, lda, b, ldb, c, ldc);
      break;
    case Backend::kTiled:
      gemm_tiled(mode, m, n, k, a, lda, b, ldb, c, ldc);
      break;
    case Backend::kSimd:
      gemm_simd(mode, m, n, k, a, lda, b, ldb, c, ldc);
      break;
    case Backend::kThreaded:
      gemm_threaded(resolve(Backend::kSimd), threads, mode, m, n, k, a, lda, b,
                    ldb, c, ldc);
      break;
  }
}

void dispatch_gemm_bt(Backend backend, int threads, GemmMode mode,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      const double* a, std::int64_t lda, const double* bt,
                      std::int64_t ldbt, double* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (mode == GemmMode::kAssign) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0);
      }
    }
    return;
  }
  switch (resolve(backend)) {
    case Backend::kNaive:
      gemm_bt_naive(mode, m, n, k, a, lda, bt, ldbt, c, ldc);
      break;
    case Backend::kTiled:
      gemm_bt_tiled(mode, m, n, k, a, lda, bt, ldbt, c, ldc);
      break;
    case Backend::kSimd:
      gemm_bt_simd(mode, m, n, k, a, lda, bt, ldbt, c, ldc);
      break;
    case Backend::kThreaded:
      gemm_bt_threaded(resolve(Backend::kSimd), threads, mode, m, n, k, a, lda,
                       bt, ldbt, c, ldc);
      break;
  }
}

}  // namespace detail

void KernelContext::gemm(GemmMode mode, std::int64_t m, std::int64_t n,
                         std::int64_t k, const double* a, std::int64_t lda,
                         const double* b, std::int64_t ldb, double* c,
                         std::int64_t ldc) const {
  ScopedKernelTimer timer;
  g_gemm_calls.fetch_add(1, std::memory_order_relaxed);
  g_flops.fetch_add(2ull * static_cast<std::uint64_t>(std::max<std::int64_t>(
                               m, 0)) *
                        static_cast<std::uint64_t>(std::max<std::int64_t>(n,
                                                                          0)) *
                        static_cast<std::uint64_t>(std::max<std::int64_t>(k,
                                                                          0)),
                    std::memory_order_relaxed);
  detail::dispatch_gemm(backend, threads, mode, m, n, k, a, lda, b, ldb, c,
                        ldc);
}

void KernelContext::gemm_bt(GemmMode mode, std::int64_t m, std::int64_t n,
                            std::int64_t k, const double* a, std::int64_t lda,
                            const double* bt, std::int64_t ldbt, double* c,
                            std::int64_t ldc) const {
  ScopedKernelTimer timer;
  g_gemm_calls.fetch_add(1, std::memory_order_relaxed);
  g_flops.fetch_add(2ull * static_cast<std::uint64_t>(std::max<std::int64_t>(
                               m, 0)) *
                        static_cast<std::uint64_t>(std::max<std::int64_t>(n,
                                                                          0)) *
                        static_cast<std::uint64_t>(std::max<std::int64_t>(k,
                                                                          0)),
                    std::memory_order_relaxed);
  detail::dispatch_gemm_bt(backend, threads, mode, m, n, k, a, lda, bt, ldbt,
                           c, ldc);
}

void KernelContext::trsm_lower_left(bool unit_diag, std::int64_t m,
                                    std::int64_t n, const double* l,
                                    std::int64_t ldl, double* b,
                                    std::int64_t ldb) const {
  if (m <= 0 || n <= 0) return;
  ScopedKernelTimer timer;
  g_trsm_calls.fetch_add(1, std::memory_order_relaxed);
  g_flops.fetch_add(static_cast<std::uint64_t>(m) *
                        static_cast<std::uint64_t>(m) *
                        static_cast<std::uint64_t>(n),
                    std::memory_order_relaxed);

  const Backend resolved = detail::resolve(backend);
  // Naive keeps the historical unblocked substitution (the ablation
  // baseline); every other backend runs the blocked algorithm whose bulk is
  // GEMM trailing updates.
  const std::int64_t nb = resolved == Backend::kNaive ? m : 64;
  for (std::int64_t d0 = 0; d0 < m; d0 += nb) {
    const std::int64_t d1 = std::min<std::int64_t>(d0 + nb, m);
    for (std::int64_t i = d0; i < d1; ++i) {
      double* bi = b + i * ldb;
      const double* li = l + i * ldl;
      for (std::int64_t p = d0; p < i; ++p) {
        const double lip = li[p];
        if (lip == 0.0) continue;  // triangular operands are half zeros
        const double* bp = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) bi[j] -= lip * bp[j];
      }
      if (!unit_diag) {
        const double inv_d = 1.0 / li[i];
        for (std::int64_t j = 0; j < n; ++j) bi[j] *= inv_d;
      }
    }
    if (d1 < m) {
      detail::dispatch_gemm(resolved, threads, GemmMode::kSubtract, m - d1, n,
                            d1 - d0, l + d1 * ldl + d0, ldl, b + d0 * ldb, ldb,
                            b + d1 * ldb, ldb);
    }
  }
}

void KernelContext::trsm_upper_right_from_transpose(std::int64_t m,
                                                    std::int64_t n,
                                                    const double* ut,
                                                    std::int64_t ldut,
                                                    double* b,
                                                    std::int64_t ldb) const {
  if (m <= 0 || n <= 0) return;
  ScopedKernelTimer timer;
  g_trsm_calls.fetch_add(1, std::memory_order_relaxed);
  g_flops.fetch_add(static_cast<std::uint64_t>(n) *
                        static_cast<std::uint64_t>(n) *
                        static_cast<std::uint64_t>(m),
                    std::memory_order_relaxed);

  const Backend resolved = detail::resolve(backend);
  const std::int64_t nb = resolved == Backend::kNaive ? n : 64;
  for (std::int64_t d0 = 0; d0 < n; d0 += nb) {
    const std::int64_t d1 = std::min<std::int64_t>(d0 + nb, n);
    // In-block left-to-right substitution; columns < d0 were already
    // subtracted by earlier trailing updates.
    for (std::int64_t i = 0; i < m; ++i) {
      double* xi = b + i * ldb;
      for (std::int64_t j = d0; j < d1; ++j) {
        const double* utj = ut + j * ldut;  // row j of Uᵀ = column j of U
        double sum = xi[j];
        for (std::int64_t p = d0; p < j; ++p) sum -= xi[p] * utj[p];
        xi[j] = sum / utj[j];
      }
    }
    // B[:, d1:] -= X[:, d0:d1] · U[d0:d1, d1:], with U's block read as rows
    // of Uᵀ (gemm_bt streams ut rows — the transposed-U layout's payoff).
    if (d1 < n) {
      detail::dispatch_gemm_bt(resolved, threads, GemmMode::kSubtract, m,
                               n - d1, d1 - d0, b + d0, ldb,
                               ut + d1 * ldut + d0, ldut, b + d1, ldb);
    }
  }
}

}  // namespace mri::kernels
