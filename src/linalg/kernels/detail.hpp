// Internal backend entry points behind KernelContext. Each gemm_* computes
// the same C op= A·B (or A·Bᵀ) contract as KernelContext::gemm/gemm_bt on
// raw row-major buffers; none of them touch the process-global counters —
// counting and timing happen once at the public dispatch layer so a blocked
// TRSM's internal trailing-update GEMMs are not double-billed.
#pragma once

#include "linalg/kernels/kernel.hpp"

namespace mri::kernels::detail {

/// True when the CPU supports the AVX2+FMA microkernel.
bool simd_supported();

/// Maps a requested backend to one that can execute here: kSimd degrades to
/// kTiled on CPUs without AVX2+FMA; kThreaded resolves its serial worker
/// backend the same way.
Backend resolve(Backend backend);

void gemm_naive(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc);
void gemm_tiled(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc);
/// Requires simd_supported(); AVX2+FMA 4x8 register-blocked microkernel.
void gemm_simd(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
               const double* a, std::int64_t lda, const double* b,
               std::int64_t ldb, double* c, std::int64_t ldc);
/// Row-partitioned std::thread fan-out over `serial` (kTiled or kSimd).
/// Chunk boundaries are aligned so every row takes the same code path it
/// would serially — results are bitwise identical to the serial backend.
void gemm_threaded(Backend serial, int threads, GemmMode mode, std::int64_t m,
                   std::int64_t n, std::int64_t k, const double* a,
                   std::int64_t lda, const double* b, std::int64_t ldb,
                   double* c, std::int64_t ldc);

void gemm_bt_naive(GemmMode mode, std::int64_t m, std::int64_t n,
                   std::int64_t k, const double* a, std::int64_t lda,
                   const double* bt, std::int64_t ldbt, double* c,
                   std::int64_t ldc);
void gemm_bt_tiled(GemmMode mode, std::int64_t m, std::int64_t n,
                   std::int64_t k, const double* a, std::int64_t lda,
                   const double* bt, std::int64_t ldbt, double* c,
                   std::int64_t ldc);
void gemm_bt_simd(GemmMode mode, std::int64_t m, std::int64_t n,
                  std::int64_t k, const double* a, std::int64_t lda,
                  const double* bt, std::int64_t ldbt, double* c,
                  std::int64_t ldc);
void gemm_bt_threaded(Backend serial, int threads, GemmMode mode,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      const double* a, std::int64_t lda, const double* bt,
                      std::int64_t ldbt, double* c, std::int64_t ldc);

/// Counter-free dispatch (public KernelContext methods and blocked TRSM
/// trailing updates route here).
void dispatch_gemm(Backend backend, int threads, GemmMode mode, std::int64_t m,
                   std::int64_t n, std::int64_t k, const double* a,
                   std::int64_t lda, const double* b, std::int64_t ldb,
                   double* c, std::int64_t ldc);
void dispatch_gemm_bt(Backend backend, int threads, GemmMode mode,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      const double* a, std::int64_t lda, const double* bt,
                      std::int64_t ldbt, double* c, std::int64_t ldc);

}  // namespace mri::kernels::detail
