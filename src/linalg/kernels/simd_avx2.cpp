// AVX2+FMA register-blocked GEMM microkernels. Compiled with per-function
// target attributes (the translation unit itself needs no -mavx2, so the
// binary still runs on any x86-64) and selected only when
// __builtin_cpu_supports reports the features at runtime; non-x86 builds
// and pre-AVX2 CPUs fall back to the tiled backend.
#include "linalg/kernels/detail.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MRI_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace mri::kernels::detail {

#ifdef MRI_KERNELS_X86

namespace {

constexpr std::int64_t kKc = 256;  // depth per block (B panel rows in L2)
constexpr std::int64_t kNc = 256;  // columns per block (multiple of 8)

// How a microkernel's accumulated product lands in C. kAssign over multiple
// depth blocks becomes kStore for the first block and kAdd for the rest, so
// the mode is applied exactly once.
enum class StoreOp { kStore, kAdd, kSub };

StoreOp store_op(GemmMode mode, bool first_depth_block) {
  switch (mode) {
    case GemmMode::kAssign:
      return first_depth_block ? StoreOp::kStore : StoreOp::kAdd;
    case GemmMode::kAccumulate: return StoreOp::kAdd;
    case GemmMode::kSubtract: return StoreOp::kSub;
  }
  return StoreOp::kAdd;
}

// C[0:4, 0:8] op= A[0:4, p0:p1] · B[p0:p1, 0:8]; pointers pre-offset to the
// block corner. Eight ymm accumulators live across the whole depth loop.
__attribute__((target("avx2,fma"))) void kernel_4x8(
    const double* a, std::int64_t lda, const double* b, std::int64_t ldb,
    double* c, std::int64_t ldc, std::int64_t p0, std::int64_t p1,
    StoreOp op) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  for (std::int64_t p = p0; p < p1; ++p) {
    const __m256d b0 = _mm256_loadu_pd(b + p * ldb);
    const __m256d b1 = _mm256_loadu_pd(b + p * ldb + 4);
    __m256d av = _mm256_broadcast_sd(a + 0 * lda + p);
    acc00 = _mm256_fmadd_pd(av, b0, acc00);
    acc01 = _mm256_fmadd_pd(av, b1, acc01);
    av = _mm256_broadcast_sd(a + 1 * lda + p);
    acc10 = _mm256_fmadd_pd(av, b0, acc10);
    acc11 = _mm256_fmadd_pd(av, b1, acc11);
    av = _mm256_broadcast_sd(a + 2 * lda + p);
    acc20 = _mm256_fmadd_pd(av, b0, acc20);
    acc21 = _mm256_fmadd_pd(av, b1, acc21);
    av = _mm256_broadcast_sd(a + 3 * lda + p);
    acc30 = _mm256_fmadd_pd(av, b0, acc30);
    acc31 = _mm256_fmadd_pd(av, b1, acc31);
  }
  const __m256d accs[4][2] = {
      {acc00, acc01}, {acc10, acc11}, {acc20, acc21}, {acc30, acc31}};
  for (int r = 0; r < 4; ++r) {
    double* cr = c + r * ldc;
    switch (op) {
      case StoreOp::kStore:
        _mm256_storeu_pd(cr, accs[r][0]);
        _mm256_storeu_pd(cr + 4, accs[r][1]);
        break;
      case StoreOp::kAdd:
        _mm256_storeu_pd(cr,
                         _mm256_add_pd(_mm256_loadu_pd(cr), accs[r][0]));
        _mm256_storeu_pd(
            cr + 4, _mm256_add_pd(_mm256_loadu_pd(cr + 4), accs[r][1]));
        break;
      case StoreOp::kSub:
        _mm256_storeu_pd(cr,
                         _mm256_sub_pd(_mm256_loadu_pd(cr), accs[r][0]));
        _mm256_storeu_pd(
            cr + 4, _mm256_sub_pd(_mm256_loadu_pd(cr + 4), accs[r][1]));
        break;
    }
  }
}

__attribute__((target("avx2,fma"))) double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
}

// C[0:2, 0:2] block of A · Bᵀ: vector dot products over the contiguous
// depth dimension, horizontal-summed once at the end.
__attribute__((target("avx2,fma"))) void kernel_bt_2x2(
    GemmMode mode, std::int64_t k, const double* a0, const double* a1,
    const double* bt0, const double* bt1, double* c0, double* c1) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  std::int64_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const __m256d av0 = _mm256_loadu_pd(a0 + p);
    const __m256d av1 = _mm256_loadu_pd(a1 + p);
    const __m256d bv0 = _mm256_loadu_pd(bt0 + p);
    const __m256d bv1 = _mm256_loadu_pd(bt1 + p);
    acc00 = _mm256_fmadd_pd(av0, bv0, acc00);
    acc01 = _mm256_fmadd_pd(av0, bv1, acc01);
    acc10 = _mm256_fmadd_pd(av1, bv0, acc10);
    acc11 = _mm256_fmadd_pd(av1, bv1, acc11);
  }
  double s00 = hsum(acc00), s01 = hsum(acc01);
  double s10 = hsum(acc10), s11 = hsum(acc11);
  for (; p < k; ++p) {
    s00 += a0[p] * bt0[p];
    s01 += a0[p] * bt1[p];
    s10 += a1[p] * bt0[p];
    s11 += a1[p] * bt1[p];
  }
  switch (mode) {
    case GemmMode::kAssign:
      c0[0] = s00;
      c0[1] = s01;
      c1[0] = s10;
      c1[1] = s11;
      break;
    case GemmMode::kAccumulate:
      c0[0] += s00;
      c0[1] += s01;
      c1[0] += s10;
      c1[1] += s11;
      break;
    case GemmMode::kSubtract:
      c0[0] -= s00;
      c0[1] -= s01;
      c1[0] -= s10;
      c1[1] -= s11;
      break;
  }
}

}  // namespace

bool simd_supported() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

void gemm_simd(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
               const double* a, std::int64_t lda, const double* b,
               std::int64_t ldb, double* c, std::int64_t ldc) {
  const std::int64_t i_main = m & ~std::int64_t{3};
  const std::int64_t j_main = n & ~std::int64_t{7};
  for (std::int64_t jc = 0; jc < j_main; jc += kNc) {
    const std::int64_t jc1 = std::min<std::int64_t>(jc + kNc, j_main);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t pc1 = std::min<std::int64_t>(pc + kKc, k);
      const StoreOp op = store_op(mode, pc == 0);
      for (std::int64_t i0 = 0; i0 < i_main; i0 += 4) {
        for (std::int64_t j0 = jc; j0 < jc1; j0 += 8) {
          kernel_4x8(a + i0 * lda, lda, b + j0, ldb, c + i0 * ldc + j0, ldc,
                     pc, pc1, op);
        }
      }
    }
  }
  // Edge strips run through the tiled backend (different summation order
  // than the 8-wide lanes, but each element is still deterministic).
  if (j_main < n) {
    gemm_tiled(mode, i_main, n - j_main, k, a, lda, b + j_main, ldb,
               c + j_main, ldc);
  }
  if (i_main < m) {
    gemm_tiled(mode, m - i_main, n, k, a + i_main * lda, lda, b, ldb,
               c + i_main * ldc, ldc);
  }
}

void gemm_bt_simd(GemmMode mode, std::int64_t m, std::int64_t n,
                  std::int64_t k, const double* a, std::int64_t lda,
                  const double* bt, std::int64_t ldbt, double* c,
                  std::int64_t ldc) {
  const std::int64_t i_main = m & ~std::int64_t{1};
  const std::int64_t j_main = n & ~std::int64_t{1};
  for (std::int64_t i0 = 0; i0 < i_main; i0 += 2) {
    const double* a0 = a + i0 * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + i0 * ldc;
    double* c1 = c0 + ldc;
    for (std::int64_t j0 = 0; j0 < j_main; j0 += 2) {
      kernel_bt_2x2(mode, k, a0, a1, bt + j0 * ldbt, bt + (j0 + 1) * ldbt,
                    c0 + j0, c1 + j0);
    }
  }
  if (j_main < n) {
    gemm_bt_tiled(mode, i_main, n - j_main, k, a, lda, bt + j_main * ldbt,
                  ldbt, c + j_main, ldc);
  }
  if (i_main < m) {
    gemm_bt_tiled(mode, m - i_main, n, k, a + i_main * lda, lda, bt, ldbt,
                  c + i_main * ldc, ldc);
  }
}

#else  // !MRI_KERNELS_X86

bool simd_supported() { return false; }

void gemm_simd(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
               const double* a, std::int64_t lda, const double* b,
               std::int64_t ldb, double* c, std::int64_t ldc) {
  gemm_tiled(mode, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_bt_simd(GemmMode mode, std::int64_t m, std::int64_t n,
                  std::int64_t k, const double* a, std::int64_t lda,
                  const double* bt, std::int64_t ldbt, double* c,
                  std::int64_t ldc) {
  gemm_bt_tiled(mode, m, n, k, a, lda, bt, ldbt, c, ldc);
}

#endif  // MRI_KERNELS_X86

}  // namespace mri::kernels::detail
