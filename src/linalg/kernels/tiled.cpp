// Cache-blocked GEMM variants. The inner loops run unit-stride over
// contiguous row segments so the compiler auto-vectorizes them on whatever
// SIMD width the target has, and the three-level blocking keeps the working
// set resident: a KC x NC panel of B in L2, an MC-row slice of A in L1.
#include "linalg/kernels/detail.hpp"

namespace mri::kernels::detail {

namespace {

constexpr std::int64_t kMc = 64;   // rows of A per block
constexpr std::int64_t kKc = 256;  // depth per block
constexpr std::int64_t kNc = 256;  // columns of B per block

void zero_block(double* c, std::int64_t ldc, std::int64_t m, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    double* ci = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) ci[j] = 0.0;
  }
}

}  // namespace

void gemm_tiled(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc) {
  if (mode == GemmMode::kAssign) zero_block(c, ldc, m, n);
  const double sign = mode == GemmMode::kSubtract ? -1.0 : 1.0;
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t jc1 = std::min<std::int64_t>(jc + kNc, n);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t pc1 = std::min<std::int64_t>(pc + kKc, k);
      for (std::int64_t ic = 0; ic < m; ic += kMc) {
        const std::int64_t ic1 = std::min<std::int64_t>(ic + kMc, m);
        for (std::int64_t i = ic; i < ic1; ++i) {
          const double* ai = a + i * lda;
          double* ci = c + i * ldc;
          for (std::int64_t p = pc; p < pc1; ++p) {
            if (ai[p] == 0.0) continue;  // triangular operands are half zeros
            const double aip = sign * ai[p];
            const double* bp = b + p * ldb;
            for (std::int64_t j = jc; j < jc1; ++j) ci[j] += aip * bp[j];
          }
        }
      }
    }
  }
}

void gemm_bt_tiled(GemmMode mode, std::int64_t m, std::int64_t n,
                   std::int64_t k, const double* a, std::int64_t lda,
                   const double* bt, std::int64_t ldbt, double* c,
                   std::int64_t ldc) {
  // Both operands stream contiguously over p; four partial sums expose
  // enough ILP for the compiler to unroll/vectorize the reduction. Blocking
  // over j keeps a slab of bt rows hot while the i loop revisits them.
  for (std::int64_t jc = 0; jc < n; jc += kMc) {
    const std::int64_t jc1 = std::min<std::int64_t>(jc + kMc, n);
    for (std::int64_t i = 0; i < m; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc;
      for (std::int64_t j = jc; j < jc1; ++j) {
        const double* btj = bt + j * ldbt;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        std::int64_t p = 0;
        for (; p + 4 <= k; p += 4) {
          s0 += ai[p] * btj[p];
          s1 += ai[p + 1] * btj[p + 1];
          s2 += ai[p + 2] * btj[p + 2];
          s3 += ai[p + 3] * btj[p + 3];
        }
        double sum = (s0 + s1) + (s2 + s3);
        for (; p < k; ++p) sum += ai[p] * btj[p];
        switch (mode) {
          case GemmMode::kAssign: ci[j] = sum; break;
          case GemmMode::kAccumulate: ci[j] += sum; break;
          case GemmMode::kSubtract: ci[j] -= sum; break;
        }
      }
    }
  }
}

}  // namespace mri::kernels::detail
