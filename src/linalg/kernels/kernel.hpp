// Hardware-speed dense kernels behind one dispatch seam.
//
// Every dense GEMM/TRSM in the repo funnels through KernelContext instead of
// hand-rolled loop variants scattered per call site. A kernel *backend* is a
// runtime-selected implementation of the same arithmetic:
//
//   kNaive    — textbook ijk dot-product order (the §6.3 ablation baseline:
//               walks columns of B, pays the page/TLB penalty);
//   kTiled    — cache-blocked ikj with unit-stride inner loops, written so
//               the compiler auto-vectorizes them on any target;
//   kSimd     — AVX2+FMA register-blocked microkernel (4x8 accumulator
//               tile), compiled with per-function target attributes and
//               selected only when the CPU reports the features at runtime
//               (falls back to kTiled elsewhere);
//   kThreaded — row-partitioned std::thread fan-out over the best serial
//               backend, for intra-task parallelism; each row is computed by
//               the same serial kernel, so results are bitwise identical to
//               the serial run.
//
// Backends differ in speed, not in modelled arithmetic: kernel_cost() is
// backend-independent, so simulated IoStats/report accounting stays
// bit-identical no matter which backend executed the flops. Different
// backends may round differently (summation order); tests compare across
// backends with tolerances but require every backend to be individually
// deterministic.
//
// Process-global KernelCounters record calls, modelled flops and wall-clock
// seconds per backend; snapshot deltas give per-run kernel identity and
// achieved GFLOP/s for RunReport and CostModel calibration. The wall-clock
// fields are the only non-deterministic numbers and are kept out of the
// report JSON.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/io_stats.hpp"

namespace mri::kernels {

enum class Backend { kNaive, kTiled, kSimd, kThreaded };

/// Stable lowercase name ("naive", "tiled", "simd", "threaded").
const char* backend_name(Backend backend);

/// Parses a backend name; returns false (and leaves *out alone) on unknown
/// input.
bool parse_backend(std::string_view name, Backend* out);

/// True when the backend can run on this machine (kSimd requires AVX2+FMA;
/// everything else is always available).
bool backend_available(Backend backend);

/// The process-wide default backend used by default-constructed
/// KernelContexts: the MRI_KERNEL_BACKEND env var when set to a valid name,
/// else kSimd when the CPU supports it, else kTiled. set_default_backend()
/// overrides it for the process (CLI flag plumbing).
Backend default_backend();
void set_default_backend(Backend backend);

/// Process-global kernel activity counters (monotone; snapshot two and
/// subtract for a per-run delta). `flops` is the modelled 2·m·n·k / m·n·k
/// count, identical across backends; `seconds` is wall-clock spent inside
/// kernel calls and is NOT deterministic — keep it out of simulated reports.
struct KernelCounters {
  std::uint64_t gemm_calls = 0;
  std::uint64_t trsm_calls = 0;
  std::uint64_t flops = 0;
  double seconds = 0.0;

  KernelCounters operator-(const KernelCounters& other) const {
    KernelCounters d;
    d.gemm_calls = gemm_calls - other.gemm_calls;
    d.trsm_calls = trsm_calls - other.trsm_calls;
    d.flops = flops - other.flops;
    d.seconds = seconds - other.seconds;
    return d;
  }

  /// Achieved GFLOP/s over the counted interval (0 when no time elapsed).
  double gflops() const {
    return seconds > 0.0 ? static_cast<double>(flops) / seconds * 1e-9 : 0.0;
  }
};

/// Snapshot of the process-global counters.
KernelCounters counters_snapshot();

/// How gemm()/gemm_bt() combine the product with C.
enum class GemmMode { kAssign, kAccumulate, kSubtract };

/// Dispatch handle: one backend selection threaded through a computation.
/// Operates on raw row-major buffers with leading dimensions so callers can
/// address sub-blocks of larger matrices without copies.
struct KernelContext {
  Backend backend = default_backend();
  /// kThreaded only: worker count (0 = hardware_concurrency, min 1).
  int threads = 0;

  /// C (m x n) =|+=|-= A (m x k) · B (k x n).
  void gemm(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
            const double* a, std::int64_t lda, const double* b,
            std::int64_t ldb, double* c, std::int64_t ldc) const;

  /// C (m x n) =|+=|-= A (m x k) · Bᵀ, where bt (n x k) holds B transposed
  /// row-major (row j of bt is column j of B) — the §6.3 transposed-U layout.
  void gemm_bt(GemmMode mode, std::int64_t m, std::int64_t n, std::int64_t k,
               const double* a, std::int64_t lda, const double* bt,
               std::int64_t ldbt, double* c, std::int64_t ldc) const;

  /// In-place left solve L · X = B: b (m x n) becomes X, with l (m x m)
  /// lower triangular (`unit_diag` skips the diagonal division). Blocked:
  /// small diagonal-block substitutions plus GEMM trailing updates.
  void trsm_lower_left(bool unit_diag, std::int64_t m, std::int64_t n,
                       const double* l, std::int64_t ldl, double* b,
                       std::int64_t ldb) const;

  /// In-place right solve X · U = B: b (m x n) becomes X, with ut (n x n)
  /// holding Uᵀ row-major (row j of ut is column j of U, diagonal included,
  /// non-unit). Blocked with gemm_bt trailing updates so the hot path
  /// streams ut rows, matching the paper's transposed-U storage argument.
  void trsm_upper_right_from_transpose(std::int64_t m, std::int64_t n,
                                       const double* ut, std::int64_t ldut,
                                       double* b, std::int64_t ldb) const;
};

/// Modelled flop cost of a dense (r x k) · (k x c) multiply executed by
/// kernel `variant`. Identical for every variant — tiling and vectorization
/// change speed, not arithmetic — so simulated reports stay bit-identical
/// across backend selections; the parameter exists so call sites record
/// which kernel the cost models (and future variants with different
/// arithmetic, e.g. Strassen, can diverge).
IoStats kernel_cost(Backend variant, std::int64_t r, std::int64_t k,
                    std::int64_t c);

}  // namespace mri::kernels
