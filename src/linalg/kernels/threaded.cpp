// Intra-task threading: row-partitioned std::thread fan-out over a serial
// backend. A row of C depends only on the matching row of A (and all of B),
// so threads never share output rows; chunk boundaries are aligned to the
// serial microkernels' row-group size (4), which keeps every row on the
// exact code path it would take serially — results are bitwise identical to
// the serial backend's.
#include <thread>
#include <vector>

#include "linalg/kernels/detail.hpp"

namespace mri::kernels::detail {

namespace {

constexpr std::int64_t kRowAlign = 4;  // gemm_simd's 4-row microkernel

int worker_count(int threads, std::int64_t rows) {
  int t = threads > 0 ? threads
                      : static_cast<int>(std::thread::hardware_concurrency());
  if (t < 1) t = 1;
  // No point spawning more workers than aligned row chunks.
  const std::int64_t chunks = (rows + kRowAlign - 1) / kRowAlign;
  if (t > chunks) t = static_cast<int>(chunks);
  return t;
}

template <typename RowSlice>
void fan_out(int threads, std::int64_t m, RowSlice&& slice) {
  const int t = worker_count(threads, m);
  if (t <= 1) {
    slice(0, m);
    return;
  }
  // Aligned, near-even partition: each worker gets chunk_rows rows rounded
  // up to the alignment; the last worker takes the remainder.
  const std::int64_t chunk_rows =
      ((m + t - 1) / t + kRowAlign - 1) / kRowAlign * kRowAlign;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(t));
  for (std::int64_t r0 = 0; r0 < m; r0 += chunk_rows) {
    const std::int64_t r1 = std::min<std::int64_t>(r0 + chunk_rows, m);
    workers.emplace_back([&slice, r0, r1] { slice(r0, r1); });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace

void gemm_threaded(Backend serial, int threads, GemmMode mode, std::int64_t m,
                   std::int64_t n, std::int64_t k, const double* a,
                   std::int64_t lda, const double* b, std::int64_t ldb,
                   double* c, std::int64_t ldc) {
  fan_out(threads, m, [&](std::int64_t r0, std::int64_t r1) {
    dispatch_gemm(serial, 1, mode, r1 - r0, n, k, a + r0 * lda, lda, b, ldb,
                  c + r0 * ldc, ldc);
  });
}

void gemm_bt_threaded(Backend serial, int threads, GemmMode mode,
                      std::int64_t m, std::int64_t n, std::int64_t k,
                      const double* a, std::int64_t lda, const double* bt,
                      std::int64_t ldbt, double* c, std::int64_t ldc) {
  fan_out(threads, m, [&](std::int64_t r0, std::int64_t r1) {
    dispatch_gemm_bt(serial, 1, mode, r1 - r0, n, k, a + r0 * lda, lda, bt,
                     ldbt, c + r0 * ldc, ldc);
  });
}

}  // namespace mri::kernels::detail
