// Single-node LU decomposition with partial pivoting — Algorithm 1 of the
// paper. This is the kernel the MapReduce pipeline runs on the master node
// for every leaf block (order <= nb).
#pragma once

#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"
#include "sim/io_stats.hpp"

namespace mri {

struct LuResult {
  /// Packed factors: U on and above the diagonal, L strictly below (L's unit
  /// diagonal is implicit) — the in-place layout of Algorithm 1.
  Matrix packed;
  /// Row permutation S: row i of P·A is row S[i] of A, and P·A = L·U.
  Permutation perm;

  Matrix unit_lower() const;
  Matrix upper() const;
};

/// LU-decomposes a square matrix with partial pivoting. Throws
/// NumericalError if the matrix is (numerically) singular.
LuResult lu_decompose(Matrix a);

/// Flop cost of an n-order LU (n³/3 mults + n³/3 adds, the paper's Table 1
/// leading term).
IoStats lu_cost(Index n);

}  // namespace mri
