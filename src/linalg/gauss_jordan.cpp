#include "linalg/gauss_jordan.hpp"

#include <cmath>

namespace mri {

Matrix gauss_jordan_invert(Matrix a) {
  MRI_REQUIRE(a.square(), "gauss_jordan_invert expects a square matrix");
  const Index n = a.rows();
  Matrix inv = Matrix::identity(n);

  // Forward phase: reduce [A | I] so the left side becomes upper triangular
  // with unit diagonal.
  for (Index i = 0; i < n; ++i) {
    Index pivot = i;
    double best = std::abs(a(i, i));
    for (Index j = i + 1; j < n; ++j) {
      const double v = std::abs(a(j, i));
      if (v > best) {
        best = v;
        pivot = j;
      }
    }
    if (best == 0.0) {
      throw NumericalError("singular matrix in Gauss-Jordan at column " +
                           std::to_string(i));
    }
    if (pivot != i) {
      std::swap_ranges(a.row(i).begin(), a.row(i).end(), a.row(pivot).begin());
      std::swap_ranges(inv.row(i).begin(), inv.row(i).end(),
                       inv.row(pivot).begin());
    }
    const double scale = 1.0 / a(i, i);
    for (double& v : a.row(i)) v *= scale;
    for (double& v : inv.row(i)) v *= scale;
    for (Index j = i + 1; j < n; ++j) {
      const double factor = a(j, i);
      if (factor == 0.0) continue;
      for (Index k = i; k < n; ++k) a(j, k) -= factor * a(i, k);
      for (Index k = 0; k < n; ++k) inv(j, k) -= factor * inv(i, k);
    }
  }

  // Backward phase: clear above the diagonal, leaving [I | A^-1].
  for (Index i = n - 1; i >= 0; --i) {
    for (Index j = i - 1; j >= 0; --j) {
      const double factor = a(j, i);
      if (factor == 0.0) continue;
      a(j, i) = 0.0;
      for (Index k = 0; k < n; ++k) inv(j, k) -= factor * inv(i, k);
    }
  }
  return inv;
}

IoStats gauss_jordan_cost(Index n) {
  IoStats io;
  const auto cube = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n);
  io.mults = cube;
  io.adds = cube;
  return io;
}

std::int64_t gauss_jordan_pipeline_steps(Index n) { return n; }

}  // namespace mri
