// Gauss-Jordan inversion with partial pivoting (§2 of the paper).
//
// Kept as the classical single-node baseline: same n³ multiply/add count as
// LU, but its n sequential elimination steps are why the paper rejects it
// for MapReduce (a pipeline of ~n jobs instead of ~n/nb).
#pragma once

#include "matrix/matrix.hpp"
#include "sim/io_stats.hpp"

namespace mri {

/// Returns A⁻¹. Throws NumericalError if A is numerically singular.
Matrix gauss_jordan_invert(Matrix a);

/// n³ mults + n³ adds (paper §2).
IoStats gauss_jordan_cost(Index n);

/// Number of sequential elimination steps — i.e. the length of the
/// MapReduce pipeline a Gauss-Jordan implementation would need (paper §4.2).
std::int64_t gauss_jordan_pipeline_steps(Index n);

}  // namespace mri
