// Async DAG job executor over one JobRunner and one shared cluster.
//
// submit() enqueues a job (with explicit dependencies on earlier handles)
// for real execution on a background thread and returns immediately;
// wait() blocks for the job's results and places it — together with any
// not-yet-placed ancestors — on the simulated timeline. Concurrently
// eligible jobs share the cluster through a SlotPool: each phase leases the
// slots other jobs still occupy at its start, so independent jobs overlap
// where free slots exist and total_sim_seconds() is the DAG makespan, not a
// serial sum.
//
// Determinism and sequential equivalence:
//   * Simulated placement happens only on the driver thread, in a canonical
//     order — ready jobs by (ready time, submission index) — so timings are
//     a pure function of the submitted DAG, never of real thread timing.
//   * A job's ready time is max(master frontier at submit, dependencies'
//     finish times); the master frontier advances only when the driver
//     wait()s for a job or charges add_master_work(). A strictly sequential
//     submit+wait pattern therefore leases an idle cluster at a start equal
//     to the old running sum, reproducing the pre-DAG Pipeline numbers
//     bit-for-bit (same schedule_phase heap states, same additions in the
//     same order).
//
// Hadoop 1.x (which the paper ran on) executed one job at a time; this
// executor is the "what if the inversion plan were a DAG" counterfactual —
// see DESIGN.md.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/runtime.hpp"
#include "sim/trace.hpp"

namespace mri::mr {

/// Opaque reference to a submitted job. Value-copyable; invalid() handles
/// (the default) are permitted as "no dependency" placeholders.
struct JobHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// Construction knobs for graphs that share a cluster with other graphs —
/// the service layer runs one JobGraph per admitted request against one
/// SlotPool. Defaults reproduce the standalone single-graph behaviour.
struct JobGraphOptions {
  /// Borrowed arbiter shared with other graphs; null = the graph owns a
  /// private pool sized to the runner's cluster. Must outlive the graph and
  /// match the cluster's slot count (re-validated on every lease).
  SlotPool* shared_pool = nullptr;
  /// Starting master frontier: the absolute run time this graph's timeline
  /// begins at (a service request's dispatch time). Job start_seconds and
  /// master spans come out absolute, so many graphs lay onto one timeline.
  double origin_seconds = 0.0;
  /// Fair-share identity for slot leases (see SlotPool::set_shares); empty
  /// leases the whole pool first-come first-served.
  std::string tenant;
  /// Called at destruction for every job that executed with an error nobody
  /// wait()ed for — instead of losing the failure. Null = log at ERROR.
  std::function<void(const std::string& job, std::exception_ptr)>
      abandoned_error_handler;
};

class JobGraph {
 public:
  explicit JobGraph(JobRunner* runner) : JobGraph(runner, JobGraphOptions{}) {}
  JobGraph(JobRunner* runner, JobGraphOptions options);
  /// Joins the worker after draining every submitted job (abandoned jobs
  /// still execute so their outcome is known), then reports any errors that
  /// were never consumed by wait() through the abandoned-error handler.
  ~JobGraph();
  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;

  /// Enqueues `spec` for execution after `deps` (all must be handles from
  /// this graph). Real execution starts immediately in the background —
  /// submission order — independent of the simulated schedule.
  JobHandle submit(JobSpec spec, std::vector<JobHandle> deps = {});

  /// Blocks until `h` has executed, places it (and any unplaced ancestors)
  /// on the simulated timeline, advances the master frontier to its finish,
  /// and returns its result. Rethrows the job's JobError if it failed.
  const JobResult& wait(JobHandle h);

  /// wait()s for every submitted job; the frontier becomes the makespan.
  void run_all();

  /// Charges serial master-node work at the current frontier and records a
  /// master-lane span for the run report / Chrome trace.
  void add_master_work(const IoStats& io);

  // Accessors require every submitted job to have been placed (wait()ed or
  // run_all()) — totals of a half-scheduled DAG would be meaningless.
  /// Makespan of the executed DAG: max over job finish times and the master
  /// frontier. Equals the serial sum for purely sequential submissions.
  double total_sim_seconds() const;
  double master_seconds() const { return master_seconds_; }
  const IoStats& total_io() const;
  int job_count() const;
  int failures_recovered() const;
  int backups_run() const;
  /// Results in submission order, with run-relative start_seconds stamped.
  const std::vector<JobResult>& jobs() const;
  const std::vector<MasterSpan>& master_spans() const { return master_spans_; }

  const JobRunner& runner() const { return *runner_; }

 private:
  struct Node {
    JobSpec spec;
    std::vector<int> deps;
    double submit_frontier = 0.0;  // master frontier when submitted
    // Worker -> driver handoff, guarded by mu_.
    bool executed = false;
    ExecutedJob work;
    std::exception_ptr error;
    bool error_consumed = false;  // rethrown by wait(); not "abandoned"
    // Driver-thread-only simulated placement.
    bool placed = false;
    double finish_time = 0.0;
    JobResult result;
  };

  void worker_loop();
  /// Places the unplaced ancestor closure of `targets` (inclusive) on the
  /// timeline in (ready time, submission index) order.
  void place_closure(const std::vector<int>& targets);
  void require_all_placed(const char* what) const;

  JobRunner* runner_;
  JobGraphOptions options_;
  std::unique_ptr<SlotPool> owned_pool_;  // null when options_.shared_pool set
  SlotPool* pool_;
  std::vector<std::unique_ptr<Node>> nodes_;  // guarded by mu_ (growth)
  double frontier_ = 0.0;       // driver-only: master timeline position
  double master_seconds_ = 0.0;
  IoStats io_;
  int failures_ = 0;
  int backups_ = 0;
  std::vector<MasterSpan> master_spans_;
  mutable std::vector<JobResult> jobs_cache_;
  mutable bool jobs_cache_dirty_ = false;

  std::mutex mu_;
  std::condition_variable cv_work_;  // worker: new submissions / stop
  std::condition_variable cv_done_;  // driver: a job finished executing
  std::size_t next_exec_ = 0;        // next node the worker runs
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace mri::mr
