#include "mapreduce/job_graph.hpp"

#include <algorithm>
#include <tuple>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace mri::mr {

JobGraph::JobGraph(JobRunner* runner, JobGraphOptions options)
    : runner_(runner), options_(std::move(options)) {
  MRI_REQUIRE(runner != nullptr, "JobGraph needs a JobRunner");
  if (options_.shared_pool != nullptr) {
    pool_ = options_.shared_pool;
  } else {
    owned_pool_ = std::make_unique<SlotPool>(runner->cluster().total_slots());
    pool_ = owned_pool_.get();
  }
  frontier_ = options_.origin_seconds;
  worker_ = std::thread([this] { worker_loop(); });
}

JobGraph::~JobGraph() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  // The worker drains every submitted job before exiting (see worker_loop),
  // so abandoned jobs still execute and their outcome is knowable here.
  worker_.join();
  for (const auto& node : nodes_) {
    if (node->error == nullptr || node->error_consumed) continue;
    if (options_.abandoned_error_handler != nullptr) {
      options_.abandoned_error_handler(node->spec.name, node->error);
      continue;
    }
    try {
      std::rethrow_exception(node->error);
    } catch (const std::exception& e) {
      MRI_ERROR() << "job '" << node->spec.name
                  << "' failed but was never wait()ed: " << e.what();
    } catch (...) {
      MRI_ERROR() << "job '" << node->spec.name
                  << "' failed but was never wait()ed (non-standard exception)";
    }
  }
}

void JobGraph::worker_loop() {
  for (;;) {
    Node* node = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || next_exec_ < nodes_.size();
      });
      // Drain before honouring stop_: a destructor tearing the graph down
      // must not discard submitted-but-never-executed jobs (their errors —
      // and their DFS side effects — would be silently lost). The predicate
      // only passes with nothing left to run when stop_ is set.
      if (next_exec_ >= nodes_.size()) return;
      node = nodes_[next_exec_].get();
      ++next_exec_;
    }
    // Dependencies are always earlier submissions and the worker drains in
    // submission order, so a job's inputs exist in the DFS by the time it
    // runs. The real work happens outside the lock.
    ExecutedJob work;
    std::exception_ptr error;
    try {
      work = runner_->execute(node->spec);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      node->work = std::move(work);
      node->error = error;
      node->executed = true;
    }
    cv_done_.notify_all();
  }
}

JobHandle JobGraph::submit(JobSpec spec, std::vector<JobHandle> deps) {
  auto node = std::make_unique<Node>();
  node->spec = std::move(spec);
  for (const JobHandle& dep : deps) {
    if (!dep.valid()) continue;  // "no dependency" placeholder
    MRI_REQUIRE(dep.id < static_cast<int>(nodes_.size()),
                "dependency handle " << dep.id << " is not from this graph");
    node->deps.push_back(dep.id);
  }
  node->submit_frontier = frontier_;
  JobHandle handle;
  handle.id = static_cast<int>(nodes_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.push_back(std::move(node));
  }
  jobs_cache_dirty_ = true;
  cv_work_.notify_all();
  return handle;
}

void JobGraph::place_closure(const std::vector<int>& targets) {
  // Collect the unplaced ancestor closure.
  std::vector<int> pending;
  std::vector<int> stack(targets);
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(id)]) continue;
    seen[static_cast<std::size_t>(id)] = true;
    Node& node = *nodes_[static_cast<std::size_t>(id)];
    if (node.placed) continue;
    pending.push_back(id);
    for (int dep : node.deps) stack.push_back(dep);
  }

  // Place in canonical order: among ready jobs (all deps placed), earliest
  // ready time first, submission index breaking ties. This keeps simulated
  // timings a function of the DAG alone, not of worker-thread timing.
  std::sort(pending.begin(), pending.end());
  while (!pending.empty()) {
    int best = -1;
    std::size_t best_at = 0;
    double best_ready = 0.0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      Node& node = *nodes_[static_cast<std::size_t>(pending[i])];
      double ready = node.submit_frontier;
      bool deps_placed = true;
      for (int dep : node.deps) {
        const Node& d = *nodes_[static_cast<std::size_t>(dep)];
        if (!d.placed) {
          deps_placed = false;
          break;
        }
        ready = std::max(ready, d.finish_time);
      }
      if (!deps_placed) continue;
      if (best < 0 || std::tie(ready, pending[i]) <
                          std::tie(best_ready, pending[best_at])) {
        best = pending[i];
        best_at = i;
        best_ready = ready;
      }
    }
    MRI_CHECK_MSG(best >= 0, "dependency cycle in job graph");
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_at));

    Node& node = *nodes_[static_cast<std::size_t>(best)];
    ExecutedJob work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&node] { return node.executed; });
      if (node.error != nullptr) {
        node.error_consumed = true;  // surfaced here, not abandoned
        std::rethrow_exception(node.error);
      }
      work = std::move(node.work);
    }
    node.result =
        runner_->finish(std::move(work), pool_, best_ready, options_.tenant);
    node.finish_time = best_ready + node.result.sim_seconds;
    node.placed = true;
    io_ += node.result.io;
    failures_ += node.result.failures_recovered;
    backups_ += node.result.backups_run;
    jobs_cache_dirty_ = true;
  }
}

const JobResult& JobGraph::wait(JobHandle h) {
  MRI_REQUIRE(h.valid() && h.id < static_cast<int>(nodes_.size()),
              "wait() on a handle not from this graph");
  Node& node = *nodes_[static_cast<std::size_t>(h.id)];
  if (!node.placed) place_closure({h.id});
  // The master observes this job's completion: the frontier (and with it
  // every later submission's earliest start) moves to its finish.
  frontier_ = std::max(frontier_, node.finish_time);
  return node.result;
}

void JobGraph::run_all() {
  std::vector<int> all;
  all.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->placed) all.push_back(static_cast<int>(i));
  }
  if (!all.empty()) place_closure(all);
  for (const auto& node : nodes_) {
    frontier_ = std::max(frontier_, node->finish_time);
  }
}

void JobGraph::add_master_work(const IoStats& io) {
  const double t = runner_->cluster().cost_model().compute_seconds(io);
  MasterSpan span;
  span.start = frontier_;
  span.end = frontier_ + t;
  span.io = io;
  master_spans_.push_back(span);
  master_seconds_ += t;
  frontier_ += t;
  io_ += io;
}

void JobGraph::require_all_placed(const char* what) const {
  for (const auto& node : nodes_) {
    MRI_CHECK_MSG(node->placed, what << " read before job '"
                                     << node->spec.name
                                     << "' was wait()ed or run_all()");
  }
}

double JobGraph::total_sim_seconds() const {
  require_all_placed("total_sim_seconds");
  double makespan = frontier_;
  for (const auto& node : nodes_) {
    makespan = std::max(makespan, node->finish_time);
  }
  return makespan;
}

const IoStats& JobGraph::total_io() const {
  require_all_placed("total_io");
  return io_;
}

int JobGraph::job_count() const {
  require_all_placed("job_count");
  return static_cast<int>(nodes_.size());
}

int JobGraph::failures_recovered() const {
  require_all_placed("failures_recovered");
  return failures_;
}

int JobGraph::backups_run() const {
  require_all_placed("backups_run");
  return backups_;
}

const std::vector<JobResult>& JobGraph::jobs() const {
  require_all_placed("jobs");
  if (jobs_cache_dirty_) {
    jobs_cache_.clear();
    jobs_cache_.reserve(nodes_.size());
    for (const auto& node : nodes_) jobs_cache_.push_back(node->result);
    jobs_cache_dirty_ = false;
  }
  return jobs_cache_;
}

}  // namespace mri::mr
