#include "mapreduce/shuffle.hpp"

#include "common/error.hpp"

namespace mri::mr {

int floor_mod_partition(std::int64_t key, int num_partitions) {
  MRI_REQUIRE(num_partitions >= 1, "floor_mod_partition needs >= 1 partition");
  return static_cast<int>(((key % num_partitions) + num_partitions) %
                          num_partitions);
}

ShuffleResult shuffle(std::vector<std::vector<KeyValue>> map_outputs,
                      int num_partitions,
                      const std::function<int(std::int64_t, int)>& partitioner,
                      int cluster_size) {
  MRI_REQUIRE(num_partitions >= 1, "shuffle needs >= 1 partition");
  ShuffleResult result;
  result.partitions.resize(static_cast<std::size_t>(num_partitions));
  // Bytes each reduce partition pulls from each map node (ordered map keeps
  // the flattened fetch lists in ascending node order, deterministically).
  std::vector<std::map<int, std::uint64_t>> fetch_bytes;
  if (cluster_size > 0) {
    fetch_bytes.resize(static_cast<std::size_t>(num_partitions));
  }
  for (std::size_t task = 0; task < map_outputs.size(); ++task) {
    const int map_node =
        cluster_size > 0 ? static_cast<int>(task) % cluster_size : -1;
    for (auto& kv : map_outputs[task]) {
      const int p = partitioner ? partitioner(kv.key, num_partitions)
                                : floor_mod_partition(kv.key, num_partitions);
      MRI_CHECK_MSG(p >= 0 && p < num_partitions,
                    "partitioner returned " << p << " for key " << kv.key);
      const std::uint64_t bytes = sizeof(std::int64_t) + kv.value.size();
      result.total_bytes += bytes;
      // Reduce task p runs on node p % cluster_size (mirrors JobRunner's
      // task placement); pairs staying on their mapper's node never cross
      // the network in Hadoop.
      if (cluster_size > 0 && p % cluster_size == map_node) {
        result.local_bytes += bytes;
      } else {
        result.remote_bytes += bytes;
      }
      if (cluster_size > 0) {
        fetch_bytes[static_cast<std::size_t>(p)][map_node] += bytes;
      }
      result.partitions[static_cast<std::size_t>(p)][kv.key].push_back(
          std::move(kv.value));
    }
  }
  if (cluster_size > 0) {
    result.fetch_sources.resize(static_cast<std::size_t>(num_partitions));
    for (std::size_t p = 0; p < fetch_bytes.size(); ++p) {
      result.fetch_sources[p].assign(fetch_bytes[p].begin(),
                                     fetch_bytes[p].end());
    }
  }
  return result;
}

}  // namespace mri::mr
