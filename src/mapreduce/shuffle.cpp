#include "mapreduce/shuffle.hpp"

#include "common/error.hpp"

namespace mri::mr {

ShuffleResult shuffle(std::vector<std::vector<KeyValue>> map_outputs,
                      int num_partitions,
                      const std::function<int(std::int64_t, int)>& partitioner) {
  MRI_REQUIRE(num_partitions >= 1, "shuffle needs >= 1 partition");
  ShuffleResult result;
  result.partitions.resize(static_cast<std::size_t>(num_partitions));
  for (auto& task_output : map_outputs) {
    for (auto& kv : task_output) {
      int p;
      if (partitioner) {
        p = partitioner(kv.key, num_partitions);
      } else {
        p = static_cast<int>(((kv.key % num_partitions) + num_partitions) %
                             num_partitions);
      }
      MRI_CHECK_MSG(p >= 0 && p < num_partitions,
                    "partitioner returned " << p << " for key " << kv.key);
      result.total_bytes += sizeof(std::int64_t) + kv.value.size();
      result.partitions[static_cast<std::size_t>(p)][kv.key].push_back(
          std::move(kv.value));
    }
  }
  return result;
}

}  // namespace mri::mr
