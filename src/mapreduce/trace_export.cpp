#include "mapreduce/trace_export.hpp"

#include <algorithm>

#include "net/topology.hpp"

namespace mri::mr {

namespace {

/// LinkLoad (simulator type) -> LinkReport (report type). Names are left
/// empty in per-phase lanes; the run-level NetworkReport carries them.
std::vector<LinkReport> to_link_reports(
    const std::vector<net::LinkLoad>& loads) {
  std::vector<LinkReport> out(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    out[i].bytes = loads[i].bytes;
    out[i].busy_seconds = loads[i].busy_seconds;
    out[i].peak_utilization = loads[i].peak_utilization;
  }
  return out;
}

}  // namespace

std::vector<PhaseTrace> phase_traces(const std::vector<JobResult>& jobs) {
  std::vector<PhaseTrace> phases;
  phases.reserve(jobs.size() * 2);
  for (const JobResult& job : jobs) {
    // sim_seconds = launch + map + recovery stall + reduce, so the launch
    // overhead is the remainder; the map phase starts once the job is
    // launched. Recovery-wave re-executions ride in map_trace (their events
    // start after the nominal phase end) and the reduce phase starts only
    // after the stall.
    const double launch = std::max(
        0.0, job.sim_seconds - job.map_phase_seconds - job.recovery_seconds -
                 job.reduce_phase_seconds);
    if (!job.map_trace.empty()) {
      PhaseTrace p;
      p.job = job.name;
      p.phase = "map";
      p.start = job.start_seconds + launch;
      p.duration = job.map_phase_seconds + job.recovery_seconds;
      p.events = job.map_trace;
      p.link_loads = to_link_reports(job.map_link_loads);
      phases.push_back(std::move(p));
    }
    if (!job.reduce_trace.empty()) {
      PhaseTrace p;
      p.job = job.name;
      p.phase = "reduce";
      p.start = job.start_seconds + launch + job.map_phase_seconds +
                job.recovery_seconds;
      p.duration = job.reduce_phase_seconds;
      p.events = job.reduce_trace;
      p.link_loads = to_link_reports(job.reduce_link_loads);
      phases.push_back(std::move(p));
    }
  }
  return phases;
}

RunReport build_run_report(const std::vector<JobResult>& jobs,
                           const Cluster& cluster,
                           const MetricsRegistry* metrics,
                           const std::vector<MasterSpan>& master_spans,
                           const ChaosEngine* chaos,
                           const engine::EngineStats* engine_stats,
                           const dfs::Dfs* fs) {
  RunReport report;
  report.total_slots = cluster.total_slots();
  report.jobs = static_cast<int>(jobs.size());
  for (const JobResult& job : jobs) {
    report.sim_seconds = std::max(
        report.sim_seconds, job.start_seconds + job.sim_seconds);
    report.io += job.io;
    report.failures_recovered += job.failures_recovered;
    report.backups_run += job.backups_run;
    report.shuffle_local_bytes += job.shuffle_local_bytes;
    report.shuffle_remote_bytes += job.shuffle_remote_bytes;
    report.recovery.tasks_recomputed += job.tasks_recomputed;
    report.recovery.attempts_killed += job.chaos_attempts_killed;
    report.recovery.recovery_io += job.recovery_io;
    report.recovery.recovery_seconds += job.recovery_seconds;
    JobSpan span;
    span.job = job.name;
    span.start = job.start_seconds;
    span.end = job.start_seconds + job.sim_seconds;
    report.job_spans.push_back(std::move(span));
  }
  // The master lane stretches the timeline but its footprint stays out of
  // report.io, which remains the job-side total it always was (pipeline
  // totals already charge master work separately).
  report.master_spans = master_spans;
  for (const MasterSpan& span : master_spans) {
    report.sim_seconds = std::max(report.sim_seconds, span.end);
  }
  if (metrics != nullptr) {
    report.dfs_io = metrics->io_totals();
    report.counters = metrics->counters();
    const auto survived = report.counters.find("dfs_read_errors_survived");
    if (survived != report.counters.end()) {
      report.recovery.read_errors_survived = survived->second;
    }
  }
  if (chaos != nullptr) {
    const RecoveryStats& stats = chaos->stats();
    report.recovery.nodes_killed = stats.nodes_killed;
    report.recovery.nodes_degraded = stats.nodes_degraded;
    report.recovery.read_errors_injected = stats.read_errors_injected;
    report.recovery.re_replicated_bytes = stats.re_replicated_bytes;
    report.recovery.re_replicated_blocks = stats.re_replicated_blocks;
    report.recovery.blocks_lost = stats.blocks_lost;
    report.recovery.re_replication_seconds = stats.re_replication_seconds;
    report.recovery.request_retries = stats.request_retries;
    report.recovery.requests_unrecoverable = stats.requests_unrecoverable;
    report.recovery.partitions_recomputed = stats.partitions_recomputed;
    report.recovery.lineage_waves = stats.lineage_waves;
    report.recovery.lineage_recompute_seconds =
        stats.lineage_recompute_seconds;
    report.recovery.lineage_recomputed_bytes =
        stats.lineage_recomputed_bytes;
    report.recovery.ec_cells_reconstructed = stats.ec_cells_reconstructed;
    report.recovery.ec_reconstructed_bytes = stats.ec_reconstructed_bytes;
    // Only events that actually fired within the run belong on the faults
    // lane; the schedule may extend past the point the run ended.
    for (const ChaosEvent& e : chaos->events()) {
      if (e.at <= report.sim_seconds) report.chaos_events.push_back(e);
    }
  }
  // Flow-level network section: configuration from the cluster's topology,
  // per-link totals and locality counters summed over the jobs.
  const net::Topology* topo = cluster.topology().get();
  if (topo != nullptr && topo->racked()) {
    report.network.enabled = true;
    report.network.topology = "racked";
    report.network.racks = topo->racks();
    report.network.oversubscription = topo->options().oversubscription;
    report.network.rack_aware_placement =
        topo->options().rack_aware_placement;
    report.network.links.resize(static_cast<std::size_t>(topo->num_links()));
    for (int l = 0; l < topo->num_links(); ++l) {
      report.network.links[static_cast<std::size_t>(l)].name =
          topo->link_name(l);
    }
  }
  for (const JobResult& job : jobs) {
    report.network.node_local_bytes += job.net_node_local_bytes;
    report.network.rack_local_bytes += job.net_rack_local_bytes;
    report.network.cross_rack_bytes += job.net_cross_rack_bytes;
    report.network.rack_local_attempts += job.rack_local_attempts;
    report.network.cross_rack_attempts += job.cross_rack_attempts;
    for (const auto* loads : {&job.map_link_loads, &job.reduce_link_loads}) {
      for (std::size_t i = 0;
           i < loads->size() && i < report.network.links.size(); ++i) {
        LinkReport& l = report.network.links[i];
        l.bytes += (*loads)[i].bytes;
        l.busy_seconds += (*loads)[i].busy_seconds;
        l.peak_utilization =
            std::max(l.peak_utilization, (*loads)[i].peak_utilization);
      }
    }
  }
  // SPIN engine section: totals copied over, event lanes laid onto the run
  // timeline. A spill happens inside SpinEngine::begin_job of the admitting
  // job, so its marker lands at that job's map-phase start (the launch
  // remainder mirrors phase_traces' formula).
  if (engine_stats != nullptr) {
    const engine::EngineStats& es = *engine_stats;
    report.engine.enabled = true;
    report.engine.cache_insertions = es.cache.insertions;
    report.engine.cache_evictions = es.cache.evictions;
    report.engine.cache_hits = es.cache.hits;
    report.engine.cache_resident_bytes = es.cache.resident_bytes;
    report.engine.cache_peak_resident_bytes = es.cache.peak_resident_bytes;
    report.engine.spilled_bytes = es.cache.spilled_bytes;
    report.engine.tracked_partitions = es.tracked_partitions;
    report.engine.partitions_recomputed = es.partitions_recomputed;
    report.engine.lineage_waves = es.lineage_waves;
    report.engine.recompute_seconds = es.recompute_seconds;
    report.engine.recomputed_bytes = es.recomputed_bytes;
    for (const JobResult& job : jobs) {
      report.engine.lineage_stall_seconds += job.lineage_stall_seconds;
    }
    for (const engine::SpillEvent& s : es.spills) {
      EngineSpillSpan span;
      if (s.job_ordinal >= 1 && s.job_ordinal <= jobs.size()) {
        const JobResult& job = jobs[s.job_ordinal - 1];
        const double launch = std::max(
            0.0, job.sim_seconds - job.map_phase_seconds -
                     job.recovery_seconds - job.reduce_phase_seconds);
        span.at = job.start_seconds + launch;
      }
      span.path = s.path;
      span.bytes = s.bytes;
      report.engine.spills.push_back(std::move(span));
    }
    for (const engine::RecomputeEvent& r : es.recomputes) {
      EngineRecomputeSpan span;
      span.at = r.at;
      span.duration = r.duration;
      span.wave = r.wave;
      span.path = r.path;
      span.bytes = r.bytes;
      report.engine.recomputes.push_back(std::move(span));
    }
  }
  // Storage section: policy/footprint from the filesystem, traffic totals
  // from the DFS-side metrics, repair lane from the kill-path events.
  if (fs != nullptr) {
    StorageReport& sto = report.storage;
    sto.policy = dfs::to_string(fs->config().storage_policy);
    if (fs->config().storage_policy == dfs::StoragePolicy::kErasureCoded) {
      sto.ec_k = fs->config().ec.k;
      sto.ec_m = fs->config().ec.m;
    }
    sto.logical_bytes = fs->logical_bytes_stored();
    sto.physical_bytes = fs->physical_bytes_stored();
    sto.physical_overhead =
        sto.logical_bytes > 0
            ? static_cast<double>(sto.physical_bytes) /
                  static_cast<double>(sto.logical_bytes)
            : 0.0;
    sto.parity_bytes = report.dfs_io.bytes_parity;
    sto.reconstructed_bytes = report.dfs_io.bytes_reconstructed;
    sto.degraded_reads = report.dfs_io.degraded_reads;
    auto counter = [&report](const char* name) -> std::uint64_t {
      const auto it = report.counters.find(name);
      return it != report.counters.end() ? it->second : 0;
    };
    sto.cells_reconstructed = counter("dfs_ec_cells_reconstructed");
    const dfs::HotCacheStats hot = fs->hot_cache_stats();
    sto.hot_cache_capacity_bytes = hot.capacity_bytes;
    sto.hot_cache_resident_bytes = hot.resident_bytes;
    sto.hot_cache_resident_files = hot.resident_files;
    sto.hot_cache_hits = hot.hits;
    sto.hot_cache_hit_bytes = hot.hit_bytes;
    for (const dfs::StorageReconstructionEvent& e : fs->storage_events()) {
      StorageReconstruction r;
      r.at = e.at;
      r.node = e.node;
      r.cells = e.cells;
      r.bytes = e.bytes;
      r.seconds = e.seconds;
      sto.reconstructions.push_back(std::move(r));
    }
    // Integrity section: configuration plus the DFS's checksum / corruption
    // / repair / scrubber totals and event lanes.
    IntegrityReport& integ = report.integrity;
    integ.verify_checksums = fs->config().verify_checksums;
    integ.scrub_interval_seconds = fs->config().scrub_interval_seconds;
    const dfs::IntegrityStats is = fs->integrity_stats();
    integ.cells_checksummed = is.cells_checksummed;
    integ.cells_verified = is.cells_verified;
    integ.bytes_verified = is.bytes_verified;
    integ.corruptions_injected = is.corruptions_injected;
    integ.corruptions_detected = is.corruptions_detected;
    integ.cells_repaired_copy = is.cells_repaired_copy;
    integ.cells_repaired_ec = is.cells_repaired_ec;
    integ.cells_repaired_lineage = is.cells_repaired_lineage;
    integ.cells_quarantined = is.cells_quarantined;
    integ.scrub_passes = is.scrub_passes;
    integ.scrub_bytes_scanned = is.scrub_bytes_scanned;
    integ.scrub_seconds = is.scrub_seconds;
    for (const dfs::IntegrityRepairEvent& e : is.repairs) {
      IntegrityRepairSpan span;
      span.at = e.at;
      span.node = e.node;
      span.path = e.path;
      span.cell = e.cell;
      span.bytes = e.bytes;
      span.kind = e.kind;
      span.by_scrubber = e.by_scrubber;
      integ.repairs.push_back(std::move(span));
    }
    for (const dfs::ScrubPassEvent& e : is.scrubs) {
      ScrubPassSpan span;
      span.at = e.at;
      span.seconds = e.seconds;
      span.bytes_scanned = e.bytes_scanned;
      span.cells_verified = e.cells_verified;
      span.cells_repaired = e.cells_repaired;
      integ.scrub_spans.push_back(std::move(span));
    }
  }
  report.phases = phase_traces(jobs);
  aggregate_run_report(&report);
  return report;
}

}  // namespace mri::mr
