#include "mapreduce/pipeline.hpp"

namespace mri::mr {

const JobResult& Pipeline::run(const JobSpec& spec) {
  JobResult result = runner_->run(spec);
  result.start_seconds = sim_seconds_;  // place the job on the run timeline
  jobs_.push_back(std::move(result));
  const JobResult& r = jobs_.back();
  sim_seconds_ += r.sim_seconds;
  io_ += r.io;
  failures_ += r.failures_recovered;
  backups_ += r.backups_run;
  return r;
}

void Pipeline::add_master_work(const IoStats& io) {
  const double t = runner_->cluster().cost_model().compute_seconds(io);
  master_seconds_ += t;
  sim_seconds_ += t;
  io_ += io;
}

}  // namespace mri::mr
