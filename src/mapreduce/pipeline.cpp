#include "mapreduce/pipeline.hpp"

namespace mri::mr {

const JobResult& Pipeline::run(const JobSpec& spec) {
  jobs_.push_back(runner_->run(spec));
  const JobResult& r = jobs_.back();
  sim_seconds_ += r.sim_seconds;
  io_ += r.io;
  failures_ += r.failures_recovered;
  return r;
}

void Pipeline::add_master_work(const IoStats& io) {
  const double t = runner_->cluster().cost_model().compute_seconds(io);
  master_seconds_ += t;
  sim_seconds_ += t;
  io_ += io;
}

}  // namespace mri::mr
