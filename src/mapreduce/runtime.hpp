// JobRunner: executes one MapReduce job for real (thread pool) and charges
// simulated time (scheduler + cost model).
//
// Execution order per job:
//   1. map tasks run in parallel — each reads its input file, runs the user
//      Mapper, accounts its own IoStats, and may write DFS output directly;
//   2. injected failures are turned into "ghost" attempts (half the work of
//      the successful attempt — the task died midway) that cost simulated
//      time and a node, but never touch the DFS, matching Hadoop's task
//      commit protocol where failed attempts' output is discarded;
//   3. the shuffle partitions/groups/sorts emitted pairs;
//   4. reduce tasks run in parallel the same way;
//   5. job simulated time = launch overhead + map phase + reduce phase.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "dfs/dfs.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/scheduler.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/metrics.hpp"

namespace mri::engine {
class SpinEngine;
}

namespace mri::mr {

/// A job whose real work (map, shuffle, reduce, DFS writes) has completed
/// but whose simulated timeline has not been decided yet. `result` carries
/// everything scheduling-independent (io, counts, shuffle bytes, recovered
/// failures); the per-task attempt lists feed schedule_phase() in finish().
struct ExecutedJob {
  JobResult result;
  std::vector<std::vector<Attempt>> map_attempts;
  std::vector<std::vector<Attempt>> reduce_attempts;
};

class JobRunner {
 public:
  /// All pointers are borrowed and must outlive the runner. `failures`,
  /// `metrics` and `chaos` may be null. With a chaos engine attached,
  /// finish() overlays its fault schedule on both phases (node outages,
  /// stragglers), re-executes completed map tasks whose outputs died with a
  /// node before the reduce phase consumed them, and advances the engine to
  /// the job's end so DFS-side consequences (block loss, re-replication)
  /// land before the next job reads.
  /// With a SPIN `engine` attached, execute() opens every job through
  /// engine::SpinEngine::begin_job (cache epoch + eviction pass; the spill
  /// accounting rides the job's first map attempt), and finish() stalls a
  /// job whose start predates the engine's lineage-recovery completion.
  JobRunner(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
            FailureInjector* failures = nullptr,
            MetricsRegistry* metrics = nullptr, ChaosEngine* chaos = nullptr,
            engine::SpinEngine* engine = nullptr);

  /// Runs the job to completion. Throws JobError if a task throws.
  /// Equivalent to finish(execute(spec)) — the job owns an idle cluster.
  JobResult run(const JobSpec& spec);

  /// Phase 1: performs the job's real work. Throws JobError if a task
  /// throws. Charges no simulated time; safe to call off the driver thread
  /// (JobGraph calls it from its execution thread).
  ExecutedJob execute(const JobSpec& spec);

  /// Phase 2: places both phases on the simulated timeline starting at
  /// absolute run time `start_seconds`, leasing slots from `pool` when one
  /// is given (offsets of zero — no pool, or an idle pool — reproduce the
  /// standalone schedule exactly). A non-empty `tenant` takes the lease
  /// through the pool's fair-share policy (set_shares()): the phase may only
  /// place tasks on the tenant's slots plus slots of currently idle tenants.
  /// Re-validates on every lease that the pool still matches the cluster —
  /// pools outlive individual requests, clusters can be swapped between
  /// them. Fills durations, traces, speculation and metrics. Driver-thread
  /// only: the pool and metrics are not synchronized against concurrent
  /// finish() calls.
  JobResult finish(ExecutedJob executed, SlotPool* pool = nullptr,
                   double start_seconds = 0.0, const std::string& tenant = {});

  const Cluster& cluster() const { return *cluster_; }
  dfs::Dfs& fs() { return *fs_; }

 private:
  const Cluster* cluster_;
  dfs::Dfs* fs_;
  ThreadPool* pool_;
  FailureInjector* failures_;
  MetricsRegistry* metrics_;
  ChaosEngine* chaos_;
  engine::SpinEngine* engine_;
};

}  // namespace mri::mr
