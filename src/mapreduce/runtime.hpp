// JobRunner: executes one MapReduce job for real (thread pool) and charges
// simulated time (scheduler + cost model).
//
// Execution order per job:
//   1. map tasks run in parallel — each reads its input file, runs the user
//      Mapper, accounts its own IoStats, and may write DFS output directly;
//   2. injected failures are turned into "ghost" attempts (half the work of
//      the successful attempt — the task died midway) that cost simulated
//      time and a node, but never touch the DFS, matching Hadoop's task
//      commit protocol where failed attempts' output is discarded;
//   3. the shuffle partitions/groups/sorts emitted pairs;
//   4. reduce tasks run in parallel the same way;
//   5. job simulated time = launch overhead + map phase + reduce phase.
#pragma once

#include <memory>

#include "common/thread_pool.hpp"
#include "dfs/dfs.hpp"
#include "mapreduce/job.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/metrics.hpp"

namespace mri::mr {

class JobRunner {
 public:
  /// All pointers are borrowed and must outlive the runner. `failures` and
  /// `metrics` may be null.
  JobRunner(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
            FailureInjector* failures = nullptr,
            MetricsRegistry* metrics = nullptr);

  /// Runs the job to completion. Throws JobError if a task throws.
  JobResult run(const JobSpec& spec);

  const Cluster& cluster() const { return *cluster_; }
  dfs::Dfs& fs() { return *fs_; }

 private:
  const Cluster* cluster_;
  dfs::Dfs* fs_;
  ThreadPool* pool_;
  FailureInjector* failures_;
  MetricsRegistry* metrics_;
};

}  // namespace mri::mr
