// Bridge from executed MapReduce jobs to the sim-layer run report: lays the
// jobs' per-attempt traces onto the run timeline (job launch overhead, then
// map phase, then reduce phase) and aggregates wave/utilization/straggler
// statistics plus the failure-recovery timeline.
#pragma once

#include <vector>

#include "dfs/dfs.hpp"
#include "engine/spin_engine.hpp"
#include "mapreduce/job.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/run_report.hpp"

namespace mri::mr {

/// Run-relative phase traces for a sequence of jobs (one PhaseTrace per
/// non-empty phase). Jobs must carry the start_seconds stamped by Pipeline.
std::vector<PhaseTrace> phase_traces(const std::vector<JobResult>& jobs);

/// Builds and aggregates the full run report. `metrics` (DFS-side totals and
/// named counters) may be null. `master_spans` (Pipeline::master_spans())
/// adds the master's serial-work lane; omit it for job-only reports.
/// `chaos` (optional) fills report.recovery — job-side fields summed from
/// the JobResults, DFS/service-side fields from the engine's RecoveryStats —
/// and report.chaos_events with the events that fired within the run.
/// `engine_stats` (optional, SPIN runs) fills report.engine: cache/lineage
/// totals plus the spill and recompute event lanes — spill events carry a
/// 1-based job ordinal that is mapped onto the admitting job's map-phase
/// start (ordinals align with `jobs` order: every job calls
/// SpinEngine::begin_job exactly once, in execution order).
/// `fs` (optional) fills report.storage: the configured storage policy,
/// logical vs physical footprint, EC/reconstruction totals, the stripe-repair
/// event lane and the namenode hot-block cache counters.
RunReport build_run_report(
    const std::vector<JobResult>& jobs, const Cluster& cluster,
    const MetricsRegistry* metrics,
    const std::vector<MasterSpan>& master_spans = {},
    const ChaosEngine* chaos = nullptr,
    const engine::EngineStats* engine_stats = nullptr,
    const dfs::Dfs* fs = nullptr);

}  // namespace mri::mr
