#include "mapreduce/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "net/topology.hpp"

namespace mri::mr {

namespace {

struct TaskRecord {
  double end = 0.0;
  const IoStats* io = nullptr;  // the successful attempt's footprint
  int task = 0;
  int attempts = 0;     // attempts scheduled so far (next backup's index)
  int trace_index = -1; // successful attempt's event in PhaseSchedule::trace
};

struct IdleSlot {
  double free_time;
  int node;
  int id;
};

/// Hadoop-style speculation, applied after the primary schedule: straggler
/// tasks (projected past threshold x median completion) get backups on idle
/// slots; the earlier finisher wins and the loser is killed on the spot.
/// Each backup re-reads its input and re-does the flops, so its footprint is
/// charged to speculative_io (the discarded copy never commits its writes).
void speculate(const Cluster& cluster, std::vector<TaskRecord>* tasks,
               std::vector<IdleSlot> idle_slots, PhaseSchedule* out) {
  const CostModel& model = cluster.cost_model();
  if (tasks->size() < 2 || idle_slots.empty()) return;

  std::vector<double> ends;
  ends.reserve(tasks->size());
  double min_end = tasks->front().end;
  for (const TaskRecord& t : *tasks) {
    ends.push_back(t.end);
    min_end = std::min(min_end, t.end);
  }
  std::nth_element(ends.begin(), ends.begin() + ends.size() / 2, ends.end());
  const double median = ends[ends.size() / 2];
  // A task is a straggler when its projected completion exceeds
  // threshold x median; backups can launch once the first task has finished
  // (Hadoop speculates laggards as soon as a slot has nothing else to do).
  const double eligible = model.speculative_threshold * median;
  const double earliest_launch = min_end;

  // Worst stragglers first; earliest-free idle slots first.
  std::vector<TaskRecord*> stragglers;
  for (TaskRecord& t : *tasks) {
    if (t.end > eligible) stragglers.push_back(&t);
  }
  std::sort(stragglers.begin(), stragglers.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              return a->end > b->end;
            });
  std::sort(idle_slots.begin(), idle_slots.end(),
            [](const IdleSlot& a, const IdleSlot& b) {
              return std::tie(a.free_time, a.id) < std::tie(b.free_time, b.id);
            });

  std::size_t slot = 0;
  for (TaskRecord* t : stragglers) {
    if (slot >= idle_slots.size()) break;
    IdleSlot& s = idle_slots[slot];
    const double start = std::max(earliest_launch, s.free_time);
    if (start >= t->end) continue;  // backup could not beat the original
    const double backup_end =
        start + model.task_seconds(*t->io, cluster.speed_factor(s.node));
    ++out->backups_run;
    // The backup consumed real input reads and compute whether it wins or
    // loses; only the winning copy's (already-counted) output commits.
    out->speculative_io.bytes_read += t->io->bytes_read;
    out->speculative_io.bytes_transferred += t->io->bytes_transferred;
    out->speculative_io.bytes_read_memory += t->io->bytes_read_memory;
    out->speculative_io.mults += t->io->mults;
    out->speculative_io.adds += t->io->adds;

    TaskTraceEvent ev;
    ev.task = t->task;
    ev.attempt = t->attempts;
    ev.node = s.node;
    ev.slot = s.id;
    ev.start = start;
    ev.backup = true;
    if (backup_end < t->end) {
      // Backup wins: the original is killed the moment the backup finishes.
      ev.end = backup_end;
      if (t->trace_index >= 0) {
        out->trace[static_cast<std::size_t>(t->trace_index)].end = backup_end;
      }
      t->end = backup_end;
    } else {
      // Backup loses: it is killed when the original finishes.
      ev.end = t->end;
    }
    ++t->attempts;
    s.free_time = ev.end;
    out->trace.push_back(ev);
    ++slot;
  }

  // A finished phase does not wait for losing backups (they are killed), so
  // the new duration is the max of the per-task effective completions.
  out->duration = 0.0;
  for (const TaskRecord& t : *tasks) {
    out->duration = std::max(out->duration, t.end);
  }
}

}  // namespace

PhaseSchedule schedule_phase(
    const Cluster& cluster,
    const std::vector<std::vector<Attempt>>& attempts_per_task,
    const std::vector<double>* slot_busy_until, const PhaseChaos* chaos) {
  PhaseSchedule out;
  if (attempts_per_task.empty()) return out;

  struct Slot {
    double free_time;
    int node;
    int id;
    bool operator>(const Slot& other) const {
      return std::tie(free_time, node, id) >
             std::tie(other.free_time, other.node, other.id);
    }
  };
  const CostModel& model = cluster.cost_model();
  const int slots_per_node = model.slots_per_node;
  MRI_REQUIRE(slot_busy_until == nullptr ||
                  static_cast<int>(slot_busy_until->size()) >=
                      cluster.size() * slots_per_node,
              "slot_busy_until must cover every global slot");

  // Chaos overlay: per-node death time (phase-relative; infinity = never)
  // and detection delay, plus degrade onsets applied per placement below.
  const double never = std::numeric_limits<double>::infinity();
  std::vector<double> kill_at(static_cast<std::size_t>(cluster.size()), never);
  std::vector<double> detect_after(
      static_cast<std::size_t>(cluster.size()),
      cluster.cost_model().failure_detection_seconds);
  if (chaos != nullptr) {
    for (const NodeOutage& o : chaos->outages) {
      MRI_REQUIRE(o.node >= 0 && o.node < cluster.size(),
                  "chaos outage on unknown node " << o.node);
      auto n = static_cast<std::size_t>(o.node);
      if (o.at < kill_at[n]) {
        kill_at[n] = o.at;
        if (o.detect_after > 0.0) detect_after[n] = o.detect_after;
      }
    }
    for (const NodeDegrade& d : chaos->degrades) {
      MRI_REQUIRE(d.node >= 0 && d.node < cluster.size(),
                  "chaos degrade on unknown node " << d.node);
      MRI_REQUIRE(d.factor > 0.0, "chaos degrade factor must be > 0");
    }
  }
  const auto chaos_speed = [&](int node, double start) {
    double speed = cluster.speed_factor(node);
    if (chaos != nullptr) {
      for (const NodeDegrade& d : chaos->degrades) {
        if (d.node == node && d.at <= start) speed *= d.factor;
      }
    }
    return speed;
  };

  // -- flow-level network model (racked topologies only) -------------------
  const net::Topology* topo = cluster.topology().get();
  const bool racked = topo != nullptr && topo->racked() &&
                      topo->num_hosts() == cluster.size();
  const bool rack_aware = racked && topo->options().rack_aware_placement;

  // Decompose every attempt's recorded transfers once: local/remote byte
  // splits for the scalar leftovers, plus the attempt's flow set (coalesced
  // per endpoint pair) and its uncontended (standalone) makespan.
  struct AttemptNet {
    std::uint64_t local_read = 0;  // same-node kRead bytes
    std::uint64_t net_read = 0;    // cross-node kRead bytes
    std::uint64_t net_write = 0;   // cross-node kWrite/kRepair bytes
    std::vector<net::Flow> flows;  // coalesced by (src, dst), start = 0
    double standalone = 0.0;       // makespan of `flows` run alone
  };
  std::vector<std::vector<AttemptNet>> nets;
  bool any_flows = false;
  if (racked) {
    nets.resize(attempts_per_task.size());
    for (std::size_t t = 0; t < attempts_per_task.size(); ++t) {
      nets[t].resize(attempts_per_task[t].size());
      for (std::size_t d = 0; d < attempts_per_task[t].size(); ++d) {
        AttemptNet& n = nets[t][d];
        std::map<std::pair<int, int>, std::uint64_t> by_pair;
        for (const net::Transfer& tr : attempts_per_task[t][d].transfers) {
          if (tr.bytes == 0) continue;
          const bool crosses = tr.src >= 0 && tr.dst >= 0 && tr.src != tr.dst;
          switch (tr.kind) {
            case net::TransferKind::kRead:
              (crosses ? n.net_read : n.local_read) += tr.bytes;
              break;
            case net::TransferKind::kWrite:
            case net::TransferKind::kRepair:
              if (crosses) n.net_write += tr.bytes;
              break;
            case net::TransferKind::kShuffle:
              // Pure network time on top of the scalar terms (the scalar
              // model never charged shuffle fetches to the task).
              break;
          }
          if (crosses) by_pair[{tr.src, tr.dst}] += tr.bytes;
        }
        for (const auto& [pair, bytes] : by_pair) {
          n.flows.push_back(
              net::Flow{pair.first, pair.second, bytes, 0.0, -1});
        }
        if (!n.flows.empty()) {
          n.standalone = net::simulate_flows(*topo, n.flows).end_time;
          any_flows = true;
        }
      }
    }
  }

  // Racked duration of one attempt: the scalar cost with the network terms
  // carved out. Recorded transfers are charged as flows (`flow_seconds`);
  // bytes with no recorded endpoints — ghost attempts carry only reads, and
  // some master-side attribution lands on task IoStats — keep the scalar
  // network charge. Attempts with no transfers at all cost exactly the
  // scalar task_seconds.
  const auto racked_seconds = [&](const Attempt& a, const AttemptNet& n,
                                  double speed, double flow_seconds) {
    if (a.transfers.empty()) return model.task_seconds(a.io, speed);
    double t = model.task_overhead_seconds;
    t += static_cast<double>(a.io.flops()) /
         (model.flops_per_second * speed);
    const std::uint64_t covered_read = n.local_read + n.net_read;
    const std::uint64_t leftover_read =
        a.io.bytes_read > covered_read ? a.io.bytes_read - covered_read : 0;
    const std::uint64_t leftover_repl =
        a.io.bytes_replicated > n.net_write
            ? a.io.bytes_replicated - n.net_write
            : 0;
    t += static_cast<double>(n.local_read) / model.disk_bandwidth;
    t += static_cast<double>(leftover_read) / model.network_bandwidth;
    t += static_cast<double>(a.io.bytes_written) / model.disk_bandwidth;
    t += static_cast<double>(leftover_repl) / model.network_bandwidth;
    t += static_cast<double>(a.io.bytes_parity) / model.disk_bandwidth;
    t += model.ec_decode_seconds(a.io.bytes_reconstructed);
    t += model.memory_tier_seconds(a.io);
    t += flow_seconds;
    return t;
  };

  // Contended flow seconds per (task, data_index), filled between passes.
  std::map<std::pair<int, int>, double> contended;

  struct Pending {
    int task;
    int data_index;  // which entry of attempts_per_task[task] to run
    int attempt;     // trace attempt number (chaos retries re-run the same
                     // data entry under a fresh attempt number)
    double ready_time;  // failure-detection time for retries, 0 for fresh
  };
  struct Placement {
    int task;
    int data_index;
    int node;
    double start;
  };
  struct PassState {
    PhaseSchedule sched;
    std::vector<TaskRecord> records;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> slots;
    std::vector<bool> node_dead;
    std::vector<Placement> placements;  // racked only, in placement order
  };

  // One greedy FIFO pass over the phase — the original scalar loop,
  // parameterized by the duration model. Racked runs take it twice: first
  // with standalone flow times (to learn attempt starts), then with the
  // contended times from the global flow simulation.
  const auto run_pass = [&](bool use_contended) {
    PassState st;
    PhaseSchedule& o = st.sched;

    // Slots a fair-share lease withholds (busy offset of infinity) never
    // enter the heap — this phase schedules as if they did not exist — and
    // neither do slots of nodes that die before the slot would first free
    // up.
    std::vector<int> slots_on_node(static_cast<std::size_t>(cluster.size()),
                                   0);
    int live_slots = 0;
    for (int node = 0; node < cluster.size(); ++node) {
      for (int s = 0; s < slots_per_node; ++s) {
        const int id = node * slots_per_node + s;
        const double busy =
            slot_busy_until != nullptr
                ? (*slot_busy_until)[static_cast<std::size_t>(id)]
                : 0.0;
        if (std::isinf(busy)) continue;
        if (kill_at[static_cast<std::size_t>(node)] <= busy) continue;
        st.slots.push(Slot{busy, node, id});
        ++slots_on_node[static_cast<std::size_t>(node)];
        ++live_slots;
      }
    }
    MRI_REQUIRE(live_slots > 0,
                "no usable slots for this phase (every slot is withheld by "
                "the fair-share lease or its node is dead); give the tenant "
                "a share of the pool or keep at least one node alive");
    // A failed attempt takes its whole node down (§7.4), not just the slot
    // it ran on. Dead nodes' remaining slots stay in the heap and are
    // discarded lazily when popped.
    st.node_dead.assign(static_cast<std::size_t>(cluster.size()), false);
    const auto lose_node = [&](int node) {
      if (st.node_dead[static_cast<std::size_t>(node)]) return;
      st.node_dead[static_cast<std::size_t>(node)] = true;
      live_slots -= slots_on_node[static_cast<std::size_t>(node)];
      ++o.nodes_lost;
    };

    std::deque<Pending> queue;
    for (std::size_t t = 0; t < attempts_per_task.size(); ++t) {
      MRI_REQUIRE(!attempts_per_task[t].empty(),
                  "task " << t << " has no attempts");
      queue.push_back(Pending{static_cast<int>(t), 0, 0, 0.0});
    }

    st.records.assign(attempts_per_task.size(), TaskRecord{});

    while (!queue.empty()) {
      Pending p = queue.front();
      queue.pop_front();
      MRI_CHECK_MSG(live_slots > 0,
                    "all slots lost to failures; phase cannot finish");
      Slot slot;
      do {
        MRI_CHECK_MSG(!st.slots.empty(),
                      "all slots lost to failures; phase cannot finish");
        slot = st.slots.top();
        st.slots.pop();
      } while (st.node_dead[static_cast<std::size_t>(slot.node)]);

      // Rack-preferred dispatch: among live slots free at the same instant,
      // take one in the task's home rack when there is one. Fresh first
      // attempts only — retries go wherever a slot is, like the scalar
      // model.
      if (rack_aware && p.data_index == 0 && p.attempt == 0) {
        const int home_rack = topo->rack_of(p.task % cluster.size());
        if (topo->rack_of(slot.node) != home_rack) {
          std::vector<Slot> ties;
          while (!st.slots.empty()) {
            const Slot s = st.slots.top();
            if (st.node_dead[static_cast<std::size_t>(s.node)]) {
              st.slots.pop();
              continue;
            }
            if (s.free_time > slot.free_time) break;
            st.slots.pop();
            ties.push_back(s);
          }
          for (std::size_t i = 0; i < ties.size(); ++i) {
            if (topo->rack_of(ties[i].node) == home_rack) {
              std::swap(slot, ties[i]);
              break;
            }
          }
          for (const Slot& s : ties) st.slots.push(s);
        }
      }

      const double start = std::max(slot.free_time, p.ready_time);
      const double killed_at = kill_at[static_cast<std::size_t>(slot.node)];
      if (start >= killed_at) {
        // The node dies before this placement could begin: drop its slots
        // and place the attempt elsewhere.
        lose_node(slot.node);
        queue.push_front(p);
        continue;
      }

      const auto& attempt =
          attempts_per_task[static_cast<std::size_t>(p.task)]
                           [static_cast<std::size_t>(p.data_index)];
      double duration;
      if (racked) {
        const AttemptNet& n = nets[static_cast<std::size_t>(p.task)]
                                  [static_cast<std::size_t>(p.data_index)];
        double flow_seconds = n.standalone;
        if (use_contended) {
          const auto it = contended.find({p.task, p.data_index});
          if (it != contended.end()) flow_seconds = it->second;
        }
        duration = racked_seconds(attempt, n, chaos_speed(slot.node, start),
                                  flow_seconds);
      } else {
        duration =
            model.task_seconds(attempt.io, chaos_speed(slot.node, start));
      }
      double end = start + duration;
      // The node dies mid-attempt: the attempt is killed at the outage and
      // retried (same work) once the jobtracker notices, on a surviving
      // node.
      const bool chaos_killed = end > killed_at;
      if (chaos_killed) end = killed_at;
      o.duration = std::max(o.duration, end);
      ++o.attempts_run;
      if (racked) {
        st.placements.push_back(
            Placement{p.task, p.data_index, slot.node, start});
        const int home = p.task % cluster.size();
        if (topo->rack_of(slot.node) == topo->rack_of(home)) {
          ++o.rack_local_attempts;
        } else {
          ++o.cross_rack_attempts;
        }
      }

      TaskTraceEvent ev;
      ev.task = p.task;
      ev.attempt = p.attempt;
      ev.node = slot.node;
      ev.slot = slot.id;
      ev.start = start;
      ev.end = end;
      ev.failed = attempt.failed || chaos_killed;
      ev.chaos = chaos_killed;
      o.trace.push_back(ev);

      if (chaos_killed) {
        lose_node(slot.node);
        ++o.chaos_attempts_killed;
        // The dead attempt's reads and compute were spent for nothing;
        // charge them in full (the ghost-attempt convention — §7.4's worst
        // case).
        o.chaos_io.bytes_read += attempt.io.bytes_read;
        o.chaos_io.bytes_transferred += attempt.io.bytes_transferred;
        o.chaos_io.mults += attempt.io.mults;
        o.chaos_io.adds += attempt.io.adds;
        queue.push_back(Pending{
            p.task, p.data_index, p.attempt + 1,
            killed_at + detect_after[static_cast<std::size_t>(slot.node)]});
      } else if (attempt.failed) {
        // The node goes down with the attempt: every slot of the node is
        // lost for the rest of the phase. The jobtracker only notices after
        // the task timeout elapses (§7.4: the failed mapper "did not
        // restart until one of the other mappers finished").
        lose_node(slot.node);
        queue.push_back(Pending{p.task, p.data_index + 1, p.attempt + 1,
                                end + model.failure_detection_seconds});
      } else {
        st.slots.push(Slot{end, slot.node, slot.id});
        TaskRecord& rec = st.records[static_cast<std::size_t>(p.task)];
        rec.end = end;
        rec.io = &attempt.io;
        rec.task = p.task;
        rec.attempts = p.attempt + 1;
        rec.trace_index = static_cast<int>(o.trace.size()) - 1;
      }
    }
    return st;
  };

  PassState final_pass;
  if (racked && any_flows) {
    // Pass A learns where and when every attempt lands with uncontended
    // flow times; the global simulation then replays every attempt's flows
    // from its pass-A start to find the contended completion; pass B
    // re-places with those times. Chaos-retried attempts share one
    // (task, data_index) flow set — the first placement defines its start.
    const PassState first = run_pass(false);
    struct FlowSpan {
      std::pair<int, int> key;
      std::size_t first_flow;
      std::size_t count;
      double start;
    };
    std::vector<net::Flow> flows;
    std::vector<FlowSpan> spans;
    std::set<std::pair<int, int>> seen;
    for (const Placement& pl : first.placements) {
      const auto key = std::make_pair(pl.task, pl.data_index);
      if (!seen.insert(key).second) continue;
      const AttemptNet& n = nets[static_cast<std::size_t>(pl.task)]
                                [static_cast<std::size_t>(pl.data_index)];
      if (n.flows.empty()) continue;
      spans.push_back(FlowSpan{key, flows.size(), n.flows.size(), pl.start});
      for (const net::Flow& f : n.flows) {
        flows.push_back(net::Flow{f.src, f.dst, f.bytes, pl.start, -1});
      }
    }
    const net::FlowSimResult sim = net::simulate_flows(*topo, flows);
    for (const FlowSpan& s : spans) {
      double finish = s.start;
      for (std::size_t i = 0; i < s.count; ++i) {
        finish = std::max(finish, sim.finish[s.first_flow + i]);
      }
      contended[s.key] = finish - s.start;
    }
    final_pass = run_pass(true);
    final_pass.sched.link_loads = sim.links;
  } else {
    final_pass = run_pass(false);
  }

  auto& slots = final_pass.slots;
  auto& node_dead = final_pass.node_dead;
  std::vector<TaskRecord>& records = final_pass.records;
  out = std::move(final_pass.sched);

  if (racked) {
    // Byte-distance split of the recorded transfers, per final placement
    // (chaos retries re-count their re-done traffic, like the scalar I/O
    // accounting does).
    for (const Placement& pl : final_pass.placements) {
      const auto& transfers =
          attempts_per_task[static_cast<std::size_t>(pl.task)]
                           [static_cast<std::size_t>(pl.data_index)]
                               .transfers;
      for (const net::Transfer& tr : transfers) {
        if (tr.src < 0 || tr.dst < 0) continue;
        if (tr.src == tr.dst) {
          out.net_node_local_bytes += tr.bytes;
        } else if (topo->rack_of(tr.src) == topo->rack_of(tr.dst)) {
          out.net_rack_local_bytes += tr.bytes;
        } else {
          out.net_cross_rack_bytes += tr.bytes;
        }
      }
    }
  }

  if (model.speculative_execution) {
    std::vector<IdleSlot> idle;
    while (!slots.empty()) {
      const Slot s = slots.top();
      slots.pop();
      if (node_dead[static_cast<std::size_t>(s.node)]) continue;
      // Nodes scheduled to die never host backups: modeling a backup that
      // outlives its node would re-enter the retry machinery for work the
      // original completes anyway.
      if (kill_at[static_cast<std::size_t>(s.node)] < never) continue;
      idle.push_back(IdleSlot{s.free_time, s.node, s.id});
    }
    // Backups re-run the winner's footprint through the scalar model even
    // under a racked topology: a speculative copy's flows are not part of
    // the global simulation, so the scalar charge is the consistent bound.
    speculate(cluster, &records, std::move(idle), &out);
  }
  return out;
}

SlotPool::SlotPool(int total_slots) {
  MRI_REQUIRE(total_slots >= 1, "SlotPool needs at least one slot");
  free_at_.assign(static_cast<std::size_t>(total_slots), 0.0);
}

double SlotPool::unavailable() {
  return std::numeric_limits<double>::infinity();
}

void SlotPool::set_shares(std::vector<TenantShare> shares) {
  if (shares.empty()) {
    shares_.clear();
    owner_.clear();
    active_.clear();
    return;
  }
  MRI_REQUIRE(shares.size() <= free_at_.size(),
              "fair-share pool has " << free_at_.size() << " slots for "
                                     << shares.size()
                                     << " tenants; every tenant needs one");
  long long total_weight = 0;
  for (const TenantShare& s : shares) {
    MRI_REQUIRE(s.weight >= 1, "tenant '" << s.tenant
                                          << "' has non-positive weight "
                                          << s.weight);
    MRI_REQUIRE(!s.tenant.empty(), "fair-share tenants need non-empty names");
    total_weight += s.weight;
  }
  shares_ = std::move(shares);
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    for (std::size_t j = i + 1; j < shares_.size(); ++j) {
      MRI_REQUIRE(shares_[i].tenant != shares_[j].tenant,
                  "duplicate fair-share tenant '" << shares_[i].tenant << "'");
    }
  }

  // Largest-remainder apportionment with a floor of one slot per tenant:
  // proportional to weight, deterministic, and exact (counts sum to the pool
  // size). Slot ids are handed out contiguously in share order.
  const int total = static_cast<int>(free_at_.size());
  const int n = static_cast<int>(shares_.size());
  std::vector<int> counts(static_cast<std::size_t>(n), 1);
  int assigned = n;
  std::vector<double> remainders(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const double ideal = static_cast<double>(total) *
                         static_cast<double>(shares_[static_cast<std::size_t>(i)].weight) /
                         static_cast<double>(total_weight);
    const int extra = std::max(0, static_cast<int>(ideal) - 1);
    counts[static_cast<std::size_t>(i)] += extra;
    assigned += extra;
    remainders[static_cast<std::size_t>(i)] =
        ideal - static_cast<double>(counts[static_cast<std::size_t>(i)]);
  }
  while (assigned < total) {
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (remainders[static_cast<std::size_t>(i)] >
          remainders[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    ++counts[static_cast<std::size_t>(best)];
    remainders[static_cast<std::size_t>(best)] -= 1.0;
    ++assigned;
  }
  // Over-assignment can only come from the one-slot floors; take the excess
  // back from the largest allocations (never below the floor).
  while (assigned > total) {
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (counts[static_cast<std::size_t>(i)] >
          counts[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    MRI_CHECK(counts[static_cast<std::size_t>(best)] > 1);
    --counts[static_cast<std::size_t>(best)];
    --assigned;
  }

  owner_.assign(free_at_.size(), 0);
  int slot = 0;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < counts[static_cast<std::size_t>(i)]; ++c) {
      owner_[static_cast<std::size_t>(slot)] = i;
      ++slot;
    }
  }
  MRI_CHECK(slot == total);
  active_.assign(static_cast<std::size_t>(n), 0);
}

int SlotPool::share_index(const std::string& tenant) const {
  for (std::size_t i = 0; i < shares_.size(); ++i) {
    if (shares_[i].tenant == tenant) return static_cast<int>(i);
  }
  return -1;
}

void SlotPool::acquire(const std::string& tenant) {
  if (shares_.empty()) return;
  const int i = share_index(tenant);
  MRI_REQUIRE(i >= 0, "tenant '" << tenant
                                 << "' has no share in the SlotPool; add it "
                                    "to set_shares() before admitting work");
  ++active_[static_cast<std::size_t>(i)];
}

void SlotPool::release(const std::string& tenant) {
  if (shares_.empty()) return;
  const int i = share_index(tenant);
  MRI_REQUIRE(i >= 0, "tenant '" << tenant << "' has no share in the SlotPool");
  MRI_CHECK_MSG(active_[static_cast<std::size_t>(i)] > 0,
                "release() of tenant '" << tenant << "' without an acquire()");
  --active_[static_cast<std::size_t>(i)];
}

std::vector<int> SlotPool::slots_of(const std::string& tenant) const {
  std::vector<int> slots;
  const int i = share_index(tenant);
  if (i < 0) return slots;
  for (std::size_t s = 0; s < owner_.size(); ++s) {
    if (owner_[s] == i) slots.push_back(static_cast<int>(s));
  }
  return slots;
}

std::vector<double> SlotPool::offsets_at(double phase_start) const {
  std::vector<double> offsets(free_at_.size(), 0.0);
  for (std::size_t i = 0; i < free_at_.size(); ++i) {
    // A slot free before the phase starts contributes exactly 0.0, so a
    // sequential run's heap is bit-identical to the shared-nothing one.
    if (free_at_[i] > phase_start) offsets[i] = free_at_[i] - phase_start;
  }
  return offsets;
}

std::vector<double> SlotPool::offsets_at(double phase_start,
                                         const std::string& tenant) const {
  std::vector<double> offsets = offsets_at(phase_start);
  if (shares_.empty() || tenant.empty()) return offsets;
  const int i = share_index(tenant);
  MRI_REQUIRE(i >= 0, "tenant '" << tenant
                                 << "' has no share in the SlotPool; add it "
                                    "to set_shares() before leasing slots");
  for (std::size_t s = 0; s < offsets.size(); ++s) {
    const int owner = owner_[s];
    // Own slots are always leasable; another tenant's slots only while that
    // tenant has nothing in the system (work-conserving borrowing).
    if (owner != i && active_[static_cast<std::size_t>(owner)] > 0) {
      offsets[s] = unavailable();
    }
  }
  return offsets;
}

void SlotPool::commit(const std::vector<TaskTraceEvent>& events,
                      double phase_start) {
  for (const TaskTraceEvent& e : events) {
    MRI_CHECK_MSG(e.slot >= 0 && e.slot < static_cast<int>(free_at_.size()),
                  "trace event on unknown slot " << e.slot);
    double& free_at = free_at_[static_cast<std::size_t>(e.slot)];
    free_at = std::max(free_at, phase_start + e.end);
  }
}

}  // namespace mri::mr
