#include "mapreduce/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <tuple>

#include "common/error.hpp"

namespace mri::mr {

namespace {

struct TaskRecord {
  double end = 0.0;
  const IoStats* io = nullptr;  // the successful attempt's footprint
};

/// Hadoop-style speculation, applied after the primary schedule: straggler
/// tasks (projected past threshold x median completion) get backups on idle
/// slots; the earlier finisher wins.
void speculate(const Cluster& cluster, std::vector<TaskRecord>* tasks,
               std::vector<std::pair<double, int>> idle_slots,  // (free, node)
               PhaseSchedule* out) {
  const CostModel& model = cluster.cost_model();
  if (tasks->size() < 2 || idle_slots.empty()) return;

  std::vector<double> ends;
  ends.reserve(tasks->size());
  double min_end = tasks->front().end;
  for (const TaskRecord& t : *tasks) {
    ends.push_back(t.end);
    min_end = std::min(min_end, t.end);
  }
  std::nth_element(ends.begin(), ends.begin() + ends.size() / 2, ends.end());
  const double median = ends[ends.size() / 2];
  // A task is a straggler when its projected completion exceeds
  // threshold x median; backups can launch once the first task has finished
  // (Hadoop speculates laggards as soon as a slot has nothing else to do).
  const double eligible = model.speculative_threshold * median;
  const double earliest_launch = min_end;

  // Worst stragglers first; earliest-free idle slots first.
  std::vector<TaskRecord*> stragglers;
  for (TaskRecord& t : *tasks) {
    if (t.end > eligible) stragglers.push_back(&t);
  }
  std::sort(stragglers.begin(), stragglers.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              return a->end > b->end;
            });
  std::sort(idle_slots.begin(), idle_slots.end());

  std::size_t slot = 0;
  for (TaskRecord* t : stragglers) {
    if (slot >= idle_slots.size()) break;
    auto& [free_time, node] = idle_slots[slot];
    const double start = std::max(earliest_launch, free_time);
    if (start >= t->end) continue;  // backup could not beat the original
    const double backup_end =
        start + model.task_seconds(*t->io, cluster.speed_factor(node));
    ++out->backups_run;
    free_time = backup_end;
    ++slot;
    t->end = std::min(t->end, backup_end);
  }

  // A finished phase does not wait for losing backups (they are killed), so
  // the new duration is the max of the per-task effective completions.
  out->duration = 0.0;
  for (const TaskRecord& t : *tasks) {
    out->duration = std::max(out->duration, t.end);
  }
}

}  // namespace

PhaseSchedule schedule_phase(
    const Cluster& cluster,
    const std::vector<std::vector<Attempt>>& attempts_per_task) {
  PhaseSchedule out;
  if (attempts_per_task.empty()) return out;

  struct Slot {
    double free_time;
    int node;
    bool operator>(const Slot& other) const {
      return std::tie(free_time, node) > std::tie(other.free_time, other.node);
    }
  };
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> slots;
  for (int node = 0; node < cluster.size(); ++node) {
    for (int s = 0; s < cluster.cost_model().slots_per_node; ++s) {
      slots.push(Slot{0.0, node});
    }
  }

  struct Pending {
    int task;
    int attempt;
    double ready_time;  // failure-detection time for retries, 0 for fresh
  };
  std::deque<Pending> queue;
  for (std::size_t t = 0; t < attempts_per_task.size(); ++t) {
    MRI_REQUIRE(!attempts_per_task[t].empty(),
                "task " << t << " has no attempts");
    queue.push_back(Pending{static_cast<int>(t), 0, 0.0});
  }

  std::vector<TaskRecord> records(attempts_per_task.size());

  while (!queue.empty()) {
    Pending p = queue.front();
    queue.pop_front();
    MRI_CHECK_MSG(!slots.empty(),
                  "all slots lost to failures; phase cannot finish");
    Slot slot = slots.top();
    slots.pop();

    const auto& attempt =
        attempts_per_task[static_cast<std::size_t>(p.task)]
                         [static_cast<std::size_t>(p.attempt)];
    const double start = std::max(slot.free_time, p.ready_time);
    const double duration = cluster.cost_model().task_seconds(
        attempt.io, cluster.speed_factor(slot.node));
    const double end = start + duration;
    out.duration = std::max(out.duration, end);
    ++out.attempts_run;

    if (attempt.failed) {
      // The node goes down with the attempt: do not return the slot. The
      // jobtracker only notices after the task timeout elapses (§7.4: the
      // failed mapper "did not restart until one of the other mappers
      // finished").
      ++out.nodes_lost;
      queue.push_back(Pending{
          p.task, p.attempt + 1,
          end + cluster.cost_model().failure_detection_seconds});
    } else {
      slots.push(Slot{end, slot.node});
      records[static_cast<std::size_t>(p.task)] =
          TaskRecord{end, &attempt.io};
    }
  }

  if (cluster.cost_model().speculative_execution) {
    std::vector<std::pair<double, int>> idle;
    while (!slots.empty()) {
      idle.emplace_back(slots.top().free_time, slots.top().node);
      slots.pop();
    }
    speculate(cluster, &records, std::move(idle), &out);
  }
  return out;
}

}  // namespace mri::mr
