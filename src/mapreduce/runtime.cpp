#include "mapreduce/runtime.hpp"

#include <atomic>

#include "common/logging.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/shuffle.hpp"

namespace mri::mr {

JobRunner::JobRunner(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
                     FailureInjector* failures, MetricsRegistry* metrics)
    : cluster_(cluster), fs_(fs), pool_(pool), failures_(failures),
      metrics_(metrics) {
  MRI_REQUIRE(cluster != nullptr && fs != nullptr && pool != nullptr,
              "JobRunner needs a cluster, a DFS and a thread pool");
}

namespace {

/// Ghost attempts for every injected failure of (job, task): the attempt's
/// node dies near task completion (the §7.4 worst case), so charge the full
/// compute/read footprint but none of the (discarded) output writes.
std::vector<Attempt> attempts_for(FailureInjector* failures,
                                  const std::string& job, int task,
                                  bool map_task, const IoStats& success_io) {
  std::vector<Attempt> attempts;
  int a = 0;
  while (failures != nullptr && failures->should_fail(job, task, a, map_task)) {
    Attempt ghost;
    ghost.io.bytes_read = success_io.bytes_read;
    ghost.io.mults = success_io.mults;
    ghost.io.adds = success_io.adds;
    ghost.failed = true;
    attempts.push_back(ghost);
    ++a;
  }
  attempts.push_back(Attempt{success_io, false});
  return attempts;
}

}  // namespace

JobResult JobRunner::run(const JobSpec& spec) {
  return finish(execute(spec));
}

ExecutedJob JobRunner::execute(const JobSpec& spec) {
  MRI_REQUIRE(!spec.input_files.empty(), "job '" << spec.name
                                                 << "' has no input files");
  MRI_REQUIRE(spec.mapper_factory != nullptr,
              "job '" << spec.name << "' has no mapper factory");
  const bool has_reduce =
      spec.reducer_factory != nullptr && spec.num_reduce_tasks > 0;

  ExecutedJob executed;
  JobResult& result = executed.result;
  result.name = spec.name;
  result.map_tasks = static_cast<int>(spec.input_files.size());
  result.reduce_tasks = has_reduce ? spec.num_reduce_tasks : 0;

  MRI_DEBUG() << "job " << spec.name << ": " << result.map_tasks << " maps, "
              << result.reduce_tasks << " reduces";

  // ---- map phase (real execution) ----------------------------------------
  const int num_maps = result.map_tasks;
  std::vector<IoStats> map_io(static_cast<std::size_t>(num_maps));
  std::vector<std::vector<KeyValue>> map_outputs(
      static_cast<std::size_t>(num_maps));

  try {
    pool_->parallel_for(static_cast<std::size_t>(num_maps), [&](std::size_t t) {
      const int task = static_cast<int>(t);
      TaskContext ctx(fs_, task, task % cluster_->size(), num_maps,
                      result.reduce_tasks, cluster_->size());
      const std::string input =
          fs_->read_text(spec.input_files[t], &ctx.io());
      auto mapper = spec.mapper_factory();
      MRI_CHECK_MSG(mapper != nullptr, "mapper factory returned null");
      mapper->map(task, input, ctx);
      map_io[t] = ctx.io();
      map_outputs[t] = ctx.take_emitted();
    });
  } catch (const Error& e) {
    throw JobError("map phase of job '" + spec.name + "' failed: " + e.what());
  }

  executed.map_attempts.reserve(static_cast<std::size_t>(num_maps));
  for (int t = 0; t < num_maps; ++t) {
    executed.map_attempts.push_back(attempts_for(
        failures_, spec.name, t, true, map_io[static_cast<std::size_t>(t)]));
  }
  for (const auto& task_attempts : executed.map_attempts) {
    for (const auto& attempt : task_attempts) {
      result.io += attempt.io;
      if (attempt.failed) ++result.failures_recovered;
    }
  }

  // ---- shuffle + reduce phase ---------------------------------------------
  if (has_reduce) {
    ShuffleResult shuffled =
        shuffle(std::move(map_outputs), spec.num_reduce_tasks,
                spec.partitioner, cluster_->size());
    result.shuffle_bytes = shuffled.total_bytes;
    result.shuffle_local_bytes = shuffled.local_bytes;
    result.shuffle_remote_bytes = shuffled.remote_bytes;
    // Node-local pairs never cross the network in Hadoop; only the remote
    // part is network traffic in the paper's Table 1/2 sense.
    result.io.bytes_transferred += shuffled.remote_bytes;

    const int num_reduces = spec.num_reduce_tasks;
    std::vector<IoStats> reduce_io(static_cast<std::size_t>(num_reduces));
    try {
      pool_->parallel_for(
          static_cast<std::size_t>(num_reduces), [&](std::size_t r) {
            const int task = static_cast<int>(r);
            TaskContext ctx(fs_, task, task % cluster_->size(), num_maps,
                            num_reduces, cluster_->size());
            auto reducer = spec.reducer_factory();
            MRI_CHECK_MSG(reducer != nullptr, "reducer factory returned null");
            for (const auto& [key, values] : shuffled.partitions[r]) {
              reducer->reduce(key, values, ctx);
            }
            reduce_io[r] = ctx.io();
          });
    } catch (const Error& e) {
      throw JobError("reduce phase of job '" + spec.name +
                     "' failed: " + e.what());
    }

    executed.reduce_attempts.reserve(static_cast<std::size_t>(num_reduces));
    for (int r = 0; r < num_reduces; ++r) {
      executed.reduce_attempts.push_back(
          attempts_for(failures_, spec.name, r, false,
                       reduce_io[static_cast<std::size_t>(r)]));
    }
    for (const auto& task_attempts : executed.reduce_attempts) {
      for (const auto& attempt : task_attempts) {
        result.io += attempt.io;
        if (attempt.failed) ++result.failures_recovered;
      }
    }
  }
  return executed;
}

JobResult JobRunner::finish(ExecutedJob executed, SlotPool* pool,
                            double start_seconds, const std::string& tenant) {
  // The pool may be shared across many requests while the cluster it was
  // sized for changes between them; trusting the constructor-time snapshot
  // would silently lease slots that no longer exist (or miss new ones).
  MRI_REQUIRE(pool == nullptr || pool->total_slots() == cluster_->total_slots(),
              "SlotPool tracks " << pool->total_slots()
                                 << " slots but the cluster now has "
                                 << cluster_->total_slots() << " ("
                                 << cluster_->size() << " nodes x "
                                 << cluster_->cost_model().slots_per_node
                                 << " slots/node); recreate the SlotPool (and "
                                    "any JobGraph built on it) whenever the "
                                    "cluster is resized");
  JobResult result = std::move(executed.result);
  result.start_seconds = start_seconds;
  const double launch = cluster_->cost_model().job_launch_seconds;

  // The map phase starts once the job is launched; the reduce phase once the
  // last map attempt finished. Each phase leases the pool at its own start
  // so it sees exactly the slots concurrent jobs still occupy then.
  const double map_start = start_seconds + launch;
  PhaseSchedule map_phase;
  if (pool != nullptr) {
    const std::vector<double> busy = pool->offsets_at(map_start, tenant);
    map_phase = schedule_phase(*cluster_, executed.map_attempts, &busy);
    pool->commit(map_phase.trace, map_start);
  } else {
    map_phase = schedule_phase(*cluster_, executed.map_attempts);
  }
  result.map_phase_seconds = map_phase.duration;
  // Speculative backups re-read and re-compute for real; charge them.
  result.io += map_phase.speculative_io;
  result.speculation_io += map_phase.speculative_io;
  result.backups_run += map_phase.backups_run;
  result.map_trace = std::move(map_phase.trace);

  if (!executed.reduce_attempts.empty()) {
    const double reduce_start = map_start + result.map_phase_seconds;
    PhaseSchedule reduce_phase;
    if (pool != nullptr) {
      const std::vector<double> busy = pool->offsets_at(reduce_start, tenant);
      reduce_phase = schedule_phase(*cluster_, executed.reduce_attempts, &busy);
      pool->commit(reduce_phase.trace, reduce_start);
    } else {
      reduce_phase = schedule_phase(*cluster_, executed.reduce_attempts);
    }
    result.reduce_phase_seconds = reduce_phase.duration;
    result.io += reduce_phase.speculative_io;
    result.speculation_io += reduce_phase.speculative_io;
    result.backups_run += reduce_phase.backups_run;
    result.reduce_trace = std::move(reduce_phase.trace);
  }

  result.sim_seconds = cluster_->cost_model().job_launch_seconds +
                       result.map_phase_seconds + result.reduce_phase_seconds;

  if (metrics_ != nullptr) {
    metrics_->increment("jobs");
    metrics_->increment("map_tasks",
                        static_cast<std::uint64_t>(result.map_tasks));
    metrics_->increment("reduce_tasks",
                        static_cast<std::uint64_t>(result.reduce_tasks));
    metrics_->increment(
        "task_failures",
        static_cast<std::uint64_t>(result.failures_recovered));
    metrics_->increment("backup_attempts",
                        static_cast<std::uint64_t>(result.backups_run));
    metrics_->increment("shuffle_local_bytes", result.shuffle_local_bytes);
    metrics_->increment("shuffle_remote_bytes", result.shuffle_remote_bytes);
  }
  return result;
}

}  // namespace mri::mr
