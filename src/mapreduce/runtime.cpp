#include "mapreduce/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.hpp"
#include "engine/spin_engine.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/shuffle.hpp"
#include "net/topology.hpp"

namespace mri::mr {

JobRunner::JobRunner(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
                     FailureInjector* failures, MetricsRegistry* metrics,
                     ChaosEngine* chaos, engine::SpinEngine* engine)
    : cluster_(cluster), fs_(fs), pool_(pool), failures_(failures),
      metrics_(metrics), chaos_(chaos), engine_(engine) {
  MRI_REQUIRE(cluster != nullptr && fs != nullptr && pool != nullptr,
              "JobRunner needs a cluster, a DFS and a thread pool");
}

namespace {

/// Ghost attempts for every injected failure of (job, task): the attempt's
/// node dies near task completion (the §7.4 worst case), so charge the full
/// compute/read footprint but none of the (discarded) output writes. Rules
/// can come from the legacy injector or from the chaos engine's task rules.
std::vector<Attempt> attempts_for(FailureInjector* failures,
                                  ChaosEngine* chaos, const std::string& job,
                                  int task, bool map_task,
                                  const IoStats& success_io,
                                  std::vector<net::Transfer> transfers) {
  std::vector<Attempt> attempts;
  int a = 0;
  const auto injected = [&](int attempt) {
    return (failures != nullptr &&
            failures->should_fail(job, task, attempt, map_task)) ||
           (chaos != nullptr &&
            chaos->should_fail_task(job, task, attempt, map_task));
  };
  while (injected(a)) {
    Attempt ghost;
    ghost.io.bytes_read = success_io.bytes_read;
    ghost.io.mults = success_io.mults;
    ghost.io.adds = success_io.adds;
    ghost.failed = true;
    // A ghost died before committing: it consumed the reads but none of the
    // writes, so only the read transfers feed the flow model.
    for (const net::Transfer& t : transfers) {
      if (t.kind == net::TransferKind::kRead) ghost.transfers.push_back(t);
    }
    attempts.push_back(ghost);
    ++a;
  }
  Attempt success;
  success.io = success_io;
  success.transfers = std::move(transfers);
  attempts.push_back(std::move(success));
  return attempts;
}

/// Folds one phase's per-link loads into a job-level accumulator (bytes and
/// busy time add; peak utilization takes the max).
void merge_link_loads(std::vector<net::LinkLoad>* into,
                      const std::vector<net::LinkLoad>& from) {
  if (from.empty()) return;
  if (into->size() < from.size()) into->resize(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    (*into)[i].bytes += from[i].bytes;
    (*into)[i].busy_seconds += from[i].busy_seconds;
    (*into)[i].peak_utilization =
        std::max((*into)[i].peak_utilization, from[i].peak_utilization);
  }
}

}  // namespace

JobResult JobRunner::run(const JobSpec& spec) {
  return finish(execute(spec));
}

ExecutedJob JobRunner::execute(const JobSpec& spec) {
  MRI_REQUIRE(!spec.input_files.empty(), "job '" << spec.name
                                                 << "' has no input files");
  MRI_REQUIRE(spec.mapper_factory != nullptr,
              "job '" << spec.name << "' has no mapper factory");
  const bool has_reduce =
      spec.reducer_factory != nullptr && spec.num_reduce_tasks > 0;

  ExecutedJob executed;
  JobResult& result = executed.result;
  result.name = spec.name;
  result.map_tasks = static_cast<int>(spec.input_files.size());
  result.reduce_tasks = has_reduce ? spec.num_reduce_tasks : 0;

  MRI_DEBUG() << "job " << spec.name << ": " << result.map_tasks << " maps, "
              << result.reduce_tasks << " reduces";

  // Engine job boundary BEFORE any task reads: the eviction pass may spill
  // memory-tier files to disk, and this job's opens must see the new tier.
  IoStats engine_spill;
  if (engine_ != nullptr) engine_spill = engine_->begin_job(spec.name);

  // ---- map phase (real execution) ----------------------------------------
  const int num_maps = result.map_tasks;
  std::vector<IoStats> map_io(static_cast<std::size_t>(num_maps));
  std::vector<std::vector<KeyValue>> map_outputs(
      static_cast<std::size_t>(num_maps));
  std::vector<std::vector<net::Transfer>> map_transfers(
      static_cast<std::size_t>(num_maps));

  try {
    pool_->parallel_for(static_cast<std::size_t>(num_maps), [&](std::size_t t) {
      const int task = static_cast<int>(t);
      TaskContext ctx(fs_, task, task % cluster_->size(), num_maps,
                      result.reduce_tasks, cluster_->size());
      const std::string input =
          fs_->read_text(spec.input_files[t], &ctx.io());
      auto mapper = spec.mapper_factory();
      MRI_CHECK_MSG(mapper != nullptr, "mapper factory returned null");
      mapper->map(task, input, ctx);
      map_io[t] = ctx.io();
      map_outputs[t] = ctx.take_emitted();
      map_transfers[t] = ctx.take_transfers();
    });
  } catch (const Error& e) {
    throw JobError("map phase of job '" + spec.name + "' failed: " + e.what());
  }

  // Spill cost rides the first map task's successful attempt so it lands on
  // the simulated timeline through the same memory_tier_seconds conversion
  // as every other memory-tier byte (satellite-1 consistency). Ghost
  // attempts never copy it (they only re-do reads and flops).
  if (num_maps > 0) map_io[0] += engine_spill;

  executed.map_attempts.reserve(static_cast<std::size_t>(num_maps));
  for (int t = 0; t < num_maps; ++t) {
    executed.map_attempts.push_back(
        attempts_for(failures_, chaos_, spec.name, t, true,
                     map_io[static_cast<std::size_t>(t)],
                     std::move(map_transfers[static_cast<std::size_t>(t)])));
  }
  for (const auto& task_attempts : executed.map_attempts) {
    for (const auto& attempt : task_attempts) {
      result.io += attempt.io;
      if (attempt.failed) ++result.failures_recovered;
    }
  }

  // ---- shuffle + reduce phase ---------------------------------------------
  if (has_reduce) {
    ShuffleResult shuffled =
        shuffle(std::move(map_outputs), spec.num_reduce_tasks,
                spec.partitioner, cluster_->size());
    result.shuffle_bytes = shuffled.total_bytes;
    result.shuffle_local_bytes = shuffled.local_bytes;
    result.shuffle_remote_bytes = shuffled.remote_bytes;
    // Node-local pairs never cross the network in Hadoop; only the remote
    // part is network traffic in the paper's Table 1/2 sense.
    result.io.bytes_transferred += shuffled.remote_bytes;

    const int num_reduces = spec.num_reduce_tasks;
    std::vector<IoStats> reduce_io(static_cast<std::size_t>(num_reduces));
    std::vector<std::vector<net::Transfer>> reduce_transfers(
        static_cast<std::size_t>(num_reduces));
    try {
      pool_->parallel_for(
          static_cast<std::size_t>(num_reduces), [&](std::size_t r) {
            const int task = static_cast<int>(r);
            TaskContext ctx(fs_, task, task % cluster_->size(), num_maps,
                            num_reduces, cluster_->size());
            auto reducer = spec.reducer_factory();
            MRI_CHECK_MSG(reducer != nullptr, "reducer factory returned null");
            for (const auto& [key, values] : shuffled.partitions[r]) {
              reducer->reduce(key, values, ctx);
            }
            reduce_io[r] = ctx.io();
            reduce_transfers[r] = ctx.take_transfers();
          });
    } catch (const Error& e) {
      throw JobError("reduce phase of job '" + spec.name +
                     "' failed: " + e.what());
    }

    // Under a racked topology each reducer's shuffle fetches become network
    // flows: one transfer per remote map node it pulls partitions from.
    // (Node-local fetches read from local disk and stay off the network,
    // matching the scalar local/remote split above.)
    {
      const net::Topology* topo = cluster_->topology().get();
      if (topo != nullptr && topo->racked() &&
          topo->num_hosts() == cluster_->size()) {
        for (int r = 0; r < num_reduces; ++r) {
          const int reduce_node = r % cluster_->size();
          for (const auto& [map_node, bytes] :
               shuffled.fetch_sources[static_cast<std::size_t>(r)]) {
            if (map_node == reduce_node || map_node < 0 || bytes == 0) {
              continue;
            }
            reduce_transfers[static_cast<std::size_t>(r)].push_back(
                net::Transfer{map_node, reduce_node, bytes,
                              net::TransferKind::kShuffle});
          }
        }
      }
    }

    executed.reduce_attempts.reserve(static_cast<std::size_t>(num_reduces));
    for (int r = 0; r < num_reduces; ++r) {
      executed.reduce_attempts.push_back(attempts_for(
          failures_, chaos_, spec.name, r, false,
          reduce_io[static_cast<std::size_t>(r)],
          std::move(reduce_transfers[static_cast<std::size_t>(r)])));
    }
    for (const auto& task_attempts : executed.reduce_attempts) {
      for (const auto& attempt : task_attempts) {
        result.io += attempt.io;
        if (attempt.failed) ++result.failures_recovered;
      }
    }
  }
  return executed;
}

JobResult JobRunner::finish(ExecutedJob executed, SlotPool* pool,
                            double start_seconds, const std::string& tenant) {
  // The pool may be shared across many requests while the cluster it was
  // sized for changes between them; trusting the constructor-time snapshot
  // would silently lease slots that no longer exist (or miss new ones).
  MRI_REQUIRE(pool == nullptr || pool->total_slots() == cluster_->total_slots(),
              "SlotPool tracks " << pool->total_slots()
                                 << " slots but the cluster now has "
                                 << cluster_->total_slots() << " ("
                                 << cluster_->size() << " nodes x "
                                 << cluster_->cost_model().slots_per_node
                                 << " slots/node); recreate the SlotPool (and "
                                    "any JobGraph built on it) whenever the "
                                    "cluster is resized");
  JobResult result = std::move(executed.result);
  result.start_seconds = start_seconds;
  const CostModel& model = cluster_->cost_model();
  const double launch = model.job_launch_seconds;
  const bool has_chaos = chaos_ != nullptr && chaos_->enabled();

  // The chaos engine speaks absolute run seconds; each phase wants its own
  // clock. Events on nodes outside this cluster are ignored.
  const auto chaos_view = [&](double phase_start) {
    PhaseChaos view;
    for (const ChaosEvent& e : chaos_->events()) {
      if (e.node >= cluster_->size()) continue;
      if (e.kind == ChaosEventKind::kKillNode) {
        view.outages.push_back(NodeOutage{e.node, e.at - phase_start, 0.0});
      } else if (e.kind == ChaosEventKind::kDegradeNode) {
        view.degrades.push_back(
            NodeDegrade{e.node, e.at - phase_start, e.factor});
      }
    }
    return view;
  };
  const auto schedule = [&](const std::vector<std::vector<Attempt>>& attempts,
                            double phase_start, bool commit_to_pool) {
    PhaseChaos view;
    if (has_chaos) view = chaos_view(phase_start);
    PhaseSchedule s;
    if (pool != nullptr) {
      const std::vector<double> busy = pool->offsets_at(phase_start, tenant);
      s = schedule_phase(*cluster_, attempts, &busy,
                         has_chaos ? &view : nullptr);
      if (commit_to_pool) pool->commit(s.trace, phase_start);
    } else {
      s = schedule_phase(*cluster_, attempts, nullptr,
                         has_chaos ? &view : nullptr);
    }
    return s;
  };
  const auto charge_phase = [&result](const PhaseSchedule& s) {
    // Speculative backups and chaos-killed attempts re-read and re-compute
    // (or wasted reads and compute) for real; charge them.
    result.io += s.speculative_io;
    result.speculation_io += s.speculative_io;
    result.backups_run += s.backups_run;
    result.io += s.chaos_io;
    result.recovery_io += s.chaos_io;
    result.chaos_attempts_killed += s.chaos_attempts_killed;
    // Flow-level network accounting (all zero on flat runs).
    result.net_node_local_bytes += s.net_node_local_bytes;
    result.net_rack_local_bytes += s.net_rack_local_bytes;
    result.net_cross_rack_bytes += s.net_cross_rack_bytes;
    result.rack_local_attempts += s.rack_local_attempts;
    result.cross_rack_attempts += s.cross_rack_attempts;
  };

  // The map phase starts once the job is launched; the reduce phase once the
  // last map attempt finished. Each phase leases the pool at its own start
  // so it sees exactly the slots concurrent jobs still occupy then.
  double map_start = start_seconds + launch;
  if (engine_ != nullptr) {
    // Lineage recovery from an earlier kill occupies the surviving slots;
    // a job launched before it completes waits for its inputs to be
    // rebuilt (the SPIN analogue of the reduce-phase recovery stall).
    const double available = engine_->recovery_available_at();
    if (available > map_start) {
      result.lineage_stall_seconds = available - map_start;
      map_start = available;
    }
  }
  PhaseSchedule map_phase = schedule(executed.map_attempts, map_start, true);
  result.map_phase_seconds = map_phase.duration;
  charge_phase(map_phase);
  merge_link_loads(&result.map_link_loads, map_phase.link_loads);
  result.map_trace = std::move(map_phase.trace);

  if (!executed.reduce_attempts.empty()) {
    double reduce_start = map_start + result.map_phase_seconds;

    if (has_chaos) {
      // Hadoop node-loss semantics: a completed map task's output lives on
      // its tasktracker's local disk, so a node death before the reduce
      // phase has consumed it forces the map task to re-execute. Model:
      // every kill inside the job's map..reduce window whose node hosted
      // completed map attempts triggers a recovery wave (the lost tasks
      // re-scheduled on survivors once the failure is detected); the reduce
      // phase starts only after the last wave. Waves can cascade — a later
      // kill can take out a wave's own outputs — so iterate to a fixpoint
      // (each kill is processed at most once; the loop terminates).
      std::vector<ChaosEvent> kills;
      for (const ChaosEvent& e : chaos_->events()) {
        if (e.kind == ChaosEventKind::kKillNode && e.node < cluster_->size()) {
          kills.push_back(e);
        }
      }
      struct OutputCopy {
        int task;
        int node;
      };
      std::vector<OutputCopy> outputs;
      std::vector<int> next_attempt(
          static_cast<std::size_t>(result.map_tasks), 0);
      for (const TaskTraceEvent& ev : result.map_trace) {
        if (!ev.failed) outputs.push_back(OutputCopy{ev.task, ev.node});
        auto& next = next_attempt[static_cast<std::size_t>(ev.task)];
        next = std::max(next, ev.attempt + 1);
      }

      std::vector<bool> kill_done(kills.size(), false);
      PhaseSchedule reduce_phase;
      while (true) {
        reduce_phase = schedule(executed.reduce_attempts, reduce_start, false);
        const double reduce_end = reduce_start + reduce_phase.duration;
        bool rescheduled = false;
        for (std::size_t k = 0; k < kills.size(); ++k) {
          if (kill_done[k] || kills[k].at >= reduce_end) continue;
          kill_done[k] = true;
          // Map tasks with a completed attempt on the dead node lose that
          // output (every copy on the node finished before the kill — the
          // scheduler truncates in-flight attempts at the outage).
          std::vector<int> lost;
          for (const OutputCopy& c : outputs) {
            if (c.node == kills[k].node) lost.push_back(c.task);
          }
          std::sort(lost.begin(), lost.end());
          lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
          if (lost.empty()) continue;

          std::vector<std::vector<Attempt>> wave;
          wave.reserve(lost.size());
          for (const int t : lost) {
            // The re-execution re-does the whole attempt, transfers
            // included (endpoints stay as originally recorded — a fair
            // approximation of re-reading the same replicas).
            wave.push_back(
                {executed.map_attempts[static_cast<std::size_t>(t)].back()});
          }
          const double wave_start =
              kills[k].at + model.failure_detection_seconds;
          PhaseSchedule wave_phase = schedule(wave, wave_start, true);
          charge_phase(wave_phase);
          merge_link_loads(&result.map_link_loads, wave_phase.link_loads);
          std::vector<int> wave_attempts(lost.size(), 0);
          for (const TaskTraceEvent& ev : wave_phase.trace) {
            const int task = lost[static_cast<std::size_t>(ev.task)];
            TaskTraceEvent rec = ev;
            rec.task = task;
            rec.attempt =
                next_attempt[static_cast<std::size_t>(task)] + ev.attempt;
            rec.recovery = true;
            rec.start += wave_start - map_start;
            rec.end += wave_start - map_start;
            result.map_trace.push_back(rec);
            if (!ev.failed) outputs.push_back(OutputCopy{task, ev.node});
            auto& used = wave_attempts[static_cast<std::size_t>(ev.task)];
            used = std::max(used, ev.attempt + 1);
          }
          for (std::size_t i = 0; i < lost.size(); ++i) {
            next_attempt[static_cast<std::size_t>(lost[i])] +=
                wave_attempts[i];
          }
          for (const int t : lost) {
            // The re-executed attempt re-does its full footprint.
            const IoStats& redo =
                executed.map_attempts[static_cast<std::size_t>(t)].back().io;
            result.io += redo;
            result.recovery_io += redo;
          }
          result.tasks_recomputed += static_cast<int>(lost.size());
          reduce_start =
              std::max(reduce_start, wave_start + wave_phase.duration);
          rescheduled = true;
          break;
        }
        if (!rescheduled) break;
      }
      if (pool != nullptr) pool->commit(reduce_phase.trace, reduce_start);
      result.recovery_seconds =
          reduce_start - (map_start + result.map_phase_seconds);
      result.reduce_phase_seconds = reduce_phase.duration;
      charge_phase(reduce_phase);
      merge_link_loads(&result.reduce_link_loads, reduce_phase.link_loads);
      result.reduce_trace = std::move(reduce_phase.trace);
    } else {
      PhaseSchedule reduce_phase =
          schedule(executed.reduce_attempts, reduce_start, true);
      result.reduce_phase_seconds = reduce_phase.duration;
      charge_phase(reduce_phase);
      merge_link_loads(&result.reduce_link_loads, reduce_phase.link_loads);
      result.reduce_trace = std::move(reduce_phase.trace);
    }
  }

  result.sim_seconds = launch + result.lineage_stall_seconds +
                       result.map_phase_seconds + result.recovery_seconds +
                       result.reduce_phase_seconds;

  // Apply DFS-side consequences (block loss, re-replication) of every chaos
  // event up to this job's end before the next job executes its reads.
  if (chaos_ != nullptr) {
    chaos_->advance_to(start_seconds + result.sim_seconds);
  }

  if (metrics_ != nullptr) {
    metrics_->increment("jobs");
    metrics_->increment("map_tasks",
                        static_cast<std::uint64_t>(result.map_tasks));
    metrics_->increment("reduce_tasks",
                        static_cast<std::uint64_t>(result.reduce_tasks));
    metrics_->increment(
        "task_failures",
        static_cast<std::uint64_t>(result.failures_recovered));
    metrics_->increment("backup_attempts",
                        static_cast<std::uint64_t>(result.backups_run));
    metrics_->increment("shuffle_local_bytes", result.shuffle_local_bytes);
    metrics_->increment("shuffle_remote_bytes", result.shuffle_remote_bytes);
    metrics_->increment("tasks_recomputed",
                        static_cast<std::uint64_t>(result.tasks_recomputed));
    metrics_->increment(
        "chaos_attempts_killed",
        static_cast<std::uint64_t>(result.chaos_attempts_killed));
  }
  return result;
}

}  // namespace mri::mr
