// A pipeline of MapReduce jobs (Figure 2 of the paper) with accumulated
// simulated time and I/O. The master node's own compute (leaf LU
// decompositions, metadata partitioning) is charged via add_master_work().
#pragma once

#include <string>
#include <vector>

#include "mapreduce/runtime.hpp"

namespace mri::mr {

class Pipeline {
 public:
  explicit Pipeline(JobRunner* runner) : runner_(runner) {
    MRI_REQUIRE(runner != nullptr, "Pipeline needs a JobRunner");
  }

  /// Runs a job and folds its result into the totals.
  const JobResult& run(const JobSpec& spec);

  /// Charges serial work done on the master node between jobs.
  void add_master_work(const IoStats& io);

  double total_sim_seconds() const { return sim_seconds_; }
  double master_seconds() const { return master_seconds_; }
  const IoStats& total_io() const { return io_; }
  int job_count() const { return static_cast<int>(jobs_.size()); }
  int failures_recovered() const { return failures_; }
  int backups_run() const { return backups_; }
  const std::vector<JobResult>& jobs() const { return jobs_; }

 private:
  JobRunner* runner_;
  std::vector<JobResult> jobs_;
  double sim_seconds_ = 0.0;
  double master_seconds_ = 0.0;
  IoStats io_;
  int failures_ = 0;
  int backups_ = 0;
};

}  // namespace mri::mr
