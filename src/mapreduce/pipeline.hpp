// A pipeline of MapReduce jobs (Figure 2 of the paper) with accumulated
// simulated time and I/O. Since the JobGraph refactor this is a thin facade
// over the DAG executor: run() is submit-then-wait (strictly sequential
// submissions reproduce the historical serial-sum numbers bit-for-bit), and
// drivers that know two jobs are independent can submit() them with explicit
// dependencies and let them share the cluster. The master node's own compute
// (leaf LU decompositions, metadata partitioning) is charged via
// add_master_work(), which now also records a master-lane span.
#pragma once

#include <string>
#include <vector>

#include "mapreduce/job_graph.hpp"
#include "mapreduce/runtime.hpp"

namespace mri::mr {

class Pipeline {
 public:
  explicit Pipeline(JobRunner* runner) : graph_(runner) {}
  /// Service-layer construction: share a SlotPool with other pipelines,
  /// start the timeline at a request's dispatch time, lease slots under a
  /// fair-share tenant identity.
  Pipeline(JobRunner* runner, JobGraphOptions options)
      : graph_(runner, std::move(options)) {}

  /// Runs a job to completion and folds its result into the totals.
  const JobResult& run(const JobSpec& spec) {
    return graph_.wait(graph_.submit(spec));
  }

  /// Submits a job to run after `deps` (invalid handles are ignored) without
  /// blocking; jobs with no ordering between them share the cluster's slots.
  JobHandle submit(JobSpec spec, std::vector<JobHandle> deps = {}) {
    return graph_.submit(std::move(spec), std::move(deps));
  }

  /// Blocks for a submitted job and advances the pipeline clock to its
  /// finish. Rethrows the job's JobError if it failed.
  const JobResult& wait(JobHandle h) { return graph_.wait(h); }

  /// Waits for every submitted job (no-op when all were wait()ed already).
  void run_all() { graph_.run_all(); }

  /// Charges serial work done on the master node between jobs.
  void add_master_work(const IoStats& io) { graph_.add_master_work(io); }

  /// Makespan of the executed DAG; a serial sum for sequential submissions.
  double total_sim_seconds() const { return graph_.total_sim_seconds(); }
  double master_seconds() const { return graph_.master_seconds(); }
  const IoStats& total_io() const { return graph_.total_io(); }
  int job_count() const { return graph_.job_count(); }
  int failures_recovered() const { return graph_.failures_recovered(); }
  int backups_run() const { return graph_.backups_run(); }
  const std::vector<JobResult>& jobs() const { return graph_.jobs(); }
  const std::vector<MasterSpan>& master_spans() const {
    return graph_.master_spans();
  }

  JobGraph& graph() { return graph_; }

 private:
  JobGraph graph_;
};

}  // namespace mri::mr
