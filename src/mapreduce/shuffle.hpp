// The shuffle: partition map output by key, group by key, sort keys.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "mapreduce/types.hpp"

namespace mri::mr {

/// Key -> values (ascending key order) for one reduce partition.
using ReduceInput = std::map<std::int64_t, std::vector<std::string>>;

struct ShuffleResult {
  std::vector<ReduceInput> partitions;
  /// Serialized size of all shuffled pairs (8-byte key + value bytes).
  std::uint64_t total_bytes = 0;
  /// Split of total_bytes by placement: a pair is node-local when the map
  /// task's node (task % cluster_size) equals the reduce partition's node
  /// (partition % cluster_size) — Hadoop fetches those from local disk, so
  /// only remote_bytes cross the network. With cluster_size == 0 placement
  /// is unknown and everything counts as remote.
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  /// Per reduce partition: (map node, bytes) fetch list in ascending node
  /// order — the endpoints of the reducer's shuffle fetches, for the
  /// flow-level network model. Includes node-local contributions (the
  /// reducer's own node); empty when cluster_size == 0.
  std::vector<std::vector<std::pair<int, std::uint64_t>>> fetch_sources;
};

/// The default partitioner: key mod num_partitions as a floor-mod, so a
/// negative key still lands in [0, num_partitions). C++'s truncating `%`
/// would hand a negative reduce index to the shuffle (and Hadoop's
/// HashPartitioner masks the sign bit for the same reason).
int floor_mod_partition(std::int64_t key, int num_partitions);

/// Partitions and groups map output. `partitioner` may be null (key mod
/// num_partitions, non-negative). Values for equal keys keep map-task order
/// (stable within a task; tasks concatenated in task-index order).
/// `cluster_size` drives the local/remote byte split (0 = all remote).
ShuffleResult shuffle(std::vector<std::vector<KeyValue>> map_outputs,
                      int num_partitions,
                      const std::function<int(std::int64_t, int)>& partitioner,
                      int cluster_size = 0);

}  // namespace mri::mr
