// Key/value pairs flowing through the shuffle.
//
// In the paper's implementation the shuffled pairs are tiny control records
// ((j, j) integers steering which reducer computes which block); the bulk
// matrix data moves through HDFS files written and read directly by tasks.
// The runtime nevertheless implements a general string-valued shuffle so
// ordinary MapReduce programs (see tests/mapreduce) also run on it.
#pragma once

#include <cstdint>
#include <string>

namespace mri::mr {

struct KeyValue {
  std::int64_t key = 0;
  std::string value;

  bool operator==(const KeyValue&) const = default;
};

}  // namespace mri::mr
