// Per-task execution context handed to map() and reduce().
//
// The context is the task's only window on the world: DFS access with
// per-task I/O accounting, flop accounting for the cost model, emit() into
// the shuffle, and the task's coordinates (index, node, phase sizes) that
// the paper's workers use to decide their role.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/dfs.hpp"
#include "mapreduce/types.hpp"
#include "net/topology.hpp"
#include "sim/io_stats.hpp"

namespace mri::mr {

class TaskContext {
 public:
  TaskContext(dfs::Dfs* fs, int task_index, int node, int num_map_tasks,
              int num_reduce_tasks, int cluster_size)
      : fs_(fs),
        task_index_(task_index),
        node_(node),
        num_map_tasks_(num_map_tasks),
        num_reduce_tasks_(num_reduce_tasks),
        cluster_size_(cluster_size),
        transfer_log_(node) {}

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

  dfs::Dfs& fs() { return *fs_; }
  const dfs::Dfs& fs() const { return *fs_; }

  /// Per-task accounting; pass &io() to DFS open/create calls.
  IoStats& io() { return io_; }
  const IoStats& io() const { return io_; }

  /// Records compute work (mults/adds) done by the task.
  void add_flops(const IoStats& flops) {
    io_.mults += flops.mults;
    io_.adds += flops.adds;
  }

  /// Emits a key/value pair into the shuffle (map phase only; the runtime
  /// ignores reduce-phase emissions into job output instead).
  void emit(std::int64_t key, std::string value) {
    emitted_.push_back(KeyValue{key, std::move(value)});
  }

  int task_index() const { return task_index_; }
  int node() const { return node_; }
  int num_map_tasks() const { return num_map_tasks_; }
  int num_reduce_tasks() const { return num_reduce_tasks_; }
  int cluster_size() const { return cluster_size_; }

  const std::vector<KeyValue>& emitted() const { return emitted_; }
  std::vector<KeyValue> take_emitted() { return std::move(emitted_); }

  /// Network transfers this task's DFS traffic implied (recorded only while
  /// the filesystem has a racked topology; empty otherwise). The runtime
  /// moves these into the scheduler attempt so flows get charged through
  /// the network simulator. The context installs the log for its own
  /// lifetime, which is exactly the task body — tasks run wholly on one
  /// pool thread.
  std::vector<net::Transfer> take_transfers() {
    return std::move(transfer_log_.log().transfers);
  }

 private:
  dfs::Dfs* fs_;
  int task_index_;
  int node_;
  int num_map_tasks_;
  int num_reduce_tasks_;
  int cluster_size_;
  IoStats io_;
  std::vector<KeyValue> emitted_;
  dfs::ScopedTransferLog transfer_log_;
};

}  // namespace mri::mr
