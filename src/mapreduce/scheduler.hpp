// Simulated-time scheduling of one task phase (map or reduce).
//
// The model reproduces Hadoop 1.x behaviour as the paper experienced it
// (§7.4): tasks are placed FIFO onto free slots; when a task attempt fails,
// its node is lost for the remainder of the phase (the paper's failed mapper
// took its slot down with it) and the re-execution is queued, starting only
// when the failure is detected AND a slot frees up — "this mapper did not
// restart until one of the other mappers finished".
//
// Real computation happens elsewhere (JobRunner executes tasks on a thread
// pool); the scheduler only turns per-attempt IoStats into a phase duration.
// Every attempt placement — including failed attempts and speculative
// backups — is recorded as a TaskTraceEvent for the run report.
#pragma once

#include <vector>

#include "sim/cluster.hpp"
#include "sim/io_stats.hpp"
#include "sim/trace.hpp"

namespace mri::mr {

struct Attempt {
  IoStats io;
  bool failed = false;  // injected failure: attempt dies, retry follows
};

struct PhaseSchedule {
  double duration = 0.0;
  int attempts_run = 0;
  int nodes_lost = 0;
  /// Speculative backup attempts launched (0 unless the cost model enables
  /// speculative_execution).
  int backups_run = 0;
  /// Footprint of the speculative backups: re-read input and re-done flops.
  /// The losing copy's output is discarded before commit, so no writes.
  /// Callers must add this to the job's I/O totals.
  IoStats speculative_io;
  /// Per-attempt timeline. Spans sharing a slot never overlap; losing
  /// speculative copies (and originals beaten by their backup) are truncated
  /// at the winner's finish, so max end == duration.
  std::vector<TaskTraceEvent> trace;
};

/// Schedules `attempts_per_task[t]` = the ordered attempts of task t (zero or
/// more failed attempts followed by exactly one successful one). `node_hint`
/// pins fresh attempts of task t near node (t % cluster size), matching the
/// paper's worker-j-reads-file-A.j placement; retries go wherever a slot is.
PhaseSchedule schedule_phase(const Cluster& cluster,
                             const std::vector<std::vector<Attempt>>& attempts_per_task);

}  // namespace mri::mr
