// Simulated-time scheduling of one task phase (map or reduce).
//
// The model reproduces Hadoop 1.x behaviour as the paper experienced it
// (§7.4): tasks are placed FIFO onto free slots; when a task attempt fails,
// its node is lost for the remainder of the phase (the paper's failed mapper
// took its slot down with it) and the re-execution is queued, starting only
// when the failure is detected AND a slot frees up — "this mapper did not
// restart until one of the other mappers finished".
//
// Real computation happens elsewhere (JobRunner executes tasks on a thread
// pool); the scheduler only turns per-attempt IoStats into a phase duration.
// Every attempt placement — including failed attempts and speculative
// backups — is recorded as a TaskTraceEvent for the run report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow_sim.hpp"
#include "sim/cluster.hpp"
#include "sim/io_stats.hpp"
#include "sim/trace.hpp"

namespace mri::mr {

struct Attempt {
  IoStats io;
  bool failed = false;  // injected failure: attempt dies, retry follows
  /// Network transfers the attempt's DFS/shuffle traffic implies (recorded
  /// by the runtime under a racked topology; empty on flat runs). When the
  /// cluster carries a racked topology, the scheduler charges these through
  /// the flow simulator instead of the scalar network term.
  std::vector<net::Transfer> transfers;
};

/// One node death visible to a phase, in phase-relative seconds. `at <= 0`
/// means the node was already dead when the phase started: its slots never
/// join the pool. A mid-phase death kills the node's in-flight attempts at
/// `at`; their retries become ready at `at + detect_after` (§7.4: the
/// jobtracker only notices after the task timeout).
struct NodeOutage {
  int node = 0;
  double at = 0.0;
  double detect_after = 0.0;
};

/// The node slows down by `factor` for work starting at or after `at`
/// (phase-relative); a chaos straggler on top of the static speed variance.
struct NodeDegrade {
  int node = 0;
  double at = 0.0;
  double factor = 1.0;
};

/// The chaos engine's fault schedule projected onto one phase's clock;
/// built by JobRunner::finish() from the engine's absolute-time events.
struct PhaseChaos {
  std::vector<NodeOutage> outages;
  std::vector<NodeDegrade> degrades;
};

struct PhaseSchedule {
  double duration = 0.0;
  int attempts_run = 0;
  int nodes_lost = 0;
  /// Speculative backup attempts launched (0 unless the cost model enables
  /// speculative_execution).
  int backups_run = 0;
  /// Footprint of the speculative backups: re-read input and re-done flops.
  /// The losing copy's output is discarded before commit, so no writes.
  /// Callers must add this to the job's I/O totals.
  IoStats speculative_io;
  /// In-flight attempts killed by chaos node outages (distinct from the
  /// injected task failures counted in nodes_lost's legacy path).
  int chaos_attempts_killed = 0;
  /// Wasted footprint of chaos-killed attempts — the reads and flops the
  /// dead attempt had consumed (charged in full, like ghost attempts).
  /// Callers must add this to the job's I/O totals.
  IoStats chaos_io;
  /// Per-attempt timeline. Spans sharing a slot never overlap; losing
  /// speculative copies (and originals beaten by their backup) are truncated
  /// at the winner's finish, so max end == duration.
  std::vector<TaskTraceEvent> trace;
  /// Flow-level network accounting (racked topologies only; empty/zero
  /// otherwise). `link_loads` is indexed by Topology link id and comes from
  /// one global flow simulation of every recorded transfer at its attempt's
  /// start time.
  std::vector<net::LinkLoad> link_loads;
  /// Recorded transfer bytes split by distance travelled.
  std::uint64_t net_node_local_bytes = 0;
  std::uint64_t net_rack_local_bytes = 0;
  std::uint64_t net_cross_rack_bytes = 0;
  /// Attempts dispatched inside (vs outside) the rack of their task's home
  /// node (task % cluster size).
  int rack_local_attempts = 0;
  int cross_rack_attempts = 0;
};

/// Schedules `attempts_per_task[t]` = the ordered attempts of task t (zero or
/// more failed attempts followed by exactly one successful one). `node_hint`
/// pins fresh attempts of task t near node (t % cluster size), matching the
/// paper's worker-j-reads-file-A.j placement; retries go wherever a slot is.
///
/// `slot_busy_until` (optional) gives, per global slot id, the phase-relative
/// time before which the slot is still busy with other jobs' tasks — the
/// lease a SlotPool hands out when concurrent jobs share the cluster. Null
/// (or all zeros) means the phase owns an idle cluster, which is exactly the
/// pre-JobGraph behaviour. An entry of SlotPool::kUnavailable (infinity)
/// withholds the slot from this phase entirely: a fair-share lease marks
/// other tenants' slots unavailable rather than merely busy.
///
/// `chaos` (optional) overlays the fault schedule: dead-on-arrival nodes
/// contribute no slots, mid-phase outages kill in-flight attempts (retried
/// after the outage's detection delay, on surviving nodes) and remove the
/// node's slots, and degrades slow a node's subsequent attempts. Throws
/// when every slot is dead or withheld.
///
/// When the cluster carries a racked topology (Cluster::set_topology), the
/// phase is costed with the flow-level network model instead of the scalar
/// per-node bandwidth: a first greedy pass places attempts with their
/// uncontended (standalone) flow times, one global max-min flow simulation
/// replays every recorded transfer at its attempt's start, and a second
/// greedy pass re-places with the contended flow times. Rack-aware
/// dispatch additionally prefers a slot in the task's home rack among
/// equally-free slots. A flat (or absent) topology takes the original
/// single-pass scalar path bit-identically.
PhaseSchedule schedule_phase(const Cluster& cluster,
                             const std::vector<std::vector<Attempt>>& attempts_per_task,
                             const std::vector<double>* slot_busy_until = nullptr,
                             const PhaseChaos* chaos = nullptr);

/// One tenant's weight in a fair-share SlotPool: slots are divided between
/// tenants proportionally to weight (largest remainder, every tenant gets at
/// least one slot).
struct TenantShare {
  std::string tenant;
  int weight = 1;
};

/// Cluster-wide slot arbiter for concurrent jobs: tracks, per global slot,
/// the absolute run time until which the slot is occupied. A phase scheduled
/// at absolute time T leases the cluster via offsets_at(T) (phase-relative
/// busy offsets for schedule_phase) and commits its placements back with
/// commit(trace, T), so the next eligible phase sees the slots it filled.
/// With strictly sequential phases every offset is 0 and the arbiter is
/// invisible — sequential runs reproduce the shared-nothing numbers exactly.
///
/// Fair sharing (the service layer's policy): set_shares() assigns every
/// slot a tenant owner by weight. A lease taken with a tenant id may use the
/// tenant's own slots plus — work-conserving redistribution — the slots of
/// tenants that currently have no work in the system (acquire()/release()
/// refcounts, maintained by the service as requests enter and leave); slots
/// of busy tenants come back as kUnavailable. Without shares, or with an
/// empty tenant id, every lease sees the whole pool first-come first-served.
class SlotPool {
 public:
  explicit SlotPool(int total_slots);

  /// Sentinel busy offset: the slot is not leasable by this phase at all.
  static double unavailable();

  int total_slots() const { return static_cast<int>(free_at_.size()); }

  /// Installs a weighted fair-share partition of the slots. Requires at
  /// least as many slots as tenants; replaces any previous shares. Resets
  /// activity refcounts.
  void set_shares(std::vector<TenantShare> shares);
  bool has_shares() const { return !shares_.empty(); }

  /// Marks a tenant as having work in the system (queued or running); its
  /// slots stop being borrowable. Calls nest.
  void acquire(const std::string& tenant);
  void release(const std::string& tenant);

  /// Slot ids owned by `tenant` under the current shares (empty when no
  /// shares are set).
  std::vector<int> slots_of(const std::string& tenant) const;

  /// Phase-relative busy offsets for a phase starting at `phase_start`
  /// (clamped at 0 for slots already free). The tenant-aware overload masks
  /// out slots the tenant may not use (see class comment); tenants must be
  /// registered via set_shares().
  std::vector<double> offsets_at(double phase_start) const;
  std::vector<double> offsets_at(double phase_start,
                                 const std::string& tenant) const;

  /// Folds a scheduled phase's per-attempt trace back into the pool.
  void commit(const std::vector<TaskTraceEvent>& events, double phase_start);

 private:
  int share_index(const std::string& tenant) const;  // -1 when absent

  std::vector<double> free_at_;  // absolute run seconds per global slot
  std::vector<TenantShare> shares_;
  std::vector<int> owner_;   // per-slot index into shares_; empty = no policy
  std::vector<int> active_;  // per-share count of requests in the system
};

}  // namespace mri::mr
