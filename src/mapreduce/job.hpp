// Job specification and result types.
//
// A job mirrors Hadoop 1.x structure as the paper uses it:
//  * one map task per input file — the paper's control files
//    "Root/MapInput/A.j", each holding the integer j that tells the mapper
//    its role (§5.1);
//  * an optional reduce phase of num_reduce_tasks tasks fed by the shuffle;
//  * tasks read and write their real payload directly in the DFS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/context.hpp"
#include "net/flow_sim.hpp"
#include "sim/io_stats.hpp"
#include "sim/trace.hpp"

namespace mri::mr {

class Mapper {
 public:
  virtual ~Mapper() = default;
  /// `key` is the task index; `value` is the raw content of the input file.
  virtual void map(std::int64_t key, const std::string& value,
                   TaskContext& ctx) = 0;
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  /// Called once per key owned by this reduce task, keys in ascending order.
  virtual void reduce(std::int64_t key, const std::vector<std::string>& values,
                      TaskContext& ctx) = 0;
};

struct JobSpec {
  std::string name = "job";
  /// One map task per input file.
  std::vector<std::string> input_files;
  std::function<std::unique_ptr<Mapper>()> mapper_factory;
  /// Null factory or num_reduce_tasks == 0 makes this a map-only job.
  std::function<std::unique_ptr<Reducer>()> reducer_factory;
  int num_reduce_tasks = 0;
  /// Maps a key to a reduce task index in [0, num_reduce_tasks); the shuffle
  /// validates the range. Default is floor_mod_partition (key mod
  /// num_reduce_tasks, non-negative even for negative keys).
  std::function<int(std::int64_t, int)> partitioner;
};

struct JobResult {
  std::string name;
  /// Simulated seconds including the job launch overhead.
  double sim_seconds = 0.0;
  double map_phase_seconds = 0.0;
  double reduce_phase_seconds = 0.0;
  IoStats io;
  int map_tasks = 0;
  int reduce_tasks = 0;
  /// Injected task failures that were recovered by re-execution.
  int failures_recovered = 0;
  /// Speculative backup attempts launched across both phases.
  int backups_run = 0;
  /// The backups' re-done reads and flops (included in io).
  IoStats speculation_io;
  /// Total shuffle traffic in bytes, split into node-local pairs (mapper and
  /// reducer share a node; never cross the network) and remote pairs (the
  /// only part charged to io.bytes_transferred).
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t shuffle_local_bytes = 0;
  std::uint64_t shuffle_remote_bytes = 0;
  /// Chaos node-loss recovery (all zero without a chaos engine):
  /// completed map tasks re-executed because their output died with a node,
  /// in-flight attempts killed by node outages, the wasted + re-done
  /// footprint (included in io), and the reduce-phase stall spent waiting
  /// for the recomputation waves.
  int tasks_recomputed = 0;
  int chaos_attempts_killed = 0;
  IoStats recovery_io;
  double recovery_seconds = 0.0;
  /// SPIN engine only: seconds this job waited for lineage recomputation of
  /// a prior kill to finish before its map phase could start (0 without an
  /// engine or when recovery completed earlier).
  double lineage_stall_seconds = 0.0;
  /// Per-attempt timelines from the scheduler (phase-relative seconds).
  std::vector<TaskTraceEvent> map_trace;
  std::vector<TaskTraceEvent> reduce_trace;
  /// Flow-level network accounting, filled only when a racked topology is
  /// attached to the cluster (empty/zero on flat runs). Link loads are
  /// indexed by Topology link id; recovery waves fold into the map phase.
  std::vector<net::LinkLoad> map_link_loads;
  std::vector<net::LinkLoad> reduce_link_loads;
  /// Recorded DFS/shuffle bytes split by how far they travelled.
  std::uint64_t net_node_local_bytes = 0;
  std::uint64_t net_rack_local_bytes = 0;
  std::uint64_t net_cross_rack_bytes = 0;
  /// Attempts dispatched inside (or outside) their task's home rack.
  int rack_local_attempts = 0;
  int cross_rack_attempts = 0;
  /// Run-relative start of this job on its pipeline's timeline (stamped by
  /// Pipeline::run; 0 for a job run outside a pipeline).
  double start_seconds = 0.0;
};

}  // namespace mri::mr
