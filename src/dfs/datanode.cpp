#include "dfs/datanode.hpp"

#include "common/error.hpp"

namespace mri::dfs {

void DataNode::put(BlockId block, BlockData data) {
  MRI_CHECK(data != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = blocks_.emplace(block, std::move(data));
  MRI_CHECK_MSG(inserted, "block " << block << " already on datanode " << id_);
  bytes_ += it->second->size();
}

BlockData DataNode::get(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(block);
  MRI_CHECK_MSG(it != blocks_.end(),
                "block " << block << " missing from datanode " << id_);
  return it->second;
}

bool DataNode::has(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.count(block) > 0;
}

void DataNode::evict(BlockId block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return;
  bytes_ -= it->second->size();
  blocks_.erase(it);
}

void DataNode::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.clear();
  bytes_ = 0;
}

std::uint64_t DataNode::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t DataNode::block_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

}  // namespace mri::dfs
