// A simulated datanode: a block store with usage accounting.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "dfs/block.hpp"

namespace mri::dfs {

class DataNode {
 public:
  explicit DataNode(int id) : id_(id) {}

  int id() const { return id_; }

  void put(BlockId block, BlockData data);
  BlockData get(BlockId block) const;
  bool has(BlockId block) const;
  void evict(BlockId block);

  /// Drops every block (the node died; its disks are gone).
  void clear();

  /// Bytes of replicas resident on this node.
  std::uint64_t bytes_stored() const;
  std::size_t block_count() const;

 private:
  int id_;
  mutable std::mutex mu_;
  std::unordered_map<BlockId, BlockData> blocks_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mri::dfs
