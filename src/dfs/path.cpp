#include "dfs/path.hpp"

#include "common/error.hpp"

namespace mri::dfs {

std::string normalize(std::string_view path) {
  std::vector<std::string> parts = components(path);
  std::string out = "/";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out += parts[i];
    if (i + 1 < parts.size()) out += '/';
  }
  return out;
}

std::string join(std::string_view base, std::string_view rest) {
  std::string combined(base);
  combined += '/';
  combined += rest;
  return normalize(combined);
}

std::string parent(std::string_view path) {
  auto parts = components(path);
  if (parts.empty()) return "/";
  parts.pop_back();
  std::string out = "/";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out += parts[i];
    if (i + 1 < parts.size()) out += '/';
  }
  return out;
}

std::string basename(std::string_view path) {
  auto parts = components(path);
  return parts.empty() ? std::string() : parts.back();
}

std::vector<std::string> components(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    std::size_t end = pos;
    while (end < path.size() && path[end] != '/') ++end;
    if (end > pos) {
      std::string_view part = path.substr(pos, end - pos);
      MRI_REQUIRE(part != "." && part != "..",
                  "relative path components are not supported: " << path);
      parts.emplace_back(part);
    }
    pos = end;
  }
  return parts;
}

}  // namespace mri::dfs
