#include "dfs/dfs.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "dfs/ec/rs_codec.hpp"
#include "dfs/integrity/crc32c.hpp"
#include "dfs/path.hpp"
#include "net/flow_sim.hpp"

namespace mri::dfs {

namespace {
thread_local TransferLog* t_transfer_log = nullptr;
}  // namespace

TransferLog* current_transfer_log() { return t_transfer_log; }

ScopedTransferLog::ScopedTransferLog(int node) : previous_(t_transfer_log) {
  log_.node = node;
  t_transfer_log = &log_;
}

ScopedTransferLog::~ScopedTransferLog() { t_transfer_log = previous_; }

Dfs::Dfs(int num_datanodes, DfsConfig config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  MRI_REQUIRE(num_datanodes >= 1, "DFS needs at least one datanode");
  MRI_REQUIRE(config.replication >= 1, "replication must be >= 1");
  MRI_REQUIRE(config.block_size >= 1, "block size must be >= 1");
  MRI_REQUIRE(config.scrub_interval_seconds >= 0.0,
              "scrub interval must be >= 0");
  MRI_REQUIRE(config.scrub_interval_seconds == 0.0 || config.verify_checksums,
              "the background scrubber verifies checksums, so "
              "scrub_interval_seconds needs verify_checksums on");
  if (config.storage_policy == StoragePolicy::kErasureCoded) {
    MRI_REQUIRE(config.ec.k >= 1 && config.ec.m >= 1,
                "erasure coding needs k >= 1 and m >= 1, got RS("
                    << config.ec.k << "," << config.ec.m << ")");
    MRI_REQUIRE(config.ec.cells() <= num_datanodes,
                "erasure coding RS(" << config.ec.k << "," << config.ec.m
                                     << ") needs k + m = " << config.ec.cells()
                                     << " datanodes to spread a stripe, but "
                                        "the cluster has only "
                                     << num_datanodes);
  }
  datanodes_.reserve(static_cast<std::size_t>(num_datanodes));
  for (int i = 0; i < num_datanodes; ++i) {
    datanodes_.push_back(std::make_unique<DataNode>(i));
  }
  dead_.assign(static_cast<std::size_t>(num_datanodes), false);
  read_errors_.assign(static_cast<std::size_t>(num_datanodes), 0);
}

void Dfs::set_topology(std::shared_ptr<const net::Topology> topology) {
  MRI_REQUIRE(topology == nullptr || !topology->racked() ||
                  topology->num_hosts() == num_datanodes(),
              "topology has " << topology->num_hosts() << " hosts but the DFS "
                              << "has " << num_datanodes() << " datanodes");
  topology_ = std::move(topology);
}

bool Dfs::racked_topology() const {
  return topology_ != nullptr && topology_->racked() &&
         topology_->num_hosts() == num_datanodes();
}

void Dfs::remove(const std::string& path, bool recursive) {
  TierListener* listener = tier_listener_.load(std::memory_order_acquire);
  const bool want_paths =
      listener != nullptr || config_.hot_cache_bytes > 0;
  std::vector<std::string> removed_paths;
  for (const auto& block : namenode_.remove(
           path, recursive, want_paths ? &removed_paths : nullptr)) {
    checksums_.forget(block.id);
    for (int node : block.replicas) {
      if (node < 0) continue;  // lost EC cell sentinel
      datanodes_[static_cast<std::size_t>(node)]->evict(block.id);
    }
  }
  if (config_.hot_cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(hot_mu_);
    bool changed = false;
    for (const std::string& p : removed_paths) {
      changed = hot_candidates_.erase(p) > 0 || changed;
    }
    if (changed) recompute_hot_residents_locked();
  }
  if (listener != nullptr) {
    for (const std::string& p : removed_paths) listener->on_remove(p);
  }
}

// ---------------------------------------------------------------------------
// Writer

Dfs::Writer::Writer(Dfs* fs, std::string path, bool overwrite, IoStats* account,
                    StorageTier tier)
    : fs_(fs), path_(std::move(path)), overwrite_(overwrite),
      account_(account), tier_(tier) {}

Dfs::Writer::Writer(Writer&& other) noexcept
    : fs_(other.fs_),
      path_(std::move(other.path_)),
      overwrite_(other.overwrite_),
      account_(other.account_),
      tier_(other.tier_),
      buffer_(std::move(other.buffer_)),
      closed_(other.closed_) {
  other.closed_ = true;  // moved-from writer must not commit
}

Dfs::Writer::~Writer() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Swallow: destructor must not throw. Callers that care about commit
      // failures should call close() explicitly.
    }
  }
}

void Dfs::Writer::write(std::span<const std::byte> data) {
  MRI_CHECK_MSG(!closed_, "write() after close() on " << path_);
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Dfs::Writer::write_doubles(std::span<const double> values) {
  write(std::as_bytes(values));
}

void Dfs::Writer::write_u64(std::uint64_t value) {
  write(std::as_bytes(std::span<const std::uint64_t>(&value, 1)));
}

void Dfs::Writer::write_text(std::string_view text) {
  write(std::as_bytes(std::span<const char>(text.data(), text.size())));
}

void Dfs::Writer::close() {
  if (closed_) return;
  closed_ = true;
  fs_->commit(path_, std::move(buffer_), overwrite_, account_, tier_);
}

Dfs::Writer Dfs::create(const std::string& path, IoStats* account,
                        bool overwrite, StorageTier tier) {
  return Writer(this, normalize(path), overwrite, account, tier);
}

void Dfs::commit(const std::string& path, std::vector<std::byte> buffer,
                 bool overwrite, IoStats* account, StorageTier tier,
                 bool charge, bool notify) {
  const std::uint64_t total = buffer.size();
  // Replicas go to live nodes only; with no dead nodes this degenerates to
  // round-robin over all datanodes, bit-identical to the chaos-free layout.
  std::vector<int> live;
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    for (std::size_t i = 0; i < dead_.size(); ++i) {
      if (!dead_[i]) live.push_back(static_cast<int>(i));
    }
  }
  MRI_CHECK_MSG(!live.empty(),
                "every datanode is dead; cannot write " << path);
  // Memory-tier files keep a single unreplicated copy (Spark-style lineage
  // fault tolerance instead of replication).
  const int repl =
      tier == StorageTier::kMemory
          ? 1
          : std::min(config_.replication, static_cast<int>(live.size()));

  // Placement base: FNV-1a of the path, advanced per block. A function of
  // the file alone — NOT a shared counter — so concurrent writers racing on
  // commit order still produce the same replica layout every run (chaos
  // re-replication totals depend on which blocks lived on the dead node, so
  // placement must be deterministic for same-seed runs to be bit-identical).
  std::uint64_t base = 14695981039346656037ull;
  for (char c : path) {
    base ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    base *= 1099511628211ull;
  }

  // Rack-aware placement (HDFS default policy) and pipeline transfer
  // recording only apply under a racked topology; the flat path below stays
  // byte-for-byte what it always was.
  const bool racked = racked_topology() && tier == StorageTier::kDisk;
  const net::Topology* topo = racked ? topology_.get() : nullptr;
  const bool rack_aware =
      topo != nullptr && topo->options().rack_aware_placement;
  TransferLog* log = racked ? current_transfer_log() : nullptr;
  const int writer =
      (log != nullptr && log->node >= 0 && log->node < num_datanodes())
          ? log->node
          : -1;
  const bool writer_alive =
      writer >= 0 && std::find(live.begin(), live.end(), writer) != live.end();
  // Memory-tier placement is writer-local regardless of topology: the
  // producing task keeps its output in its own node's memory (the SPIN
  // model), which is what makes the consumer's node-local cache hit
  // possible. Falls back to the hash policy when no task context is
  // installed (driver-side writes) or the writer's node is dead.
  TransferLog* any_log = current_transfer_log();
  const int task_node =
      (any_log != nullptr && any_log->node >= 0 &&
       any_log->node < num_datanodes())
          ? any_log->node
          : -1;
  const bool mem_local_write =
      tier == StorageTier::kMemory && task_node >= 0 &&
      std::find(live.begin(), live.end(), task_node) != live.end();

  // Erasure coding applies to disk-tier files only; memory-tier copies keep
  // the SPIN single-copy model (lineage, not parity, recovers them).
  const bool ec_file = tier == StorageTier::kDisk &&
                       config_.storage_policy == StoragePolicy::kErasureCoded;
  if (ec_file) {
    MRI_CHECK_MSG(static_cast<int>(live.size()) >= config_.ec.cells(),
                  "cannot stripe " << path << " as RS(" << config_.ec.k << ","
                                   << config_.ec.m << "): only " << live.size()
                                   << " datanodes are alive but a stripe "
                                      "needs " << config_.ec.cells());
  }
  std::optional<ec::RsCodec> codec;
  if (ec_file) codec.emplace(config_.ec.k, config_.ec.m);
  std::uint64_t parity_bytes = 0;     // m parity cells per stripe, on disk
  std::uint64_t redundancy_net = 0;   // (k+m-1) cells per stripe, pipelined
  // Hot-block cache candidacy: disk-tier files named like the repeatedly
  // re-read factors. The full-block payloads are retained namenode-side.
  const bool hot_candidate =
      config_.hot_cache_bytes > 0 && tier == StorageTier::kDisk &&
      basename(path).rfind(config_.hot_file_prefix, 0) == 0;
  std::vector<BlockData> full_blocks;
  std::vector<BlockId> full_block_ids;
  // Write-path checksumming (HDFS computes block checksums client-side on
  // write): one CRC32C per replicated block, one per EC cell.
  std::uint64_t checksummed_bytes = 0;
  std::int64_t checksummed_cells = 0;

  std::vector<BlockLocation> locations;
  std::size_t offset = 0;
  // Split into blocks; zero-length files get zero blocks.
  while (offset < buffer.size()) {
    const std::size_t len = std::min(config_.block_size, buffer.size() - offset);
    auto payload = std::make_shared<std::vector<std::byte>>(
        buffer.begin() + static_cast<std::ptrdiff_t>(offset),
        buffer.begin() + static_cast<std::ptrdiff_t>(offset + len));
    BlockLocation loc;
    loc.id = next_block_id_.fetch_add(1);
    loc.length = len;
    ++base;
    if (ec_file) {
      // One block = one RS stripe: k data cells (zero-padded to equal
      // length) plus m parity cells, each on its own node.
      loc.ec_k = config_.ec.k;
      loc.ec_m = config_.ec.m;
      const int cells = config_.ec.cells();
      const auto cell_len = static_cast<std::size_t>(loc.cell_bytes());
      std::vector<BlockData> cell_payloads;
      cell_payloads.reserve(static_cast<std::size_t>(cells));
      std::vector<const std::uint8_t*> data_ptrs;
      for (int i = 0; i < loc.ec_k; ++i) {
        auto cell =
            std::make_shared<std::vector<std::byte>>(cell_len, std::byte{0});
        const std::size_t begin = static_cast<std::size_t>(i) * cell_len;
        if (begin < len) {
          std::memcpy(cell->data(), buffer.data() + offset + begin,
                      std::min(cell_len, len - begin));
        }
        data_ptrs.push_back(
            reinterpret_cast<const std::uint8_t*>(cell->data()));
        cell_payloads.push_back(std::move(cell));
      }
      for (const auto& p : codec->encode(data_ptrs, cell_len)) {
        auto cell = std::make_shared<std::vector<std::byte>>(cell_len);
        std::memcpy(cell->data(), p.data(), cell_len);
        cell_payloads.push_back(std::move(cell));
      }
      // Placement: every cell on a distinct node. Rack-aware: first cell
      // writer-local (reads of healthy stripes start with a local cell),
      // the rest round-robin across the other racks so any single rack
      // loss costs at most a few cells per stripe. Flat: k+m consecutive
      // live nodes from the path hash.
      if (rack_aware) {
        const int first =
            writer_alive ? writer
                         : live[static_cast<std::size_t>(base % live.size())];
        loc.replicas.push_back(first);
        const int home_rack = topo->rack_of(first);
        std::map<int, std::vector<int>> by_rack;
        for (int n : live) {
          if (n != first) by_rack[topo->rack_of(n)].push_back(n);
        }
        std::vector<int> rack_order;
        rack_order.reserve(by_rack.size());
        for (const auto& [r, nodes] : by_rack) rack_order.push_back(r);
        const auto past_home = std::upper_bound(rack_order.begin(),
                                                rack_order.end(), home_rack);
        std::rotate(rack_order.begin(), past_home, rack_order.end());
        std::map<int, std::size_t> cursor;
        while (static_cast<int>(loc.replicas.size()) < cells) {
          bool progress = false;
          for (int r : rack_order) {
            if (static_cast<int>(loc.replicas.size()) == cells) break;
            const auto& nodes = by_rack[r];
            std::size_t& next = cursor[r];
            if (next < nodes.size()) {
              loc.replicas.push_back(nodes[next++]);
              progress = true;
            }
          }
          MRI_CHECK(progress);  // live >= cells, so nodes can't run out
        }
      } else {
        for (int i = 0; i < cells; ++i) {
          loc.replicas.push_back(live[static_cast<std::size_t>(
              (base + static_cast<std::uint64_t>(i)) % live.size())]);
        }
      }
      if (log != nullptr && writer >= 0) {
        // EC writes stream cells from the client in a star, not a pipeline.
        for (int holder : loc.replicas) {
          if (holder == writer) continue;
          log->transfers.push_back(net::Transfer{
              writer, holder, cell_len, net::TransferKind::kWrite});
        }
      }
      for (int i = 0; i < cells; ++i) {
        datanodes_[static_cast<std::size_t>(loc.replicas[
            static_cast<std::size_t>(i)])]
            ->put(loc.id, cell_payloads[static_cast<std::size_t>(i)]);
      }
      if (config_.verify_checksums) {
        std::vector<std::uint32_t> cell_crcs;
        cell_crcs.reserve(cell_payloads.size());
        for (const auto& cp : cell_payloads) {
          cell_crcs.push_back(crc32c(std::span<const std::byte>(*cp)));
        }
        checksums_.record(loc.id, std::move(cell_crcs));
        checksummed_cells += cells;
        checksummed_bytes += static_cast<std::uint64_t>(cells) * cell_len;
      }
      parity_bytes += static_cast<std::uint64_t>(loc.ec_m) * cell_len;
      redundancy_net += static_cast<std::uint64_t>(cells - 1) * cell_len;
      if (hot_candidate) {
        full_blocks.push_back(payload);
        full_block_ids.push_back(loc.id);
      }
      locations.push_back(std::move(loc));
      offset += len;
      continue;
    }
    if (rack_aware) {
      // HDFS default policy: first replica on the writer (every client is a
      // datanode here), second rack-local, third off-rack. Hash-pick within
      // each candidate set so the layout stays a deterministic function of
      // the path; fall back to any unused live node when a set is empty
      // (single-rack clusters, mostly-dead racks).
      const auto taken = [&loc](int n) {
        return std::find(loc.replicas.begin(), loc.replicas.end(), n) !=
               loc.replicas.end();
      };
      const auto pick = [&](const auto& eligible, std::uint64_t h) {
        std::vector<int> cand;
        for (int n : live) {
          if (!taken(n) && eligible(n)) cand.push_back(n);
        }
        if (cand.empty()) {
          for (int n : live) {
            if (!taken(n)) cand.push_back(n);
          }
        }
        MRI_CHECK(!cand.empty());
        return cand[static_cast<std::size_t>(h % cand.size())];
      };
      const int first =
          writer_alive ? writer
                       : live[static_cast<std::size_t>(base % live.size())];
      loc.replicas.push_back(first);
      const int home_rack = topo->rack_of(first);
      if (repl >= 2) {
        loc.replicas.push_back(pick(
            [&](int n) { return topo->rack_of(n) == home_rack; }, base + 1));
      }
      for (int r = 2; r < repl; ++r) {
        loc.replicas.push_back(
            pick([&](int n) { return topo->rack_of(n) != home_rack; },
                 base + static_cast<std::uint64_t>(r)));
      }
    } else if (mem_local_write) {
      loc.replicas.push_back(task_node);  // repl == 1 on the memory tier
    } else {
      for (int r = 0; r < repl; ++r) {
        loc.replicas.push_back(
            live[static_cast<std::size_t>(
                (base + static_cast<std::uint64_t>(r)) % live.size())]);
      }
    }
    if (log != nullptr) {
      // The write pipeline: the writer streams to the first replica, which
      // forwards to the second, and so on. Without rack awareness the first
      // replica usually isn't the writer's node — that extra hop is real
      // network traffic the rack-aware policy exists to remove.
      if (writer >= 0 && writer != loc.replicas.front()) {
        log->transfers.push_back(net::Transfer{
            writer, loc.replicas.front(), len, net::TransferKind::kWrite});
      }
      for (std::size_t r = 1; r < loc.replicas.size(); ++r) {
        log->transfers.push_back(net::Transfer{loc.replicas[r - 1],
                                               loc.replicas[r], len,
                                               net::TransferKind::kWrite});
      }
    }
    BlockData shared = payload;
    for (int node : loc.replicas) {
      datanodes_[static_cast<std::size_t>(node)]->put(loc.id, shared);
    }
    if (config_.verify_checksums) {
      checksums_.record(loc.id,
                        {crc32c(std::span<const std::byte>(*payload))});
      ++checksummed_cells;
      checksummed_bytes += len;
    }
    if (hot_candidate) {
      full_blocks.push_back(payload);
      full_block_ids.push_back(loc.id);
    }
    locations.push_back(std::move(loc));
    offset += len;
  }

  const int home =
      locations.empty() ? task_node : locations.front().replicas.front();
  const std::uint64_t stripes = locations.size();
  namenode_.commit_file(path, std::move(locations), overwrite, tier);

  if (hot_candidate) {
    std::lock_guard<std::mutex> lock(hot_mu_);
    hot_candidates_[path] =
        HotFile{total, std::move(full_blocks), std::move(full_block_ids), {}};
    recompute_hot_residents_locked();
  }

  if (checksummed_cells > 0) {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    integrity_.cells_checksummed += checksummed_cells;
  }

  if (charge) {
    IoStats io;
    if (tier == StorageTier::kMemory) {
      io.bytes_written_memory = total;
    } else if (ec_file) {
      // Logical data at disk bandwidth, parity cells as extra disk traffic,
      // and the (k+m-1) remote cells per stripe as pipelined network — the
      // EC analogue of replication's (repl-1) full copies.
      io.bytes_written = total;
      io.bytes_parity = parity_bytes;
      io.bytes_replicated = redundancy_net;
      io.bytes_transferred = redundancy_net;
    } else {
      io.bytes_written = total;
      io.bytes_replicated =
          total * static_cast<std::uint64_t>(std::max(repl - 1, 0));
      io.bytes_transferred = io.bytes_replicated;
    }
    io.bytes_checksummed = checksummed_bytes;
    if (account != nullptr) *account += io;
    if (metrics_ != nullptr) {
      metrics_->add_io(io);
      if (ec_file && stripes > 0) {
        metrics_->increment("dfs_ec_stripes_written", stripes);
      }
    }
  }

  if (notify && tier == StorageTier::kMemory) {
    // Fired outside every DFS lock; `account` already includes this write,
    // so the listener's production-IoStats snapshot is the full task cost.
    if (TierListener* listener = tier_listener_.load(std::memory_order_acquire)) {
      listener->on_commit(path, tier, total, home,
                          std::span<const std::byte>(buffer.data(),
                                                     buffer.size()),
                          account);
    }
  }
}

// ---------------------------------------------------------------------------
// Reader

Dfs::Reader::Reader(std::vector<BlockData> blocks, std::vector<int> sources,
                    std::vector<bool> mem_local, std::uint64_t size,
                    IoStats* account, MetricsRegistry* metrics,
                    bool record_transfers)
    : blocks_(std::move(blocks)),
      sources_(std::move(sources)),
      mem_local_(std::move(mem_local)),
      size_(size),
      account_(account),
      metrics_(metrics),
      record_transfers_(record_transfers) {}

void Dfs::Reader::account(std::uint64_t bytes, std::uint64_t memory_bytes) {
  IoStats io;
  io.bytes_read = bytes;
  io.bytes_transferred = bytes;  // HDFS read = remote read in the paper model
  // Node-local memory-tier chunks are a cache hit: charged at memory
  // bandwidth, no disk or network component.
  io.bytes_read_memory = memory_bytes;
  if (account_ != nullptr) *account_ += io;
  if (metrics_ != nullptr) metrics_->add_io(io);
}

std::size_t Dfs::Reader::read(std::span<std::byte> dst) {
  TransferLog* log = record_transfers_ ? current_transfer_log() : nullptr;
  std::size_t copied = 0;
  std::uint64_t memory_bytes = 0;
  while (copied < dst.size() && position_ < size_) {
    const auto& block = *blocks_[block_index_];
    const std::size_t in_block = block.size() - block_offset_;
    const std::size_t want = std::min(dst.size() - copied, in_block);
    std::memcpy(dst.data() + copied, block.data() + block_offset_, want);
    if (!mem_local_.empty() && mem_local_[block_index_]) memory_bytes += want;
    if (log != nullptr && want > 0 && sources_[block_index_] >= 0) {
      // One transfer per (block, read) chunk: bytes flow from the replica
      // this block was opened from to the reading task's node. The flow
      // scheduler coalesces per endpoint pair; node-local chunks stay in
      // the log too (they are disk traffic, charged at disk bandwidth).
      log->transfers.push_back(net::Transfer{sources_[block_index_],
                                             log->node, want,
                                             net::TransferKind::kRead});
    }
    copied += want;
    block_offset_ += want;
    position_ += want;
    if (block_offset_ == block.size()) {
      ++block_index_;
      block_offset_ = 0;
    }
  }
  if (copied > 0) account(copied - memory_bytes, memory_bytes);
  return copied;
}

void Dfs::Reader::read_exact(std::span<std::byte> dst) {
  const std::size_t got = read(dst);
  if (got != dst.size()) {
    throw DfsError("short read: wanted " + std::to_string(dst.size()) +
                   " bytes, got " + std::to_string(got));
  }
}

double Dfs::Reader::read_double() {
  double v = 0.0;
  read_exact(std::as_writable_bytes(std::span<double>(&v, 1)));
  return v;
}

std::uint64_t Dfs::Reader::read_u64() {
  std::uint64_t v = 0;
  read_exact(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)));
  return v;
}

void Dfs::Reader::read_doubles(std::span<double> dst) {
  read_exact(std::as_writable_bytes(dst));
}

std::vector<double> Dfs::Reader::read_all_doubles() {
  const std::uint64_t bytes = remaining();
  if (bytes % sizeof(double) != 0) {
    throw DfsError("file tail is not a whole number of doubles");
  }
  std::vector<double> values(bytes / sizeof(double));
  read_doubles(values);
  return values;
}

std::string Dfs::Reader::read_all_text() {
  std::string text(remaining(), '\0');
  read_exact(std::as_writable_bytes(std::span<char>(text.data(), text.size())));
  return text;
}

void Dfs::Reader::seek(std::uint64_t offset) {
  MRI_REQUIRE(offset <= size_, "seek past end of file");
  position_ = 0;
  block_index_ = 0;
  block_offset_ = 0;
  std::uint64_t left = offset;
  while (left > 0) {
    const std::uint64_t block_len = blocks_[block_index_]->size();
    if (left >= block_len) {
      left -= block_len;
      ++block_index_;
    } else {
      block_offset_ = left;
      left = 0;
    }
  }
  position_ = offset;
}

BlockData Dfs::read_replica(const BlockLocation& loc, const std::string& path,
                            int* source) const {
  if (source != nullptr) *source = -1;
  if (loc.replicas.empty()) {
    // Every replica died with its datanode (namenode repair keeps the block
    // registered precisely so this read fails fast and loudly).
    throw UnrecoverableBlock(
        "block " + std::to_string(loc.id) + " of " + path +
        ": all replicas lost to dead datanodes; the data is unrecoverable");
  }
  // Under a rack-aware topology HDFS reads the closest replica: node-local
  // first, then rack-local, then anything live. The flat model keeps the
  // placement order (bit-identical failover behaviour).
  std::vector<int> order(loc.replicas.begin(), loc.replicas.end());
  if (racked_topology() && topology_->options().rack_aware_placement) {
    const TransferLog* log = current_transfer_log();
    if (log != nullptr && log->node >= 0 && log->node < num_datanodes()) {
      const int me = log->node;
      const int my_rack = topology_->rack_of(me);
      const auto distance = [&](int n) {
        if (n == me) return 0;
        return topology_->rack_of(n) == my_rack ? 1 : 2;
      };
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return distance(a) < distance(b);
      });
    }
  }
  int chosen = -1;
  int failed_over = 0;
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    for (int r : order) {
      const auto idx = static_cast<std::size_t>(r);
      if (dead_[idx]) continue;  // stale entry from an in-flight kill
      if (read_errors_[idx] > 0) {
        --read_errors_[idx];  // this copy errors out; try the next replica
        ++failed_over;
        continue;
      }
      chosen = r;
      break;
    }
  }
  if (chosen < 0) {
    if (failed_over > 0) {
      throw DfsError("read of block " + std::to_string(loc.id) + " of " +
                     path + " failed on every live replica (injected read "
                     "errors); transient — retry the read");
    }
    throw UnrecoverableBlock(
        "block " + std::to_string(loc.id) + " of " + path +
        ": all replicas lost to dead datanodes; the data is unrecoverable");
  }
  if (failed_over > 0 && metrics_ != nullptr) {
    metrics_->increment("dfs_read_errors_survived",
                        static_cast<std::uint64_t>(failed_over));
  }
  if (source != nullptr) *source = chosen;
  if (auto mark = checksums_.corrupt_mark(loc.id, chosen)) {
    if (!config_.verify_checksums) {
      // Silent corruption doing its job: the read *succeeds*, with wrong
      // bytes (a deterministic bit-flipped view of the payload).
      return corrupt_copy(
          datanodes_[static_cast<std::size_t>(chosen)]->get(loc.id),
          mark->salt);
    }
    // Verification catches the mismatch before any bytes reach the caller:
    // read-repair the copy in place from a healthy source, then serve the
    // pristine payload. Replica *selection* deliberately ignores corruption
    // marks — routing around a corrupt copy would make the served source
    // (and the transfer log) depend on how repairs race with concurrent
    // readers, breaking bit-identical same-seed reports.
    repair_corrupt_copy(loc, path, namenode_.file_tier(path), chosen, -1,
                        mark->at, /*by_scrubber=*/false, nullptr);
  }
  if (config_.verify_checksums) verify_copy(loc, chosen, -1);
  return datanodes_[static_cast<std::size_t>(chosen)]->get(loc.id);
}

BlockData Dfs::read_stripe(const BlockLocation& loc, const std::string& path,
                           IoStats* account) const {
  const int cells = loc.ec_k + loc.ec_m;
  MRI_CHECK_MSG(static_cast<int>(loc.replicas.size()) == cells,
                "EC block " << loc.id << " of " << path << " has "
                            << loc.replicas.size() << " cell slots, expected "
                            << cells);
  const auto cell_len = static_cast<std::size_t>(loc.cell_bytes());
  // Cell availability under the chaos lock; an armed read error on a cell's
  // node knocks that cell out of this read (cell-level failover — the
  // stripe decodes around it from the other survivors).
  std::vector<char> available(static_cast<std::size_t>(cells), 0);
  // Cells that failed checksum verification this read (verification on
  // only): excluded from availability exactly like a dead holder, so the
  // stripe decodes around them from clean survivors — detection turns a
  // silent corruption into an ordinary degraded read. Repaired below, after
  // the read completes.
  std::vector<std::pair<int, CorruptMark>> corrupt_cells;
  int live = 0;
  int failed_over = 0;
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    for (int i = 0; i < cells; ++i) {
      const int holder = loc.replicas[static_cast<std::size_t>(i)];
      if (holder < 0 || dead_[static_cast<std::size_t>(holder)]) continue;
      if (read_errors_[static_cast<std::size_t>(holder)] > 0) {
        --read_errors_[static_cast<std::size_t>(holder)];
        ++failed_over;
        continue;
      }
      if (config_.verify_checksums) {
        if (auto mark = checksums_.corrupt_mark(loc.id, holder)) {
          corrupt_cells.emplace_back(i, *mark);
          continue;
        }
      }
      available[static_cast<std::size_t>(i)] = 1;
      ++live;
    }
  }
  if (live < loc.ec_k && !corrupt_cells.empty() && failed_over == 0) {
    // Fewer than k clean cells remain: there is no clean source to decode
    // from, and verification refuses to serve bytes it knows are bad.
    throw UnrecoverableBlock(
        "EC block " + std::to_string(loc.id) + " of " + path + ": " +
        std::to_string(corrupt_cells.size()) +
        " stripe cells failed checksum verification and only " +
        std::to_string(live) + " clean cells remain but decoding needs " +
        std::to_string(loc.ec_k) + "; the data is unrecoverable");
  }
  if (live < loc.ec_k) {
    if (failed_over > 0) {
      throw DfsError("read of EC block " + std::to_string(loc.id) + " of " +
                     path + " has only " + std::to_string(live) + " of " +
                     std::to_string(loc.ec_k) +
                     " required cells after injected read errors; transient "
                     "— retry the read");
    }
    throw UnrecoverableBlock(
        "EC block " + std::to_string(loc.id) + " of " + path + ": only " +
        std::to_string(live) + " of " + std::to_string(cells) +
        " stripe cells survive but decoding needs " +
        std::to_string(loc.ec_k) + "; the data is unrecoverable");
  }
  if (failed_over > 0 && metrics_ != nullptr) {
    metrics_->increment("dfs_read_errors_survived",
                        static_cast<std::uint64_t>(failed_over));
  }
  // Fetch the first k available cells in slot order — data cells first, so
  // a healthy stripe is a plain concatenation with no decode.
  std::vector<const std::uint8_t*> cell_ptrs(static_cast<std::size_t>(cells),
                                             nullptr);
  std::vector<BlockData> pins;  // keep fetched payloads alive
  std::vector<int> chosen;
  for (int i = 0; i < cells && static_cast<int>(chosen.size()) < loc.ec_k;
       ++i) {
    if (!available[static_cast<std::size_t>(i)]) continue;
    BlockData cell = datanodes_[static_cast<std::size_t>(
                                    loc.replicas[static_cast<std::size_t>(i)])]
                         ->get(loc.id);
    // With verification off a corrupt cell is still "available" — the fetch
    // succeeds and silently delivers the bit-flipped view.
    if (auto mark = checksums_.corrupt_mark(
            loc.id, loc.replicas[static_cast<std::size_t>(i)])) {
      cell = corrupt_copy(cell, mark->salt);
    }
    cell_ptrs[static_cast<std::size_t>(i)] =
        reinterpret_cast<const std::uint8_t*>(cell->data());
    pins.push_back(std::move(cell));
    chosen.push_back(i);
  }
  std::vector<int> missing_data;
  for (int i = 0; i < loc.ec_k; ++i) {
    if (cell_ptrs[static_cast<std::size_t>(i)] == nullptr) {
      missing_data.push_back(i);
    }
  }
  std::vector<std::vector<std::uint8_t>> rebuilt;
  if (!missing_data.empty()) {
    const ec::RsCodec codec(loc.ec_k, loc.ec_m);
    rebuilt = codec.reconstruct(cell_ptrs, cell_len, missing_data);
  }
  // Reassemble the logical block payload from the k data cells.
  auto out = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(loc.length));
  std::size_t pos = 0;
  std::size_t next_rebuilt = 0;
  for (int i = 0; i < loc.ec_k && pos < loc.length; ++i) {
    const std::uint8_t* src = cell_ptrs[static_cast<std::size_t>(i)];
    if (src == nullptr) src = rebuilt[next_rebuilt++].data();
    const std::size_t take =
        std::min(cell_len, static_cast<std::size_t>(loc.length) - pos);
    std::memcpy(out->data() + pos, src, take);
    pos += take;
  }
  // Under a racked topology the k cell fetches are recorded as read
  // transfers at open time (striped readers fetch whole cells); the Reader
  // then charges the scalar bytes without re-recording (source = -1).
  if (racked_topology()) {
    TransferLog* log = current_transfer_log();
    if (log != nullptr && log->node >= 0 && log->node < num_datanodes()) {
      for (int i : chosen) {
        log->transfers.push_back(
            net::Transfer{loc.replicas[static_cast<std::size_t>(i)], log->node,
                          cell_len, net::TransferKind::kRead});
      }
    }
  }
  if (!missing_data.empty()) {
    // Degraded read: same bytes fetched as a healthy one (k cells either
    // way), but the lost data cells had to be decoded — charge the decode
    // output at ec_decode_bandwidth via bytes_reconstructed.
    IoStats io;
    io.degraded_reads = 1;
    io.bytes_reconstructed =
        static_cast<std::uint64_t>(missing_data.size()) * cell_len;
    if (account != nullptr) *account += io;
    if (metrics_ != nullptr) metrics_->add_io(io);
  }
  if (config_.verify_checksums) {
    // Checksum CPU for the k cells this read actually served.
    const auto vbytes = static_cast<std::uint64_t>(chosen.size()) * cell_len;
    {
      std::lock_guard<std::mutex> lock(integrity_mu_);
      integrity_.cells_verified += static_cast<std::int64_t>(chosen.size());
      integrity_.bytes_verified += vbytes;
    }
    IoStats io;
    io.bytes_checksummed = vbytes;
    if (account != nullptr) *account += io;
    if (metrics_ != nullptr) metrics_->add_io(io);
    // Read-repair the cells verification knocked out of this read: decode
    // already proved the stripe has k clean survivors, so re-materialize
    // each bad cell in place (EC stripes are disk-tier by construction).
    for (const auto& [slot, mark] : corrupt_cells) {
      repair_corrupt_copy(loc, path, StorageTier::kDisk,
                          loc.replicas[static_cast<std::size_t>(slot)], slot,
                          mark.at, /*by_scrubber=*/false, nullptr);
    }
  }
  return out;
}

Dfs::Reader Dfs::open(const std::string& path, IoStats* account) const {
  const auto blocks = namenode_.file_blocks(path);
  const StorageTier tier = namenode_.file_tier(path);
  TransferLog* log = current_transfer_log();
  const int me =
      (log != nullptr && log->node >= 0 && log->node < num_datanodes())
          ? log->node
          : -1;
  std::vector<BlockData> data;
  std::vector<int> sources;
  std::vector<bool> mem_local;
  data.reserve(blocks.size());
  sources.reserve(blocks.size());
  std::uint64_t size = 0;
  // Namenode hot-block cache: a resident file is served from the
  // namenode's own copy — charged like any remote read, but immune to lost
  // cells/replicas and never paying the degraded-decode path.
  if (config_.hot_cache_bytes > 0) {
    const std::string norm = normalize(path);
    std::lock_guard<std::mutex> lock(hot_mu_);
    auto it = hot_candidates_.find(norm);
    if (it != hot_candidates_.end() && hot_resident_.count(norm) > 0 &&
        // A poisoned entry must not out-serve verification: skip the hit and
        // fall through to the datanode path, whose read-repair also clears
        // the cache poison (the staleness bug this gate closes).
        !(config_.verify_checksums && !it->second.corrupt.empty())) {
      ++hot_hits_;
      hot_hit_bytes_ += it->second.size;
      if (metrics_ != nullptr) {
        metrics_->increment("dfs_hot_cache_hits");
        metrics_->increment("dfs_hot_cache_hit_bytes", it->second.size);
      }
      if (TierListener* listener =
              tier_listener_.load(std::memory_order_acquire)) {
        if (log != nullptr) log->read_paths.push_back(norm);
        listener->on_open(norm, tier, it->second.size);
      }
      std::vector<BlockData> served = it->second.blocks;
      if (!it->second.corrupt.empty()) {
        // Verification off: the cache mirrors its corrupted replica, so the
        // hit silently serves the bit-flipped view.
        for (std::size_t i = 0; i < served.size(); ++i) {
          auto cit = it->second.corrupt.find(it->second.ids[i]);
          if (cit != it->second.corrupt.end()) {
            served[i] = corrupt_copy(served[i], cit->second);
          }
        }
      } else if (config_.verify_checksums) {
        // Clean hit with verification on still pays the checksum CPU.
        {
          std::lock_guard<std::mutex> ilock(integrity_mu_);
          integrity_.cells_verified +=
              static_cast<std::int64_t>(served.size());
          integrity_.bytes_verified += it->second.size;
        }
        IoStats io;
        io.bytes_checksummed = it->second.size;
        if (account != nullptr) *account += io;
        if (metrics_ != nullptr) metrics_->add_io(io);
      }
      std::vector<int> no_sources(served.size(), -1);
      return Reader(std::move(served), std::move(no_sources), {},
                    it->second.size, account, metrics_, racked_topology());
    }
  }
  for (const auto& loc : blocks) {
    if (loc.is_ec()) {
      data.push_back(read_stripe(loc, path, account));
      sources.push_back(-1);  // transfers recorded per cell at open time
      size += loc.length;
      continue;
    }
    int src = -1;
    data.push_back(read_replica(loc, path, &src));
    sources.push_back(src);
    // A memory-tier block on the reader's own node streams at memory
    // bandwidth (the cache hit the SPIN engine exists to create); remote
    // memory blocks still pay the network fetch.
    if (tier == StorageTier::kMemory && src >= 0 && src == me) {
      if (mem_local.empty()) mem_local.assign(blocks.size(), false);
      mem_local[sources.size() - 1] = true;
    }
    size += loc.length;
  }
  if (TierListener* listener = tier_listener_.load(std::memory_order_acquire)) {
    // Record the task's read-set for lineage (per-thread, so deterministic
    // under any task interleaving), then let the engine bump cache recency.
    if (log != nullptr) log->read_paths.push_back(normalize(path));
    listener->on_open(normalize(path), tier, size);
  }
  return Reader(std::move(data), std::move(sources), std::move(mem_local),
                size, account, metrics_, racked_topology());
}

void Dfs::spill_to_disk(const std::string& path, IoStats* account) {
  const std::string norm = normalize(path);
  MRI_REQUIRE(namenode_.file_tier(norm) == StorageTier::kMemory,
              "spill_to_disk(" << norm << "): file is not memory-tier");
  namenode_.set_file_tier(norm, StorageTier::kDisk);
  IoStats io;
  io.bytes_spilled = namenode_.file_size(norm);
  if (account != nullptr) *account += io;
  if (metrics_ != nullptr) {
    metrics_->add_io(io);
    metrics_->increment("dfs_files_spilled");
    metrics_->increment("dfs_bytes_spilled", io.bytes_spilled);
  }
}

void Dfs::restore_file(const std::string& path,
                       std::span<const std::byte> payload, StorageTier tier) {
  const std::string norm = normalize(path);
  if (namenode_.exists(norm)) {
    // Drop the empty-replica skeleton (and any surviving replicas of a
    // partially lost file) without firing on_remove: the engine drives this
    // restore and keeps its lineage record alive.
    for (const auto& block : namenode_.remove(norm, false, nullptr)) {
      checksums_.forget(block.id);
      for (int n : block.replicas) {
        if (n < 0) continue;  // lost EC cell sentinel
        datanodes_[static_cast<std::size_t>(n)]->evict(block.id);
      }
    }
  }
  std::vector<std::byte> buffer(payload.begin(), payload.end());
  commit(norm, std::move(buffer), /*overwrite=*/false, /*account=*/nullptr,
         tier, /*charge=*/false, /*notify=*/false);
}

// ---------------------------------------------------------------------------
// Failures

NodeKillOutcome Dfs::kill_datanode(int node, double at) {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "kill_datanode(" << node << ") on a DFS with "
                               << num_datanodes() << " datanodes");
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    if (dead_[static_cast<std::size_t>(node)]) return {};
    dead_[static_cast<std::size_t>(node)] = true;
  }

  // Re-replication target choice: the smallest-id live node not already
  // holding the block — deterministic, so same-seed runs place identical
  // repair copies. Under a rack-aware topology, prefer a target in the
  // source replica's rack (keeps the copy close, like HDFS's rack-aware
  // re-replication); the transfers are collected and flow-simulated below.
  const net::Topology* topo = racked_topology() ? topology_.get() : nullptr;
  std::vector<net::Transfer> repairs;
  std::uint64_t ec_fanin_bytes = 0;  // survivor-cell reads feeding decodes
  // Erasure-coded reconstruction of stripe cell `cell`: decode it from the
  // first k surviving cells onto the smallest-id live node not already
  // holding a cell of the stripe (k-cell fan-in traffic + decode CPU,
  // priced below), replacing the replicated copy path.
  const auto reconstruct = [this, topo, &repairs, &ec_fanin_bytes](
                               const BlockLocation& loc, int cell) -> int {
    int target = -1;
    {
      std::lock_guard<std::mutex> lock(chaos_mu_);
      std::vector<char> holds(dead_.size(), 0);
      for (int holder : loc.replicas) {
        if (holder >= 0) holds[static_cast<std::size_t>(holder)] = 1;
      }
      for (std::size_t i = 0; i < dead_.size(); ++i) {
        if (!dead_[i] && !holds[i]) {
          target = static_cast<int>(i);
          break;
        }
      }
    }
    if (target < 0) return -1;  // nowhere to rebuild; stay degraded
    const auto cell_len = static_cast<std::size_t>(loc.cell_bytes());
    std::vector<const std::uint8_t*> cell_ptrs(loc.replicas.size(), nullptr);
    std::vector<BlockData> pins;
    std::vector<int> used;
    for (std::size_t slot = 0;
         slot < loc.replicas.size() &&
         static_cast<int>(used.size()) < loc.ec_k;
         ++slot) {
      const int holder = loc.replicas[slot];
      if (holder < 0) continue;
      BlockData d = datanodes_[static_cast<std::size_t>(holder)]->get(loc.id);
      cell_ptrs[slot] = reinterpret_cast<const std::uint8_t*>(d->data());
      pins.push_back(std::move(d));
      used.push_back(static_cast<int>(slot));
    }
    if (static_cast<int>(used.size()) < loc.ec_k) return -1;
    const ec::RsCodec codec(loc.ec_k, loc.ec_m);
    auto rebuilt = codec.reconstruct(cell_ptrs, cell_len, {cell});
    auto payload = std::make_shared<std::vector<std::byte>>(cell_len);
    std::memcpy(payload->data(), rebuilt.front().data(), cell_len);
    datanodes_[static_cast<std::size_t>(target)]->put(loc.id,
                                                      std::move(payload));
    for (int slot : used) {
      const int holder = loc.replicas[static_cast<std::size_t>(slot)];
      if (topo != nullptr) {
        repairs.push_back(net::Transfer{holder, target, cell_len,
                                        net::TransferKind::kRepair});
      }
      ec_fanin_bytes += cell_len;
    }
    return target;
  };
  const auto replicate = [this, topo, &repairs,
                          &reconstruct](const BlockLocation& loc,
                                        int cell) -> int {
    if (cell >= 0) return reconstruct(loc, cell);
    int source = -1;
    int target = -1;
    {
      std::lock_guard<std::mutex> lock(chaos_mu_);
      for (int r : loc.replicas) {
        if (!dead_[static_cast<std::size_t>(r)]) {
          source = r;
          break;
        }
      }
      if (source < 0) return -1;
      const int source_rack =
          (topo != nullptr && topo->options().rack_aware_placement)
              ? topo->rack_of(source)
              : -1;
      int fallback = -1;
      for (std::size_t i = 0; i < dead_.size(); ++i) {
        if (dead_[i]) continue;
        const int candidate = static_cast<int>(i);
        if (std::find(loc.replicas.begin(), loc.replicas.end(), candidate) !=
            loc.replicas.end()) {
          continue;
        }
        if (fallback < 0) fallback = candidate;
        if (source_rack < 0 || topo->rack_of(candidate) == source_rack) {
          target = candidate;
          break;
        }
      }
      if (target < 0) target = fallback;
    }
    if (target < 0) return -1;
    datanodes_[static_cast<std::size_t>(target)]->put(
        loc.id, datanodes_[static_cast<std::size_t>(source)]->get(loc.id));
    if (topo != nullptr) {
      repairs.push_back(net::Transfer{source, target, loc.length,
                                      net::TransferKind::kRepair});
    }
    return target;
  };

  const BlockRepairSummary repaired =
      namenode_.repair_after_node_loss(node, config_.replication, replicate);
  datanodes_[static_cast<std::size_t>(node)]->clear();

  // Copies that died with the node take their rot with them: clear their
  // corrupt marks, and drop any hot-cache poison whose block no longer has
  // a corrupted live copy, so neither the datanode path nor the cache keeps
  // serving a corruption that no longer exists on disk. The hot entries
  // themselves stay — the namenode's cached payloads are unchanged by
  // re-replication/reconstruction and are the one copy that outlives even
  // total replica loss.
  bool marks_cleared = false;
  for (const auto& [block, holder] : checksums_.corrupt_copies()) {
    if (holder != node) continue;
    checksums_.clear_corrupt(block, holder);
    marks_cleared = true;
  }
  if (marks_cleared && config_.hot_cache_bytes > 0) {
    const auto live_marks = checksums_.corrupt_copies();
    const auto still_marked = [&live_marks](BlockId block) {
      for (const auto& mark : live_marks) {
        if (mark.first == block) return true;
      }
      return false;
    };
    std::lock_guard<std::mutex> lock(hot_mu_);
    for (auto& entry : hot_candidates_) {
      auto& poisoned = entry.second.corrupt;
      for (auto it = poisoned.begin(); it != poisoned.end();) {
        if (still_marked(it->first)) {
          ++it;
        } else {
          it = poisoned.erase(it);
        }
      }
    }
  }

  NodeKillOutcome out;
  out.re_replicated_bytes = repaired.re_replicated_bytes;
  out.re_replicated_blocks = repaired.re_replicated_blocks;
  out.blocks_lost = repaired.blocks_lost;
  out.lost_files = repaired.lost_files;
  out.ec_cells_reconstructed = repaired.ec_cells_reconstructed;
  out.ec_reconstructed_bytes = repaired.ec_reconstructed_bytes;
  if (repaired.ec_cells_reconstructed > 0) {
    // EC reconstruction happened: combine replica copies, the k-cell
    // fan-ins and the decode CPU into one repair duration so the chaos
    // engine's stretch accounting sees the whole recovery, not just the
    // copy traffic. (The pure-replication branch below is left untouched so
    // default runs stay bit-identical.)
    double seconds = 0.0;
    if (topo != nullptr && !repairs.empty()) {
      std::vector<net::Flow> flows;
      flows.reserve(repairs.size());
      for (const net::Transfer& t : repairs) {
        flows.push_back(net::Flow{t.src, t.dst, t.bytes, 0.0, -1});
      }
      seconds = net::simulate_flows(*topo, flows).end_time;
    } else if (chaos_network_bandwidth_ > 0.0) {
      seconds =
          static_cast<double>(out.re_replicated_bytes + ec_fanin_bytes) /
          chaos_network_bandwidth_;
    }
    if (cost_model_ != nullptr) {
      seconds += cost_model_->ec_decode_seconds(out.ec_reconstructed_bytes);
    }
    out.re_replication_seconds = seconds;
    std::lock_guard<std::mutex> lock(storage_mu_);
    storage_events_.push_back(StorageReconstructionEvent{
        at, node, out.ec_cells_reconstructed, out.ec_reconstructed_bytes,
        seconds});
  } else if (topo != nullptr && !repairs.empty()) {
    // All repair streams start together when the loss is detected; their
    // contended makespan on the racked fabric replaces the scalar
    // bytes/bandwidth estimate the chaos engine would otherwise use.
    std::vector<net::Flow> flows;
    flows.reserve(repairs.size());
    for (const net::Transfer& t : repairs) {
      flows.push_back(net::Flow{t.src, t.dst, t.bytes, 0.0, -1});
    }
    out.re_replication_seconds = net::simulate_flows(*topo, flows).end_time;
  }

  if (metrics_ != nullptr) {
    // Background datanode-to-datanode traffic (HDFS re-replication is not a
    // client read): network copies only, no client-side bytes_read. EC
    // reconstruction adds its survivor-cell fan-in as network traffic and
    // the rebuilt cells as decode output.
    IoStats io;
    io.bytes_replicated = out.re_replicated_bytes;
    io.bytes_transferred = out.re_replicated_bytes + ec_fanin_bytes;
    io.bytes_reconstructed = out.ec_reconstructed_bytes;
    metrics_->add_io(io);
    metrics_->increment("dfs_nodes_killed");
    metrics_->increment("dfs_blocks_re_replicated",
                        static_cast<std::uint64_t>(out.re_replicated_blocks));
    metrics_->increment("dfs_blocks_lost",
                        static_cast<std::uint64_t>(out.blocks_lost));
    if (out.ec_cells_reconstructed > 0) {
      metrics_->increment(
          "dfs_ec_cells_reconstructed",
          static_cast<std::uint64_t>(out.ec_cells_reconstructed));
    }
  }
  return out;
}

bool Dfs::datanode_dead(int node) const {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "datanode_dead(" << node << ") on a DFS with "
                               << num_datanodes() << " datanodes");
  std::lock_guard<std::mutex> lock(chaos_mu_);
  return dead_[static_cast<std::size_t>(node)];
}

int Dfs::live_datanodes() const {
  std::lock_guard<std::mutex> lock(chaos_mu_);
  int live = 0;
  for (const bool d : dead_) {
    if (!d) ++live;
  }
  return live;
}

void Dfs::inject_read_error(int node, int count) {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "inject_read_error(" << node << ") on a DFS with "
                                   << num_datanodes() << " datanodes");
  MRI_REQUIRE(count >= 1, "read-error count must be >= 1");
  std::lock_guard<std::mutex> lock(chaos_mu_);
  read_errors_[static_cast<std::size_t>(node)] += count;
}

void Dfs::bind_chaos(ChaosEngine* chaos, double network_bandwidth,
                     const CostModel* cost_model) {
  MRI_REQUIRE(chaos != nullptr, "bind_chaos() needs a chaos engine");
  chaos->set_kill_handler(ChaosEngine::TimedKillHandler(
      [this](int node, double at) { return kill_datanode(node, at); }));
  chaos->set_read_error_handler([this](int node) { inject_read_error(node); });
  chaos->set_corrupt_handler([this](int node, double at, std::uint64_t salt) {
    corrupt_block(node, at, salt);
  });
  chaos->set_scrub_handler([this](double t) { scrub_to(t); });
  if (network_bandwidth > 0.0) chaos->set_network_bandwidth(network_bandwidth);
  chaos_network_bandwidth_ = network_bandwidth;
  cost_model_ = cost_model;
}

// ---------------------------------------------------------------------------
// Integrity

void Dfs::corrupt_block(int node, double at, std::uint64_t salt) {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "corrupt_block(" << node << ") on a DFS with "
                               << num_datanodes() << " datanodes");
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    if (dead_[static_cast<std::size_t>(node)]) return;
  }
  // Candidate copies on this node. `primary` marks a copy a healthy read
  // actually serves (first replica of a replicated block, data cell of a
  // stripe), so explicit events poison bytes a reader will see rather than
  // a passive redundancy copy.
  // Block numbering follows commit order, which races across task threads,
  // so nothing here may depend on ids: the pick orders by (bytes, path,
  // block index) and the salt hashes the path — both stable across runs.
  struct Candidate {
    BlockId id = 0;
    std::uint64_t bytes = 0;
    bool primary = false;
    std::string path;
    int index = 0;  // position of the block within its file
  };
  std::vector<Candidate> candidates;
  for (const auto& file : namenode_.snapshot_files()) {
    int index = 0;
    for (const auto& loc : file.blocks) {
      if (loc.is_ec()) {
        for (std::size_t slot = 0; slot < loc.replicas.size(); ++slot) {
          if (loc.replicas[slot] != node) continue;
          candidates.push_back(Candidate{loc.id, loc.cell_bytes(),
                                         static_cast<int>(slot) < loc.ec_k,
                                         file.path, index});
        }
        ++index;
        continue;
      }
      for (std::size_t r = 0; r < loc.replicas.size(); ++r) {
        if (loc.replicas[r] != node) continue;
        candidates.push_back(
            Candidate{loc.id, loc.length, r == 0, file.path, index});
      }
      ++index;
    }
  }
  if (candidates.empty()) return;
  const Candidate* pick = nullptr;
  std::uint64_t eff_salt = salt;
  if (salt == 0) {
    // Explicit --corrupt-block event: the node's largest primary copy
    // (ties: first in path then file order) — matrix data, not a tiny
    // metadata file.
    bool any_primary = false;
    for (const auto& c : candidates) any_primary = any_primary || c.primary;
    for (const auto& c : candidates) {
      if (any_primary && !c.primary) continue;
      if (pick == nullptr || c.bytes > pick->bytes ||
          (c.bytes == pick->bytes &&
           (c.path < pick->path ||
            (c.path == pick->path && c.index < pick->index)))) {
        pick = &c;
      }
    }
    // Deterministic per-victim bit pattern; | 1 keeps the salt nonzero.
    std::uint64_t hash = 1469598103934665603ull;  // FNV-1a over the path
    for (const char ch : pick->path) {
      hash = (hash ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
    }
    hash ^= static_cast<std::uint64_t>(pick->index) * 0x100000001b3ull;
    eff_salt = (0x9e3779b97f4a7c15ull ^ hash ^
                (static_cast<std::uint64_t>(node) + 1ull)) |
               1ull;
  } else {
    // Background bit-rot: the salt doubles as the (already seeded) pick.
    pick = &candidates[static_cast<std::size_t>(salt % candidates.size())];
  }
  // First corruption wins; a repeat hit on an already-bad copy is a no-op
  // so corruptions_injected == corruptions the reader can observe.
  if (!checksums_.mark_corrupt(pick->id, node, eff_salt, at)) return;
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    ++integrity_.corruptions_injected;
  }
  if (config_.hot_cache_bytes > 0) {
    // The cached copy rots with its replica until a repair clears it.
    std::lock_guard<std::mutex> lock(hot_mu_);
    auto it = hot_candidates_.find(pick->path);
    if (it != hot_candidates_.end()) it->second.corrupt[pick->id] = eff_salt;
  }
}

bool Dfs::verify_copy(const BlockLocation& loc, int node, int slot) const {
  BlockData data = datanodes_[static_cast<std::size_t>(node)]->get(loc.id);
  const auto len = static_cast<std::uint64_t>(data->size());
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    ++integrity_.cells_verified;
    integrity_.bytes_verified += len;
  }
  if (metrics_ != nullptr) {
    IoStats io;
    io.bytes_checksummed = len;
    metrics_->add_io(io);
  }
  const auto expected = checksums_.expected(loc.id, slot < 0 ? 0 : slot);
  if (!expected) return false;  // committed before checksumming was enabled
  // Recompute the CRC over the bytes a read would actually serve: the
  // pristine payload, or its bit-flipped overlay when the copy is marked.
  BlockData served = data;
  if (auto mark = checksums_.corrupt_mark(loc.id, node)) {
    served = corrupt_copy(data, mark->salt);
  }
  return crc32c(std::span<const std::byte>(*served)) != *expected;
}

double Dfs::repair_corrupt_copy(const BlockLocation& loc,
                                const std::string& path, StorageTier tier,
                                int node, int slot, double at,
                                bool by_scrubber,
                                std::vector<net::Transfer>* flows) const {
  // The clear doubles as the claim: under racing readers exactly one caller
  // gets true, so every corruption is detected, repaired and counted once.
  if (!checksums_.clear_corrupt(loc.id, node)) return 0.0;
  const std::string norm = normalize(path);
  double seconds = 0.0;
  const char* kind = "copy";
  std::uint64_t bytes = loc.length;
  IoStats io;
  TierListener* listener = tier_listener_.load(std::memory_order_acquire);
  if (tier == StorageTier::kMemory) {
    // Single-copy memory tier: no replica or parity to copy from — the
    // engine recomputes the partition from lineage. Without an engine the
    // repair is free in time (the pristine in-sim payload simply stops
    // being served corrupted).
    kind = "lineage";
    seconds = listener != nullptr ? listener->on_corrupt(norm, at) : 0.0;
  } else if (loc.is_ec()) {
    // Decode the bad cell from k clean survivors and ship it back.
    kind = "ec";
    bytes = loc.cell_bytes();
    io.bytes_reconstructed = bytes;
    io.bytes_transferred = bytes;
  } else {
    // Re-materialize the block from a healthy replica.
    io.bytes_replicated = loc.length;
    io.bytes_transferred = loc.length;
  }
  if (metrics_ != nullptr &&
      (io.bytes_transferred > 0 || io.bytes_reconstructed > 0)) {
    metrics_->add_io(io);
  }
  if (flows != nullptr && racked_topology() && tier != StorageTier::kMemory) {
    // Repair traffic crosses the fabric from the first live healthy holder.
    int repair_source = -1;
    {
      std::lock_guard<std::mutex> lock(chaos_mu_);
      for (int holder : loc.replicas) {
        if (holder < 0 || holder == node) continue;
        if (dead_[static_cast<std::size_t>(holder)]) continue;
        repair_source = holder;
        break;
      }
    }
    if (repair_source >= 0) {
      flows->push_back(
          net::Transfer{repair_source, node, bytes, net::TransferKind::kRepair});
    }
  }
  if (config_.hot_cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(hot_mu_);
    auto it = hot_candidates_.find(norm);
    if (it != hot_candidates_.end()) it->second.corrupt.erase(loc.id);
  }
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    ++integrity_.corruptions_detected;
    ++integrity_.cells_quarantined;
    if (std::strcmp(kind, "ec") == 0) {
      ++integrity_.cells_repaired_ec;
    } else if (std::strcmp(kind, "lineage") == 0) {
      ++integrity_.cells_repaired_lineage;
    } else {
      ++integrity_.cells_repaired_copy;
    }
    integrity_.repairs.push_back(IntegrityRepairEvent{
        at, node, norm, slot < 0 ? 0 : slot, bytes, kind, by_scrubber});
  }
  return seconds;
}

void Dfs::scrub_to(double now) {
  if (!config_.verify_checksums || config_.scrub_interval_seconds <= 0.0) {
    return;
  }
  if (next_scrub_at_ == 0.0) next_scrub_at_ = config_.scrub_interval_seconds;
  while (next_scrub_at_ <= now) {
    run_scrub_pass(next_scrub_at_);
    next_scrub_at_ += config_.scrub_interval_seconds;
  }
}

void Dfs::run_scrub_pass(double at) {
  std::vector<net::Transfer> flows;
  std::map<int, std::uint64_t> node_bytes;
  std::uint64_t scanned = 0;
  std::uint64_t repair_bytes = 0;
  std::int64_t cells = 0;
  std::int64_t repaired = 0;
  double lineage_seconds = 0.0;
  for (const auto& file : namenode_.snapshot_files()) {
    for (const auto& loc : file.blocks) {
      for (std::size_t s = 0; s < loc.replicas.size(); ++s) {
        const int holder = loc.replicas[s];
        if (holder < 0) continue;  // lost EC cell sentinel
        {
          std::lock_guard<std::mutex> lock(chaos_mu_);
          if (dead_[static_cast<std::size_t>(holder)]) continue;
        }
        const std::uint64_t len = loc.is_ec() ? loc.cell_bytes() : loc.length;
        const int slot = loc.is_ec() ? static_cast<int>(s) : -1;
        node_bytes[holder] += len;
        scanned += len;
        ++cells;
        if (verify_copy(loc, holder, slot)) {
          lineage_seconds += repair_corrupt_copy(loc, file.path, file.tier,
                                                 holder, slot, at,
                                                 /*by_scrubber=*/true, &flows);
          ++repaired;
          repair_bytes += len;
        }
      }
    }
  }
  // Pass duration: every node scrubs its own copies in parallel at disk
  // bandwidth (the slowest node paces the pass), plus the checksum CPU over
  // everything scanned, plus repair traffic — flow-simulated across the
  // racked fabric when one is attached — and any lineage recomputes.
  double pass_seconds = lineage_seconds;
  if (cost_model_ != nullptr) {
    std::uint64_t max_node_bytes = 0;
    for (const auto& [n, b] : node_bytes) {
      max_node_bytes = std::max(max_node_bytes, b);
    }
    pass_seconds +=
        static_cast<double>(max_node_bytes) / cost_model_->disk_bandwidth +
        cost_model_->checksum_seconds(scanned);
  }
  if (!flows.empty() && racked_topology()) {
    std::vector<net::Flow> nf;
    nf.reserve(flows.size());
    for (const net::Transfer& t : flows) {
      nf.push_back(net::Flow{t.src, t.dst, t.bytes, 0.0, -1});
    }
    pass_seconds += net::simulate_flows(*topology_, nf).end_time;
  } else if (repair_bytes > 0 && chaos_network_bandwidth_ > 0.0) {
    pass_seconds +=
        static_cast<double>(repair_bytes) / chaos_network_bandwidth_;
  }
  std::lock_guard<std::mutex> lock(integrity_mu_);
  ++integrity_.scrub_passes;
  integrity_.scrub_bytes_scanned += scanned;
  integrity_.scrub_seconds += pass_seconds;
  integrity_.scrubs.push_back(
      ScrubPassEvent{at, pass_seconds, scanned, cells, repaired});
}

IntegrityStats Dfs::integrity_stats() const {
  std::lock_guard<std::mutex> lock(integrity_mu_);
  return integrity_;
}

// ---------------------------------------------------------------------------
// Convenience

void Dfs::write_doubles(const std::string& path, std::span<const double> values,
                        IoStats* account) {
  Writer w = create(path, account);
  w.write_doubles(values);
  w.close();
}

std::vector<double> Dfs::read_doubles(const std::string& path,
                                      IoStats* account) const {
  return open(path, account).read_all_doubles();
}

void Dfs::write_text(const std::string& path, std::string_view text,
                     IoStats* account) {
  Writer w = create(path, account);
  w.write_text(text);
  w.close();
}

std::string Dfs::read_text(const std::string& path, IoStats* account) const {
  return open(path, account).read_all_text();
}

std::uint64_t Dfs::physical_bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& node : datanodes_) total += node->bytes_stored();
  return total;
}

std::vector<StorageReconstructionEvent> Dfs::storage_events() const {
  std::lock_guard<std::mutex> lock(storage_mu_);
  return storage_events_;
}

void Dfs::recompute_hot_residents_locked() const {
  hot_resident_.clear();
  hot_resident_bytes_ = 0;
  // Greedy admission over candidate paths in sorted (map) order: a pure
  // function of the candidate set, independent of commit interleaving — the
  // property that keeps same-seed runs bit-identical under task-thread
  // races. (Hot files are written and read in different phases, so the set
  // is stable by the time the hits matter.)
  for (const auto& [path, file] : hot_candidates_) {
    if (hot_resident_bytes_ + file.size > config_.hot_cache_bytes) continue;
    hot_resident_.insert(path);
    hot_resident_bytes_ += file.size;
  }
}

HotCacheStats Dfs::hot_cache_stats() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  HotCacheStats s;
  s.capacity_bytes = config_.hot_cache_bytes;
  s.resident_bytes = hot_resident_bytes_;
  s.resident_files = static_cast<int>(hot_resident_.size());
  s.hits = hot_hits_;
  s.hit_bytes = hot_hit_bytes_;
  return s;
}

}  // namespace mri::dfs
