#include "dfs/dfs.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "dfs/path.hpp"

namespace mri::dfs {

Dfs::Dfs(int num_datanodes, DfsConfig config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  MRI_REQUIRE(num_datanodes >= 1, "DFS needs at least one datanode");
  MRI_REQUIRE(config.replication >= 1, "replication must be >= 1");
  MRI_REQUIRE(config.block_size >= 1, "block size must be >= 1");
  datanodes_.reserve(static_cast<std::size_t>(num_datanodes));
  for (int i = 0; i < num_datanodes; ++i) {
    datanodes_.push_back(std::make_unique<DataNode>(i));
  }
}

void Dfs::remove(const std::string& path, bool recursive) {
  for (const auto& block : namenode_.remove(path, recursive)) {
    for (int node : block.replicas) {
      datanodes_[static_cast<std::size_t>(node)]->evict(block.id);
    }
  }
}

// ---------------------------------------------------------------------------
// Writer

Dfs::Writer::Writer(Dfs* fs, std::string path, bool overwrite, IoStats* account,
                    StorageTier tier)
    : fs_(fs), path_(std::move(path)), overwrite_(overwrite),
      account_(account), tier_(tier) {}

Dfs::Writer::Writer(Writer&& other) noexcept
    : fs_(other.fs_),
      path_(std::move(other.path_)),
      overwrite_(other.overwrite_),
      account_(other.account_),
      tier_(other.tier_),
      buffer_(std::move(other.buffer_)),
      closed_(other.closed_) {
  other.closed_ = true;  // moved-from writer must not commit
}

Dfs::Writer::~Writer() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Swallow: destructor must not throw. Callers that care about commit
      // failures should call close() explicitly.
    }
  }
}

void Dfs::Writer::write(std::span<const std::byte> data) {
  MRI_CHECK_MSG(!closed_, "write() after close() on " << path_);
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Dfs::Writer::write_doubles(std::span<const double> values) {
  write(std::as_bytes(values));
}

void Dfs::Writer::write_u64(std::uint64_t value) {
  write(std::as_bytes(std::span<const std::uint64_t>(&value, 1)));
}

void Dfs::Writer::write_text(std::string_view text) {
  write(std::as_bytes(std::span<const char>(text.data(), text.size())));
}

void Dfs::Writer::close() {
  if (closed_) return;
  closed_ = true;
  fs_->commit(path_, std::move(buffer_), overwrite_, account_, tier_);
}

Dfs::Writer Dfs::create(const std::string& path, IoStats* account,
                        bool overwrite, StorageTier tier) {
  return Writer(this, normalize(path), overwrite, account, tier);
}

void Dfs::commit(const std::string& path, std::vector<std::byte> buffer,
                 bool overwrite, IoStats* account, StorageTier tier) {
  const std::uint64_t total = buffer.size();
  // Memory-tier files keep a single unreplicated copy (Spark-style lineage
  // fault tolerance instead of replication).
  const int repl =
      tier == StorageTier::kMemory
          ? 1
          : std::min(config_.replication, static_cast<int>(datanodes_.size()));

  std::vector<BlockLocation> locations;
  std::size_t offset = 0;
  // Split into blocks; zero-length files get zero blocks.
  while (offset < buffer.size()) {
    const std::size_t len = std::min(config_.block_size, buffer.size() - offset);
    auto payload = std::make_shared<std::vector<std::byte>>(
        buffer.begin() + static_cast<std::ptrdiff_t>(offset),
        buffer.begin() + static_cast<std::ptrdiff_t>(offset + len));
    BlockLocation loc;
    loc.id = next_block_id_.fetch_add(1);
    loc.length = len;
    const std::uint64_t base = next_placement_.fetch_add(1);
    for (int r = 0; r < repl; ++r) {
      loc.replicas.push_back(
          static_cast<int>((base + static_cast<std::uint64_t>(r)) %
                           datanodes_.size()));
    }
    BlockData shared = payload;
    for (int node : loc.replicas) {
      datanodes_[static_cast<std::size_t>(node)]->put(loc.id, shared);
    }
    locations.push_back(std::move(loc));
    offset += len;
  }

  namenode_.commit_file(path, std::move(locations), overwrite);

  IoStats io;
  if (tier == StorageTier::kMemory) {
    io.bytes_written_memory = total;
  } else {
    io.bytes_written = total;
    io.bytes_replicated =
        total * static_cast<std::uint64_t>(std::max(repl - 1, 0));
    io.bytes_transferred = io.bytes_replicated;
  }
  if (account != nullptr) *account += io;
  if (metrics_ != nullptr) metrics_->add_io(io);
}

// ---------------------------------------------------------------------------
// Reader

Dfs::Reader::Reader(std::vector<BlockData> blocks, std::uint64_t size,
                    IoStats* account, MetricsRegistry* metrics)
    : blocks_(std::move(blocks)),
      size_(size),
      account_(account),
      metrics_(metrics) {}

void Dfs::Reader::account(std::uint64_t bytes) {
  IoStats io;
  io.bytes_read = bytes;
  io.bytes_transferred = bytes;  // HDFS read = remote read in the paper model
  if (account_ != nullptr) *account_ += io;
  if (metrics_ != nullptr) metrics_->add_io(io);
}

std::size_t Dfs::Reader::read(std::span<std::byte> dst) {
  std::size_t copied = 0;
  while (copied < dst.size() && position_ < size_) {
    const auto& block = *blocks_[block_index_];
    const std::size_t in_block = block.size() - block_offset_;
    const std::size_t want = std::min(dst.size() - copied, in_block);
    std::memcpy(dst.data() + copied, block.data() + block_offset_, want);
    copied += want;
    block_offset_ += want;
    position_ += want;
    if (block_offset_ == block.size()) {
      ++block_index_;
      block_offset_ = 0;
    }
  }
  if (copied > 0) account(copied);
  return copied;
}

void Dfs::Reader::read_exact(std::span<std::byte> dst) {
  const std::size_t got = read(dst);
  if (got != dst.size()) {
    throw DfsError("short read: wanted " + std::to_string(dst.size()) +
                   " bytes, got " + std::to_string(got));
  }
}

double Dfs::Reader::read_double() {
  double v = 0.0;
  read_exact(std::as_writable_bytes(std::span<double>(&v, 1)));
  return v;
}

std::uint64_t Dfs::Reader::read_u64() {
  std::uint64_t v = 0;
  read_exact(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)));
  return v;
}

void Dfs::Reader::read_doubles(std::span<double> dst) {
  read_exact(std::as_writable_bytes(dst));
}

std::vector<double> Dfs::Reader::read_all_doubles() {
  const std::uint64_t bytes = remaining();
  if (bytes % sizeof(double) != 0) {
    throw DfsError("file tail is not a whole number of doubles");
  }
  std::vector<double> values(bytes / sizeof(double));
  read_doubles(values);
  return values;
}

std::string Dfs::Reader::read_all_text() {
  std::string text(remaining(), '\0');
  read_exact(std::as_writable_bytes(std::span<char>(text.data(), text.size())));
  return text;
}

void Dfs::Reader::seek(std::uint64_t offset) {
  MRI_REQUIRE(offset <= size_, "seek past end of file");
  position_ = 0;
  block_index_ = 0;
  block_offset_ = 0;
  std::uint64_t left = offset;
  while (left > 0) {
    const std::uint64_t block_len = blocks_[block_index_]->size();
    if (left >= block_len) {
      left -= block_len;
      ++block_index_;
    } else {
      block_offset_ = left;
      left = 0;
    }
  }
  position_ = offset;
}

Dfs::Reader Dfs::open(const std::string& path, IoStats* account) const {
  const auto blocks = namenode_.file_blocks(path);
  std::vector<BlockData> data;
  data.reserve(blocks.size());
  std::uint64_t size = 0;
  for (const auto& loc : blocks) {
    MRI_CHECK(!loc.replicas.empty());
    data.push_back(
        datanodes_[static_cast<std::size_t>(loc.replicas.front())]->get(loc.id));
    size += loc.length;
  }
  return Reader(std::move(data), size, account, metrics_);
}

// ---------------------------------------------------------------------------
// Convenience

void Dfs::write_doubles(const std::string& path, std::span<const double> values,
                        IoStats* account) {
  Writer w = create(path, account);
  w.write_doubles(values);
  w.close();
}

std::vector<double> Dfs::read_doubles(const std::string& path,
                                      IoStats* account) const {
  return open(path, account).read_all_doubles();
}

void Dfs::write_text(const std::string& path, std::string_view text,
                     IoStats* account) {
  Writer w = create(path, account);
  w.write_text(text);
  w.close();
}

std::string Dfs::read_text(const std::string& path, IoStats* account) const {
  return open(path, account).read_all_text();
}

std::uint64_t Dfs::physical_bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& node : datanodes_) total += node->bytes_stored();
  return total;
}

}  // namespace mri::dfs
