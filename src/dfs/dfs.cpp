#include "dfs/dfs.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "dfs/path.hpp"

namespace mri::dfs {

Dfs::Dfs(int num_datanodes, DfsConfig config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  MRI_REQUIRE(num_datanodes >= 1, "DFS needs at least one datanode");
  MRI_REQUIRE(config.replication >= 1, "replication must be >= 1");
  MRI_REQUIRE(config.block_size >= 1, "block size must be >= 1");
  datanodes_.reserve(static_cast<std::size_t>(num_datanodes));
  for (int i = 0; i < num_datanodes; ++i) {
    datanodes_.push_back(std::make_unique<DataNode>(i));
  }
  dead_.assign(static_cast<std::size_t>(num_datanodes), false);
  read_errors_.assign(static_cast<std::size_t>(num_datanodes), 0);
}

void Dfs::remove(const std::string& path, bool recursive) {
  for (const auto& block : namenode_.remove(path, recursive)) {
    for (int node : block.replicas) {
      datanodes_[static_cast<std::size_t>(node)]->evict(block.id);
    }
  }
}

// ---------------------------------------------------------------------------
// Writer

Dfs::Writer::Writer(Dfs* fs, std::string path, bool overwrite, IoStats* account,
                    StorageTier tier)
    : fs_(fs), path_(std::move(path)), overwrite_(overwrite),
      account_(account), tier_(tier) {}

Dfs::Writer::Writer(Writer&& other) noexcept
    : fs_(other.fs_),
      path_(std::move(other.path_)),
      overwrite_(other.overwrite_),
      account_(other.account_),
      tier_(other.tier_),
      buffer_(std::move(other.buffer_)),
      closed_(other.closed_) {
  other.closed_ = true;  // moved-from writer must not commit
}

Dfs::Writer::~Writer() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Swallow: destructor must not throw. Callers that care about commit
      // failures should call close() explicitly.
    }
  }
}

void Dfs::Writer::write(std::span<const std::byte> data) {
  MRI_CHECK_MSG(!closed_, "write() after close() on " << path_);
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Dfs::Writer::write_doubles(std::span<const double> values) {
  write(std::as_bytes(values));
}

void Dfs::Writer::write_u64(std::uint64_t value) {
  write(std::as_bytes(std::span<const std::uint64_t>(&value, 1)));
}

void Dfs::Writer::write_text(std::string_view text) {
  write(std::as_bytes(std::span<const char>(text.data(), text.size())));
}

void Dfs::Writer::close() {
  if (closed_) return;
  closed_ = true;
  fs_->commit(path_, std::move(buffer_), overwrite_, account_, tier_);
}

Dfs::Writer Dfs::create(const std::string& path, IoStats* account,
                        bool overwrite, StorageTier tier) {
  return Writer(this, normalize(path), overwrite, account, tier);
}

void Dfs::commit(const std::string& path, std::vector<std::byte> buffer,
                 bool overwrite, IoStats* account, StorageTier tier) {
  const std::uint64_t total = buffer.size();
  // Replicas go to live nodes only; with no dead nodes this degenerates to
  // round-robin over all datanodes, bit-identical to the chaos-free layout.
  std::vector<int> live;
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    for (std::size_t i = 0; i < dead_.size(); ++i) {
      if (!dead_[i]) live.push_back(static_cast<int>(i));
    }
  }
  MRI_CHECK_MSG(!live.empty(),
                "every datanode is dead; cannot write " << path);
  // Memory-tier files keep a single unreplicated copy (Spark-style lineage
  // fault tolerance instead of replication).
  const int repl =
      tier == StorageTier::kMemory
          ? 1
          : std::min(config_.replication, static_cast<int>(live.size()));

  // Placement base: FNV-1a of the path, advanced per block. A function of
  // the file alone — NOT a shared counter — so concurrent writers racing on
  // commit order still produce the same replica layout every run (chaos
  // re-replication totals depend on which blocks lived on the dead node, so
  // placement must be deterministic for same-seed runs to be bit-identical).
  std::uint64_t base = 14695981039346656037ull;
  for (char c : path) {
    base ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    base *= 1099511628211ull;
  }

  std::vector<BlockLocation> locations;
  std::size_t offset = 0;
  // Split into blocks; zero-length files get zero blocks.
  while (offset < buffer.size()) {
    const std::size_t len = std::min(config_.block_size, buffer.size() - offset);
    auto payload = std::make_shared<std::vector<std::byte>>(
        buffer.begin() + static_cast<std::ptrdiff_t>(offset),
        buffer.begin() + static_cast<std::ptrdiff_t>(offset + len));
    BlockLocation loc;
    loc.id = next_block_id_.fetch_add(1);
    loc.length = len;
    ++base;
    for (int r = 0; r < repl; ++r) {
      loc.replicas.push_back(
          live[static_cast<std::size_t>(
              (base + static_cast<std::uint64_t>(r)) % live.size())]);
    }
    BlockData shared = payload;
    for (int node : loc.replicas) {
      datanodes_[static_cast<std::size_t>(node)]->put(loc.id, shared);
    }
    locations.push_back(std::move(loc));
    offset += len;
  }

  namenode_.commit_file(path, std::move(locations), overwrite);

  IoStats io;
  if (tier == StorageTier::kMemory) {
    io.bytes_written_memory = total;
  } else {
    io.bytes_written = total;
    io.bytes_replicated =
        total * static_cast<std::uint64_t>(std::max(repl - 1, 0));
    io.bytes_transferred = io.bytes_replicated;
  }
  if (account != nullptr) *account += io;
  if (metrics_ != nullptr) metrics_->add_io(io);
}

// ---------------------------------------------------------------------------
// Reader

Dfs::Reader::Reader(std::vector<BlockData> blocks, std::uint64_t size,
                    IoStats* account, MetricsRegistry* metrics)
    : blocks_(std::move(blocks)),
      size_(size),
      account_(account),
      metrics_(metrics) {}

void Dfs::Reader::account(std::uint64_t bytes) {
  IoStats io;
  io.bytes_read = bytes;
  io.bytes_transferred = bytes;  // HDFS read = remote read in the paper model
  if (account_ != nullptr) *account_ += io;
  if (metrics_ != nullptr) metrics_->add_io(io);
}

std::size_t Dfs::Reader::read(std::span<std::byte> dst) {
  std::size_t copied = 0;
  while (copied < dst.size() && position_ < size_) {
    const auto& block = *blocks_[block_index_];
    const std::size_t in_block = block.size() - block_offset_;
    const std::size_t want = std::min(dst.size() - copied, in_block);
    std::memcpy(dst.data() + copied, block.data() + block_offset_, want);
    copied += want;
    block_offset_ += want;
    position_ += want;
    if (block_offset_ == block.size()) {
      ++block_index_;
      block_offset_ = 0;
    }
  }
  if (copied > 0) account(copied);
  return copied;
}

void Dfs::Reader::read_exact(std::span<std::byte> dst) {
  const std::size_t got = read(dst);
  if (got != dst.size()) {
    throw DfsError("short read: wanted " + std::to_string(dst.size()) +
                   " bytes, got " + std::to_string(got));
  }
}

double Dfs::Reader::read_double() {
  double v = 0.0;
  read_exact(std::as_writable_bytes(std::span<double>(&v, 1)));
  return v;
}

std::uint64_t Dfs::Reader::read_u64() {
  std::uint64_t v = 0;
  read_exact(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)));
  return v;
}

void Dfs::Reader::read_doubles(std::span<double> dst) {
  read_exact(std::as_writable_bytes(dst));
}

std::vector<double> Dfs::Reader::read_all_doubles() {
  const std::uint64_t bytes = remaining();
  if (bytes % sizeof(double) != 0) {
    throw DfsError("file tail is not a whole number of doubles");
  }
  std::vector<double> values(bytes / sizeof(double));
  read_doubles(values);
  return values;
}

std::string Dfs::Reader::read_all_text() {
  std::string text(remaining(), '\0');
  read_exact(std::as_writable_bytes(std::span<char>(text.data(), text.size())));
  return text;
}

void Dfs::Reader::seek(std::uint64_t offset) {
  MRI_REQUIRE(offset <= size_, "seek past end of file");
  position_ = 0;
  block_index_ = 0;
  block_offset_ = 0;
  std::uint64_t left = offset;
  while (left > 0) {
    const std::uint64_t block_len = blocks_[block_index_]->size();
    if (left >= block_len) {
      left -= block_len;
      ++block_index_;
    } else {
      block_offset_ = left;
      left = 0;
    }
  }
  position_ = offset;
}

BlockData Dfs::read_replica(const BlockLocation& loc,
                            const std::string& path) const {
  if (loc.replicas.empty()) {
    // Every replica died with its datanode (namenode repair keeps the block
    // registered precisely so this read fails fast and loudly).
    throw UnrecoverableBlock(
        "block " + std::to_string(loc.id) + " of " + path +
        ": all replicas lost to dead datanodes; the data is unrecoverable");
  }
  int chosen = -1;
  int failed_over = 0;
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    for (int r : loc.replicas) {
      const auto idx = static_cast<std::size_t>(r);
      if (dead_[idx]) continue;  // stale entry from an in-flight kill
      if (read_errors_[idx] > 0) {
        --read_errors_[idx];  // this copy errors out; try the next replica
        ++failed_over;
        continue;
      }
      chosen = r;
      break;
    }
  }
  if (chosen < 0) {
    if (failed_over > 0) {
      throw DfsError("read of block " + std::to_string(loc.id) + " of " +
                     path + " failed on every live replica (injected read "
                     "errors); transient — retry the read");
    }
    throw UnrecoverableBlock(
        "block " + std::to_string(loc.id) + " of " + path +
        ": all replicas lost to dead datanodes; the data is unrecoverable");
  }
  if (failed_over > 0 && metrics_ != nullptr) {
    metrics_->increment("dfs_read_errors_survived",
                        static_cast<std::uint64_t>(failed_over));
  }
  return datanodes_[static_cast<std::size_t>(chosen)]->get(loc.id);
}

Dfs::Reader Dfs::open(const std::string& path, IoStats* account) const {
  const auto blocks = namenode_.file_blocks(path);
  std::vector<BlockData> data;
  data.reserve(blocks.size());
  std::uint64_t size = 0;
  for (const auto& loc : blocks) {
    data.push_back(read_replica(loc, path));
    size += loc.length;
  }
  return Reader(std::move(data), size, account, metrics_);
}

// ---------------------------------------------------------------------------
// Failures

NodeKillOutcome Dfs::kill_datanode(int node) {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "kill_datanode(" << node << ") on a DFS with "
                               << num_datanodes() << " datanodes");
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    if (dead_[static_cast<std::size_t>(node)]) return {};
    dead_[static_cast<std::size_t>(node)] = true;
  }

  // Re-replication target choice: the smallest-id live node not already
  // holding the block — deterministic, so same-seed runs place identical
  // repair copies.
  const auto replicate = [this](const BlockLocation& loc) -> int {
    int source = -1;
    int target = -1;
    {
      std::lock_guard<std::mutex> lock(chaos_mu_);
      for (int r : loc.replicas) {
        if (!dead_[static_cast<std::size_t>(r)]) {
          source = r;
          break;
        }
      }
      if (source < 0) return -1;
      for (std::size_t i = 0; i < dead_.size(); ++i) {
        if (dead_[i]) continue;
        const int candidate = static_cast<int>(i);
        if (std::find(loc.replicas.begin(), loc.replicas.end(), candidate) ==
            loc.replicas.end()) {
          target = candidate;
          break;
        }
      }
    }
    if (target < 0) return -1;
    datanodes_[static_cast<std::size_t>(target)]->put(
        loc.id, datanodes_[static_cast<std::size_t>(source)]->get(loc.id));
    return target;
  };

  const BlockRepairSummary repaired =
      namenode_.repair_after_node_loss(node, config_.replication, replicate);
  datanodes_[static_cast<std::size_t>(node)]->clear();

  NodeKillOutcome out;
  out.re_replicated_bytes = repaired.re_replicated_bytes;
  out.re_replicated_blocks = repaired.re_replicated_blocks;
  out.blocks_lost = repaired.blocks_lost;

  if (metrics_ != nullptr) {
    // Background datanode-to-datanode traffic (HDFS re-replication is not a
    // client read): network copies only, no client-side bytes_read.
    IoStats io;
    io.bytes_replicated = out.re_replicated_bytes;
    io.bytes_transferred = out.re_replicated_bytes;
    metrics_->add_io(io);
    metrics_->increment("dfs_nodes_killed");
    metrics_->increment("dfs_blocks_re_replicated",
                        static_cast<std::uint64_t>(out.re_replicated_blocks));
    metrics_->increment("dfs_blocks_lost",
                        static_cast<std::uint64_t>(out.blocks_lost));
  }
  return out;
}

bool Dfs::datanode_dead(int node) const {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "datanode_dead(" << node << ") on a DFS with "
                               << num_datanodes() << " datanodes");
  std::lock_guard<std::mutex> lock(chaos_mu_);
  return dead_[static_cast<std::size_t>(node)];
}

int Dfs::live_datanodes() const {
  std::lock_guard<std::mutex> lock(chaos_mu_);
  int live = 0;
  for (const bool d : dead_) {
    if (!d) ++live;
  }
  return live;
}

void Dfs::inject_read_error(int node, int count) {
  MRI_REQUIRE(node >= 0 && node < num_datanodes(),
              "inject_read_error(" << node << ") on a DFS with "
                                   << num_datanodes() << " datanodes");
  MRI_REQUIRE(count >= 1, "read-error count must be >= 1");
  std::lock_guard<std::mutex> lock(chaos_mu_);
  read_errors_[static_cast<std::size_t>(node)] += count;
}

void Dfs::bind_chaos(ChaosEngine* chaos, double network_bandwidth) {
  MRI_REQUIRE(chaos != nullptr, "bind_chaos() needs a chaos engine");
  chaos->set_kill_handler([this](int node) { return kill_datanode(node); });
  chaos->set_read_error_handler([this](int node) { inject_read_error(node); });
  if (network_bandwidth > 0.0) chaos->set_network_bandwidth(network_bandwidth);
}

// ---------------------------------------------------------------------------
// Convenience

void Dfs::write_doubles(const std::string& path, std::span<const double> values,
                        IoStats* account) {
  Writer w = create(path, account);
  w.write_doubles(values);
  w.close();
}

std::vector<double> Dfs::read_doubles(const std::string& path,
                                      IoStats* account) const {
  return open(path, account).read_all_doubles();
}

void Dfs::write_text(const std::string& path, std::string_view text,
                     IoStats* account) {
  Writer w = create(path, account);
  w.write_text(text);
  w.close();
}

std::string Dfs::read_text(const std::string& path, IoStats* account) const {
  return open(path, account).read_all_text();
}

std::uint64_t Dfs::physical_bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& node : datanodes_) total += node->bytes_stored();
  return total;
}

}  // namespace mri::dfs
