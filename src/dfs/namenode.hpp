// The DFS namespace: a tree of directories and files, where a file is a
// list of block locations. All operations are atomic under one mutex (the
// real HDFS namenode is likewise a single serialized namespace).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfs/block.hpp"

namespace mri::dfs {

class NameNode {
 public:
  NameNode();

  /// Creates a directory and any missing ancestors. Idempotent.
  void mkdirs(const std::string& path);

  /// Registers a file with its committed blocks. Parent directories are
  /// created implicitly (matching HDFS create semantics). Overwrite of an
  /// existing file is an error unless `overwrite`.
  void commit_file(const std::string& path, std::vector<BlockLocation> blocks,
                   bool overwrite = false);

  bool exists(const std::string& path) const;
  bool is_directory(const std::string& path) const;
  bool is_file(const std::string& path) const;

  std::uint64_t file_size(const std::string& path) const;
  std::vector<BlockLocation> file_blocks(const std::string& path) const;

  /// Sorted child names of a directory.
  std::vector<std::string> list(const std::string& dir) const;

  /// Removes a file, or a directory (recursively when `recursive`).
  /// Returns the block locations of every removed file so the caller can
  /// evict them from datanodes.
  std::vector<BlockLocation> remove(const std::string& path,
                                    bool recursive = false);

  /// Atomic rename of a file or directory.
  void rename(const std::string& from, const std::string& to);

  /// Number of files in the whole namespace (used by §6.1 tests).
  std::size_t file_count() const;

 private:
  struct Inode {
    bool is_dir = true;
    std::map<std::string, std::unique_ptr<Inode>> children;  // dirs only
    std::vector<BlockLocation> blocks;                       // files only
    std::uint64_t size = 0;
  };

  Inode* find(const std::string& path) const;
  Inode* find_or_create_dir(const std::string& path);
  static void collect_blocks(const Inode& node, std::vector<BlockLocation>* out);
  static std::size_t count_files(const Inode& node);

  mutable std::mutex mu_;
  std::unique_ptr<Inode> root_;
};

}  // namespace mri::dfs
