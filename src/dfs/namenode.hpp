// The DFS namespace: a tree of directories and files, where a file is a
// list of block locations. All operations are atomic under one mutex (the
// real HDFS namenode is likewise a single serialized namespace).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfs/block.hpp"

namespace mri::dfs {

/// Outcome of repair_after_node_loss(): re-replication traffic plus blocks
/// whose last replica died with the node.
struct BlockRepairSummary {
  std::uint64_t re_replicated_bytes = 0;
  int re_replicated_blocks = 0;
  int blocks_lost = 0;
  /// Erasure-coded stripe cells rebuilt by decode from k survivors (counted
  /// separately from re_replicated_* — reconstruction reads k cells to
  /// rewrite one, replication copies one replica verbatim).
  int ec_cells_reconstructed = 0;
  std::uint64_t ec_reconstructed_bytes = 0;
  /// Paths of files that lost at least one block entirely (every replica
  /// dead, or fewer than k cells of a stripe surviving). The engine layer
  /// uses these to trigger lineage recomputation of memory-tier
  /// intermediates instead of fail-fast.
  std::vector<std::string> lost_files;
};

class NameNode {
 public:
  NameNode();

  /// Creates a directory and any missing ancestors. Idempotent.
  void mkdirs(const std::string& path);

  /// Registers a file with its committed blocks. Parent directories are
  /// created implicitly (matching HDFS create semantics). Overwrite of an
  /// existing file is an error unless `overwrite`.
  void commit_file(const std::string& path, std::vector<BlockLocation> blocks,
                   bool overwrite = false,
                   StorageTier tier = StorageTier::kDisk);

  /// The tier the file was committed on (or moved to by set_file_tier).
  StorageTier file_tier(const std::string& path) const;
  /// Retiers a file in place — spill (memory -> disk) leaves the payload on
  /// the same datanode; only the accounting model for future reads changes.
  void set_file_tier(const std::string& path, StorageTier tier);

  bool exists(const std::string& path) const;
  bool is_directory(const std::string& path) const;
  bool is_file(const std::string& path) const;

  std::uint64_t file_size(const std::string& path) const;
  std::vector<BlockLocation> file_blocks(const std::string& path) const;

  /// Sorted child names of a directory.
  std::vector<std::string> list(const std::string& dir) const;

  /// Removes a file, or a directory (recursively when `recursive`).
  /// Returns the block locations of every removed file so the caller can
  /// evict them from datanodes; `removed_paths` (may be null) receives the
  /// full path of every removed file for cache/lineage invalidation.
  std::vector<BlockLocation> remove(const std::string& path,
                                    bool recursive = false,
                                    std::vector<std::string>* removed_paths =
                                        nullptr);

  /// Atomic rename of a file or directory.
  void rename(const std::string& from, const std::string& to);

  /// Number of files in the whole namespace (used by §6.1 tests).
  std::size_t file_count() const;

  /// One file's identity and block map, as captured by snapshot_files().
  struct FileInfo {
    std::string path;
    StorageTier tier = StorageTier::kDisk;
    std::vector<BlockLocation> blocks;
  };

  /// Every file in the namespace with its tier and block locations, in
  /// deterministic sorted tree-walk order — the iteration surface for the
  /// integrity scrubber and the chaos corrupt-block victim pick (unlike the
  /// flattened remove() output, per-file path/block alignment is kept).
  std::vector<FileInfo> snapshot_files() const;

  /// Sum of file sizes across the namespace: the logical bytes stored,
  /// independent of replication factor or parity overhead.
  std::uint64_t total_logical_bytes() const;

  /// Node-loss repair (HDFS block management): removes `node` from every
  /// file's replica lists, then restores each under-replicated block toward
  /// `target_replication` by calling `replicate(loc, cell)`, which copies
  /// the payload from a surviving replica of `loc` (cell == -1, plain
  /// replication) or reconstructs stripe cell `cell` from k survivors
  /// (erasure-coded blocks) onto a new node and returns that node's id (or
  /// -1 when no eligible node is left — the block stays degraded). For EC
  /// blocks the dead node's slots are set to -1 (slot order is cell
  /// identity) and every hole is rebuilt while >= k cells survive; with
  /// fewer survivors the stripe is lost. Blocks whose last replica died
  /// remain registered so reads surface UnrecoverableBlock instead of "no
  /// such file". Runs atomically under the namespace lock.
  BlockRepairSummary repair_after_node_loss(
      int node, int target_replication,
      const std::function<int(const BlockLocation&, int cell)>& replicate);

 private:
  struct Inode {
    bool is_dir = true;
    std::map<std::string, std::unique_ptr<Inode>> children;  // dirs only
    std::vector<BlockLocation> blocks;                       // files only
    std::uint64_t size = 0;
    StorageTier tier = StorageTier::kDisk;                   // files only
  };

  Inode* find(const std::string& path) const;
  Inode* find_or_create_dir(const std::string& path);
  static void repair_inode(
      Inode* inode, const std::string& path, int node, int target_replication,
      const std::function<int(const BlockLocation&, int cell)>& replicate,
      BlockRepairSummary* out);
  static std::uint64_t sum_file_bytes(const Inode& node);
  static void collect_files(const Inode& node, const std::string& path,
                            std::vector<BlockLocation>* blocks,
                            std::vector<std::string>* paths);
  static void snapshot_inode(const Inode& node, const std::string& path,
                             std::vector<FileInfo>* out);
  static std::size_t count_files(const Inode& node);

  mutable std::mutex mu_;
  std::unique_ptr<Inode> root_;
};

}  // namespace mri::dfs
