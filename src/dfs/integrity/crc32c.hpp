// CRC32C (Castagnoli) — the block-checksum polynomial used by HDFS, ext4
// and iSCSI. Software table-driven implementation: the simulator checksums
// simulated payloads, so portability beats SSE4.2 throughput here; the
// *simulated* cost of checksumming is charged separately through
// CostModel::checksum_seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mri::dfs {

/// CRC32C of `data`, continuing from `crc` (pass the previous return value
/// to checksum a block in chunks; 0 starts a fresh checksum). Known-answer:
/// crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t crc = 0);

}  // namespace mri::dfs
