// Per-block checksum registry and corruption bookkeeping.
//
// The DFS keeps one payload object per block and shares it across replicas
// (replication is metadata, not copies), so a corrupted *replica* cannot be
// modelled by mutating bytes — it is a per-(block, node) mark. The store
// maps every committed block to its expected per-cell CRC32C values (one
// cell for replicated blocks, k+m cells for an erasure-coded stripe) and
// tracks which (block, node) copies have been silently corrupted by chaos.
//
// A read that lands on a marked copy *succeeds* — that is the point of
// silent corruption. With verification off the reader receives a
// deterministic bit-flipped view of the payload (corrupt_copy); with
// verification on the Dfs recomputes the CRC, detects the mismatch, falls
// through to a healthy source and read-repairs the bad copy (clearing the
// mark models rewriting good bytes over the quarantined replica).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dfs/block.hpp"

namespace mri::dfs {

/// A silently corrupted (block, node) copy: when it happened and the RNG
/// salt that makes the bit-flip pattern deterministic per event.
struct CorruptMark {
  std::uint64_t salt = 0;
  double at = 0.0;
};

/// One repair action, for the report's integrity lane. kind is "copy"
/// (re-materialized from a healthy replica), "ec" (decoded from k
/// survivors) or "lineage" (memory-tier partition recomputed). The victim
/// is identified by path + cell, not block id — ids follow commit order,
/// which races across task threads, and repair events must stay
/// bit-identical between same-seed runs.
struct IntegrityRepairEvent {
  double at = 0.0;
  int node = -1;
  std::string path;
  int cell = 0;
  std::uint64_t bytes = 0;
  const char* kind = "copy";
  bool by_scrubber = false;
};

/// One background scrubber pass over the namespace.
struct ScrubPassEvent {
  double at = 0.0;
  double seconds = 0.0;
  std::uint64_t bytes_scanned = 0;
  std::int64_t cells_verified = 0;
  std::int64_t cells_repaired = 0;
};

/// Integrity counters accumulated by the Dfs (write-path checksumming,
/// verify-on-read, read-repair, scrubbing). All-zero on a clean run with
/// verification off, which keeps pre-integrity reports bit-identical.
struct IntegrityStats {
  std::int64_t cells_checksummed = 0;   // cells CRC'd on the write path
  std::int64_t cells_verified = 0;      // cells CRC-checked on read/scrub
  std::uint64_t bytes_verified = 0;
  std::int64_t corruptions_injected = 0;
  std::int64_t corruptions_detected = 0;
  std::int64_t cells_repaired_copy = 0;
  std::int64_t cells_repaired_ec = 0;
  std::int64_t cells_repaired_lineage = 0;
  std::int64_t cells_quarantined = 0;
  std::int64_t scrub_passes = 0;
  std::uint64_t scrub_bytes_scanned = 0;
  double scrub_seconds = 0.0;
  std::vector<IntegrityRepairEvent> repairs;
  std::vector<ScrubPassEvent> scrubs;
};

/// Thread-safe map of block -> expected cell CRCs plus corrupt-copy marks.
class ChecksumStore {
 public:
  /// Records the expected CRCs for a freshly committed block (replaces any
  /// previous entry — overwrite commits new payloads under the same path).
  void record(BlockId block, std::vector<std::uint32_t> cell_crcs);

  /// Drops a removed block's checksums and any marks on its copies.
  void forget(BlockId block);

  /// Expected CRC of `cell` (0 for replicated blocks), or nullopt when the
  /// block was committed before checksumming was enabled.
  std::optional<std::uint32_t> expected(BlockId block, int cell) const;

  /// Marks the copy of `block` on `node` as silently corrupted. Returns
  /// false when the copy was already marked (first corruption wins: the
  /// copy is already bad and the original salt keeps the bit pattern
  /// stable, so a repeat hit changes nothing observable).
  bool mark_corrupt(BlockId block, int node, std::uint64_t salt, double at);

  /// The corruption mark on (block, node), if any.
  std::optional<CorruptMark> corrupt_mark(BlockId block, int node) const;

  /// Clears a mark after repair. Returns false if none was present.
  bool clear_corrupt(BlockId block, int node);

  /// All currently marked copies, in deterministic (block, node) order.
  std::vector<std::pair<BlockId, int>> corrupt_copies() const;

 private:
  mutable std::mutex mu_;
  std::map<BlockId, std::vector<std::uint32_t>> crcs_;
  std::map<std::pair<BlockId, int>, CorruptMark> marks_;
};

/// A deterministic silently-corrupted view of `data`: flips one bit (XOR
/// 0x08) in each of eight salt-chosen bytes. Single-bit flips in the
/// mantissa/low-exponent region of finite doubles stay finite, so corrupted
/// matrix tiles poison the numerics (large residual) without manufacturing
/// NaN/Inf. Guaranteed to differ from the original even if positions
/// collide.
BlockData corrupt_copy(const BlockData& data, std::uint64_t salt);

}  // namespace mri::dfs
