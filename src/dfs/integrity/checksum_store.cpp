#include "dfs/integrity/checksum_store.hpp"

#include <limits>
#include <memory>

#include "common/random.hpp"

namespace mri::dfs {

void ChecksumStore::record(BlockId block, std::vector<std::uint32_t> cell_crcs) {
  std::lock_guard<std::mutex> lock(mu_);
  crcs_[block] = std::move(cell_crcs);
}

void ChecksumStore::forget(BlockId block) {
  std::lock_guard<std::mutex> lock(mu_);
  crcs_.erase(block);
  auto it = marks_.lower_bound({block, std::numeric_limits<int>::min()});
  while (it != marks_.end() && it->first.first == block) it = marks_.erase(it);
}

std::optional<std::uint32_t> ChecksumStore::expected(BlockId block,
                                                     int cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = crcs_.find(block);
  if (it == crcs_.end()) return std::nullopt;
  if (cell < 0 || static_cast<std::size_t>(cell) >= it->second.size()) {
    return std::nullopt;
  }
  return it->second[static_cast<std::size_t>(cell)];
}

bool ChecksumStore::mark_corrupt(BlockId block, int node, std::uint64_t salt,
                                 double at) {
  std::lock_guard<std::mutex> lock(mu_);
  return marks_
      .emplace(std::make_pair(block, node), CorruptMark{salt, at})
      .second;
}

std::optional<CorruptMark> ChecksumStore::corrupt_mark(BlockId block,
                                                       int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = marks_.find({block, node});
  if (it == marks_.end()) return std::nullopt;
  return it->second;
}

bool ChecksumStore::clear_corrupt(BlockId block, int node) {
  std::lock_guard<std::mutex> lock(mu_);
  return marks_.erase({block, node}) > 0;
}

std::vector<std::pair<BlockId, int>> ChecksumStore::corrupt_copies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<BlockId, int>> out;
  out.reserve(marks_.size());
  for (const auto& [key, mark] : marks_) out.push_back(key);
  return out;
}

BlockData corrupt_copy(const BlockData& data, std::uint64_t salt) {
  auto flipped = std::make_shared<std::vector<std::byte>>(*data);
  if (!flipped->empty()) {
    Xoshiro256 rng(salt);
    for (int i = 0; i < 8; ++i) {
      const auto pos =
          static_cast<std::size_t>(rng.next_below(flipped->size()));
      (*flipped)[pos] ^= std::byte{0x08};
    }
    // Positions can collide and cancel pairwise; force at least one flip.
    if (*flipped == *data) (*flipped)[0] ^= std::byte{0x08};
  }
  return flipped;
}

}  // namespace mri::dfs
