#include "dfs/integrity/crc32c.hpp"

#include <array>

namespace mri::dfs {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (c >> 1) ^ kPoly : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t crc) {
  std::uint32_t c = ~crc;
  for (std::byte b : data) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace mri::dfs
