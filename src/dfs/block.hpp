// DFS data blocks.
//
// A file is a sequence of blocks; each block's payload is stored once and
// shared (shared_ptr) between its replicas — replication is placement
// metadata plus accounted network/disk cost, not a physical copy, which keeps
// the simulator's memory footprint equal to the logical data size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mri::dfs {

using BlockId = std::uint64_t;
using BlockData = std::shared_ptr<const std::vector<std::byte>>;

/// Where a file's payload lives. kMemory models the §8 Spark-style
/// extension: a single unreplicated in-memory copy (lineage, not
/// replication, provides fault tolerance), charged at memory bandwidth on
/// write. Tracked per file by the namenode; spill flips a file back to
/// kDisk without moving its payload.
enum class StorageTier { kDisk, kMemory };

struct BlockLocation {
  BlockId id = 0;
  std::uint64_t length = 0;
  /// Datanode indices holding a replica (first = primary). For an
  /// erasure-coded block (one block = one RS stripe) the vector instead has
  /// exactly ec_k + ec_m entries: slot i names the node holding stripe cell
  /// i (first ec_k data cells, then ec_m parity cells). Slot position IS the
  /// cell identity, so a lost cell is marked with -1, never erased.
  std::vector<int> replicas;
  /// RS stripe shape; 0,0 means a plain replicated block.
  int ec_k = 0;
  int ec_m = 0;

  bool is_ec() const { return ec_k > 0; }
  /// Per-cell payload length: the block payload split into ec_k equal cells
  /// (last one zero-padded to this size).
  std::uint64_t cell_bytes() const {
    return is_ec() ? (length + static_cast<std::uint64_t>(ec_k) - 1) /
                         static_cast<std::uint64_t>(ec_k)
                   : length;
  }
};

}  // namespace mri::dfs
