// DFS data blocks.
//
// A file is a sequence of blocks; each block's payload is stored once and
// shared (shared_ptr) between its replicas — replication is placement
// metadata plus accounted network/disk cost, not a physical copy, which keeps
// the simulator's memory footprint equal to the logical data size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mri::dfs {

using BlockId = std::uint64_t;
using BlockData = std::shared_ptr<const std::vector<std::byte>>;

struct BlockLocation {
  BlockId id = 0;
  std::uint64_t length = 0;
  /// Datanode indices holding a replica (first = primary).
  std::vector<int> replicas;
};

}  // namespace mri::dfs
