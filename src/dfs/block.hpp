// DFS data blocks.
//
// A file is a sequence of blocks; each block's payload is stored once and
// shared (shared_ptr) between its replicas — replication is placement
// metadata plus accounted network/disk cost, not a physical copy, which keeps
// the simulator's memory footprint equal to the logical data size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mri::dfs {

using BlockId = std::uint64_t;
using BlockData = std::shared_ptr<const std::vector<std::byte>>;

/// Where a file's payload lives. kMemory models the §8 Spark-style
/// extension: a single unreplicated in-memory copy (lineage, not
/// replication, provides fault tolerance), charged at memory bandwidth on
/// write. Tracked per file by the namenode; spill flips a file back to
/// kDisk without moving its payload.
enum class StorageTier { kDisk, kMemory };

struct BlockLocation {
  BlockId id = 0;
  std::uint64_t length = 0;
  /// Datanode indices holding a replica (first = primary).
  std::vector<int> replicas;
};

}  // namespace mri::dfs
