// The distributed-filesystem facade used by every MapReduce task.
//
// Semantics follow HDFS as the paper uses it:
//  * files are write-once (a writer buffers and commits atomically on close);
//  * every read is accounted as a remote read (bytes_read and
//    bytes_transferred), matching the paper's observation that "the amount of
//    data read from HDFS is the same as the amount of data transferred
//    between compute nodes";
//  * every write is accounted as a local write plus (replication-1) pipelined
//    network copies (bytes_replicated / bytes_transferred).
//
// Per-task accounting: pass an IoStats* when opening/creating; the facade
// adds the same amounts to the global MetricsRegistry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "dfs/block.hpp"
#include "dfs/datanode.hpp"
#include "dfs/namenode.hpp"
#include "net/topology.hpp"
#include "sim/chaos.hpp"
#include "sim/metrics.hpp"

namespace mri::dfs {

/// Per-thread transfer recording for the flow-level network model. While a
/// ScopedTransferLog is installed on a thread (the MapReduce runtime wraps
/// each task body in one), every DFS read and write the thread performs
/// appends the network transfers it implies — endpoints and bytes — so the
/// scheduler can charge them through the flow simulator. Recording only
/// happens when the Dfs has a racked topology; otherwise logs stay empty
/// and the scalar accounting is untouched.
struct TransferLog {
  int node = -1;  // cluster node the logging task is pinned to
  std::vector<net::Transfer> transfers;
};

/// RAII installer of the calling thread's TransferLog; restores the
/// previous log on destruction, so nesting is safe.
class ScopedTransferLog {
 public:
  explicit ScopedTransferLog(int node);
  ~ScopedTransferLog();
  ScopedTransferLog(const ScopedTransferLog&) = delete;
  ScopedTransferLog& operator=(const ScopedTransferLog&) = delete;

  TransferLog& log() { return log_; }

 private:
  TransferLog log_;
  TransferLog* previous_;
};

/// The calling thread's installed TransferLog, or null when none is active.
TransferLog* current_transfer_log();

struct DfsConfig {
  std::size_t block_size = 64ull << 20;  // 64 MB, the Hadoop 1.x default
  int replication = 3;                   // the paper uses the HDFS default
};

/// Where a file's payload lives. kMemory models the §8 Spark-style
/// extension: a single unreplicated in-memory copy (lineage, not
/// replication, provides fault tolerance), charged at memory bandwidth on
/// write; reads are still remote fetches.
enum class StorageTier { kDisk, kMemory };

class Dfs {
 public:
  Dfs(int num_datanodes, DfsConfig config = {},
      MetricsRegistry* metrics = nullptr);

  const DfsConfig& config() const { return config_; }
  int num_datanodes() const { return static_cast<int>(datanodes_.size()); }

  /// Attaches a network topology. A racked topology with rack-aware
  /// placement switches block placement to the HDFS default policy (first
  /// replica on the writer's node, second rack-local, third off-rack), makes
  /// reads prefer the closest live replica (node-local, then rack-local),
  /// and routes re-replication repair traffic through the flow simulator.
  /// Null or a flat topology keeps the original hash placement bit-
  /// identically. Hand the same topology to the Cluster so the scheduler's
  /// flow charging sees the endpoints recorded here.
  void set_topology(std::shared_ptr<const net::Topology> topology);
  const std::shared_ptr<const net::Topology>& topology() const {
    return topology_;
  }

  // -- namespace ----------------------------------------------------------
  void mkdirs(const std::string& path) { namenode_.mkdirs(path); }
  bool exists(const std::string& path) const { return namenode_.exists(path); }
  bool is_directory(const std::string& path) const {
    return namenode_.is_directory(path);
  }
  bool is_file(const std::string& path) const { return namenode_.is_file(path); }
  std::vector<std::string> list(const std::string& dir) const {
    return namenode_.list(dir);
  }
  std::uint64_t file_size(const std::string& path) const {
    return namenode_.file_size(path);
  }
  void remove(const std::string& path, bool recursive = false);
  void rename(const std::string& from, const std::string& to) {
    namenode_.rename(from, to);
  }
  std::size_t file_count() const { return namenode_.file_count(); }
  /// The namenode's block map for one file (replica placement included) —
  /// read-only introspection for tests and tooling, e.g. verifying that
  /// re-replication restored the target replica count after a node death.
  std::vector<BlockLocation> file_blocks(const std::string& path) const {
    return namenode_.file_blocks(path);
  }

  // -- data ---------------------------------------------------------------

  /// Write-once streaming writer; the file appears in the namespace when
  /// close() (or the destructor) runs.
  class Writer {
   public:
    ~Writer();
    Writer(Writer&&) noexcept;
    Writer& operator=(Writer&&) = delete;
    Writer(const Writer&) = delete;

    void write(std::span<const std::byte> data);
    void write_doubles(std::span<const double> values);
    void write_u64(std::uint64_t value);
    void write_text(std::string_view text);
    void close();

   private:
    friend class Dfs;
    Writer(Dfs* fs, std::string path, bool overwrite, IoStats* account,
           StorageTier tier);
    Dfs* fs_;
    std::string path_;
    bool overwrite_;
    IoStats* account_;
    StorageTier tier_;
    std::vector<std::byte> buffer_;
    bool closed_ = false;
  };

  /// Sequential reader over a committed file.
  class Reader {
   public:
    std::uint64_t size() const { return size_; }
    std::uint64_t remaining() const { return size_ - position_; }

    /// Reads up to dst.size() bytes; returns the number read (0 at EOF).
    std::size_t read(std::span<std::byte> dst);
    void read_exact(std::span<std::byte> dst);
    double read_double();
    std::uint64_t read_u64();
    void read_doubles(std::span<double> dst);
    std::vector<double> read_all_doubles();
    std::string read_all_text();

    /// Skips forward without charging read bytes (seek, not I/O).
    void seek(std::uint64_t offset);

   private:
    friend class Dfs;
    Reader(std::vector<BlockData> blocks, std::vector<int> sources,
           std::uint64_t size, IoStats* account, MetricsRegistry* metrics,
           bool record_transfers);
    void account(std::uint64_t bytes);

    std::vector<BlockData> blocks_;
    /// Datanode each block was read from (parallel to blocks_); feeds the
    /// per-thread TransferLog when the topology is racked.
    std::vector<int> sources_;
    std::uint64_t size_;
    std::uint64_t position_ = 0;
    std::size_t block_index_ = 0;
    std::uint64_t block_offset_ = 0;
    IoStats* account_;
    MetricsRegistry* metrics_;
    bool record_transfers_;
  };

  Writer create(const std::string& path, IoStats* account = nullptr,
                bool overwrite = false, StorageTier tier = StorageTier::kDisk);
  Reader open(const std::string& path, IoStats* account = nullptr) const;

  // -- convenience --------------------------------------------------------
  void write_doubles(const std::string& path, std::span<const double> values,
                     IoStats* account = nullptr);
  std::vector<double> read_doubles(const std::string& path,
                                   IoStats* account = nullptr) const;
  void write_text(const std::string& path, std::string_view text,
                  IoStats* account = nullptr);
  std::string read_text(const std::string& path,
                        IoStats* account = nullptr) const;

  /// Physical bytes resident across all datanodes (includes replication —
  /// replicas share payload in memory but are accounted at full size here).
  std::uint64_t physical_bytes_stored() const;

  // -- failures (chaos engine wiring) --------------------------------------

  /// Marks a datanode dead, HDFS-style: its replicas are dropped, every
  /// under-replicated live block is re-replicated onto surviving nodes
  /// (smallest-id eligible node first; deterministic), and blocks whose
  /// last replica died become unrecoverable — reads of their files throw
  /// UnrecoverableBlock instead of hanging or returning zeros. New writes
  /// place replicas on live nodes only. Idempotent per node. Returns the
  /// re-replication totals; the same traffic is charged to the
  /// MetricsRegistry as background bytes_replicated.
  NodeKillOutcome kill_datanode(int node);
  bool datanode_dead(int node) const;
  int live_datanodes() const;

  /// Arms `count` failing reads on `node`: each read that would touch the
  /// node instead fails over to the next live replica (counted in the
  /// "dfs_read_errors_survived" metric), or throws a transient DfsError
  /// when the node held the only live copy.
  void inject_read_error(int node, int count = 1);

  /// Installs this filesystem as `chaos`'s kill and read-error handler and
  /// hands it `network_bandwidth` for re-replication-seconds accounting.
  /// The filesystem must outlive the engine's last advance_to().
  void bind_chaos(ChaosEngine* chaos, double network_bandwidth = 0.0);

 private:
  void commit(const std::string& path, std::vector<std::byte> buffer,
              bool overwrite, IoStats* account, StorageTier tier);

  /// Picks the replica a read of `loc` uses: the first live replica whose
  /// read-error budget is exhausted, trying closest replicas first under a
  /// rack-aware topology. Throws UnrecoverableBlock when every replica is
  /// dead, DfsError when only injected-error copies remain. `source` (may
  /// be null) receives the chosen datanode.
  BlockData read_replica(const BlockLocation& loc, const std::string& path,
                         int* source) const;

  /// True when the attached topology is racked and sized for this DFS —
  /// the gate for transfer recording and rack-aware behaviour.
  bool racked_topology() const;

  DfsConfig config_;
  std::shared_ptr<const net::Topology> topology_;
  MetricsRegistry* metrics_;
  NameNode namenode_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::atomic<BlockId> next_block_id_{1};
  mutable std::mutex chaos_mu_;  // guards dead_ and read_errors_
  std::vector<bool> dead_;
  mutable std::vector<int> read_errors_;  // per-node armed failing reads
};

}  // namespace mri::dfs
