// The distributed-filesystem facade used by every MapReduce task.
//
// Semantics follow HDFS as the paper uses it:
//  * files are write-once (a writer buffers and commits atomically on close);
//  * every read is accounted as a remote read (bytes_read and
//    bytes_transferred), matching the paper's observation that "the amount of
//    data read from HDFS is the same as the amount of data transferred
//    between compute nodes";
//  * every write is accounted as a local write plus (replication-1) pipelined
//    network copies (bytes_replicated / bytes_transferred).
//
// Per-task accounting: pass an IoStats* when opening/creating; the facade
// adds the same amounts to the global MetricsRegistry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include <map>
#include <set>

#include "dfs/block.hpp"
#include "dfs/datanode.hpp"
#include "dfs/ec/policy.hpp"
#include "dfs/integrity/checksum_store.hpp"
#include "dfs/namenode.hpp"
#include "net/topology.hpp"
#include "sim/chaos.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"

namespace mri::dfs {

/// Per-thread transfer recording for the flow-level network model. While a
/// ScopedTransferLog is installed on a thread (the MapReduce runtime wraps
/// each task body in one), every DFS read and write the thread performs
/// appends the network transfers it implies — endpoints and bytes — so the
/// scheduler can charge them through the flow simulator. Recording only
/// happens when the Dfs has a racked topology; otherwise logs stay empty
/// and the scalar accounting is untouched.
struct TransferLog {
  int node = -1;  // cluster node the logging task is pinned to
  std::vector<net::Transfer> transfers;
  /// Paths this task opened, in open order. Recorded only while a
  /// TierListener is installed (the SPIN engine uses them as the lineage
  /// read-set of the producing task). Per-thread, so recording is
  /// deterministic regardless of task interleaving.
  std::vector<std::string> read_paths;
};

/// RAII installer of the calling thread's TransferLog; restores the
/// previous log on destruction, so nesting is safe.
class ScopedTransferLog {
 public:
  explicit ScopedTransferLog(int node);
  ~ScopedTransferLog();
  ScopedTransferLog(const ScopedTransferLog&) = delete;
  ScopedTransferLog& operator=(const ScopedTransferLog&) = delete;

  TransferLog& log() { return log_; }

 private:
  TransferLog log_;
  TransferLog* previous_;
};

/// The calling thread's installed TransferLog, or null when none is active.
TransferLog* current_transfer_log();

struct DfsConfig {
  std::size_t block_size = 64ull << 20;  // 64 MB, the Hadoop 1.x default
  int replication = 3;                   // the paper uses the HDFS default
  /// Storage policy for newly committed disk-tier files. Memory-tier files
  /// (single copy, lineage-recovered) and spilled files are never striped.
  /// The default, kReplicate, keeps every pre-EC run bit-identical.
  StoragePolicy storage_policy = StoragePolicy::kReplicate;
  /// Stripe shape when storage_policy == kErasureCoded.
  EcParams ec;
  /// Namenode hot-block cache capacity in bytes; 0 disables the cache (the
  /// default — cache-off runs are bit-identical to pre-cache builds). Files
  /// whose basename starts with hot_file_prefix are cache candidates;
  /// residency is a greedy sweep over candidate paths in sorted order, so
  /// it is independent of commit interleaving. Resident files are served
  /// from the namenode's copy: reads cost the same as a remote read but
  /// survive lost cells/replicas and never pay the degraded-decode path —
  /// built for the repeatedly re-read transposed-U factors.
  std::uint64_t hot_cache_bytes = 0;
  std::string hot_file_prefix = "ut";
  /// End-to-end data integrity: compute per-cell CRC32C checksums on the
  /// write path (charged as checksum CPU), verify them on every read, and
  /// read-repair copies that fail verification. Off by default — an off run
  /// does no checksum work at all, keeping pre-integrity reports
  /// bit-identical, and silently serves whatever bytes a corrupted copy
  /// holds (the failure mode this subsystem exists to close).
  bool verify_checksums = false;
  /// Background scrubber period in simulated seconds; 0 disables. Each
  /// multiple of the interval crossed by a chaos advance (job/phase
  /// boundary) triggers one pass that re-verifies every live block cell at
  /// disk bandwidth and proactively repairs corrupt copies. Requires
  /// verify_checksums.
  double scrub_interval_seconds = 0.0;
};

/// One erasure-coded reconstruction burst: a node death that rebuilt lost
/// stripe cells from k survivors (feeds the run report's storage lane).
struct StorageReconstructionEvent {
  double at = 0.0;  // simulated time of the node kill
  int node = -1;    // the node that died
  int cells = 0;    // stripe cells rebuilt
  std::uint64_t bytes = 0;   // bytes of rebuilt cell payload
  double seconds = 0.0;      // simulated duration of the whole repair
};

/// Namenode hot-block cache occupancy and hit totals.
struct HotCacheStats {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t resident_bytes = 0;
  int resident_files = 0;
  std::uint64_t hits = 0;
  std::uint64_t hit_bytes = 0;
};

/// Observer of memory-tier lifecycle events, implemented by the engine layer
/// (BlockCache + LineageGraph) so the DFS stays ignorant of caching policy.
/// on_commit fires after a kMemory file commits (never for kDisk), outside
/// any DFS lock; `payload` views the committed bytes and is only valid for
/// the duration of the call; `task_io` is the writing task's accounting
/// (already including this write) or null. on_open fires for every open
/// while a listener is installed; on_remove per removed file path.
class TierListener {
 public:
  virtual ~TierListener() = default;
  virtual void on_commit(const std::string& path, StorageTier tier,
                         std::uint64_t size, int node,
                         std::span<const std::byte> payload,
                         const IoStats* task_io) = 0;
  virtual void on_open(const std::string& path, StorageTier tier,
                       std::uint64_t size) = 0;
  virtual void on_remove(const std::string& path) = 0;
  /// A memory-tier partition of `path` failed checksum verification at
  /// simulated time `at`. The engine recomputes it from lineage (SPIN-style
  /// — memory-tier files have one copy and no parity, so recomputation IS
  /// the repair path) and returns the simulated seconds that recompute
  /// cost; the DFS then clears the corruption. Default: no engine, repair
  /// is free in time and the pristine in-sim payload simply stops being
  /// served corrupted.
  virtual double on_corrupt(const std::string& path, double at) {
    (void)path;
    (void)at;
    return 0.0;
  }
};

class Dfs {
 public:
  Dfs(int num_datanodes, DfsConfig config = {},
      MetricsRegistry* metrics = nullptr);

  const DfsConfig& config() const { return config_; }
  int num_datanodes() const { return static_cast<int>(datanodes_.size()); }

  /// Attaches a network topology. A racked topology with rack-aware
  /// placement switches block placement to the HDFS default policy (first
  /// replica on the writer's node, second rack-local, third off-rack), makes
  /// reads prefer the closest live replica (node-local, then rack-local),
  /// and routes re-replication repair traffic through the flow simulator.
  /// Null or a flat topology keeps the original hash placement bit-
  /// identically. Hand the same topology to the Cluster so the scheduler's
  /// flow charging sees the endpoints recorded here.
  void set_topology(std::shared_ptr<const net::Topology> topology);
  const std::shared_ptr<const net::Topology>& topology() const {
    return topology_;
  }

  // -- namespace ----------------------------------------------------------
  void mkdirs(const std::string& path) { namenode_.mkdirs(path); }
  bool exists(const std::string& path) const { return namenode_.exists(path); }
  bool is_directory(const std::string& path) const {
    return namenode_.is_directory(path);
  }
  bool is_file(const std::string& path) const { return namenode_.is_file(path); }
  std::vector<std::string> list(const std::string& dir) const {
    return namenode_.list(dir);
  }
  std::uint64_t file_size(const std::string& path) const {
    return namenode_.file_size(path);
  }
  void remove(const std::string& path, bool recursive = false);
  void rename(const std::string& from, const std::string& to) {
    namenode_.rename(from, to);
  }
  std::size_t file_count() const { return namenode_.file_count(); }
  /// The namenode's block map for one file (replica placement included) —
  /// read-only introspection for tests and tooling, e.g. verifying that
  /// re-replication restored the target replica count after a node death.
  std::vector<BlockLocation> file_blocks(const std::string& path) const {
    return namenode_.file_blocks(path);
  }

  // -- data ---------------------------------------------------------------

  /// Write-once streaming writer; the file appears in the namespace when
  /// close() (or the destructor) runs.
  class Writer {
   public:
    ~Writer();
    Writer(Writer&&) noexcept;
    Writer& operator=(Writer&&) = delete;
    Writer(const Writer&) = delete;

    void write(std::span<const std::byte> data);
    void write_doubles(std::span<const double> values);
    void write_u64(std::uint64_t value);
    void write_text(std::string_view text);
    void close();

   private:
    friend class Dfs;
    Writer(Dfs* fs, std::string path, bool overwrite, IoStats* account,
           StorageTier tier);
    Dfs* fs_;
    std::string path_;
    bool overwrite_;
    IoStats* account_;
    StorageTier tier_;
    std::vector<std::byte> buffer_;
    bool closed_ = false;
  };

  /// Sequential reader over a committed file.
  class Reader {
   public:
    std::uint64_t size() const { return size_; }
    std::uint64_t remaining() const { return size_ - position_; }

    /// Reads up to dst.size() bytes; returns the number read (0 at EOF).
    std::size_t read(std::span<std::byte> dst);
    void read_exact(std::span<std::byte> dst);
    double read_double();
    std::uint64_t read_u64();
    void read_doubles(std::span<double> dst);
    std::vector<double> read_all_doubles();
    std::string read_all_text();

    /// Skips forward without charging read bytes (seek, not I/O).
    void seek(std::uint64_t offset);

   private:
    friend class Dfs;
    Reader(std::vector<BlockData> blocks, std::vector<int> sources,
           std::vector<bool> mem_local, std::uint64_t size, IoStats* account,
           MetricsRegistry* metrics, bool record_transfers);
    void account(std::uint64_t bytes, std::uint64_t memory_bytes);

    std::vector<BlockData> blocks_;
    /// Datanode each block was read from (parallel to blocks_); feeds the
    /// per-thread TransferLog when the topology is racked.
    std::vector<int> sources_;
    /// Per-block: true when the block is memory-tier AND resident on the
    /// reading task's own node — those chunks stream at memory bandwidth
    /// (bytes_read_memory) instead of the remote-read path.
    std::vector<bool> mem_local_;
    std::uint64_t size_;
    std::uint64_t position_ = 0;
    std::size_t block_index_ = 0;
    std::uint64_t block_offset_ = 0;
    IoStats* account_;
    MetricsRegistry* metrics_;
    bool record_transfers_;
  };

  Writer create(const std::string& path, IoStats* account = nullptr,
                bool overwrite = false, StorageTier tier = StorageTier::kDisk);
  Reader open(const std::string& path, IoStats* account = nullptr) const;

  /// The tier a committed file lives on.
  StorageTier file_tier(const std::string& path) const {
    return namenode_.file_tier(path);
  }

  /// Demotes a memory-tier file to disk under cache pressure. The single
  /// replica stays on its datanode (now modelled as that node's local disk);
  /// the payload bytes are charged as bytes_spilled to `account` (may be
  /// null) and the global metrics. Requires the file to be memory-tier.
  void spill_to_disk(const std::string& path, IoStats* account = nullptr);

  /// Recommits a file the engine recomputed from lineage after a node loss:
  /// replaces whatever (possibly empty-replica) block skeleton remains,
  /// without charging write IoStats and without notifying the TierListener
  /// (the engine drives this and does its own accounting). Placement uses
  /// the normal deterministic policy over live nodes.
  void restore_file(const std::string& path, std::span<const std::byte> payload,
                    StorageTier tier);

  /// Installs (or clears, with null) the engine-layer observer of memory-
  /// tier commits, opens and removes. The listener must outlive every DFS
  /// operation that can fire it.
  void set_tier_listener(TierListener* listener) {
    tier_listener_.store(listener, std::memory_order_release);
  }

  // -- convenience --------------------------------------------------------
  void write_doubles(const std::string& path, std::span<const double> values,
                     IoStats* account = nullptr);
  std::vector<double> read_doubles(const std::string& path,
                                   IoStats* account = nullptr) const;
  void write_text(const std::string& path, std::string_view text,
                  IoStats* account = nullptr);
  std::string read_text(const std::string& path,
                        IoStats* account = nullptr) const;

  /// Physical bytes resident across all datanodes (includes replication and
  /// parity — replicas share payload in memory but are accounted at full
  /// size here; EC files store k data + m parity cells).
  std::uint64_t physical_bytes_stored() const;

  /// Logical bytes registered in the namespace (sum of file sizes) —
  /// independent of replication factor and parity overhead. The ratio
  /// physical_bytes_stored() / logical_bytes_stored() is the storage
  /// overhead the run report surfaces.
  std::uint64_t logical_bytes_stored() const {
    return namenode_.total_logical_bytes();
  }

  /// Erasure-coded reconstruction bursts applied so far (one per node kill
  /// that rebuilt at least one stripe cell), in kill order.
  std::vector<StorageReconstructionEvent> storage_events() const;

  /// Hot-block cache occupancy and hit totals (all zero when disabled).
  HotCacheStats hot_cache_stats() const;

  // -- failures (chaos engine wiring) --------------------------------------

  /// Marks a datanode dead, HDFS-style: its replicas are dropped, every
  /// under-replicated live block is re-replicated onto surviving nodes
  /// (smallest-id eligible node first; deterministic), and blocks whose
  /// last replica died become unrecoverable — reads of their files throw
  /// UnrecoverableBlock instead of hanging or returning zeros. For
  /// erasure-coded files, reconstruction replaces re-replication: each lost
  /// stripe cell is decoded from k survivors onto a new node (k-cell fan-in
  /// traffic, flow-simulated under a racked topology, plus decode CPU via
  /// the bound CostModel), and a stripe is unrecoverable only when fewer
  /// than k cells survive. New writes place replicas on live nodes only.
  /// Idempotent per node. Returns the combined repair totals; `at` is the
  /// simulated kill time stamped on the storage reconstruction event.
  NodeKillOutcome kill_datanode(int node, double at = 0.0);
  bool datanode_dead(int node) const;
  int live_datanodes() const;

  /// Arms `count` failing reads on `node`: each read that would touch the
  /// node instead fails over to the next live replica (counted in the
  /// "dfs_read_errors_survived" metric), or throws a transient DfsError
  /// when the node held the only live copy.
  void inject_read_error(int node, int count = 1);

  /// Silently corrupts one block copy on `node` at simulated time `at`
  /// (kCorruptBlock semantics: reads of the copy *succeed* with wrong
  /// bytes). salt == 0 picks the node's largest block (ties: smallest id) —
  /// explicit --corrupt-block events target matrix data, not tiny metadata
  /// files; a nonzero salt (background bit-rot) picks among the node's
  /// copies deterministically and seeds the bit-flip pattern. A hot-cached
  /// copy of the same block rots with it (the cache holds a copy of the
  /// corrupted replica). No-op when the node is dead or holds nothing.
  void corrupt_block(int node, double at, std::uint64_t salt = 0);

  /// Runs background scrubber passes for every multiple of
  /// scrub_interval_seconds crossed in (last scrub, now]. Each pass walks
  /// every live block cell, re-verifies its checksum (scan time = slowest
  /// node's bytes at disk bandwidth + checksum CPU via the bound
  /// CostModel), and repairs corrupt copies proactively — replica copy for
  /// replicated blocks, decode fan-in (flow-simulated under a racked
  /// topology) for EC cells, lineage recomputation via the TierListener for
  /// memory-tier partitions. Driver-thread only (invoked from
  /// ChaosEngine::advance_to at job/phase boundaries). No-op unless
  /// verify_checksums and a positive interval are configured.
  void scrub_to(double now);

  /// Integrity counters and event lanes (all zero when verification is
  /// off and no corruption was injected).
  IntegrityStats integrity_stats() const;

  /// Installs this filesystem as `chaos`'s kill and read-error handler and
  /// hands it `network_bandwidth` for re-replication-seconds accounting.
  /// `cost_model` (may be null; must outlive the Dfs if given) prices the
  /// decode CPU of erasure-coded reconstruction into the repair seconds.
  /// The filesystem must outlive the engine's last advance_to().
  void bind_chaos(ChaosEngine* chaos, double network_bandwidth = 0.0,
                  const CostModel* cost_model = nullptr);

 private:
  void commit(const std::string& path, std::vector<std::byte> buffer,
              bool overwrite, IoStats* account, StorageTier tier,
              bool charge = true, bool notify = true);

  /// Picks the replica a read of `loc` uses: the first live replica whose
  /// read-error budget is exhausted, trying closest replicas first under a
  /// rack-aware topology. Throws UnrecoverableBlock when every replica is
  /// dead, DfsError when only injected-error copies remain. `source` (may
  /// be null) receives the chosen datanode.
  BlockData read_replica(const BlockLocation& loc, const std::string& path,
                         int* source) const;

  /// Reads one erasure-coded stripe: fetches the first k available cells
  /// (data cells first — a fully healthy stripe is a plain concatenation),
  /// decodes any missing data cells from the survivors (a degraded read,
  /// charged as bytes_reconstructed + degraded_reads), and returns the
  /// reassembled block payload. An armed read error on a cell's node marks
  /// that cell unavailable for this read (failover, like the replicated
  /// path). Throws UnrecoverableBlock when fewer than k cells survive.
  BlockData read_stripe(const BlockLocation& loc, const std::string& path,
                        IoStats* account) const;

  /// Re-runs the greedy residency sweep; call with hot_mu_ held.
  void recompute_hot_residents_locked() const;

  /// Repairs one corrupt copy: clears the (block, node) mark and the hot-
  /// cache salt, records the repair event and charges its traffic. The
  /// in-sim payload object was never mutated (corruption is served as a
  /// deterministic overlay), so clearing the mark models rewriting good
  /// bytes over the quarantined copy. `slot` is the EC cell index (-1 for
  /// replicated blocks). Returns the simulated seconds of a lineage
  /// recompute (memory-tier files), else 0; `flows` (may be null) collects
  /// repair transfers for the scrubber's flow simulation.
  double repair_corrupt_copy(const BlockLocation& loc, const std::string& path,
                             StorageTier tier, int node, int slot, double at,
                             bool by_scrubber,
                             std::vector<net::Transfer>* flows) const;

  /// CRC32C-verifies the bytes a read of (loc, node) would serve against
  /// the recorded write-path checksum, charging the checksum CPU. Returns
  /// true when the copy is corrupt. `slot` is the EC cell index (-1 =
  /// whole replicated block).
  bool verify_copy(const BlockLocation& loc, int node, int slot) const;

  /// One scrubber pass at simulated time `at` (see scrub_to).
  void run_scrub_pass(double at);

  /// True when the attached topology is racked and sized for this DFS —
  /// the gate for transfer recording and rack-aware behaviour.
  bool racked_topology() const;

  DfsConfig config_;
  std::shared_ptr<const net::Topology> topology_;
  MetricsRegistry* metrics_;
  NameNode namenode_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::atomic<TierListener*> tier_listener_{nullptr};
  std::atomic<BlockId> next_block_id_{1};
  mutable std::mutex chaos_mu_;  // guards dead_ and read_errors_
  std::vector<bool> dead_;
  mutable std::vector<int> read_errors_;  // per-node armed failing reads

  const CostModel* cost_model_ = nullptr;  // set by bind_chaos
  double chaos_network_bandwidth_ = 0.0;   // set by bind_chaos
  mutable std::mutex storage_mu_;  // guards storage_events_
  std::vector<StorageReconstructionEvent> storage_events_;

  // Block-integrity layer (see DfsConfig::verify_checksums). The store and
  // stats are mutable because verification, detection and read-repair all
  // happen on the const read path.
  mutable ChecksumStore checksums_;
  mutable std::mutex integrity_mu_;  // guards integrity_
  mutable IntegrityStats integrity_;
  double next_scrub_at_ = 0.0;  // driver-thread only (chaos advance)

  // Namenode hot-block cache (see DfsConfig::hot_cache_bytes).
  struct HotFile {
    std::uint64_t size = 0;
    std::vector<BlockData> blocks;  // full-block payloads, in file order
    std::vector<BlockId> ids;       // parallel to blocks
    /// Poisoned cached blocks -> bit-rot salt: the cached copy mirrors a
    /// datanode replica, so corruption of that replica poisons the cached
    /// bytes too until a repair clears it. Empty while the file is clean.
    std::map<BlockId, std::uint64_t> corrupt;
  };
  mutable std::mutex hot_mu_;
  // Mutable: read-repair (on the const open path) clears cache poisoning.
  mutable std::map<std::string, HotFile> hot_candidates_;  // sorted order
  mutable std::set<std::string> hot_resident_;
  mutable std::uint64_t hot_resident_bytes_ = 0;
  mutable std::uint64_t hot_hits_ = 0;
  mutable std::uint64_t hot_hit_bytes_ = 0;
};

}  // namespace mri::dfs
