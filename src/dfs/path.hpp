// DFS path utilities.
//
// Paths are absolute, '/'-separated strings ("/Root/A1/A.0"). All public
// DFS entry points normalize their inputs, so "Root//A1/" and "/Root/A1"
// name the same directory.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mri::dfs {

/// Normalizes to "/a/b/c" form: leading slash, no repeated or trailing
/// slashes. The root is "/". "." and ".." components are rejected.
std::string normalize(std::string_view path);

/// Joins two fragments and normalizes ("/Root" + "A1/A.0" -> "/Root/A1/A.0").
std::string join(std::string_view base, std::string_view rest);

/// Parent directory ("/Root/A1" -> "/Root"; "/" -> "/").
std::string parent(std::string_view path);

/// Final component ("/Root/A1/A.0" -> "A.0"; "/" -> "").
std::string basename(std::string_view path);

/// Splits a normalized path into components ("/Root/A1" -> {"Root","A1"}).
std::vector<std::string> components(std::string_view path);

}  // namespace mri::dfs
