#include "dfs/namenode.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfs/path.hpp"

namespace mri::dfs {

NameNode::NameNode() : root_(std::make_unique<Inode>()) {}

NameNode::Inode* NameNode::find(const std::string& path) const {
  Inode* node = root_.get();
  for (const auto& part : components(path)) {
    if (!node->is_dir) return nullptr;
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

NameNode::Inode* NameNode::find_or_create_dir(const std::string& path) {
  Inode* node = root_.get();
  for (const auto& part : components(path)) {
    MRI_CHECK_MSG(node->is_dir, "path component is a file: " << path);
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      it = node->children.emplace(part, std::make_unique<Inode>()).first;
    }
    node = it->second.get();
    if (!node->is_dir) {
      throw DfsError("cannot create directory over file: " + path);
    }
  }
  return node;
}

void NameNode::mkdirs(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  find_or_create_dir(normalize(path));
}

void NameNode::commit_file(const std::string& raw_path,
                           std::vector<BlockLocation> blocks, bool overwrite,
                           StorageTier tier) {
  const std::string path = normalize(raw_path);
  MRI_REQUIRE(path != "/", "cannot create a file at the root path");
  std::lock_guard<std::mutex> lock(mu_);
  Inode* dir = find_or_create_dir(parent(path));
  const std::string name = basename(path);
  auto it = dir->children.find(name);
  if (it != dir->children.end()) {
    if (!overwrite || it->second->is_dir) {
      throw DfsError("path already exists: " + path);
    }
    dir->children.erase(it);
  }
  auto file = std::make_unique<Inode>();
  file->is_dir = false;
  file->size = 0;
  for (const auto& b : blocks) file->size += b.length;
  file->blocks = std::move(blocks);
  file->tier = tier;
  dir->children.emplace(name, std::move(file));
}

StorageTier NameNode::file_tier(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(path));
  if (node == nullptr || node->is_dir) {
    throw DfsError("no such file: " + normalize(path));
  }
  return node->tier;
}

void NameNode::set_file_tier(const std::string& path, StorageTier tier) {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(path));
  if (node == nullptr || node->is_dir) {
    throw DfsError("no such file: " + normalize(path));
  }
  node->tier = tier;
}

bool NameNode::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find(normalize(path)) != nullptr;
}

bool NameNode::is_directory(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(path));
  return node != nullptr && node->is_dir;
}

bool NameNode::is_file(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(path));
  return node != nullptr && !node->is_dir;
}

std::uint64_t NameNode::file_size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(path));
  if (node == nullptr || node->is_dir) {
    throw DfsError("no such file: " + normalize(path));
  }
  return node->size;
}

std::vector<BlockLocation> NameNode::file_blocks(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(path));
  if (node == nullptr || node->is_dir) {
    throw DfsError("no such file: " + normalize(path));
  }
  return node->blocks;
}

std::vector<std::string> NameNode::list(const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  Inode* node = find(normalize(dir));
  if (node == nullptr || !node->is_dir) {
    throw DfsError("no such directory: " + normalize(dir));
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;  // std::map keeps them sorted
}

void NameNode::collect_files(const Inode& node, const std::string& path,
                             std::vector<BlockLocation>* blocks,
                             std::vector<std::string>* paths) {
  if (!node.is_dir) {
    blocks->insert(blocks->end(), node.blocks.begin(), node.blocks.end());
    if (paths != nullptr) paths->push_back(path);
    return;
  }
  for (const auto& [name, child] : node.children) {
    collect_files(*child, path + "/" + name, blocks, paths);
  }
}

void NameNode::snapshot_inode(const Inode& node, const std::string& path,
                              std::vector<FileInfo>* out) {
  if (!node.is_dir) {
    out->push_back(FileInfo{path, node.tier, node.blocks});
    return;
  }
  for (const auto& [name, child] : node.children) {
    snapshot_inode(*child, path + "/" + name, out);
  }
}

std::vector<NameNode::FileInfo> NameNode::snapshot_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileInfo> out;
  snapshot_inode(*root_, "", &out);
  return out;
}

std::size_t NameNode::count_files(const Inode& node) {
  if (!node.is_dir) return 1;
  std::size_t n = 0;
  for (const auto& [name, child] : node.children) n += count_files(*child);
  return n;
}

std::vector<BlockLocation> NameNode::remove(
    const std::string& raw_path, bool recursive,
    std::vector<std::string>* removed_paths) {
  const std::string path = normalize(raw_path);
  MRI_REQUIRE(path != "/", "refusing to remove the DFS root");
  std::lock_guard<std::mutex> lock(mu_);
  Inode* dir = find(parent(path));
  if (dir == nullptr || !dir->is_dir) throw DfsError("no such path: " + path);
  auto it = dir->children.find(basename(path));
  if (it == dir->children.end()) throw DfsError("no such path: " + path);
  Inode* victim = it->second.get();
  if (victim->is_dir && !victim->children.empty() && !recursive) {
    throw DfsError("directory not empty (pass recursive=true): " + path);
  }
  std::vector<BlockLocation> removed;
  collect_files(*victim, path, &removed, removed_paths);
  dir->children.erase(it);
  return removed;
}

void NameNode::rename(const std::string& raw_from, const std::string& raw_to) {
  const std::string from = normalize(raw_from);
  const std::string to = normalize(raw_to);
  MRI_REQUIRE(from != "/" && to != "/", "cannot rename the DFS root");
  MRI_REQUIRE(to.rfind(from + "/", 0) != 0,
              "cannot rename a directory into itself: " << from << " -> " << to);
  std::lock_guard<std::mutex> lock(mu_);
  Inode* from_dir = find(parent(from));
  if (from_dir == nullptr || !from_dir->is_dir)
    throw DfsError("no such path: " + from);
  auto it = from_dir->children.find(basename(from));
  if (it == from_dir->children.end()) throw DfsError("no such path: " + from);
  if (find(to) != nullptr) throw DfsError("target already exists: " + to);
  Inode* to_dir = find_or_create_dir(parent(to));
  auto node = std::move(it->second);
  from_dir->children.erase(it);
  to_dir->children.emplace(basename(to), std::move(node));
}

std::size_t NameNode::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_files(*root_);
}

void NameNode::repair_inode(
    Inode* inode, const std::string& path, int node, int target_replication,
    const std::function<int(const BlockLocation&, int cell)>& replicate,
    BlockRepairSummary* out) {
  if (!inode->is_dir) {
    bool had_loss = false;
    for (BlockLocation& loc : inode->blocks) {
      if (loc.is_ec()) {
        // Slot order is cell identity: mark this node's cells lost in place
        // instead of erasing them.
        int newly_lost = 0;
        for (int& holder : loc.replicas) {
          if (holder == node) {
            holder = -1;
            ++newly_lost;
          }
        }
        int live = 0;
        for (int holder : loc.replicas) live += holder >= 0 ? 1 : 0;
        if (live < loc.ec_k) {
          if (newly_lost > 0 && live + newly_lost >= loc.ec_k) {
            // Fewer than k survivors: the stripe is undecodable, gone for
            // good. Only the kill that crossed the threshold reports it.
            ++out->blocks_lost;
            had_loss = true;
          }
          continue;
        }
        // Rebuild every hole (including ones left by earlier kills that
        // found no eligible target) while the stripe is still decodable.
        for (std::size_t cell = 0; cell < loc.replicas.size(); ++cell) {
          if (loc.replicas[cell] >= 0) continue;
          const int placed = replicate(loc, static_cast<int>(cell));
          if (placed < 0) continue;  // no eligible node; stay degraded
          loc.replicas[cell] = placed;
          ++out->ec_cells_reconstructed;
          out->ec_reconstructed_bytes += loc.cell_bytes();
        }
        continue;
      }
      auto it = std::find(loc.replicas.begin(), loc.replicas.end(), node);
      if (it == loc.replicas.end()) continue;
      loc.replicas.erase(it);
      if (loc.replicas.empty()) {
        // Last replica gone: keep the block registered so reads fail fast
        // with UnrecoverableBlock rather than "no such file".
        ++out->blocks_lost;
        had_loss = true;
        continue;
      }
      while (static_cast<int>(loc.replicas.size()) < target_replication) {
        const int placed = replicate(loc, -1);
        if (placed < 0) break;  // no eligible node left; stay under-replicated
        loc.replicas.push_back(placed);
        ++out->re_replicated_blocks;
        out->re_replicated_bytes += loc.length;
      }
    }
    if (had_loss) out->lost_files.push_back(path);
    return;
  }
  for (auto& [name, child] : inode->children) {
    repair_inode(child.get(), path + "/" + name, node, target_replication,
                 replicate, out);
  }
}

BlockRepairSummary NameNode::repair_after_node_loss(
    int node, int target_replication,
    const std::function<int(const BlockLocation&, int cell)>& replicate) {
  MRI_REQUIRE(target_replication >= 1, "target replication must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  BlockRepairSummary out;
  repair_inode(root_.get(), "", node, target_replication, replicate, &out);
  return out;
}

std::uint64_t NameNode::sum_file_bytes(const Inode& node) {
  if (!node.is_dir) return node.size;
  std::uint64_t n = 0;
  for (const auto& [name, child] : node.children) n += sum_file_bytes(*child);
  return n;
}

std::uint64_t NameNode::total_logical_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_file_bytes(*root_);
}

}  // namespace mri::dfs
