// Arithmetic over GF(2^8), the field every practical Reed–Solomon storage
// code uses (HDFS-EC/ISA-L, Jerasure, Backblaze). Elements are bytes;
// addition is XOR; multiplication is carry-less modulo the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d, generator 2 — the same field
// those libraries pick), implemented with exp/log tables so a byte multiply
// is two lookups and one add.
#pragma once

#include <cstdint>

namespace mri::dfs::ec {

/// a * b in GF(2^8).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; a must be non-zero (checked).
std::uint8_t gf_inv(std::uint8_t a);

/// a / b (= a * inv(b)); b must be non-zero (checked).
std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);

/// dst[i] ^= coeff * src[i] for i in [0, len) — the inner loop of both
/// encode and decode (a row saxpy over the field).
void gf_mul_add(std::uint8_t coeff, const std::uint8_t* src, std::uint8_t* dst,
                std::size_t len);

}  // namespace mri::dfs::ec
