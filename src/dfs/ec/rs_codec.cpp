#include "dfs/ec/rs_codec.hpp"

#include <cstring>

#include "common/error.hpp"
#include "dfs/ec/gf256.hpp"

namespace mri::dfs::ec {

RsCodec::RsCodec(int k, int m) : k_(k), m_(m) {
  MRI_REQUIRE(k >= 1, "RS codec: k must be >= 1, got " + std::to_string(k));
  MRI_REQUIRE(m >= 1, "RS codec: m must be >= 1, got " + std::to_string(m));
  MRI_REQUIRE(k + m <= 256, "RS codec: k + m must be <= 256 over GF(2^8), got " +
                                std::to_string(k + m));
  rows_.assign(static_cast<std::size_t>(k_ + m_),
               std::vector<std::uint8_t>(static_cast<std::size_t>(k_), 0));
  for (int i = 0; i < k_; ++i) rows_[i][i] = 1;  // systematic identity block
  for (int j = 0; j < m_; ++j) {
    // Cauchy block: x_i = k + i (parity row ids), y_j = j (data row ids).
    // The two id sets are disjoint, so x ^ y is never zero.
    for (int i = 0; i < k_; ++i) {
      rows_[static_cast<std::size_t>(k_ + j)][static_cast<std::size_t>(i)] =
          gf_inv(static_cast<std::uint8_t>((k_ + j) ^ i));
    }
  }
}

std::vector<std::vector<std::uint8_t>> RsCodec::encode(
    const std::vector<const std::uint8_t*>& data, std::size_t cell_len) const {
  MRI_REQUIRE(static_cast<int>(data.size()) == k_,
              "RS encode: expected " + std::to_string(k_) + " data cells, got " +
                  std::to_string(data.size()));
  std::vector<std::vector<std::uint8_t>> parity(
      static_cast<std::size_t>(m_), std::vector<std::uint8_t>(cell_len, 0));
  for (int j = 0; j < m_; ++j) {
    const auto& row = rows_[static_cast<std::size_t>(k_ + j)];
    for (int i = 0; i < k_; ++i) {
      gf_mul_add(row[static_cast<std::size_t>(i)], data[static_cast<std::size_t>(i)],
                 parity[static_cast<std::size_t>(j)].data(), cell_len);
    }
  }
  return parity;
}

std::vector<std::vector<std::uint8_t>> RsCodec::reconstruct(
    const std::vector<const std::uint8_t*>& cells, std::size_t cell_len,
    const std::vector<int>& wanted) const {
  MRI_REQUIRE(static_cast<int>(cells.size()) == k_ + m_,
              "RS reconstruct: expected " + std::to_string(k_ + m_) +
                  " cell slots, got " + std::to_string(cells.size()));
  // Pick the first k survivors (deterministic: lowest cell index wins).
  std::vector<int> survivors;
  for (int r = 0; r < k_ + m_ && static_cast<int>(survivors.size()) < k_; ++r) {
    if (cells[static_cast<std::size_t>(r)] != nullptr) survivors.push_back(r);
  }
  MRI_REQUIRE(static_cast<int>(survivors.size()) == k_,
              "RS reconstruct: need " + std::to_string(k_) +
                  " surviving cells, have " + std::to_string(survivors.size()));

  // Invert the k×k survivor submatrix with Gauss–Jordan: decode[i] then maps
  // survivor cells back to data cell i.
  const int k = k_;
  std::vector<std::vector<std::uint8_t>> aug(
      static_cast<std::size_t>(k),
      std::vector<std::uint8_t>(static_cast<std::size_t>(2 * k), 0));
  for (int r = 0; r < k; ++r) {
    const auto& row = rows_[static_cast<std::size_t>(survivors[r])];
    for (int c = 0; c < k; ++c) aug[r][static_cast<std::size_t>(c)] = row[c];
    aug[r][static_cast<std::size_t>(k + r)] = 1;
  }
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] != 0) {
        pivot = r;
        break;
      }
    }
    MRI_REQUIRE(pivot >= 0,
                "RS reconstruct: singular survivor matrix (violates the MDS "
                "property — codec bug)");
    std::swap(aug[static_cast<std::size_t>(col)], aug[static_cast<std::size_t>(pivot)]);
    const std::uint8_t inv_p =
        gf_inv(aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)]);
    for (int c = 0; c < 2 * k; ++c) {
      aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)] =
          gf_mul(aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)], inv_p);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f =
          aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
      if (f == 0) continue;
      for (int c = 0; c < 2 * k; ++c) {
        aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] ^= gf_mul(
            f, aug[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)]);
      }
    }
  }

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(wanted.size());
  for (int w : wanted) {
    MRI_REQUIRE(w >= 0 && w < k_ + m_,
                "RS reconstruct: wanted cell index out of range: " + std::to_string(w));
    std::vector<std::uint8_t> cell(cell_len, 0);
    if (cells[static_cast<std::size_t>(w)] != nullptr) {
      std::memcpy(cell.data(), cells[static_cast<std::size_t>(w)], cell_len);
      out.push_back(std::move(cell));
      continue;
    }
    // Coefficients of stored cell w over the data cells, re-expressed over
    // the survivor cells: coeff_s = sum_i row_w[i] * decode[i][s].
    const auto& row_w = rows_[static_cast<std::size_t>(w)];
    for (int s = 0; s < k; ++s) {
      std::uint8_t coeff = 0;
      for (int i = 0; i < k; ++i) {
        coeff = static_cast<std::uint8_t>(
            coeff ^ gf_mul(row_w[static_cast<std::size_t>(i)],
                           aug[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(k + s)]));
      }
      gf_mul_add(coeff, cells[static_cast<std::size_t>(survivors[s])], cell.data(),
                 cell_len);
    }
    out.push_back(std::move(cell));
  }
  return out;
}

}  // namespace mri::dfs::ec
