// Per-file storage policy: plain replication (the HDFS default the rest of
// the simulator was built around) vs Reed–Solomon erasure-coded stripes
// (HDFS-EC style). The policy lives in DfsConfig and applies to disk-tier
// files written after it is set; memory-tier cached copies and spill files
// always use replication so the SPIN-style engine semantics are unchanged.
#pragma once

#include <string>

#include "common/error.hpp"

namespace mri::dfs {

enum class StoragePolicy {
  kReplicate,     // N full copies of every block (DfsConfig::replication).
  kErasureCoded,  // RS(k, m) stripes: k data + m parity cells per block.
};

/// Reed–Solomon stripe shape. Defaults to the HDFS-EC flagship RS(6,3)
/// profile: 1.5x physical overhead, survives any 3 cell losses.
struct EcParams {
  int k = 6;
  int m = 3;

  int cells() const { return k + m; }
};

/// Parse "k,m" (as passed to --ec). Throws InvalidArgument with an
/// actionable message on malformed input; range checks against the cluster
/// size happen at the CLI layer where the node count is known.
inline EcParams parse_ec_params(const std::string& spec) {
  const auto comma = spec.find(',');
  MRI_REQUIRE(comma != std::string::npos,
              "--ec expects \"k,m\" (e.g. --ec 6,3), got \"" << spec << "\"");
  EcParams p;
  try {
    std::size_t used = 0;
    p.k = std::stoi(spec.substr(0, comma), &used);
    MRI_REQUIRE(used == comma, "--ec: data-cell count is not a number in \""
                                   << spec << "\"");
    const std::string m_part = spec.substr(comma + 1);
    p.m = std::stoi(m_part, &used);
    MRI_REQUIRE(used == m_part.size(),
                "--ec: parity-cell count is not a number in \"" << spec << "\"");
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("--ec expects integers \"k,m\" (e.g. --ec 6,3), got \"" +
                          spec + "\"");
  } catch (const std::out_of_range&) {
    throw InvalidArgument("--ec values out of range in \"" + spec + "\"");
  }
  MRI_REQUIRE(p.k >= 1, "--ec: k must be >= 1, got " << p.k);
  MRI_REQUIRE(p.m >= 1, "--ec: m must be >= 1, got " << p.m);
  MRI_REQUIRE(p.cells() <= 256,
              "--ec: k + m must be <= 256 over GF(2^8), got " << p.cells());
  return p;
}

inline const char* to_string(StoragePolicy p) {
  return p == StoragePolicy::kErasureCoded ? "erasure_coded" : "replicate";
}

}  // namespace mri::dfs
