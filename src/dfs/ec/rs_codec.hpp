// Systematic Reed–Solomon(k, m) erasure codec over GF(2^8).
//
// A stripe is k equal-length data cells plus m parity cells. The generator
// matrix is [I_k ; C] where C is a k×m Cauchy block (c[i][j] =
// inv(x_i XOR y_j) with x_i = k+i, y_j = j). Every square submatrix of a
// Cauchy matrix is nonsingular, so [I ; C] has the MDS property: any k of
// the k+m rows are linearly independent and the stripe survives any m cell
// losses. Decode inverts the k×k submatrix picked out by the surviving rows
// (Gauss–Jordan over the field) and re-multiplies to rebuild lost cells.
//
// Cell length is bounded only by memory; coefficients depend on (k, m)
// alone, so encode/reconstruct are deterministic pure functions.
#pragma once

#include <cstdint>
#include <vector>

namespace mri::dfs::ec {

class RsCodec {
 public:
  // Requires 1 <= k, 1 <= m, k + m <= 256 (field size bounds the row count).
  RsCodec(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  /// Compute the m parity cells for k data cells of length cell_len each.
  /// data.size() must equal k; every pointer must cover cell_len bytes.
  std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<const std::uint8_t*>& data, std::size_t cell_len) const;

  /// Rebuild the cells listed in `wanted` (indices in [0, k+m)) from any k
  /// survivors. `cells` has k+m entries; nullptr marks a lost cell. Throws
  /// if fewer than k survivors are present.
  std::vector<std::vector<std::uint8_t>> reconstruct(
      const std::vector<const std::uint8_t*>& cells, std::size_t cell_len,
      const std::vector<int>& wanted) const;

 private:
  int k_;
  int m_;
  // Row r of [I_k ; C]: coefficients mapping data cells to stored cell r.
  std::vector<std::vector<std::uint8_t>> rows_;
};

}  // namespace mri::dfs::ec
