#include "dfs/ec/gf256.hpp"

#include "common/error.hpp"

namespace mri::dfs::ec {

namespace {

// exp/log tables for generator 2 modulo 0x11d. exp_ is doubled so
// exp_[log a + log b] never needs an explicit mod-255 reduction.
struct Gf256Tables {
  std::uint8_t exp_[512];
  std::uint8_t log_[256];
  Gf256Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // log(0) is undefined; callers never look it up
  }
};

const Gf256Tables& tables() {
  static const Gf256Tables t;
  return t;
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Gf256Tables& t = tables();
  return t.exp_[t.log_[a] + t.log_[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  MRI_REQUIRE(a != 0, "GF(2^8): zero has no multiplicative inverse");
  const Gf256Tables& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  return gf_mul(a, gf_inv(b));
}

void gf_mul_add(std::uint8_t coeff, const std::uint8_t* src, std::uint8_t* dst,
                std::size_t len) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const Gf256Tables& t = tables();
  const int log_c = t.log_[coeff];
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp_[log_c + t.log_[s]];
  }
}

}  // namespace mri::dfs::ec
