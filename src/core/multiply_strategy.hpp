// Pluggable scheduling strategies for the distributed multiply.
//
// A MultiplyStrategy owns the three decisions that differ between multiply
// schemes: how the operands are laid out in the DFS (ingest), what reducer
// grid / round schedule to run (plan), and which jobs to submit (submit).
// Two strategies ship:
//
//  * WrapStrategy — the paper's §6.2 block wrap. A is ingested as f1 row
//    stripes and B as f2 column stripes; one job's f1 x f2 reducers each
//    read an (n/f1 + n/f2)-sized slab pair and write their C tile.
//
//  * MultiRoundStrategy — the replication-parameterized multi-round scheme
//    of arXiv 1111.2228 / 1408.2858. The inner dimension is cut into
//    κ = m0 segments; A is ingested as f1 x κ blocks and B as κ x f2
//    blocks, and R = ceil(κ/r) chained jobs each accumulate r segment
//    products onto a per-task carry tile. Per-task memory scales with r
//    while rounds (and carry shuffle bytes, 2(R-1) extra C-sized passes)
//    scale with κ/r — the space-round tradeoff. r = κ degenerates to a
//    single wrap-like round.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/multiply_job.hpp"

namespace mri::core {

class MultiplyStrategy {
 public:
  virtual ~MultiplyStrategy() = default;

  /// Strategy name as spelled on the CLI ("wrap", "multiround").
  virtual const char* name() const = 0;

  /// Writes `a` and `b` into the DFS under <work_dir>/MULIN in the layout
  /// the strategy's reducers read (charged to the master by the caller).
  virtual void ingest(dfs::Dfs* fs, const Matrix& a, const Matrix& b,
                      const std::string& work_dir,
                      MultiplyJobContext* ctx) const = 0;

  /// Fills the reducer grid, round schedule and output TileSet on `ctx`
  /// and returns the schedule summary.
  virtual MultiplyPlan plan(MultiplyJobContext* ctx) const = 0;

  /// Submits the strategy's job(s) — chained in order, the first depending
  /// on `after` — and returns the handle of the last one.
  virtual mr::JobHandle submit(mr::Pipeline* pipeline, MultiplyJobContextPtr ctx,
                               const std::vector<std::string>& control_files,
                               mr::JobHandle after) const = 0;
};

const char* multiply_strategy_name(MultiplyStrategyKind kind);

/// Parses a CLI spelling ("wrap" | "multiround"); returns false on unknown
/// names without touching `*out`.
bool parse_multiply_strategy(const std::string& name,
                             MultiplyStrategyKind* out);

std::unique_ptr<MultiplyStrategy> make_multiply_strategy(
    MultiplyStrategyKind kind);

}  // namespace mri::core
