// Geometry of the data-partitioning job (Algorithm 3, Figures 3 and 4).
//
// The partition job materializes, in one pass over the input, the region
// files of every left-spine node (the A1-of-A1-of-... chain): at each level
// k the node of order n_{k-1} is split at h_k = ceil(n_{k-1}/2) into
//   A2 (rows [0,h) x cols [h,n))   — written as u2_workers column stripes,
//   A3 (rows [h,n) x cols [0,h))   — written as l2_workers row stripes,
//   A4 (rows [h,n) x cols [h,n))   — written as the f1 x f2 reducer grid,
// each further cut into pieces along the mappers' row bands so that no two
// tasks ever write — or later simultaneously read — the same file (§5.2).
// The deepest level's A1 block is written as row-band leaf pieces.
//
// Both the mappers (to know what to write) and the driver (to build the
// TileSets without touching data) enumerate the same piece lists from this
// header.
#pragma once

#include <string>
#include <vector>

#include "core/tile_set.hpp"
#include "matrix/layout.hpp"

namespace mri::core {

enum class Region { kA2, kA3, kA4, kLeaf };

struct LevelGeometry {
  Index parent_n = 0;  // order of the node being split
  Index h = 0;         // split point (first child's order)
  std::string dir;     // DFS directory of this node
};

struct PartitionGeometry {
  Index n = 0;
  int m0 = 1;          // mapper bands over the global rows
  int depth = 0;
  /// Where the partition pieces are stored (kMemory in Spark mode).
  dfs::StorageTier intermediate_tier = dfs::StorageTier::kDisk;
  int l2_workers = 1;  // A3 row stripes
  int u2_workers = 1;  // A2 column stripes
  BlockWrapFactors wrap;  // A4 grid
  std::vector<LevelGeometry> levels;  // levels[k-1] = split at level k
  Index leaf_n = 0;
  std::string leaf_dir;  // node directory of the deepest A1 block
};

PartitionGeometry make_partition_geometry(Index n, Index nb, int m0,
                                          const std::string& work_dir);

/// Global (row, col) offset of a region within the input matrix.
struct RegionFrame {
  Index row_off = 0, col_off = 0;  // global offset of region (0,0)
  Index rows = 0, cols = 0;        // region extent
};
RegionFrame region_frame(const PartitionGeometry& geom, int level,
                         Region region);

/// The pieces (region-local tiles) of `region` at `level` (1-based; use
/// level = depth with Region::kLeaf for the leaf block). Restricted to
/// mapper band `band` when band >= 0; all pieces when band < 0.
std::vector<Tile> region_pieces(const PartitionGeometry& geom, int level,
                                Region region, int band = -1);

/// Convenience: TileSet of a whole region.
TileSet region_tiles(const PartitionGeometry& geom, int level, Region region);

}  // namespace mri::core
