// The final MapReduce job (§5.4): invert the triangular factors and multiply.
//
// Map: worker i < W_L assembles L and computes an interleaved set of columns
// of L⁻¹ (columns k ≡ i mod W_L — the §5.4 load-balancing layout); worker
// i >= W_L assembles Uᵀ and computes the matching interleaved rows of U⁻¹
// (as columns of (Uᵀ)⁻¹). Each writes its slice as one INV/ file.
//
// Reduce: worker t owns one (U-file-group, L-file-group) cell of the block
// wrap grid, multiplies its rows of U⁻¹ by its columns of L⁻¹, applies the
// column permutation (A⁻¹ = U⁻¹L⁻¹P: product column k lands at column S[k])
// and writes an indexed block of the final inverse.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/lu_tree.hpp"
#include "core/options.hpp"
#include "mapreduce/job.hpp"
#include "matrix/layout.hpp"

namespace mri::core {

struct InverseJobContext {
  const LuNode* root = nullptr;
  Index n = 0;
  InversionOptions opts;
  std::string dir;  // job writes INV/ and OUT/ under here
  int m0 = 1;
  int l_workers = 1;  // mappers inverting L
  int u_workers = 1;  // mappers inverting U
  int u_groups = 1;   // reducer grid: groups of U files ...
  int l_groups = 1;   // ... x groups of L files
  double layout_penalty = 1.0;
};

using InverseJobContextPtr = std::shared_ptr<const InverseJobContext>;

/// Computes worker/group counts from (m0, opts).
void plan_inverse_job(InverseJobContext* ctx);

mr::JobSpec make_inverse_job(InverseJobContextPtr ctx,
                             std::vector<std::string> control_files);

/// The final stage as three DAG-executor jobs instead of one: the L⁻¹ and
/// U⁻¹ triangular inversions are independent of each other (map-only jobs
/// writing INV/L.* and INV/U.*), and only the multiply/permute job (the
/// reducer grid writing AINV/A.*) needs both. Submitted with
/// {invert_l, invert_u} -> multiply dependencies the two inversions share
/// the cluster's slots. Same arithmetic, same output files as the single
/// make_inverse_job() job.
struct InverseStageJobs {
  mr::JobSpec invert_l;
  mr::JobSpec invert_u;
  mr::JobSpec multiply;
};
InverseStageJobs make_inverse_stage_jobs(
    InverseJobContextPtr ctx, const std::vector<std::string>& control_files);

/// Columns of L⁻¹ (or rows of U⁻¹) owned by worker s of `workers`:
/// {k < n : k ≡ s (mod workers)}.
std::vector<Index> interleaved_ids(Index n, int workers, int s);

/// Contiguous file-index group g of `groups` over `count` files.
RowRange file_group(int count, int groups, int g);

/// Driver-side assembly of the final inverse from the reducers' indexed
/// blocks (verification path; charges no task I/O).
Matrix assemble_inverse(const dfs::Dfs& fs, const InverseJobContext& ctx);

}  // namespace mri::core
