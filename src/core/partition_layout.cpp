#include "core/partition_layout.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfs/path.hpp"

namespace mri::core {

PartitionGeometry make_partition_geometry(Index n, Index nb, int m0,
                                          const std::string& work_dir) {
  MRI_REQUIRE(n >= 1 && nb >= 1 && m0 >= 1, "bad partition geometry");
  PartitionGeometry geom;
  geom.n = n;
  geom.m0 = m0;
  geom.depth = recursion_depth(n, nb);
  if (m0 == 1) {
    geom.l2_workers = 1;
    geom.u2_workers = 1;
  } else {
    geom.l2_workers = (m0 + 1) / 2;
    geom.u2_workers = m0 - geom.l2_workers;
  }
  geom.wrap = block_wrap_factors(m0);

  std::string dir = dfs::normalize(work_dir);
  Index size = n;
  for (int k = 1; k <= geom.depth; ++k) {
    LevelGeometry level;
    level.parent_n = size;
    level.h = split_point(size);
    level.dir = dir;
    geom.levels.push_back(level);
    size = level.h;
    dir = dfs::join(dir, "A1");
  }
  geom.leaf_n = size;
  geom.leaf_dir = dir;
  return geom;
}

RegionFrame region_frame(const PartitionGeometry& geom, int level,
                         Region region) {
  RegionFrame f;
  if (region == Region::kLeaf) {
    MRI_REQUIRE(level == geom.depth, "leaf region lives at the deepest level");
    f.rows = f.cols = geom.leaf_n;
    return f;
  }
  MRI_REQUIRE(level >= 1 && level <= geom.depth, "level out of range");
  const LevelGeometry& lv = geom.levels[static_cast<std::size_t>(level - 1)];
  const Index h = lv.h;
  const Index rest = lv.parent_n - h;
  switch (region) {
    case Region::kA2:
      f = {0, h, h, rest};
      break;
    case Region::kA3:
      f = {h, 0, rest, h};
      break;
    case Region::kA4:
      f = {h, h, rest, rest};
      break;
    case Region::kLeaf:
      break;  // handled above
  }
  return f;
}

namespace {

std::string region_dir(const PartitionGeometry& geom, int level, Region region) {
  switch (region) {
    case Region::kA2:
      return dfs::join(geom.levels[static_cast<std::size_t>(level - 1)].dir, "A2");
    case Region::kA3:
      return dfs::join(geom.levels[static_cast<std::size_t>(level - 1)].dir, "A3");
    case Region::kA4:
      return dfs::join(geom.levels[static_cast<std::size_t>(level - 1)].dir, "A4");
    case Region::kLeaf:
      return dfs::join(geom.leaf_dir, "A1");
  }
  MRI_CHECK(false);
  return {};
}

/// The column-range "slots" a region is striped into (independent of the
/// mappers' row bands): A2 -> u2_workers column stripes, A3 -> l2_workers
/// row stripes, A4 -> f1 x f2 grid, leaf -> single slot.
struct Slot {
  Index r0, r1, c0, c1;  // region-local
  int index;
};

std::vector<Slot> region_slots(const PartitionGeometry& geom, int level,
                               Region region) {
  const RegionFrame f = region_frame(geom, level, region);
  std::vector<Slot> slots;
  switch (region) {
    case Region::kA2: {
      for (int s = 0; s < geom.u2_workers; ++s) {
        const RowRange c = stripe(f.cols, geom.u2_workers, s);
        slots.push_back(Slot{0, f.rows, c.begin, c.end, s});
      }
      break;
    }
    case Region::kA3: {
      for (int s = 0; s < geom.l2_workers; ++s) {
        const RowRange r = stripe(f.rows, geom.l2_workers, s);
        slots.push_back(Slot{r.begin, r.end, 0, f.cols, s});
      }
      break;
    }
    case Region::kA4: {
      int t = 0;
      for (int i = 0; i < geom.wrap.f1; ++i) {
        const RowRange r = stripe(f.rows, geom.wrap.f1, i);
        for (int j = 0; j < geom.wrap.f2; ++j) {
          const RowRange c = stripe(f.cols, geom.wrap.f2, j);
          slots.push_back(Slot{r.begin, r.end, c.begin, c.end, t++});
        }
      }
      break;
    }
    case Region::kLeaf:
      slots.push_back(Slot{0, f.rows, 0, f.cols, 0});
      break;
  }
  return slots;
}

}  // namespace

std::vector<Tile> region_pieces(const PartitionGeometry& geom, int level,
                                Region region, int band) {
  const RegionFrame frame = region_frame(geom, level, region);
  const std::string dir = region_dir(geom, level, region);
  std::vector<Tile> pieces;
  for (const Slot& slot : region_slots(geom, level, region)) {
    for (int b = 0; b < geom.m0; ++b) {
      if (band >= 0 && b != band) continue;
      const RowRange gband = stripe(geom.n, geom.m0, b);
      // Intersect the mapper's global row band with the slot's global rows.
      const Index gr0 = std::max(gband.begin, slot.r0 + frame.row_off);
      const Index gr1 = std::min(gband.end, slot.r1 + frame.row_off);
      if (gr0 >= gr1 || slot.c0 >= slot.c1) continue;
      Tile t;
      t.path = dfs::join(dir, "A." + std::to_string(slot.index) + "." +
                                  std::to_string(b));
      t.r0 = gr0 - frame.row_off;
      t.r1 = gr1 - frame.row_off;
      t.c0 = slot.c0;
      t.c1 = slot.c1;
      pieces.push_back(std::move(t));
    }
  }
  return pieces;
}

TileSet region_tiles(const PartitionGeometry& geom, int level, Region region) {
  const RegionFrame frame = region_frame(geom, level, region);
  return TileSet(frame.rows, frame.cols, region_pieces(geom, level, region));
}

}  // namespace mri::core
