#include "core/assemble.hpp"

#include "core/factor_io.hpp"
#include "matrix/ops.hpp"

namespace mri::core {

Matrix assemble_l(const dfs::Dfs& fs, const LuNode& node, IoStats* account) {
  if (node.leaf) {
    return read_lower_packed(fs, node.l_path, account);
  }
  MRI_CHECK(node.first && node.second);
  Matrix l(node.n, node.n);
  l.set_block(0, 0, assemble_l(fs, *node.first, account));
  l.set_block(node.h, node.h, assemble_l(fs, *node.second, account));
  // L2 = P2 · L2', constructed as it is read (§5.3).
  const Matrix l2_raw = node.l2.read_all(fs, account);
  l.set_block(node.h, 0, node.second->perm.apply_to_rows(l2_raw));
  return l;
}

Matrix assemble_ut(const dfs::Dfs& fs, const LuNode& node, IoStats* account) {
  if (node.leaf) {
    return read_lower_packed(fs, node.ut_path, account);
  }
  MRI_CHECK(node.first && node.second);
  Matrix ut(node.n, node.n);
  ut.set_block(0, 0, assemble_ut(fs, *node.first, account));
  ut.set_block(node.h, node.h, assemble_ut(fs, *node.second, account));
  if (node.u2_transposed) {
    ut.set_block(node.h, 0, node.u2.read_all(fs, account));
  } else {
    ut.set_block(node.h, 0, transpose(node.u2.read_all(fs, account)));
  }
  return ut;
}

namespace {

/// Accumulates log|uᵢᵢ| and sign over the leaves (U's diagonal lives there).
void accumulate_leaf_diagonals(const dfs::Dfs& fs, const LuNode& node,
                               IoStats* account, Determinant* det) {
  if (node.leaf) {
    const Matrix ut = read_lower_packed(fs, node.ut_path, account);
    for (Index i = 0; i < ut.rows(); ++i) {
      const double u = ut(i, i);
      MRI_CHECK_MSG(u != 0.0, "zero diagonal in factored U");
      det->log_abs += std::log(std::abs(u));
      if (u < 0.0) det->sign = -det->sign;
    }
    return;
  }
  accumulate_leaf_diagonals(fs, *node.first, account, det);
  accumulate_leaf_diagonals(fs, *node.second, account, det);
}

}  // namespace

Determinant factor_determinant(const dfs::Dfs& fs, const LuNode& node,
                               IoStats* account) {
  Determinant det;
  // PA = LU with unit-diagonal L: det(A) = det(P)⁻¹ Π uᵢᵢ = ±Π uᵢᵢ.
  det.sign = node.perm.parity();
  accumulate_leaf_diagonals(fs, node, account, &det);
  return det;
}

std::int64_t factor_file_count(const LuNode& node) {
  if (node.leaf) return 1;
  return factor_file_count(*node.first) + factor_file_count(*node.second) +
         static_cast<std::int64_t>(node.l2.tiles().size());
}

}  // namespace mri::core
