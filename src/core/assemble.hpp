// Factor assembly: reconstruct L (unit lower) and Uᵀ (lower) from the LuNode
// tree by reading leaf packed files and L2'/U2 stripes from the DFS.
//
// This is what the final inversion job's mappers do before inverting: they
// read the whole factor — the paper's mappers likewise read all of L (or U)
// from the N(d) separate intermediate files (§6.1). L2 = P2·L2' is applied
// in memory during assembly, never rewritten in the DFS (§5.3).
#pragma once

#include <cmath>

#include "core/lu_tree.hpp"
#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"

namespace mri::core {

/// The unit-lower factor L of `node` (order node->n).
Matrix assemble_l(const dfs::Dfs& fs, const LuNode& node,
                  IoStats* account = nullptr);

/// Uᵀ of `node` — lower triangular (the §6.3 working layout). When stripes
/// were stored untransposed (transposed_u off), they are transposed in
/// memory here; the §6.3 access penalty is charged by the kernels that
/// consumed the untransposed layout, not by assembly.
Matrix assemble_ut(const dfs::Dfs& fs, const LuNode& node,
                   IoStats* account = nullptr);

/// Number of DFS files the factor of `node` is spread across (§6.1's N(d)).
std::int64_t factor_file_count(const LuNode& node);

/// The determinant of the factored matrix, read off the factors:
/// det(A) = det(P)ᵀ · Π uᵢᵢ — the parity of S times the product of the
/// leaves' U diagonals (all of U's diagonal lives in leaf blocks). Returned
/// in log-magnitude/sign form to avoid overflow at large orders.
struct Determinant {
  double log_abs = 0.0;
  int sign = 1;  // 0 would mean singular, which the pipeline rejects earlier

  double value() const { return sign * std::exp(log_abs); }
};
Determinant factor_determinant(const dfs::Dfs& fs, const LuNode& node,
                               IoStats* account = nullptr);

}  // namespace mri::core
