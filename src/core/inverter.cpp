#include "core/inverter.hpp"

#include <memory>

#include "common/logging.hpp"
#include "core/assemble.hpp"
#include "core/inverse_job.hpp"
#include "core/lu_pipeline.hpp"
#include "core/multiply_job.hpp"
#include "core/partition.hpp"
#include "dfs/path.hpp"
#include "matrix/dfs_io.hpp"

namespace mri::core {

MapReduceInverter::MapReduceInverter(const Cluster* cluster, dfs::Dfs* fs,
                                     ThreadPool* pool,
                                     FailureInjector* failures,
                                     MetricsRegistry* metrics,
                                     ChaosEngine* chaos)
    : cluster_(cluster), fs_(fs), pool_(pool), failures_(failures),
      metrics_(metrics), chaos_(chaos) {
  MRI_REQUIRE(cluster != nullptr && fs != nullptr && pool != nullptr,
              "MapReduceInverter needs a cluster, a DFS and a thread pool");
}

MapReduceInverter::Result MapReduceInverter::invert(
    const Matrix& a, const InversionOptions& options) {
  MRI_REQUIRE(a.square(), "invert expects a square matrix, got "
                              << a.rows() << "x" << a.cols());
  const std::string input_path = dfs::join(options.work_dir, "a.bin");
  if (fs_->exists(input_path)) fs_->remove(input_path);
  write_matrix(*fs_, input_path, a);
  return invert_dfs(input_path, options);
}

MapReduceInverter::Result MapReduceInverter::invert_dfs(
    const std::string& input_path, const InversionOptions& options) {
  // RAII engine scope: the spin engine registers itself with the DFS (tier
  // listener) and the chaos engine (lineage kill handler) for exactly this
  // inversion, and restores both on destruction.
  std::unique_ptr<engine::SpinEngine> spin;
  if (options.spin()) {
    spin = std::make_unique<engine::SpinEngine>(fs_, chaos_,
                                                &cluster_->cost_model(),
                                                metrics_,
                                                options.cache_capacity_bytes);
  }
  mr::JobRunner runner(cluster_, fs_, pool_, failures_, metrics_, chaos_,
                       spin.get());
  mr::Pipeline pipeline(&runner);
  Result result = invert_with(pipeline, input_path, options);
  if (spin != nullptr) {
    result.engine_active = true;
    result.engine_stats = spin->stats();
  }
  return result;
}

MapReduceInverter::Result MapReduceInverter::invert_on(
    mr::Pipeline& pipeline, const Matrix& a, const InversionOptions& options) {
  MRI_REQUIRE(a.square(), "invert expects a square matrix, got "
                              << a.rows() << "x" << a.cols());
  const std::string input_path = dfs::join(options.work_dir, "a.bin");
  if (fs_->exists(input_path)) fs_->remove(input_path);
  write_matrix(*fs_, input_path, a);
  return invert_with(pipeline, input_path, options);
}

MapReduceInverter::Result MapReduceInverter::invert_with(
    mr::Pipeline& pipeline, const std::string& input_path,
    const InversionOptions& options) {
  const MatrixShape shape = read_matrix_shape(*fs_, input_path);
  MRI_REQUIRE(shape.rows == shape.cols, "input matrix is not square");
  const Index n = shape.rows;
  const int m0 = cluster_->size();

  Result result;
  result.plan = InversionPlan::make(n, options.nb, m0);
  MRI_INFO() << "inverting order-" << n << " matrix on " << m0
             << " nodes: depth " << result.plan.depth << ", "
             << result.plan.total_jobs << " jobs";

  // Step 1 (§5.1): the master writes the MapInput control files.
  std::vector<std::string> control_files;
  control_files.reserve(static_cast<std::size_t>(m0));
  for (int j = 0; j < m0; ++j) {
    const std::string path =
        dfs::join(options.work_dir, "MapInput/A." + std::to_string(j));
    if (!fs_->exists(path)) fs_->write_text(path, std::to_string(j));
    control_files.push_back(path);
  }

  // Step 2: the partition job (Algorithm 3).
  PartitionGeometry geom =
      make_partition_geometry(n, options.nb, m0, options.work_dir);
  geom.intermediate_tier = options.intermediate_tier();
  const mr::JobHandle partition =
      pipeline.submit(make_partition_job(geom, input_path, control_files));
  pipeline.wait(partition);

  // Step 3: the LU pipeline (Algorithm 2), chained onto the partition job.
  const double penalty = cluster_->cost_model().column_stride_penalty;
  LuPipeline lu(&pipeline, fs_, options, m0, penalty, control_files,
                partition);
  LuNodePtr root = lu.factor_partitioned(geom);

  // The determinant falls out of the factors: the master reads the leaf U
  // diagonals (charged) and the permutation parity is in memory.
  {
    IoStats det_io;
    const Determinant det = factor_determinant(*fs_, *root, &det_io);
    result.det_log_abs = det.log_abs;
    result.det_sign = det.sign;
    pipeline.add_master_work(det_io);
  }

  // Step 4: triangular inversion and final product (§5.4).
  auto inv_ctx = std::make_shared<InverseJobContext>();
  inv_ctx->root = root.get();
  inv_ctx->n = n;
  inv_ctx->opts = options;
  inv_ctx->dir = options.work_dir;
  inv_ctx->m0 = m0;
  inv_ctx->layout_penalty = penalty;
  plan_inverse_job(inv_ctx.get());
  if (options.overlap_final_stage) {
    // DAG mode: L⁻¹ and U⁻¹ are independent map-only jobs sharing the
    // cluster's slots; only the multiply/permute job needs both (diamond
    // over the last LU job).
    InverseStageJobs stage = make_inverse_stage_jobs(inv_ctx, control_files);
    const mr::JobHandle hl =
        pipeline.submit(std::move(stage.invert_l), {lu.last_job()});
    const mr::JobHandle hu =
        pipeline.submit(std::move(stage.invert_u), {lu.last_job()});
    result.final_job = pipeline.submit(std::move(stage.multiply), {hl, hu});
  } else {
    result.final_job = pipeline.submit(make_inverse_job(inv_ctx, control_files));
  }
  pipeline.wait(result.final_job);

  result.inverse = assemble_inverse(*fs_, *inv_ctx);
  result.report.sim_seconds = pipeline.total_sim_seconds();
  result.report.master_seconds = pipeline.master_seconds();
  result.report.io = pipeline.total_io();
  result.report.jobs = pipeline.job_count();
  result.report.failures_recovered = pipeline.failures_recovered();
  result.jobs = pipeline.jobs();
  result.master_spans = pipeline.master_spans();

  // Stage split: the final stage is the last job (or the three-job diamond
  // in overlap mode); everything else (partition, LU jobs, master leaf LUs)
  // is the decomposition stage.
  if (options.overlap_final_stage) {
    const std::vector<mr::JobResult>& jobs = result.jobs;
    const std::size_t first = jobs.size() - 3;
    // The stage's wall time is makespan minus the stage's start (the three
    // jobs overlap, so per-job sims don't add up).
    result.inversion_stage.sim_seconds =
        result.report.sim_seconds - jobs[first].start_seconds;
    for (std::size_t i = first; i < jobs.size(); ++i) {
      result.inversion_stage.io += jobs[i].io;
    }
    result.inversion_stage.jobs = 3;
    result.lu_stage = result.report;
    result.lu_stage.sim_seconds = jobs[first].start_seconds;
    result.lu_stage.io = result.report.io - result.inversion_stage.io;
    result.lu_stage.jobs = result.report.jobs - 3;
  } else {
    const mr::JobResult& final_job = pipeline.jobs().back();
    result.inversion_stage.sim_seconds = final_job.sim_seconds;
    result.inversion_stage.io = final_job.io;
    result.inversion_stage.jobs = 1;
    result.lu_stage = result.report;
    result.lu_stage.sim_seconds -= final_job.sim_seconds;
    result.lu_stage.io = result.report.io - final_job.io;
    result.lu_stage.jobs = result.report.jobs - 1;
  }

  const int expected_jobs =
      result.plan.total_jobs + (options.overlap_final_stage ? 2 : 0);
  MRI_CHECK_MSG(pipeline.job_count() == expected_jobs,
                "pipeline ran " << pipeline.job_count() << " jobs, plan said "
                                << expected_jobs);

  if (!options.keep_intermediates) {
    // Keep the input and control files (reusable); drop everything the
    // pipeline wrote under the work dir.
    for (const std::string& name : fs_->list(options.work_dir)) {
      if (name == "MapInput" || dfs::join(options.work_dir, name) == input_path)
        continue;
      fs_->remove(dfs::join(options.work_dir, name), /*recursive=*/true);
    }
  }
  return result;
}

MapReduceInverter::SolveResult MapReduceInverter::solve(
    const Matrix& a, const Matrix& b, const InversionOptions& options) {
  MRI_REQUIRE(a.rows() == b.rows(), "solve shape mismatch: A has "
                                        << a.rows() << " rows, B has "
                                        << b.rows());
  MRI_REQUIRE(a.square(), "solve expects a square A, got " << a.rows() << "x"
                                                           << a.cols());
  const std::string input_path = dfs::join(options.work_dir, "a.bin");
  if (fs_->exists(input_path)) fs_->remove(input_path);
  write_matrix(*fs_, input_path, a);

  // One pipeline for the whole solve: the multiply is submitted against the
  // inversion's final job, so every job lives on the same cluster timeline
  // (no manual clock shifting) and can lease slots from the shared pool.
  std::unique_ptr<engine::SpinEngine> spin;
  if (options.spin()) {
    spin = std::make_unique<engine::SpinEngine>(fs_, chaos_,
                                                &cluster_->cost_model(),
                                                metrics_,
                                                options.cache_capacity_bytes);
  }
  mr::JobRunner runner(cluster_, fs_, pool_, failures_, metrics_, chaos_,
                       spin.get());
  mr::Pipeline pipeline(&runner);
  Result inv = invert_with(pipeline, input_path, options);

  std::vector<std::string> control_files;
  for (int j = 0; j < cluster_->size(); ++j) {
    control_files.push_back(
        dfs::join(options.work_dir, "MapInput/A." + std::to_string(j)));
  }
  SolveResult result;
  result.x = mapreduce_multiply(&pipeline, fs_, cluster_->size(), inv.inverse,
                                b, options.work_dir, control_files,
                                options.multiply, inv.final_job,
                                &result.multiply_plan);
  pipeline.run_all();
  result.report = inv.report;
  result.report.sim_seconds = pipeline.total_sim_seconds();
  result.report.io = pipeline.total_io();
  result.report.jobs = pipeline.job_count();
  result.report.failures_recovered = pipeline.failures_recovered();
  result.jobs = pipeline.jobs();
  result.master_spans = pipeline.master_spans();
  return result;
}

}  // namespace mri::core
