#include "core/inverter.hpp"

#include "common/logging.hpp"
#include "core/assemble.hpp"
#include "core/inverse_job.hpp"
#include "core/lu_pipeline.hpp"
#include "core/multiply_job.hpp"
#include "core/partition.hpp"
#include "dfs/path.hpp"
#include "matrix/dfs_io.hpp"

namespace mri::core {

MapReduceInverter::MapReduceInverter(const Cluster* cluster, dfs::Dfs* fs,
                                     ThreadPool* pool,
                                     FailureInjector* failures,
                                     MetricsRegistry* metrics)
    : cluster_(cluster), fs_(fs), pool_(pool), failures_(failures),
      metrics_(metrics) {
  MRI_REQUIRE(cluster != nullptr && fs != nullptr && pool != nullptr,
              "MapReduceInverter needs a cluster, a DFS and a thread pool");
}

MapReduceInverter::Result MapReduceInverter::invert(
    const Matrix& a, const InversionOptions& options) {
  MRI_REQUIRE(a.square(), "invert expects a square matrix, got "
                              << a.rows() << "x" << a.cols());
  const std::string input_path = dfs::join(options.work_dir, "a.bin");
  if (fs_->exists(input_path)) fs_->remove(input_path);
  write_matrix(*fs_, input_path, a);
  return invert_dfs(input_path, options);
}

MapReduceInverter::Result MapReduceInverter::invert_dfs(
    const std::string& input_path, const InversionOptions& options) {
  const MatrixShape shape = read_matrix_shape(*fs_, input_path);
  MRI_REQUIRE(shape.rows == shape.cols, "input matrix is not square");
  const Index n = shape.rows;
  const int m0 = cluster_->size();

  Result result;
  result.plan = InversionPlan::make(n, options.nb, m0);
  MRI_INFO() << "inverting order-" << n << " matrix on " << m0
             << " nodes: depth " << result.plan.depth << ", "
             << result.plan.total_jobs << " jobs";

  // Step 1 (§5.1): the master writes the MapInput control files.
  std::vector<std::string> control_files;
  control_files.reserve(static_cast<std::size_t>(m0));
  for (int j = 0; j < m0; ++j) {
    const std::string path =
        dfs::join(options.work_dir, "MapInput/A." + std::to_string(j));
    if (!fs_->exists(path)) fs_->write_text(path, std::to_string(j));
    control_files.push_back(path);
  }

  mr::JobRunner runner(cluster_, fs_, pool_, failures_, metrics_);
  mr::Pipeline pipeline(&runner);

  // Step 2: the partition job (Algorithm 3).
  PartitionGeometry geom =
      make_partition_geometry(n, options.nb, m0, options.work_dir);
  geom.intermediate_tier = options.intermediate_tier();
  pipeline.run(make_partition_job(geom, input_path, control_files));

  // Step 3: the LU pipeline (Algorithm 2).
  const double penalty = cluster_->cost_model().column_stride_penalty;
  LuPipeline lu(&pipeline, fs_, options, m0, penalty, control_files);
  LuNodePtr root = lu.factor_partitioned(geom);

  // The determinant falls out of the factors: the master reads the leaf U
  // diagonals (charged) and the permutation parity is in memory.
  {
    IoStats det_io;
    const Determinant det = factor_determinant(*fs_, *root, &det_io);
    result.det_log_abs = det.log_abs;
    result.det_sign = det.sign;
    pipeline.add_master_work(det_io);
  }

  // Step 4: triangular inversion and final product (§5.4).
  auto inv_ctx = std::make_shared<InverseJobContext>();
  inv_ctx->root = root.get();
  inv_ctx->n = n;
  inv_ctx->opts = options;
  inv_ctx->dir = options.work_dir;
  inv_ctx->m0 = m0;
  inv_ctx->layout_penalty = penalty;
  plan_inverse_job(inv_ctx.get());
  pipeline.run(make_inverse_job(inv_ctx, control_files));

  result.inverse = assemble_inverse(*fs_, *inv_ctx);
  result.report.sim_seconds = pipeline.total_sim_seconds();
  result.report.master_seconds = pipeline.master_seconds();
  result.report.io = pipeline.total_io();
  result.report.jobs = pipeline.job_count();
  result.report.failures_recovered = pipeline.failures_recovered();
  result.jobs = pipeline.jobs();

  // Stage split: the final job is the last in the pipeline; everything else
  // (partition, LU jobs, master leaf LUs) is the decomposition stage.
  const mr::JobResult& final_job = pipeline.jobs().back();
  result.inversion_stage.sim_seconds = final_job.sim_seconds;
  result.inversion_stage.io = final_job.io;
  result.inversion_stage.jobs = 1;
  result.lu_stage = result.report;
  result.lu_stage.sim_seconds -= final_job.sim_seconds;
  result.lu_stage.io = result.report.io - final_job.io;
  result.lu_stage.jobs = result.report.jobs - 1;

  MRI_CHECK_MSG(pipeline.job_count() == result.plan.total_jobs,
                "pipeline ran " << pipeline.job_count() << " jobs, plan said "
                                << result.plan.total_jobs);

  if (!options.keep_intermediates) {
    // Keep the input and control files (reusable); drop everything the
    // pipeline wrote under the work dir.
    for (const std::string& name : fs_->list(options.work_dir)) {
      if (name == "MapInput" || dfs::join(options.work_dir, name) == input_path)
        continue;
      fs_->remove(dfs::join(options.work_dir, name), /*recursive=*/true);
    }
  }
  return result;
}

MapReduceInverter::SolveResult MapReduceInverter::solve(
    const Matrix& a, const Matrix& b, const InversionOptions& options) {
  MRI_REQUIRE(a.rows() == b.rows(), "solve shape mismatch: A has "
                                        << a.rows() << " rows, B has "
                                        << b.rows());
  Result inv = invert(a, options);

  std::vector<std::string> control_files;
  for (int j = 0; j < cluster_->size(); ++j) {
    control_files.push_back(
        dfs::join(options.work_dir, "MapInput/A." + std::to_string(j)));
  }
  mr::JobRunner runner(cluster_, fs_, pool_, failures_, metrics_);
  mr::Pipeline pipeline(&runner);
  SolveResult result;
  result.x = mapreduce_multiply(&pipeline, fs_, cluster_->size(), inv.inverse,
                                b, options.work_dir, control_files);
  result.report = inv.report;
  result.report.sim_seconds += pipeline.total_sim_seconds();
  result.report.io += pipeline.total_io();
  result.report.jobs += pipeline.job_count();
  result.jobs = std::move(inv.jobs);
  for (mr::JobResult job : pipeline.jobs()) {
    // The multiply pipeline's own clock starts at 0; shift onto the
    // inversion's run timeline.
    job.start_seconds += inv.report.sim_seconds;
    result.jobs.push_back(std::move(job));
  }
  return result;
}

}  // namespace mri::core
