// Distributed matrix multiplication as one MapReduce job.
//
// The paper's §6.2 block-wrap analysis is stated for matrix multiplication
// in general; this job packages it as a standalone library operation (the
// kind of composable building block SystemML offers, §3): the input
// operands live in the DFS as TileSets, the reducers compute the f1 x f2
// grid blocks of C = A·B reading (n/f1 + n/f2)-sized slabs each, and the
// result is again a TileSet. Mappers only fan out the control records; the
// operands were written by whoever produced them (no map-side data motion),
// matching how B = A4 − L2'·U2 is computed inside the inversion pipeline.
#pragma once

#include <memory>
#include <string>

#include "core/options.hpp"
#include "core/tile_set.hpp"
#include "mapreduce/pipeline.hpp"
#include "matrix/layout.hpp"

namespace mri::core {

struct MultiplyJobContext {
  TileSet a;  // r x k
  TileSet b;  // k x c
  std::string dir;  // writes MUL/C.<t>
  int m0 = 1;
  int grid_rows = 1, grid_cols = 1;
  dfs::StorageTier tier = dfs::StorageTier::kDisk;
  TileSet c_out;  // planned output geometry (r x c)
};

using MultiplyJobContextPtr = std::shared_ptr<const MultiplyJobContext>;

/// Plans the reducer grid (block wrap over m0) and the output TileSet.
void plan_multiply_job(MultiplyJobContext* ctx);

mr::JobSpec make_multiply_job(MultiplyJobContextPtr ctx,
                              std::vector<std::string> control_files,
                              std::string job_name);

/// Convenience facade: runs C = A·B as one job on the cluster behind
/// `pipeline`, with `a` and `b` ingested from memory, and returns C.
/// `after` (optional) makes the job depend on an earlier submission — e.g.
/// solve() chains its multiply onto the inversion's final job. (Callers
/// composing with existing DFS data should build the job spec directly from
/// TileSets.)
Matrix mapreduce_multiply(mr::Pipeline* pipeline, dfs::Dfs* fs, int m0,
                          const Matrix& a, const Matrix& b,
                          const std::string& work_dir,
                          std::vector<std::string> control_files,
                          mr::JobHandle after = {});

}  // namespace mri::core
