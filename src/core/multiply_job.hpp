// Distributed matrix multiplication as MapReduce jobs.
//
// The paper's §6.2 block-wrap analysis is stated for matrix multiplication
// in general; this job packages it as a standalone library operation (the
// kind of composable building block SystemML offers, §3): the input
// operands live in the DFS as TileSets, the reducers compute the f1 x f2
// grid blocks of C = A·B reading (n/f1 + n/f2)-sized slabs each, and the
// result is again a TileSet. Mappers only fan out the control records; the
// operands were written by whoever produced them (no map-side data motion),
// matching how B = A4 − L2'·U2 is computed inside the inversion pipeline.
//
// The HOW of the multiply is pluggable (see core/multiply_strategy.hpp):
// the wrap strategy runs the single job above, the multi-round strategy
// chains ceil(m0/r) jobs that each accumulate r k-segments onto carry
// tiles — the replication/rounds tradeoff of arXiv 1111.2228 / 1408.2858.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/options.hpp"
#include "core/tile_set.hpp"
#include "mapreduce/pipeline.hpp"
#include "matrix/layout.hpp"

namespace mri::core {

struct MultiplyJobContext {
  TileSet a;  // r x k
  TileSet b;  // k x c
  std::string dir;  // writes MUL/C.<t> (multi-round carries: MULR/C.<t>.<i>)
  int m0 = 1;
  int grid_rows = 1, grid_cols = 1;
  dfs::StorageTier tier = dfs::StorageTier::kDisk;
  TileSet c_out;  // planned output geometry (r x c)

  // Strategy schedule (filled by the strategy's plan step). Wrap keeps the
  // defaults: one round over one k-segment.
  MultiplyStrategyOptions strategy;
  int segments = 1;  // κ: number of k-segments the inner dimension is cut into
  int rounds = 1;    // ceil(segments / replication)
};

using MultiplyJobContextPtr = std::shared_ptr<const MultiplyJobContext>;

/// What a multiply strategy decided to run: exposed so benches/tests can
/// check the space-round tradeoff without re-deriving the schedule.
struct MultiplyPlan {
  int strategy_jobs = 1;  // jobs submitted for the multiply (wrap: 1)
  int rounds = 1;         // kMultiRound: ceil(segments / replication)
  int segments = 1;       // kMultiRound: κ (k-segment count)
  int replication = 1;    // effective r after clamping to [1, segments]
  int grid_rows = 1, grid_cols = 1;
  /// Largest number of operand + carry + output bytes any one reduce task
  /// holds at once (the per-task space side of the tradeoff).
  std::uint64_t peak_task_bytes = 0;
};

/// Plans the reducer grid (block wrap over m0) and the output TileSet.
void plan_multiply_job(MultiplyJobContext* ctx);

mr::JobSpec make_multiply_job(MultiplyJobContextPtr ctx,
                              std::vector<std::string> control_files,
                              std::string job_name);

/// One round of the multi-round strategy: each reduce task reads the carry
/// tile written by the previous round (round > 0), accumulates its next r
/// k-segment products onto it, and writes the result — to MULR/C.<t>.<round>
/// for inner rounds, to the final MUL/C.<t> on the last round. Requires a
/// context planned by the multi-round strategy (segments/rounds set, A
/// tiled as grid_rows x segments blocks and B as segments x grid_cols).
mr::JobSpec make_multiply_round_job(MultiplyJobContextPtr ctx, int round,
                                    std::vector<std::string> control_files,
                                    std::string job_name);

/// Convenience facade: runs C = A·B on the cluster behind `pipeline`, with
/// `a` and `b` ingested from memory, and returns C. The schedule — one
/// block-wrap job or a chain of multi-round jobs — comes from `strategy`.
/// `after` (optional) makes the first job depend on an earlier submission —
/// e.g. solve() chains its multiply onto the inversion's final job.
/// `plan_out` (optional) receives the executed schedule. (Callers composing
/// with existing DFS data should build job specs directly from TileSets.)
Matrix mapreduce_multiply(mr::Pipeline* pipeline, dfs::Dfs* fs, int m0,
                          const Matrix& a, const Matrix& b,
                          const std::string& work_dir,
                          std::vector<std::string> control_files,
                          const MultiplyStrategyOptions& strategy = {},
                          mr::JobHandle after = {},
                          MultiplyPlan* plan_out = nullptr);

}  // namespace mri::core
