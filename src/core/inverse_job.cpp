#include "core/inverse_job.hpp"

#include <algorithm>

#include "core/assemble.hpp"
#include "dfs/path.hpp"
#include "linalg/triangular.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/layout.hpp"
#include "matrix/ops.hpp"

namespace mri::core {

std::vector<Index> interleaved_ids(Index n, int workers, int s) {
  std::vector<Index> ids;
  for (Index k = s; k < n; k += workers) ids.push_back(k);
  return ids;
}

RowRange file_group(int count, int groups, int g) {
  return stripe(count, groups, g);
}

namespace {

/// Exact flop count of computing the listed columns of L⁻¹ via Eq. 4
/// (column k costs ~(n-k)²/2 multiplies).
IoStats column_inverse_cost(Index n, const std::vector<Index>& ids) {
  IoStats io;
  for (Index k : ids) {
    const auto len = static_cast<std::uint64_t>(n - k);
    io.mults += len * len / 2;
    io.adds += len * len / 2;
  }
  return io;
}

IoStats penalized(IoStats io, double factor) {
  io.mults = static_cast<std::uint64_t>(static_cast<double>(io.mults) * factor);
  io.adds = static_cast<std::uint64_t>(static_cast<double>(io.adds) * factor);
  return io;
}

// ---- indexed block files (final output format) ---------------------------
//
// u64 K1 | u64 K2 | K1 row ids | K2 column ids (already permuted) | K1*K2
// doubles, row-major.

void write_indexed_block(dfs::Dfs& fs, const std::string& path,
                         const std::vector<Index>& row_ids,
                         const std::vector<Index>& col_ids, const Matrix& data,
                         IoStats* account) {
  MRI_CHECK(data.rows() == static_cast<Index>(row_ids.size()) &&
            data.cols() == static_cast<Index>(col_ids.size()));
  dfs::Dfs::Writer w = fs.create(path, account);
  w.write_u64(row_ids.size());
  w.write_u64(col_ids.size());
  for (Index r : row_ids) w.write_u64(static_cast<std::uint64_t>(r));
  for (Index c : col_ids) w.write_u64(static_cast<std::uint64_t>(c));
  w.write_doubles(data.data());
  w.close();
}

struct IndexedBlock {
  std::vector<Index> row_ids, col_ids;
  Matrix data;
};

IndexedBlock read_indexed_block(const dfs::Dfs& fs, const std::string& path,
                                IoStats* account) {
  auto r = fs.open(path, account);
  IndexedBlock block;
  const auto k1 = static_cast<Index>(r.read_u64());
  const auto k2 = static_cast<Index>(r.read_u64());
  block.row_ids.resize(static_cast<std::size_t>(k1));
  block.col_ids.resize(static_cast<std::size_t>(k2));
  for (auto& v : block.row_ids) v = static_cast<Index>(r.read_u64());
  for (auto& v : block.col_ids) v = static_cast<Index>(r.read_u64());
  block.data = Matrix(k1, k2);
  r.read_doubles(block.data.data());
  return block;
}

// ---- mappers --------------------------------------------------------------

void invert_l_slice(const InverseJobContext& c, int s, mr::TaskContext& task) {
  const std::vector<Index> ids = interleaved_ids(c.n, c.l_workers, s);
  if (ids.empty()) return;
  const Matrix l = assemble_l(task.fs(), *c.root, &task.io());
  const Matrix cols = invert_lower_columns(l, ids);  // n x K
  task.add_flops(column_inverse_cost(c.n, ids));
  write_matrix(task.fs(), dfs::join(c.dir, "INV/L." + std::to_string(s)),
               cols, &task.io(), c.opts.intermediate_tier());
}

void invert_u_slice(const InverseJobContext& c, int s, mr::TaskContext& task) {
  const std::vector<Index> ids = interleaved_ids(c.n, c.u_workers, s);
  if (ids.empty()) return;
  const Matrix ut = assemble_ut(task.fs(), *c.root, &task.io());
  // Columns of (Uᵀ)⁻¹ are rows of U⁻¹; store them as rows (K x n) so the
  // reducers' multiply streams them.
  const Matrix cols = invert_lower_columns(ut, ids);
  IoStats flops = column_inverse_cost(c.n, ids);
  if (!c.opts.transposed_u) flops = penalized(flops, c.layout_penalty);
  task.add_flops(flops);
  write_matrix(task.fs(), dfs::join(c.dir, "INV/U." + std::to_string(s)),
               transpose(cols), &task.io(), c.opts.intermediate_tier());
}

class InverseMapper : public mr::Mapper {
 public:
  explicit InverseMapper(InverseJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void map(std::int64_t key, const std::string& value,
           mr::TaskContext& task) override {
    const int i = std::stoi(value);
    if (ctx_->m0 == 1) {
      invert_l_slice(*ctx_, 0, task);
      invert_u_slice(*ctx_, 0, task);
    } else if (i < ctx_->l_workers) {
      invert_l_slice(*ctx_, i, task);
    } else {
      invert_u_slice(*ctx_, i - ctx_->l_workers, task);
    }
    task.emit(key, std::to_string(i));
  }

 private:
  InverseJobContextPtr ctx_;
};

/// Map-only: control file j (j < l_workers) -> the L⁻¹ column slice j.
class InverseLMapper : public mr::Mapper {
 public:
  explicit InverseLMapper(InverseJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void map(std::int64_t /*key*/, const std::string& value,
           mr::TaskContext& task) override {
    invert_l_slice(*ctx_, std::stoi(value), task);
  }

 private:
  InverseJobContextPtr ctx_;
};

/// Map-only: control file l_workers + s -> the U⁻¹ row slice s (with a
/// single node, control file 0 -> slice 0).
class InverseUMapper : public mr::Mapper {
 public:
  explicit InverseUMapper(InverseJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void map(std::int64_t /*key*/, const std::string& value,
           mr::TaskContext& task) override {
    const int slice = ctx_->m0 == 1 ? 0 : std::stoi(value) - ctx_->l_workers;
    invert_u_slice(*ctx_, slice, task);
  }

 private:
  InverseJobContextPtr ctx_;
};

/// Control fan-out for the split multiply job: the INV/ slices are already
/// in the DFS, so the mappers only route one record per reducer key.
class InverseMulMapper : public mr::Mapper {
 public:
  void map(std::int64_t key, const std::string& value,
           mr::TaskContext& task) override {
    task.emit(key, value);
  }
};

// ---- reducer ----------------------------------------------------------------

class InverseReducer : public mr::Reducer {
 public:
  explicit InverseReducer(InverseJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void reduce(std::int64_t key, const std::vector<std::string>& /*values*/,
              mr::TaskContext& task) override {
    if (key != task.task_index()) return;
    const InverseJobContext& c = *ctx_;
    const int t = task.task_index();

    // Which U⁻¹ rows this reducer owns, and which L files it reads.
    std::vector<Index> row_ids;
    std::vector<Matrix> u_parts;
    RowRange l_files;
    if (c.opts.block_wrap) {
      // §6.2 grid cell: a group of U files x a group of L files.
      const RowRange u_files =
          file_group(c.u_workers, c.u_groups, t / c.l_groups);
      l_files = file_group(c.l_workers, c.l_groups, t % c.l_groups);
      if (u_files.count() == 0 || l_files.count() == 0) return;
      for (Index f = u_files.begin; f < u_files.end; ++f) {
        const auto ids = interleaved_ids(c.n, c.u_workers, static_cast<int>(f));
        if (ids.empty()) continue;
        u_parts.push_back(read_matrix(
            task.fs(), dfs::join(c.dir, "INV/U." + std::to_string(f)),
            &task.io()));
        row_ids.insert(row_ids.end(), ids.begin(), ids.end());
      }
    } else {
      // Naive baseline: all m0 reducers compute row bands of the product;
      // reducer t takes a slice of U file (t mod u_workers) and reads every
      // L file — the (1 + 1/m0)·n² per-node read of §6.2.
      const int file = t % c.u_workers;
      const int slice = t / c.u_workers;
      const int slices = (c.m0 + c.u_workers - 1) / c.u_workers;
      const auto ids = interleaved_ids(c.n, c.u_workers, file);
      const RowRange r =
          stripe(static_cast<Index>(ids.size()), slices, slice);
      if (r.count() == 0) return;
      const Matrix whole = read_matrix(
          task.fs(), dfs::join(c.dir, "INV/U." + std::to_string(file)),
          &task.io());
      u_parts.push_back(whole.block(r.begin, r.end, 0, c.n));
      row_ids.assign(ids.begin() + r.begin, ids.begin() + r.end);
      l_files = RowRange{0, static_cast<Index>(c.l_workers)};
    }

    Matrix u_rows(static_cast<Index>(row_ids.size()), c.n);
    {
      Index at = 0;
      for (const Matrix& part : u_parts) {
        u_rows.set_block(at, 0, part);
        at += part.rows();
      }
    }

    // Stack the L⁻¹ columns of this cell's L files.
    std::vector<Index> col_ids;
    std::vector<Matrix> l_parts;
    for (Index f = l_files.begin; f < l_files.end; ++f) {
      const auto ids = interleaved_ids(c.n, c.l_workers, static_cast<int>(f));
      if (ids.empty()) continue;
      l_parts.push_back(read_matrix(
          task.fs(), dfs::join(c.dir, "INV/L." + std::to_string(f)),
          &task.io()));
      col_ids.insert(col_ids.end(), ids.begin(), ids.end());
    }
    Matrix l_cols(c.n, static_cast<Index>(col_ids.size()));
    {
      Index at = 0;
      for (const Matrix& part : l_parts) {
        l_cols.set_block(0, at, part);
        at += part.cols();
      }
    }

    Matrix product = matmul(u_rows, l_cols);
    // Exact work of the triangular product: row r of U⁻¹ has nonzeros at
    // columns >= r, column k of L⁻¹ at rows >= k, so the inner product for
    // (r, k) runs over n - max(r, k) terms (this is the paper's (1/3)n³
    // leading term when summed over the whole matrix).
    IoStats flops;
    for (Index r : row_ids) {
      for (Index k : col_ids) {
        flops.mults += static_cast<std::uint64_t>(c.n - std::max(r, k));
      }
    }
    flops.adds = flops.mults;
    if (!c.opts.transposed_u) flops = penalized(flops, c.layout_penalty);
    task.add_flops(flops);

    // A⁻¹ = U⁻¹L⁻¹P: product column k is final column S[k].
    std::vector<Index> out_col_ids;
    out_col_ids.reserve(col_ids.size());
    for (Index k : col_ids) out_col_ids.push_back(c.root->perm[k]);

    write_indexed_block(task.fs(), dfs::join(c.dir, "AINV/A." + std::to_string(t)),
                        row_ids, out_col_ids, product, &task.io());
  }

 private:
  InverseJobContextPtr ctx_;
};

}  // namespace

void plan_inverse_job(InverseJobContext* ctx) {
  MRI_REQUIRE(ctx != nullptr && ctx->root != nullptr, "incomplete context");
  if (ctx->m0 == 1) {
    ctx->l_workers = ctx->u_workers = 1;
  } else {
    ctx->l_workers = (ctx->m0 + 1) / 2;
    ctx->u_workers = ctx->m0 - ctx->l_workers;
  }
  if (ctx->opts.block_wrap) {
    const BlockWrapFactors f = block_wrap_factors(ctx->m0);
    ctx->u_groups = std::min(f.f1, ctx->u_workers);
    ctx->l_groups = std::min(f.f2, ctx->l_workers);
  } else {
    // §6.2 off: all m0 reducers compute row bands, each reading every L
    // file (u_groups * l_groups is still the reduce-task count).
    ctx->u_groups = ctx->m0;
    ctx->l_groups = 1;
  }
}

mr::JobSpec make_inverse_job(InverseJobContextPtr ctx,
                             std::vector<std::string> control_files) {
  MRI_REQUIRE(ctx != nullptr, "null inverse job context");
  mr::JobSpec spec;
  spec.name = "invert";
  spec.input_files = std::move(control_files);
  spec.num_reduce_tasks = ctx->u_groups * ctx->l_groups;
  spec.mapper_factory = [ctx] { return std::make_unique<InverseMapper>(ctx); };
  spec.reducer_factory = [ctx] {
    return std::make_unique<InverseReducer>(ctx);
  };
  return spec;
}

InverseStageJobs make_inverse_stage_jobs(
    InverseJobContextPtr ctx, const std::vector<std::string>& control_files) {
  MRI_REQUIRE(ctx != nullptr, "null inverse job context");
  MRI_REQUIRE(static_cast<int>(control_files.size()) >= ctx->m0,
              "need one control file per worker");
  InverseStageJobs jobs;

  // The same control files the combined job's workers would read: files
  // [0, l_workers) drive L slices, files [l_workers, m0) drive U slices
  // (both on file 0 when there is a single worker).
  jobs.invert_l.name = "invert-l";
  jobs.invert_l.input_files.assign(
      control_files.begin(),
      control_files.begin() + ctx->l_workers);
  jobs.invert_l.mapper_factory = [ctx] {
    return std::make_unique<InverseLMapper>(ctx);
  };

  jobs.invert_u.name = "invert-u";
  if (ctx->m0 == 1) {
    jobs.invert_u.input_files.assign(control_files.begin(),
                                     control_files.begin() + 1);
  } else {
    jobs.invert_u.input_files.assign(
        control_files.begin() + ctx->l_workers,
        control_files.begin() + ctx->m0);
  }
  jobs.invert_u.mapper_factory = [ctx] {
    return std::make_unique<InverseUMapper>(ctx);
  };

  jobs.multiply.name = "invert-mul";
  jobs.multiply.input_files.assign(control_files.begin(),
                                   control_files.begin() + ctx->m0);
  jobs.multiply.num_reduce_tasks = ctx->u_groups * ctx->l_groups;
  jobs.multiply.mapper_factory = [] {
    return std::make_unique<InverseMulMapper>();
  };
  jobs.multiply.reducer_factory = [ctx] {
    return std::make_unique<InverseReducer>(ctx);
  };
  return jobs;
}

Matrix assemble_inverse(const dfs::Dfs& fs, const InverseJobContext& ctx) {
  Matrix out(ctx.n, ctx.n);
  const int reduce_tasks = ctx.u_groups * ctx.l_groups;
  for (int t = 0; t < reduce_tasks; ++t) {
    const std::string path = dfs::join(ctx.dir, "AINV/A." + std::to_string(t));
    if (!fs.exists(path)) continue;  // empty cell
    const IndexedBlock block = read_indexed_block(fs, path, nullptr);
    for (Index i = 0; i < block.data.rows(); ++i) {
      for (Index j = 0; j < block.data.cols(); ++j) {
        out(block.row_ids[static_cast<std::size_t>(i)],
            block.col_ids[static_cast<std::size_t>(j)]) = block.data(i, j);
      }
    }
  }
  return out;
}

}  // namespace mri::core
