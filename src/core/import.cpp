#include "core/import.hpp"

#include "common/error.hpp"
#include "dfs/path.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/layout.hpp"
#include "matrix/text_format.hpp"

namespace mri::core {

namespace {

/// Hadoop TextInputFormat split semantics: a mapper owns the lines that
/// START inside its byte range [begin, end); the first mapper also owns
/// byte 0. A line starts right after a '\n'.
struct ByteSplit {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

ByteSplit split_of(std::uint64_t file_size, int m0, int worker) {
  const RowRange r = stripe(static_cast<Index>(file_size), m0, worker);
  return ByteSplit{static_cast<std::uint64_t>(r.begin),
                   static_cast<std::uint64_t>(r.end)};
}

/// Reads the text of the lines owned by `split`, reading past `end` to the
/// first newline when the final owned line spills over.
std::string read_owned_lines(dfs::Dfs::Reader& reader, const ByteSplit& split,
                             IoStats* /*account implicit via reader*/) {
  if (split.begin >= split.end) return {};
  // Find the first owned line start: skip the partial line the previous
  // split owns (unless this is the start of the file).
  std::uint64_t pos = split.begin;
  std::string text;
  if (split.begin > 0) {
    reader.seek(split.begin - 1);
    // Scan forward to the first '\n' at or after begin-1.
    char c = 0;
    std::uint64_t at = split.begin - 1;
    bool found = false;
    while (at < reader.size()) {
      reader.read_exact(std::as_writable_bytes(std::span<char>(&c, 1)));
      ++at;
      if (c == '\n') {
        found = true;
        break;
      }
    }
    if (!found || at >= split.end) return {};  // no line starts here
    pos = at;
  } else {
    reader.seek(0);
  }
  // Read [pos, end), then continue to the closing newline (or EOF).
  std::uint64_t want = split.end - pos;
  text.resize(want);
  reader.read_exact(
      std::as_writable_bytes(std::span<char>(text.data(), text.size())));
  while (text.empty() || text.back() != '\n') {
    char c = 0;
    if (reader.remaining() == 0) break;
    reader.read_exact(std::as_writable_bytes(std::span<char>(&c, 1)));
    text.push_back(c);
  }
  return text;
}

/// Pass 1: count the lines each split owns.
class CountMapper : public mr::Mapper {
 public:
  CountMapper(std::string text_path, std::string out_dir)
      : text_path_(std::move(text_path)), out_dir_(std::move(out_dir)) {}

  void map(std::int64_t, const std::string& value,
           mr::TaskContext& task) override {
    const int m = std::stoi(value);
    auto reader = task.fs().open(text_path_, &task.io());
    const ByteSplit split = split_of(reader.size(), task.cluster_size(), m);
    const std::string text = read_owned_lines(reader, split, &task.io());
    std::int64_t lines = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      // Count non-empty lines (blank lines are ignored by the parser too).
      if (text[i] == '\n') continue;
      ++lines;
      while (i < text.size() && text[i] != '\n') ++i;
    }
    task.fs().write_text(dfs::join(out_dir_, "count." + std::to_string(m)),
                         std::to_string(lines), &task.io());
  }

 private:
  std::string text_path_;
  std::string out_dir_;
};

/// Pass 2: parse and write the binary row-band tile at a known row offset.
class ParseMapper : public mr::Mapper {
 public:
  ParseMapper(std::string text_path, std::string out_dir,
              std::shared_ptr<const std::vector<Index>> row_offsets)
      : text_path_(std::move(text_path)),
        out_dir_(std::move(out_dir)),
        row_offsets_(std::move(row_offsets)) {}

  void map(std::int64_t, const std::string& value,
           mr::TaskContext& task) override {
    const int m = std::stoi(value);
    auto reader = task.fs().open(text_path_, &task.io());
    const ByteSplit split = split_of(reader.size(), task.cluster_size(), m);
    const std::string text = read_owned_lines(reader, split, &task.io());
    const Matrix band = matrix_from_text(text);
    if (band.rows() == 0) return;
    write_matrix(task.fs(), dfs::join(out_dir_, "band." + std::to_string(m)),
                 band, &task.io());
  }

 private:
  std::string text_path_;
  std::string out_dir_;
  std::shared_ptr<const std::vector<Index>> row_offsets_;
};

}  // namespace

Index import_text_matrix(mr::Pipeline* pipeline, dfs::Dfs* fs,
                         const std::string& text_path,
                         const std::string& bin_path,
                         std::vector<std::string> control_files) {
  MRI_REQUIRE(pipeline != nullptr && fs != nullptr, "null pipeline/fs");
  const std::string out_dir = dfs::parent(dfs::normalize(bin_path)) + "/IMPORT";
  if (fs->exists(out_dir)) fs->remove(out_dir, /*recursive=*/true);
  const int m0 = static_cast<int>(control_files.size());

  // Pass 1: line counts per split.
  {
    mr::JobSpec spec;
    spec.name = "import-count";
    spec.input_files = control_files;
    spec.mapper_factory = [text_path, out_dir] {
      return std::make_unique<CountMapper>(text_path, out_dir);
    };
    pipeline->run(spec);
  }
  auto offsets = std::make_shared<std::vector<Index>>();
  Index total_rows = 0;
  for (int m = 0; m < m0; ++m) {
    offsets->push_back(total_rows);
    const std::string path = dfs::join(out_dir, "count." + std::to_string(m));
    total_rows += fs->exists(path) ? std::stoll(fs->read_text(path)) : 0;
  }

  // Pass 2: parse into binary row bands.
  {
    mr::JobSpec spec;
    spec.name = "import-parse";
    spec.input_files = control_files;
    spec.mapper_factory = [text_path, out_dir, offsets] {
      return std::make_unique<ParseMapper>(text_path, out_dir, offsets);
    };
    pipeline->run(spec);
  }

  // Assemble the binary input file the partition job expects (master-side;
  // the bands are in order, so this is one sequential pass).
  IoStats master_io;
  Matrix full(total_rows, 0);
  bool first = true;
  for (int m = 0; m < m0; ++m) {
    const std::string path = dfs::join(out_dir, "band." + std::to_string(m));
    if (!fs->exists(path)) continue;
    const Matrix band = read_matrix(*fs, path, &master_io);
    if (first) {
      full = Matrix(total_rows, band.cols());
      first = false;
    }
    MRI_CHECK_MSG(band.cols() == full.cols(), "ragged text matrix import");
    full.set_block((*offsets)[static_cast<std::size_t>(m)], 0, band);
  }
  MRI_REQUIRE(!first, "text matrix is empty: " + text_path);
  if (fs->exists(bin_path)) fs->remove(bin_path);
  write_matrix(*fs, bin_path, full, &master_io);
  pipeline->add_master_work(master_io);
  fs->remove(out_dir, /*recursive=*/true);
  MRI_REQUIRE(total_rows == full.cols(),
              "text matrix is not square: " << total_rows << " rows, "
                                            << full.cols() << " cols");
  return total_rows;
}

}  // namespace mri::core
