#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "matrix/layout.hpp"

namespace mri::core {

const char* engine_name(Engine engine) {
  return engine == Engine::kMapReduce ? "mapreduce" : "scalapack";
}

PredictedCost predict_cost(Index n, Index nb, int m0, const CostModel& model,
                           Index block_width) {
  MRI_REQUIRE(n >= 1 && nb >= 1 && m0 >= 1 && block_width >= 1,
              "bad predict_cost arguments");
  PredictedCost cost;
  const double dn = static_cast<double>(n);
  const double n2 = dn * dn;
  const double n3 = n2 * dn;
  const double flops_sec = model.flops_per_second;
  const double read_bw = std::min(model.disk_bandwidth, model.network_bandwidth);
  // A mild tax for wave imbalance / stragglers under the node-speed spread.
  const double imbalance = 1.0 + model.node_speed_variance / 2.0;

  // ---- MapReduce pipeline --------------------------------------------------
  {
    const InversionPlan plan = InversionPlan::make(n, nb, m0);
    const double launches =
        static_cast<double>(plan.total_jobs) * model.job_launch_seconds;

    // Master: 2^d leaf LUs of order ~n/2^d, (2/3)·leaf³ flops each, plus
    // reading/writing each leaf once.
    const double leaf = dn / static_cast<double>(plan.leaves);
    const double master_flops =
        static_cast<double>(plan.leaves) * (2.0 / 3.0) * leaf * leaf * leaf;
    const double master_bytes =
        2.0 * static_cast<double>(plan.leaves) * leaf * leaf * 8.0;
    const double master = master_flops / flops_sec + master_bytes / read_bw;

    // Distributed arithmetic: 2·(n³/3) for the decomposition stage plus
    // 2·(2/3)n³ for the inversion stage, minus the master's share, spread
    // over m0 nodes.
    const double distributed_flops =
        (2.0 / 3.0) * n3 + (4.0 / 3.0) * n3 - master_flops;
    const double compute =
        distributed_flops / (static_cast<double>(m0) * flops_sec) * imbalance;

    // I/O per Tables 1 and 2 (+ the partition copy), spread over m0 nodes;
    // writes are replicated (factor replication - 1 over the network).
    const BlockWrapFactors f = block_wrap_factors(m0);
    const double l1 = (m0 + 2.0 * f.f1 + 2.0 * f.f2) / 4.0;
    const double l2 = (m0 + f.f1 + f.f2) / 2.0;
    const double read_bytes = (l1 + 3.0 + l2) * n2 * 8.0;
    const double write_bytes = (1.0 + 1.5 + 2.0) * n2 * 8.0;
    const double io = (read_bytes / read_bw + write_bytes / model.disk_bandwidth +
                       2.0 * write_bytes / model.network_bandwidth) /
                      static_cast<double>(m0);

    cost.mapreduce_seconds = launches + master + compute + io;
  }

  // ---- ScaLAPACK-style baseline -------------------------------------------
  {
    const double w = static_cast<double>(block_width);
    const double p = static_cast<double>(m0);
    // Parallel arithmetic (LU (2/3)n³ + inversion (4/3)n³ mults+adds).
    const double compute = 2.0 * n3 / (p * flops_sec) * imbalance;
    // Serial panel-factorization critical path: sum over panels of
    // ~(n - k·w)·w² flops ≈ n²·w/2 (absent for one rank: then it is part of
    // the parallel compute already counted).
    const double panel = m0 > 1 ? (n2 * w) / (2.0 * flops_sec) : 0.0;
    // Communication per rank: panel broadcasts ≈ (n²/2)·8 bytes received
    // (plus up to log2(p) forwards of a panel), and the pdgetri ring
    // allgather ≈ 2·n²·8 bytes on and off each rank.
    double comm = 0.0;
    if (m0 > 1) {
      const double tree = 1.0 + std::log2(p) * w / dn;
      comm = (0.5 * n2 * 8.0 * tree + 2.0 * n2 * 8.0) /
             model.network_bandwidth;
      // Per-panel latency of the broadcast tree.
      comm += (dn / w) * std::ceil(std::log2(p)) *
              model.message_latency_seconds;
    }
    // One read of A and one write of A⁻¹, split across ranks.
    const double io = 2.0 * n2 * 8.0 / (p * model.disk_bandwidth);
    cost.scalapack_seconds = compute + panel + comm + io;
  }
  return cost;
}

AdaptiveInverter::AdaptiveInverter(const Cluster* cluster, dfs::Dfs* fs,
                                   ThreadPool* pool, MetricsRegistry* metrics)
    : cluster_(cluster), fs_(fs), pool_(pool), metrics_(metrics) {
  MRI_REQUIRE(cluster != nullptr && fs != nullptr && pool != nullptr,
              "AdaptiveInverter needs a cluster, a DFS and a thread pool");
}

AdaptiveInverter::Result AdaptiveInverter::invert(
    const Matrix& a, const InversionOptions& options) {
  MRI_REQUIRE(a.square(), "invert expects a square matrix");
  Result result;
  result.prediction = predict_cost(a.rows(), options.nb, cluster_->size(),
                                   cluster_->cost_model());
  result.engine = result.prediction.winner();
  if (result.engine == Engine::kMapReduce) {
    MapReduceInverter inverter(cluster_, fs_, pool_, nullptr, metrics_);
    auto mr = inverter.invert(a, options);
    result.inverse = std::move(mr.inverse);
    result.report = mr.report;
    result.jobs = std::move(mr.jobs);
    result.master_spans = std::move(mr.master_spans);
  } else {
    scalapack::Options opts;
    auto sl = scalapack::invert(a, *cluster_, opts);
    result.inverse = std::move(sl.inverse);
    result.report = sl.report;
  }
  return result;
}

}  // namespace mri::core
