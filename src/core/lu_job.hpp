// One internal node's MapReduce job (Algorithm 2 lines 7–9, Figure 5).
//
// Map: half the workers compute row stripes of L2' (solving L2'·U1 = A3),
// the other half column stripes of U2 (solving L1·U2 = P1·A2); every mapper
// reads the already-factored first child from the DFS and writes its stripe
// as a separate file, emitting only the (j, j) control pair. Reduce: worker
// t computes grid block t of B = A4 − L2'·U2 with the §6.2 block wrap and
// writes it to OUT/A.t — which the master then "partitions" for the second
// recursive call by metadata alone.
#pragma once

#include <memory>
#include <string>

#include "core/lu_tree.hpp"
#include "core/options.hpp"
#include "core/tile_set.hpp"
#include "mapreduce/job.hpp"
#include "matrix/layout.hpp"

namespace mri::core {

struct LuJobContext {
  Index n = 0;  // order of this node
  Index h = 0;  // first child's order
  const LuNode* first = nullptr;

  TileSet a2;  // h x (n-h)
  TileSet a3;  // (n-h) x h
  TileSet a4;  // (n-h) x (n-h)

  InversionOptions opts;
  std::string dir;  // node directory; the job writes L2/, U2/, OUT/

  int m0 = 1;
  int l2_workers = 1;
  int u2_workers = 1;
  /// Reducer grid over B: block_wrap ? f1 x f2 : m0 x 1 row bands.
  int grid_rows = 1;
  int grid_cols = 1;

  /// §6.3 flop multiplier charged when transposed_u is off.
  double layout_penalty = 1.0;

  // Output geometry (what the mappers will write), precomputed by the
  // driver so the reducers and the recursive call agree on it.
  TileSet l2_out;  // (n-h) x h
  TileSet u2_out;  // transposed: (n-h) x h, else h x (n-h)
  TileSet b_out;   // (n-h) x (n-h)
};

using LuJobContextPtr = std::shared_ptr<const LuJobContext>;

/// Fills the output TileSets and grid of a context whose inputs are set.
void plan_lu_job_outputs(LuJobContext* ctx);

/// Builds the job spec (map tasks = control files, reduce tasks = grid).
mr::JobSpec make_lu_job(LuJobContextPtr ctx,
                        std::vector<std::string> control_files,
                        std::string job_name);

}  // namespace mri::core
