#include "core/partition.hpp"

#include "matrix/dfs_io.hpp"

namespace mri::core {

namespace {

class PartitionMapper : public mr::Mapper {
 public:
  PartitionMapper(PartitionGeometry geom, std::string input_path)
      : geom_(std::move(geom)), input_path_(std::move(input_path)) {}

  void map(std::int64_t /*key*/, const std::string& value,
           mr::TaskContext& ctx) override {
    // The control file holds this worker's band index (§5.1).
    const int band = std::stoi(value);
    const RowRange rows = stripe(geom_.n, geom_.m0, band);
    if (rows.count() == 0) return;

    // One sequential read of the band (§5.2).
    const Matrix band_rows =
        read_matrix_rows(ctx.fs(), input_path_, rows.begin, rows.end, &ctx.io());

    auto write_region = [&](int level, Region region) {
      const RegionFrame frame = region_frame(geom_, level, region);
      for (const Tile& piece : region_pieces(geom_, level, region, band)) {
        // Piece coordinates are region-local; shift into the band's frame.
        const Index gr0 = piece.r0 + frame.row_off;
        const Index gr1 = piece.r1 + frame.row_off;
        const Index gc0 = piece.c0 + frame.col_off;
        const Index gc1 = piece.c1 + frame.col_off;
        write_matrix(ctx.fs(), piece.path,
                     band_rows.block(gr0 - rows.begin, gr1 - rows.begin, gc0,
                                     gc1),
                     &ctx.io(), geom_.intermediate_tier);
      }
    };

    for (int level = 1; level <= geom_.depth; ++level) {
      write_region(level, Region::kA2);
      write_region(level, Region::kA3);
      write_region(level, Region::kA4);
    }
    write_region(geom_.depth, Region::kLeaf);
  }

 private:
  PartitionGeometry geom_;
  std::string input_path_;
};

}  // namespace

mr::JobSpec make_partition_job(const PartitionGeometry& geom,
                               std::string input_path,
                               std::vector<std::string> control_files) {
  mr::JobSpec spec;
  spec.name = "partition";
  spec.input_files = std::move(control_files);
  spec.mapper_factory = [geom, input_path] {
    return std::make_unique<PartitionMapper>(geom, input_path);
  };
  return spec;  // map-only: no reducer factory
}

}  // namespace mri::core
