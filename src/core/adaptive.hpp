// Extension (§8 future work): "it would be interesting to investigate the
// conditions under which to use ScaLAPACK or MapReduce for matrix
// inversion, and to implement a system to adaptively choose the best matrix
// inversion technique for an input matrix."
//
// The predictor evaluates both systems' closed-form cost models (the
// paper's Tables 1 and 2 plus the pipeline-structure terms: job launches,
// master leaf LUs, the baseline's serial panel path) under a given cluster;
// AdaptiveInverter picks the cheaper engine and runs it.
#pragma once

#include "core/inverter.hpp"
#include "scalapack/invert.hpp"

namespace mri::core {

enum class Engine { kMapReduce, kScaLAPACK };

const char* engine_name(Engine engine);

struct PredictedCost {
  double mapreduce_seconds = 0.0;
  double scalapack_seconds = 0.0;
  Engine winner() const {
    return mapreduce_seconds <= scalapack_seconds ? Engine::kMapReduce
                                                  : Engine::kScaLAPACK;
  }
};

/// Analytic runtime prediction for inverting an n x n matrix on m0 nodes of
/// `model`, with master block bound nb (MapReduce) and ScaLAPACK block width
/// `block_width`.
PredictedCost predict_cost(Index n, Index nb, int m0, const CostModel& model,
                           Index block_width = 128);

class AdaptiveInverter {
 public:
  AdaptiveInverter(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
                   MetricsRegistry* metrics = nullptr);

  struct Result {
    Matrix inverse;
    SimReport report;
    Engine engine = Engine::kMapReduce;
    PredictedCost prediction;
    /// Per-job results with traces (empty when ScaLAPACK won — the
    /// message-passing baseline has no task timeline).
    std::vector<mr::JobResult> jobs;
    /// Master-node work spans on the jobs' timeline (empty for ScaLAPACK).
    std::vector<MasterSpan> master_spans;
  };

  /// Predicts both engines' cost and runs the cheaper one.
  Result invert(const Matrix& a, const InversionOptions& options = {});

 private:
  const Cluster* cluster_;
  dfs::Dfs* fs_;
  ThreadPool* pool_;
  MetricsRegistry* metrics_;
};

}  // namespace mri::core
