// The precomputed pipeline plan (§5): everything about the job DAG that is
// known before any data moves — recursion depth, job counts, stripe and grid
// geometry. Table 3's "Number of Jobs" column is total_jobs here.
#pragma once

#include "matrix/layout.hpp"
#include "matrix/matrix.hpp"

namespace mri::core {

struct InversionPlan {
  Index n = 0;
  Index nb = 0;
  int m0 = 1;

  int depth = 0;                 // d = ceil(log2(n / nb))
  std::int64_t leaves = 1;       // 2^d single-node LU decompositions
  std::int64_t lu_jobs = 0;      // 2^d - 1
  std::int64_t total_jobs = 2;   // partition + LU jobs + final inversion

  int l2_workers = 1;            // mappers computing L2' per LU job
  int u2_workers = 1;            // mappers computing U2 per LU job
  BlockWrapFactors wrap;         // reducer grid f1 x f2 (= m0)

  static InversionPlan make(Index n, Index nb, int m0);
};

}  // namespace mri::core
