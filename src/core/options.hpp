// Options for the MapReduce matrix inverter.
#pragma once

#include <string>

#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"

namespace mri::core {

struct InversionOptions {
  /// Largest block order LU-decomposed on the master node (the paper's nb;
  /// 3200 in its EC2 experiments, chosen so the master's LU time roughly
  /// equals the MapReduce job launch time).
  Index nb = 256;

  /// §6.1: keep every intermediate result (L1, L2', U2, ...) in its own DFS
  /// file. When false, the master serially combines the factor files after
  /// each job, which costs serial read+write time (the paper measured ~1.3x
  /// slowdowns at 64 nodes without the optimization).
  bool separate_intermediate_files = true;

  /// §6.2: block-wrap the two distributed multiplications (B = A4 - L2'·U2
  /// and A⁻¹ = U⁻¹·L⁻¹) over an f1 x f2 grid, cutting total multiply reads
  /// from (m0+1)n² to (f1+f2)n². When false, each reducer computes a row
  /// band and reads one operand in full.
  bool block_wrap = true;

  /// §6.3: store every upper-triangular factor transposed so the multiply
  /// kernels stream rows instead of striding columns. When false, files
  /// hold U untransposed and kernels pay the column-access memory penalty.
  bool transposed_u = true;

  /// §8 future-work extension ("implement our technique on Spark"): keep
  /// every intermediate result — partition pieces, L2'/U2 stripes, B tiles,
  /// leaf factors, L⁻¹/U⁻¹ slices — in the unreplicated in-memory tier
  /// instead of the replicated on-disk DFS. The input matrix and the final
  /// inverse stay on disk. Fault tolerance then comes from lineage
  /// (recompute), not replication, as in Spark's RDDs.
  bool in_memory_intermediates = false;

  /// Tier for intermediate files, derived from the flag above.
  dfs::StorageTier intermediate_tier() const {
    return in_memory_intermediates ? dfs::StorageTier::kMemory
                                   : dfs::StorageTier::kDisk;
  }

  /// Run the final §5.4 stage as three overlap-eligible jobs on the DAG
  /// executor — the independent L⁻¹ and U⁻¹ triangular inversions as two
  /// concurrent map-only jobs feeding the final multiply job — instead of
  /// one monolithic job. Same arithmetic and I/O; the two inversions share
  /// the cluster's slots, so the makespan drops below the serial sum
  /// (Hadoop 1.x, which the paper ran on, could not express this; DAG
  /// engines like Spark get much of their win here). Off by default to
  /// reproduce the paper's one-job-at-a-time timeline exactly.
  bool overlap_final_stage = false;

  /// DFS working directory (the paper's "Root").
  std::string work_dir = "/Root";

  /// Keep intermediate files after the run (useful for tests/inspection).
  bool keep_intermediates = false;
};

}  // namespace mri::core
