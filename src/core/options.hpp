// Options for the MapReduce matrix inverter.
#pragma once

#include <cstdint>
#include <string>

#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"

namespace mri::core {

/// Execution engine for the inversion pipeline.
///  * kHadoop: the paper's Hadoop 1.x model — every intermediate
///    materializes on the replicated disk DFS between jobs.
///  * kSpin: the SPIN-style in-memory engine (the §8 "implement on Spark"
///    extension, first-class): intermediates live in a per-node block cache
///    on the memory tier, consumers read cache-resident inputs at memory
///    bandwidth (pipeline fusion), eviction spills LRU entries to local
///    disk, and node kills recover by lineage recomputation instead of
///    replication.
enum class EngineKind { kHadoop, kSpin };

/// How a distributed multiply is scheduled across jobs.
///  * kWrap: the paper's §6.2 block wrap — one job, an f1 x f2 reducer grid,
///    each reducer reading whole (n/f1 + n/f2)-sized operand slabs.
///  * kMultiRound: replication-parameterized multi-round multiplication (the
///    space-round tradeoff of arXiv 1111.2228 / 1408.2858): the k dimension
///    is cut into m0 segments and each reduce task accumulates r segments
///    per round onto a carry tile, over ceil(m0 / r) chained jobs. Smaller r
///    means less operand data per task per round (less memory) but more
///    rounds, more job-launch overhead and extra carry-tile shuffle bytes;
///    r = m0 degenerates to the wrap's single round.
enum class MultiplyStrategyKind { kWrap, kMultiRound };

struct MultiplyStrategyOptions {
  MultiplyStrategyKind strategy = MultiplyStrategyKind::kWrap;
  /// kMultiRound only: replication factor r — how many k-segments one
  /// reduce task holds in memory per round (clamped to [1, m0] at plan
  /// time). Ignored by kWrap.
  int replication = 1;
};

struct InversionOptions {
  /// Largest block order LU-decomposed on the master node (the paper's nb;
  /// 3200 in its EC2 experiments, chosen so the master's LU time roughly
  /// equals the MapReduce job launch time).
  Index nb = 256;

  /// §6.1: keep every intermediate result (L1, L2', U2, ...) in its own DFS
  /// file. When false, the master serially combines the factor files after
  /// each job, which costs serial read+write time (the paper measured ~1.3x
  /// slowdowns at 64 nodes without the optimization).
  bool separate_intermediate_files = true;

  /// §6.2: block-wrap the two distributed multiplications (B = A4 - L2'·U2
  /// and A⁻¹ = U⁻¹·L⁻¹) over an f1 x f2 grid, cutting total multiply reads
  /// from (m0+1)n² to (f1+f2)n². When false, each reducer computes a row
  /// band and reads one operand in full.
  bool block_wrap = true;

  /// §6.3: store every upper-triangular factor transposed so the multiply
  /// kernels stream rows instead of striding columns. When false, files
  /// hold U untransposed and kernels pay the column-access memory penalty.
  bool transposed_u = true;

  /// Execution engine (see EngineKind). kSpin keeps every intermediate
  /// result — partition pieces, L2'/U2 stripes, B tiles, leaf factors,
  /// L⁻¹/U⁻¹ slices — in the unreplicated in-memory tier; the input matrix
  /// and the final inverse stay on disk.
  EngineKind engine = EngineKind::kHadoop;

  /// BlockCache capacity per node for the kSpin engine; 0 = unlimited.
  std::uint64_t cache_capacity_bytes = 256ull << 20;

  /// Deprecated spelling of `engine = kSpin` (the old `--spark` sketch):
  /// kept so existing callers keep compiling; spin() folds it in.
  bool in_memory_intermediates = false;

  /// True when the SPIN-style in-memory engine is selected (via `engine`
  /// or the legacy in_memory_intermediates flag).
  bool spin() const {
    return engine == EngineKind::kSpin || in_memory_intermediates;
  }

  /// Tier for intermediate files, derived from the engine selection.
  dfs::StorageTier intermediate_tier() const {
    return spin() ? dfs::StorageTier::kMemory : dfs::StorageTier::kDisk;
  }

  /// Run the final §5.4 stage as three overlap-eligible jobs on the DAG
  /// executor — the independent L⁻¹ and U⁻¹ triangular inversions as two
  /// concurrent map-only jobs feeding the final multiply job — instead of
  /// one monolithic job. Same arithmetic and I/O; the two inversions share
  /// the cluster's slots, so the makespan drops below the serial sum
  /// (Hadoop 1.x, which the paper ran on, could not express this; DAG
  /// engines like Spark get much of their win here). Off by default to
  /// reproduce the paper's one-job-at-a-time timeline exactly.
  bool overlap_final_stage = false;

  /// Scheduling of the standalone distributed multiply (solve()'s
  /// X = A⁻¹·B): the §6.2 block wrap by default, or the multi-round
  /// space-saving scheme (see MultiplyStrategyKind).
  MultiplyStrategyOptions multiply;

  /// DFS working directory (the paper's "Root").
  std::string work_dir = "/Root";

  /// Keep intermediate files after the run (useful for tests/inspection).
  bool keep_intermediates = false;
};

}  // namespace mri::core
