// The in-memory handle to the distributed LU factors: a binary tree that
// mirrors the recursion of Algorithm 2. Leaves point at packed-LU files the
// master wrote; internal nodes point at the L2' / U2 stripe files their
// MapReduce job wrote. The driver keeps this tree (the paper's master keeps
// the equivalent bookkeeping in its HDFS directory layout, Fig. 4); all
// matrix payloads stay in the DFS and are read — with full I/O accounting —
// by whoever assembles a factor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tile_set.hpp"
#include "matrix/permutation.hpp"

namespace mri::core {

struct LuNode {
  Index n = 0;   // order of this node's block
  bool leaf = false;

  // Leaf payload: Algorithm 1 output on the master, stored as the paper's
  // separate per-factor files (triangular-packed; together n² doubles).
  std::string l_path;    // unit-lower L, strictly-lower entries
  std::string ut_path;   // Uᵀ (lower incl. diagonal)
  std::string perm_path; // permutation file

  // Internal payload: one MapReduce job's outputs.
  Index h = 0;  // first child's order (split point)
  std::unique_ptr<LuNode> first;   // LU of A1
  std::unique_ptr<LuNode> second;  // LU of B = A4 - L2'·U2
  /// L2' stripes: logical (n-h) x h, unpermuted (L2 = P2·L2' is constructed
  /// only as it is read, per §5.3).
  TileSet l2;
  /// U2 stripes. With the §6.3 layout this holds U2ᵀ, logical (n-h) x h;
  /// without it, U2 itself, logical h x (n-h).
  TileSet u2;
  bool u2_transposed = true;

  /// Full permutation S of this node (leaf: from Algorithm 1; internal:
  /// concat of the children's).
  Permutation perm;
};

using LuNodePtr = std::unique_ptr<LuNode>;

}  // namespace mri::core
