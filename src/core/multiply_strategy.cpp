#include "core/multiply_strategy.hpp"

#include <algorithm>

#include "dfs/path.hpp"
#include "matrix/dfs_io.hpp"

namespace mri::core {

namespace {

std::uint64_t bytes(Index rows, Index cols) {
  return static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
         sizeof(double);
}

class WrapStrategy : public MultiplyStrategy {
 public:
  const char* name() const override { return "wrap"; }

  void ingest(dfs::Dfs* fs, const Matrix& a, const Matrix& b,
              const std::string& work_dir,
              MultiplyJobContext* ctx) const override {
    // Operands pre-striped for the block wrap (the §5.2 storage discipline:
    // a reducer's stripe lives in its own files, so nobody reads whole
    // operands): A as f1 row stripes, B as f2 column stripes.
    const BlockWrapFactors f = block_wrap_factors(ctx->m0);
    const std::string mul_in = dfs::join(work_dir, "MULIN");
    std::vector<Tile> a_tiles;
    for (int s = 0; s < f.f1; ++s) {
      const RowRange r = stripe(a.rows(), f.f1, s);
      if (r.count() == 0) continue;
      Tile t;
      t.path = dfs::join(mul_in, "a." + std::to_string(s));
      t.r0 = r.begin;
      t.r1 = r.end;
      t.c0 = 0;
      t.c1 = a.cols();
      write_matrix(*fs, t.path, a.block(r.begin, r.end, 0, a.cols()));
      a_tiles.push_back(std::move(t));
    }
    std::vector<Tile> b_tiles;
    for (int s = 0; s < f.f2; ++s) {
      const RowRange c = stripe(b.cols(), f.f2, s);
      if (c.count() == 0) continue;
      Tile t;
      t.path = dfs::join(mul_in, "b." + std::to_string(s));
      t.r0 = 0;
      t.r1 = b.rows();
      t.c0 = c.begin;
      t.c1 = c.end;
      write_matrix(*fs, t.path, b.block(0, b.rows(), c.begin, c.end));
      b_tiles.push_back(std::move(t));
    }
    ctx->a = TileSet(a.rows(), a.cols(), std::move(a_tiles));
    ctx->b = TileSet(b.rows(), b.cols(), std::move(b_tiles));
  }

  MultiplyPlan plan(MultiplyJobContext* ctx) const override {
    plan_multiply_job(ctx);
    ctx->segments = 1;
    ctx->rounds = 1;
    MultiplyPlan p;
    p.strategy_jobs = 1;
    p.grid_rows = ctx->grid_rows;
    p.grid_cols = ctx->grid_cols;
    for (int t = 0; t < ctx->grid_rows * ctx->grid_cols; ++t) {
      const RowRange rows =
          stripe(ctx->a.rows(), ctx->grid_rows, t / ctx->grid_cols);
      const RowRange cols =
          stripe(ctx->b.cols(), ctx->grid_cols, t % ctx->grid_cols);
      const std::uint64_t task_bytes = bytes(rows.count(), ctx->a.cols()) +
                                       bytes(ctx->b.rows(), cols.count()) +
                                       bytes(rows.count(), cols.count());
      p.peak_task_bytes = std::max(p.peak_task_bytes, task_bytes);
    }
    return p;
  }

  mr::JobHandle submit(mr::Pipeline* pipeline, MultiplyJobContextPtr ctx,
                       const std::vector<std::string>& control_files,
                       mr::JobHandle after) const override {
    return pipeline->submit(make_multiply_job(ctx, control_files, "multiply"),
                            {after});
  }
};

class MultiRoundStrategy : public MultiplyStrategy {
 public:
  const char* name() const override { return "multiround"; }

  void ingest(dfs::Dfs* fs, const Matrix& a, const Matrix& b,
              const std::string& work_dir,
              MultiplyJobContext* ctx) const override {
    // Block layout keyed by (grid stripe, k-segment): a task's round reads
    // exactly the r segment blocks it consumes — no over-charging from
    // full-width rows — so operand read bytes are independent of r and only
    // the carry-tile traffic varies with the round count.
    const BlockWrapFactors f = block_wrap_factors(ctx->m0);
    const int segments = ctx->m0;
    const std::string mul_in = dfs::join(work_dir, "MULIN");
    std::vector<Tile> a_tiles;
    for (int i = 0; i < f.f1; ++i) {
      const RowRange r = stripe(a.rows(), f.f1, i);
      if (r.count() == 0) continue;
      for (int s = 0; s < segments; ++s) {
        const RowRange k = stripe(a.cols(), segments, s);
        if (k.count() == 0) continue;
        Tile t;
        t.path = dfs::join(mul_in, "a." + std::to_string(i) + "." +
                                       std::to_string(s));
        t.r0 = r.begin;
        t.r1 = r.end;
        t.c0 = k.begin;
        t.c1 = k.end;
        write_matrix(*fs, t.path, a.block(r.begin, r.end, k.begin, k.end));
        a_tiles.push_back(std::move(t));
      }
    }
    std::vector<Tile> b_tiles;
    for (int s = 0; s < segments; ++s) {
      const RowRange k = stripe(b.rows(), segments, s);
      if (k.count() == 0) continue;
      for (int j = 0; j < f.f2; ++j) {
        const RowRange c = stripe(b.cols(), f.f2, j);
        if (c.count() == 0) continue;
        Tile t;
        t.path = dfs::join(mul_in, "b." + std::to_string(s) + "." +
                                       std::to_string(j));
        t.r0 = k.begin;
        t.r1 = k.end;
        t.c0 = c.begin;
        t.c1 = c.end;
        write_matrix(*fs, t.path, b.block(k.begin, k.end, c.begin, c.end));
        b_tiles.push_back(std::move(t));
      }
    }
    ctx->a = TileSet(a.rows(), a.cols(), std::move(a_tiles));
    ctx->b = TileSet(b.rows(), b.cols(), std::move(b_tiles));
  }

  MultiplyPlan plan(MultiplyJobContext* ctx) const override {
    plan_multiply_job(ctx);
    ctx->segments = ctx->m0;
    const int r = std::clamp(ctx->strategy.replication, 1, ctx->segments);
    ctx->rounds = (ctx->segments + r - 1) / r;

    MultiplyPlan p;
    p.rounds = ctx->rounds;
    p.segments = ctx->segments;
    p.replication = r;
    p.strategy_jobs = ctx->rounds;
    p.grid_rows = ctx->grid_rows;
    p.grid_cols = ctx->grid_cols;
    for (int t = 0; t < ctx->grid_rows * ctx->grid_cols; ++t) {
      const RowRange rows =
          stripe(ctx->a.rows(), ctx->grid_rows, t / ctx->grid_cols);
      const RowRange cols =
          stripe(ctx->b.cols(), ctx->grid_cols, t % ctx->grid_cols);
      for (int round = 0; round < ctx->rounds; ++round) {
        // Carry tile plus the round's r operand segment blocks.
        std::uint64_t task_bytes = bytes(rows.count(), cols.count());
        const int s0 = round * r;
        const int s1 = std::min(ctx->segments, s0 + r);
        for (int s = s0; s < s1; ++s) {
          const RowRange seg = stripe(ctx->a.cols(), ctx->segments, s);
          task_bytes += bytes(rows.count(), seg.count()) +
                        bytes(seg.count(), cols.count());
        }
        p.peak_task_bytes = std::max(p.peak_task_bytes, task_bytes);
      }
    }
    return p;
  }

  mr::JobHandle submit(mr::Pipeline* pipeline, MultiplyJobContextPtr ctx,
                       const std::vector<std::string>& control_files,
                       mr::JobHandle after) const override {
    mr::JobHandle h = after;
    for (int round = 0; round < ctx->rounds; ++round) {
      h = pipeline->submit(
          make_multiply_round_job(ctx, round, control_files,
                                  "multiply-r" + std::to_string(round)),
          {h});
    }
    return h;
  }
};

}  // namespace

const char* multiply_strategy_name(MultiplyStrategyKind kind) {
  switch (kind) {
    case MultiplyStrategyKind::kWrap:
      return "wrap";
    case MultiplyStrategyKind::kMultiRound:
      return "multiround";
  }
  return "unknown";
}

bool parse_multiply_strategy(const std::string& name,
                             MultiplyStrategyKind* out) {
  if (name == "wrap") {
    *out = MultiplyStrategyKind::kWrap;
    return true;
  }
  if (name == "multiround") {
    *out = MultiplyStrategyKind::kMultiRound;
    return true;
  }
  return false;
}

std::unique_ptr<MultiplyStrategy> make_multiply_strategy(
    MultiplyStrategyKind kind) {
  if (kind == MultiplyStrategyKind::kMultiRound) {
    return std::make_unique<MultiRoundStrategy>();
  }
  return std::make_unique<WrapStrategy>();
}

Matrix mapreduce_multiply(mr::Pipeline* pipeline, dfs::Dfs* fs, int m0,
                          const Matrix& a, const Matrix& b,
                          const std::string& work_dir,
                          std::vector<std::string> control_files,
                          const MultiplyStrategyOptions& strategy,
                          mr::JobHandle after, MultiplyPlan* plan_out) {
  MRI_REQUIRE(pipeline != nullptr && fs != nullptr, "null pipeline/fs");
  const std::unique_ptr<MultiplyStrategy> impl =
      make_multiply_strategy(strategy.strategy);

  auto ctx = std::make_shared<MultiplyJobContext>();
  ctx->dir = work_dir;
  ctx->m0 = m0;
  ctx->strategy = strategy;

  const std::string mul_in = dfs::join(work_dir, "MULIN");
  if (fs->exists(mul_in)) fs->remove(mul_in, /*recursive=*/true);
  impl->ingest(fs, a, b, work_dir, ctx.get());
  const MultiplyPlan plan = impl->plan(ctx.get());
  if (plan_out != nullptr) *plan_out = plan;

  for (const char* out_dir : {"MUL", "MULR"}) {
    const std::string path = dfs::join(work_dir, out_dir);
    if (fs->exists(path)) fs->remove(path, /*recursive=*/true);
  }
  pipeline->wait(impl->submit(pipeline, ctx, control_files, after));
  return ctx->c_out.read_all(*fs);
}

}  // namespace mri::core
