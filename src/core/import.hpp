// Input ingestion: the paper's input is a text matrix ("Root/a.txt", one
// row per line); the pipeline's partition job reads binary row ranges. The
// import job converts text to the binary format in parallel: each mapper
// takes a contiguous byte range of the text file, extends it to whole lines,
// parses, and writes its row band as a tile — the same read-once discipline
// as Algorithm 3.
#pragma once

#include <string>

#include "core/tile_set.hpp"
#include "mapreduce/pipeline.hpp"

namespace mri::core {

/// Runs a map-only import job converting `text_path` (text matrix) into
/// binary row-band tiles under `out_dir`, returning the TileSet and writing
/// the assembled binary matrix to `bin_path` suitable for invert_dfs().
/// Returns the matrix order.
Index import_text_matrix(mr::Pipeline* pipeline, dfs::Dfs* fs,
                         const std::string& text_path,
                         const std::string& bin_path,
                         std::vector<std::string> control_files);

}  // namespace mri::core
