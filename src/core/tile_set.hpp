// TileSet: a logical matrix stored as non-overlapping rectangular tiles in
// DFS files — the paper's metadata-only partitioning (§5.2).
//
// The partition job materializes tile files once; every later consumer
// (stripe readers in the LU jobs, the reducers' A4 tiles, the second child's
// whole input B) reads sub-rectangles through a TileSet, which resolves them
// to row-ranges of the underlying files. Only the touched tile rows are
// read, mirroring HDFS sequential-read behaviour. Building a TileSet over
// existing files costs no I/O — this is why the paper can "partition"
// B = A4 - L2'U2 on the master in under a second.
#pragma once

#include <string>
#include <vector>

#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"
#include "sim/io_stats.hpp"

namespace mri::core {

struct Tile {
  std::string path;  // DFS binary matrix file
  /// Rectangle the tile covers in the logical matrix.
  Index r0 = 0, r1 = 0, c0 = 0, c1 = 0;
  /// Where that rectangle starts inside the file (non-zero when a window
  /// clipped the tile): logical (r0, c0) is file element (file_r0, file_c0).
  Index file_r0 = 0, file_c0 = 0;
};

class TileSet {
 public:
  TileSet() = default;

  /// `rows` x `cols` logical matrix backed by `tiles`. Tiles must be
  /// disjoint; coverage is validated lazily on read.
  TileSet(Index rows, Index cols, std::vector<Tile> tiles);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  const std::vector<Tile>& tiles() const { return tiles_; }

  /// Reads the sub-rectangle [r0,r1) x [c0,c1), charging only the
  /// overlapping row-ranges of overlapping tiles. Throws DfsError if any
  /// part of the rectangle is not covered by a tile.
  Matrix read_block(const dfs::Dfs& fs, Index r0, Index r1, Index c0, Index c1,
                    IoStats* account = nullptr) const;

  /// Whole logical matrix.
  Matrix read_all(const dfs::Dfs& fs, IoStats* account = nullptr) const {
    return read_block(fs, 0, rows_, 0, cols_, account);
  }

  /// A TileSet over a sub-rectangle of this one (metadata only, no I/O) —
  /// how the master "partitions" B for the recursive call.
  TileSet window(Index r0, Index r1, Index c0, Index c1) const;

  /// Serialized manifest size in bytes (the paper notes these are < 1 KB).
  std::size_t manifest_bytes() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Tile> tiles_;
};

}  // namespace mri::core
