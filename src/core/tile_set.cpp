#include "core/tile_set.hpp"

#include <algorithm>

#include "matrix/dfs_io.hpp"

namespace mri::core {

TileSet::TileSet(Index rows, Index cols, std::vector<Tile> tiles)
    : rows_(rows), cols_(cols), tiles_(std::move(tiles)) {
  MRI_REQUIRE(rows >= 0 && cols >= 0, "TileSet dimensions must be >= 0");
  for (const auto& t : tiles_) {
    MRI_REQUIRE(0 <= t.r0 && t.r0 <= t.r1 && t.r1 <= rows_ && 0 <= t.c0 &&
                    t.c0 <= t.c1 && t.c1 <= cols_,
                "tile " << t.path << " out of bounds");
  }
}

Matrix TileSet::read_block(const dfs::Dfs& fs, Index r0, Index r1, Index c0,
                           Index c1, IoStats* account) const {
  MRI_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= rows_ && 0 <= c0 && c0 <= c1 &&
                  c1 <= cols_,
              "read_block rectangle out of bounds");
  Matrix out(r1 - r0, c1 - c0);
  std::uint64_t covered = 0;
  for (const auto& t : tiles_) {
    const Index ir0 = std::max(r0, t.r0), ir1 = std::min(r1, t.r1);
    const Index ic0 = std::max(c0, t.c0), ic1 = std::min(c1, t.c1);
    if (ir0 >= ir1 || ic0 >= ic1) continue;
    // Read the needed row range of the tile file (sequential after a seek),
    // then place the needed columns.
    const Index fr0 = ir0 - t.r0 + t.file_r0;
    const Index fr1 = ir1 - t.r0 + t.file_r0;
    const Index fc0 = ic0 - t.c0 + t.file_c0;
    const Index fc1 = ic1 - t.c0 + t.file_c0;
    const Matrix rows_read = read_matrix_rows(fs, t.path, fr0, fr1, account);
    out.set_block(ir0 - r0, ic0 - c0,
                  rows_read.block(0, fr1 - fr0, fc0, fc1));
    covered += static_cast<std::uint64_t>(ir1 - ir0) *
               static_cast<std::uint64_t>(ic1 - ic0);
  }
  const std::uint64_t wanted = static_cast<std::uint64_t>(r1 - r0) *
                               static_cast<std::uint64_t>(c1 - c0);
  if (covered != wanted) {
    throw DfsError("TileSet::read_block: rectangle not fully covered (" +
                   std::to_string(covered) + " of " + std::to_string(wanted) +
                   " elements)");
  }
  return out;
}

TileSet TileSet::window(Index r0, Index r1, Index c0, Index c1) const {
  MRI_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= rows_ && 0 <= c0 && c0 <= c1 &&
                  c1 <= cols_,
              "window rectangle out of bounds");
  std::vector<Tile> clipped;
  for (const auto& t : tiles_) {
    const Index ir0 = std::max(r0, t.r0), ir1 = std::min(r1, t.r1);
    const Index ic0 = std::max(c0, t.c0), ic1 = std::min(c1, t.c1);
    if (ir0 >= ir1 || ic0 >= ic1) continue;
    // Clip the tile to the window and record where the clipped rectangle
    // starts inside the file.
    Tile w;
    w.path = t.path;
    w.r0 = ir0 - r0;
    w.r1 = ir1 - r0;
    w.c0 = ic0 - c0;
    w.c1 = ic1 - c0;
    w.file_r0 = t.file_r0 + (ir0 - t.r0);
    w.file_c0 = t.file_c0 + (ic0 - t.c0);
    clipped.push_back(std::move(w));
  }
  return TileSet(r1 - r0, c1 - c0, std::move(clipped));
}

std::size_t TileSet::manifest_bytes() const {
  std::size_t bytes = 2 * sizeof(Index);
  for (const auto& t : tiles_) bytes += t.path.size() + 4 * sizeof(Index);
  return bytes;
}

}  // namespace mri::core
