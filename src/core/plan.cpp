#include "core/plan.hpp"

#include "common/error.hpp"

namespace mri::core {

InversionPlan InversionPlan::make(Index n, Index nb, int m0) {
  MRI_REQUIRE(n >= 1 && nb >= 1 && m0 >= 1, "bad plan parameters");
  InversionPlan plan;
  plan.n = n;
  plan.nb = nb;
  plan.m0 = m0;
  plan.depth = recursion_depth(n, nb);
  plan.leaves = leaf_count(n, nb);
  plan.lu_jobs = lu_job_count(n, nb);
  plan.total_jobs = total_job_count(n, nb);
  if (m0 == 1) {
    plan.l2_workers = 1;
    plan.u2_workers = 1;
  } else {
    plan.l2_workers = (m0 + 1) / 2;
    plan.u2_workers = m0 - plan.l2_workers;
  }
  plan.wrap = block_wrap_factors(m0);
  return plan;
}

}  // namespace mri::core
