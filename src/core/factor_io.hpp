// Compact DFS formats for the LU factors and permutations.
//
// A leaf's factors are stored the way Algorithm 1 leaves them: one packed
// square file (U on/above the diagonal, L strictly below — exactly n² doubles,
// no zero padding), plus a tiny permutation file. This keeps the pipeline's
// total factor output at the paper's (3/2)n² write volume (Table 1).
#pragma once

#include <string>

#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"
#include "sim/io_stats.hpp"

namespace mri::core {

/// Writes the packed LU matrix (square, n² doubles).
void write_packed_lu(dfs::Dfs& fs, const std::string& path, const Matrix& packed,
                     IoStats* account = nullptr);
Matrix read_packed_lu(const dfs::Dfs& fs, const std::string& path,
                      IoStats* account = nullptr);

/// Triangular-packed files — the paper's separate per-leaf l / u files.
/// With `unit_diag` the diagonal is implicit (strictly-lower entries only,
/// n(n-1)/2 doubles); otherwise the diagonal is stored (n(n+1)/2 doubles).
/// Together an l file (unit) and a uᵀ file (non-unit) cost exactly n²
/// doubles — the Table 1 write volume. `m` must be lower-triangular.
void write_lower_packed(dfs::Dfs& fs, const std::string& path, const Matrix& m,
                        bool unit_diag, IoStats* account = nullptr,
                        dfs::StorageTier tier = dfs::StorageTier::kDisk);

/// Reads back the full square lower-triangular matrix (implicit unit
/// diagonal restored when the file was written with one).
Matrix read_lower_packed(const dfs::Dfs& fs, const std::string& path,
                         IoStats* account = nullptr);

/// Unpacks the packed form into the unit-lower L or the upper U.
Matrix unpack_unit_lower(const Matrix& packed);
Matrix unpack_upper(const Matrix& packed);
/// Uᵀ directly from the packed form (the §6.3 transposed layout).
Matrix unpack_upper_transposed(const Matrix& packed);

/// Permutation files: n entries of the paper's array S.
void write_permutation(dfs::Dfs& fs, const std::string& path,
                       const Permutation& perm, IoStats* account = nullptr,
                       dfs::StorageTier tier = dfs::StorageTier::kDisk);
Permutation read_permutation(const dfs::Dfs& fs, const std::string& path,
                             IoStats* account = nullptr);

}  // namespace mri::core
