// Public API: scalable matrix inversion as a pipeline of MapReduce jobs.
//
// Usage:
//   Cluster cluster(16, CostModel::ec2_medium());
//   dfs::Dfs fs(cluster.size());
//   ThreadPool pool(8);
//   core::MapReduceInverter inverter(&cluster, &fs, &pool);
//   auto result = inverter.invert(a, options);
//   // result.inverse, result.report.sim_seconds, result.report.io, ...
//
// The pipeline is exactly the paper's Figure 2: master writes the MapInput
// control files; one partition job (Algorithm 3); 2^d - 1 LU jobs
// (Algorithm 2) with the 2^d leaf decompositions on the master; one final
// job inverting the triangular factors and multiplying (§5.4).
#pragma once

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "engine/spin_engine.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/pipeline.hpp"
#include "core/multiply_job.hpp"
#include "core/options.hpp"
#include "core/plan.hpp"
#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"

namespace mri::core {

class MapReduceInverter {
 public:
  /// All pointers are borrowed. `failures`, `metrics` and `chaos` may be
  /// null. A chaos engine must be bound to the DFS (Dfs::bind_chaos()) by
  /// the caller so node kills reach the block layer.
  MapReduceInverter(const Cluster* cluster, dfs::Dfs* fs, ThreadPool* pool,
                    FailureInjector* failures = nullptr,
                    MetricsRegistry* metrics = nullptr,
                    ChaosEngine* chaos = nullptr);

  struct Result {
    Matrix inverse;
    SimReport report;
    InversionPlan plan;
    /// Partition + LU jobs + master leaf work (the Table 1 stage).
    SimReport lu_stage;
    /// The final triangular-inversion/product job (the Table 2 stage).
    SimReport inversion_stage;
    /// det(A), read off the LU factors (sign and log-magnitude).
    double det_log_abs = 0.0;
    int det_sign = 1;
    /// Every job the pipeline ran, in order, with per-attempt traces and
    /// run-relative start times — feed to mr::build_run_report() /
    /// chrome_trace_json() for the run-report and trace exports.
    std::vector<mr::JobResult> jobs;
    /// Master-node work intervals (leaf LUs, determinant read, combine
    /// penalties) on the same run timeline as `jobs` — the 4th argument of
    /// mr::build_run_report().
    std::vector<MasterSpan> master_spans;
    /// Handle of the final inversion job — dependency anchor for follow-on
    /// submissions on the same pipeline (solve() chains its multiply here).
    mr::JobHandle final_job;
    /// SPIN engine observability: cache, spill, lineage-recovery totals and
    /// trace events. Filled (and engine_active set) only when the run
    /// selected the spin engine AND this inverter owned the pipeline
    /// (invert/invert_dfs/solve); callers running invert_with on their own
    /// pipeline own their own engine.
    bool engine_active = false;
    engine::EngineStats engine_stats;
  };

  /// Ingests `a` into the DFS and inverts it. Throws NumericalError if `a`
  /// is numerically singular.
  Result invert(const Matrix& a, const InversionOptions& options = {});

  /// Inverts a binary matrix file already in the DFS.
  Result invert_dfs(const std::string& input_path,
                    const InversionOptions& options = {});

  struct SolveResult {
    Matrix x;
    SimReport report;  // inversion pipeline + the multiply job(s)
    std::vector<mr::JobResult> jobs;  // inversion jobs + the multiply job(s)
    std::vector<MasterSpan> master_spans;  // master work on the same timeline
    /// Schedule the multiply strategy executed (rounds, grid, peak task
    /// bytes) — options.multiply picks the strategy.
    MultiplyPlan multiply_plan;
  };

  /// Solves A·X = B (the paper's §1 headline application) by inverting A
  /// with the pipeline and multiplying X = A⁻¹·B with the MapReduce
  /// multiply strategy selected by options.multiply (§6.2 block wrap by
  /// default, or the multi-round scheme).
  SolveResult solve(const Matrix& a, const Matrix& b,
                    const InversionOptions& options = {});

  /// Runs the whole inversion pipeline on a caller-owned Pipeline, so the
  /// caller controls the placement context — solve() chains its multiply on
  /// the same timeline, and the service layer builds the Pipeline with a
  /// shared SlotPool, a dispatch-time origin and a fair-share tenant (see
  /// mr::JobGraphOptions) so many requests interleave on one cluster.
  Result invert_with(mr::Pipeline& pipeline, const std::string& input_path,
                     const InversionOptions& options);

  /// Ingests `a` into the DFS (under options.work_dir) and inverts it on the
  /// caller's pipeline. Convenience wrapper over invert_with().
  Result invert_on(mr::Pipeline& pipeline, const Matrix& a,
                   const InversionOptions& options = {});

 private:
  const Cluster* cluster_;
  dfs::Dfs* fs_;
  ThreadPool* pool_;
  FailureInjector* failures_;
  MetricsRegistry* metrics_;
  ChaosEngine* chaos_;
};

}  // namespace mri::core
