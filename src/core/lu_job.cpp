#include "core/lu_job.hpp"

#include "core/assemble.hpp"
#include "dfs/path.hpp"
#include "linalg/triangular.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/ops.hpp"

namespace mri::core {

namespace {

IoStats penalized(IoStats io, double factor) {
  io.mults = static_cast<std::uint64_t>(static_cast<double>(io.mults) * factor);
  io.adds = static_cast<std::uint64_t>(static_cast<double>(io.adds) * factor);
  return io;
}

class LuMapper : public mr::Mapper {
 public:
  explicit LuMapper(LuJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void map(std::int64_t key, const std::string& value,
           mr::TaskContext& task) override {
    const int j = std::stoi(value);  // worker id from the control file (§5.1)
    if (ctx_->m0 == 1) {
      compute_l2_stripe(0, task);
      compute_u2_stripe(0, task);
    } else if (j < ctx_->l2_workers) {
      compute_l2_stripe(j, task);
    } else {
      compute_u2_stripe(j - ctx_->l2_workers, task);
    }
    task.emit(key, std::to_string(j));  // the paper's (j, j) control pair
  }

 private:
  void compute_l2_stripe(int s, mr::TaskContext& task) {
    const LuJobContext& c = *ctx_;
    const RowRange rows = stripe(c.n - c.h, c.l2_workers, s);
    if (rows.count() == 0) return;
    // L2' rows solve  L2'·U1 = A3  row-independently (Eq. 6).
    const Matrix u1t = assemble_ut(task.fs(), *c.first, &task.io());
    const Matrix a3s =
        c.a3.read_block(task.fs(), rows.begin, rows.end, 0, c.h, &task.io());
    const Matrix l2s = solve_upper_right_from_transpose(u1t, a3s);
    IoStats flops = triangular_solve_cost(c.h, rows.count());
    if (!c.opts.transposed_u) flops = penalized(flops, c.layout_penalty);
    task.add_flops(flops);
    write_matrix(task.fs(), dfs::join(c.dir, "L2/L." + std::to_string(s)), l2s,
                 &task.io(), c.opts.intermediate_tier());
  }

  void compute_u2_stripe(int s, mr::TaskContext& task) {
    const LuJobContext& c = *ctx_;
    const RowRange cols = stripe(c.n - c.h, c.u2_workers, s);
    if (cols.count() == 0) return;
    // U2 columns solve  L1·U2 = P1·A2  column-independently (Eq. 6).
    const Matrix l1 = assemble_l(task.fs(), *c.first, &task.io());
    const Matrix a2s =
        c.a2.read_block(task.fs(), 0, c.h, cols.begin, cols.end, &task.io());
    const Matrix u2s = solve_lower(l1, c.first->perm.apply_to_rows(a2s));
    task.add_flops(triangular_solve_cost(c.h, cols.count()));
    const std::string path = dfs::join(c.dir, "U2/U." + std::to_string(s));
    if (c.opts.transposed_u) {
      write_matrix(task.fs(), path, transpose(u2s), &task.io(),
                   c.opts.intermediate_tier());
    } else {
      write_matrix(task.fs(), path, u2s, &task.io(),
                   c.opts.intermediate_tier());
    }
  }

  LuJobContextPtr ctx_;
};

class LuReducer : public mr::Reducer {
 public:
  explicit LuReducer(LuJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void reduce(std::int64_t key, const std::vector<std::string>& /*values*/,
              mr::TaskContext& task) override {
    // Each reduce task does its block exactly once, keyed by its own index.
    if (key != task.task_index()) return;
    const LuJobContext& c = *ctx_;
    const int t = task.task_index();
    const Index bn = c.n - c.h;
    const RowRange rows = stripe(bn, c.grid_rows, t / c.grid_cols);
    const RowRange cols = stripe(bn, c.grid_cols, t % c.grid_cols);
    if (rows.count() == 0 || cols.count() == 0) return;

    const Matrix l2_rows = c.l2_out.read_block(task.fs(), rows.begin, rows.end,
                                               0, c.h, &task.io());
    Matrix product;
    if (c.opts.transposed_u) {
      const Matrix u2t_rows = c.u2_out.read_block(
          task.fs(), cols.begin, cols.end, 0, c.h, &task.io());
      product = matmul(l2_rows, u2t_rows, {.transposed_b = true});
      task.add_flops(kernels::kernel_cost(kernels::default_backend(),
                                          rows.count(), c.h, cols.count()));
    } else {
      const Matrix u2_cols = c.u2_out.read_block(task.fs(), 0, c.h, cols.begin,
                                                 cols.end, &task.io());
      product = matmul(l2_rows, u2_cols);
      task.add_flops(
          penalized(kernels::kernel_cost(kernels::default_backend(),
                                         rows.count(), c.h, cols.count()),
                    c.layout_penalty));
    }
    Matrix b = c.a4.read_block(task.fs(), rows.begin, rows.end, cols.begin,
                               cols.end, &task.io());
    subtract_in_place(&b, product);
    IoStats sub;
    sub.adds = static_cast<std::uint64_t>(rows.count()) *
               static_cast<std::uint64_t>(cols.count());
    task.add_flops(sub);
    write_matrix(task.fs(), dfs::join(c.dir, "OUT/A." + std::to_string(t)), b,
                 &task.io(), c.opts.intermediate_tier());
  }

 private:
  LuJobContextPtr ctx_;
};

std::vector<Tile> stripes_as_tiles(const std::string& dir, const char* prefix,
                                   Index total_rows, Index cols, int workers) {
  std::vector<Tile> tiles;
  for (int s = 0; s < workers; ++s) {
    const RowRange r = stripe(total_rows, workers, s);
    if (r.count() == 0) continue;
    Tile t;
    t.path = dfs::join(dir, std::string(prefix) + std::to_string(s));
    t.r0 = r.begin;
    t.r1 = r.end;
    t.c0 = 0;
    t.c1 = cols;
    tiles.push_back(std::move(t));
  }
  return tiles;
}

}  // namespace

void plan_lu_job_outputs(LuJobContext* ctx) {
  MRI_REQUIRE(ctx != nullptr && ctx->first != nullptr, "incomplete context");
  const Index bn = ctx->n - ctx->h;
  if (ctx->opts.block_wrap) {
    const BlockWrapFactors f = block_wrap_factors(ctx->m0);
    ctx->grid_rows = f.f1;
    ctx->grid_cols = f.f2;
  } else {
    // §6.2 off: one row band per node; each reducer reads all of U2.
    ctx->grid_rows = ctx->m0;
    ctx->grid_cols = 1;
  }

  ctx->l2_out = TileSet(
      bn, ctx->h, stripes_as_tiles(ctx->dir, "L2/L.", bn, ctx->h,
                                   ctx->l2_workers));
  if (ctx->opts.transposed_u) {
    // Files hold U2ᵀ: stripe s covers rows (= U2 columns) of U2ᵀ.
    ctx->u2_out = TileSet(bn, ctx->h,
                          stripes_as_tiles(ctx->dir, "U2/U.", bn, ctx->h,
                                           ctx->u2_workers));
  } else {
    std::vector<Tile> tiles;
    for (int s = 0; s < ctx->u2_workers; ++s) {
      const RowRange c = stripe(bn, ctx->u2_workers, s);
      if (c.count() == 0) continue;
      Tile t;
      t.path = dfs::join(ctx->dir, "U2/U." + std::to_string(s));
      t.r0 = 0;
      t.r1 = ctx->h;
      t.c0 = c.begin;
      t.c1 = c.end;
      tiles.push_back(std::move(t));
    }
    ctx->u2_out = TileSet(ctx->h, bn, std::move(tiles));
  }

  std::vector<Tile> b_tiles;
  const int reduce_tasks = ctx->grid_rows * ctx->grid_cols;
  for (int t = 0; t < reduce_tasks; ++t) {
    const RowRange rows = stripe(bn, ctx->grid_rows, t / ctx->grid_cols);
    const RowRange cols = stripe(bn, ctx->grid_cols, t % ctx->grid_cols);
    if (rows.count() == 0 || cols.count() == 0) continue;
    Tile tile;
    tile.path = dfs::join(ctx->dir, "OUT/A." + std::to_string(t));
    tile.r0 = rows.begin;
    tile.r1 = rows.end;
    tile.c0 = cols.begin;
    tile.c1 = cols.end;
    b_tiles.push_back(std::move(tile));
  }
  ctx->b_out = TileSet(bn, bn, std::move(b_tiles));
}

mr::JobSpec make_lu_job(LuJobContextPtr ctx,
                        std::vector<std::string> control_files,
                        std::string job_name) {
  MRI_REQUIRE(ctx != nullptr, "null LU job context");
  mr::JobSpec spec;
  spec.name = std::move(job_name);
  spec.input_files = std::move(control_files);
  spec.num_reduce_tasks = ctx->grid_rows * ctx->grid_cols;
  spec.mapper_factory = [ctx] { return std::make_unique<LuMapper>(ctx); };
  spec.reducer_factory = [ctx] { return std::make_unique<LuReducer>(ctx); };
  return spec;
}

}  // namespace mri::core
