// The recursive block-LU driver (Algorithm 2) as a pipeline of MapReduce
// jobs: leaves are LU-decomposed on the master node; each internal node is
// one MapReduce job; the second child's input B is "partitioned" by
// metadata only (a TileSet window over the reducers' OUT tiles, §5.2).
#pragma once

#include <string>
#include <vector>

#include "core/lu_tree.hpp"
#include "core/options.hpp"
#include "core/partition_layout.hpp"
#include "mapreduce/pipeline.hpp"

namespace mri::core {

class LuPipeline {
 public:
  /// `after` (optional) is the job every LU job transitively depends on —
  /// the partition job that materialized the spine. The LU jobs themselves
  /// are submitted as an explicit dependency chain: each one's input window
  /// covers the previous job's OUT tiles, so the chain order is the true
  /// data-dependency order (Algorithm 2 is inherently sequential).
  LuPipeline(mr::Pipeline* pipeline, dfs::Dfs* fs, InversionOptions opts,
             int m0, double layout_penalty,
             std::vector<std::string> control_files,
             mr::JobHandle after = {});

  /// The last LU job submitted so far; dependency anchor for the final
  /// inversion stage (invalid before the first job — depth-0 plans run no
  /// LU job at all).
  mr::JobHandle last_job() const { return last_job_; }

  /// Factors the left spine materialized by the partition job.
  LuNodePtr factor_partitioned(const PartitionGeometry& geom);

  /// Factors an arbitrary tiled input region (used for the B subtrees, and
  /// directly in tests).
  LuNodePtr factor_tiles(const TileSet& input, int depth_remaining,
                         const std::string& dir);

 private:
  LuNodePtr factor_spine(const PartitionGeometry& geom, int level);
  LuNodePtr factor_leaf(const TileSet& input, const std::string& dir);
  LuNodePtr run_internal(Index n, Index h, TileSet a2, TileSet a3, TileSet a4,
                         LuNodePtr first, int child_depth,
                         const std::string& dir);
  void charge_combine_penalty(Index n, Index h);

  mr::Pipeline* pipeline_;
  dfs::Dfs* fs_;
  InversionOptions opts_;
  int m0_;
  double layout_penalty_;
  std::vector<std::string> control_files_;
  mr::JobHandle last_job_;
};

}  // namespace mri::core
