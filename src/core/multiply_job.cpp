#include "core/multiply_job.hpp"

#include <algorithm>

#include "dfs/path.hpp"
#include "linalg/kernels/kernel.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/ops.hpp"

namespace mri::core {

namespace {

class MultiplyMapper : public mr::Mapper {
 public:
  void map(std::int64_t key, const std::string& value,
           mr::TaskContext& task) override {
    // Control fan-out only (the operands are already in the DFS).
    task.emit(key, value);
  }
};

class MultiplyReducer : public mr::Reducer {
 public:
  explicit MultiplyReducer(MultiplyJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void reduce(std::int64_t key, const std::vector<std::string>& /*values*/,
              mr::TaskContext& task) override {
    if (key != task.task_index()) return;
    const MultiplyJobContext& c = *ctx_;
    const int t = task.task_index();
    const RowRange rows = stripe(c.a.rows(), c.grid_rows, t / c.grid_cols);
    const RowRange cols = stripe(c.b.cols(), c.grid_cols, t % c.grid_cols);
    if (rows.count() == 0 || cols.count() == 0) return;

    const Matrix a_rows =
        c.a.read_block(task.fs(), rows.begin, rows.end, 0, c.a.cols(),
                       &task.io());
    const Matrix b_cols =
        c.b.read_block(task.fs(), 0, c.b.rows(), cols.begin, cols.end,
                       &task.io());
    const Matrix block = matmul(a_rows, b_cols);
    task.add_flops(kernels::kernel_cost(kernels::default_backend(),
                                        rows.count(), c.a.cols(),
                                        cols.count()));
    write_matrix(task.fs(), dfs::join(c.dir, "MUL/C." + std::to_string(t)),
                 block, &task.io(), c.tier);
  }

 private:
  MultiplyJobContextPtr ctx_;
};

std::string carry_path(const MultiplyJobContext& c, int t, int round) {
  return dfs::join(c.dir,
                   "MULR/C." + std::to_string(t) + "." + std::to_string(round));
}

class MultiRoundReducer : public mr::Reducer {
 public:
  MultiRoundReducer(MultiplyJobContextPtr ctx, int round)
      : ctx_(std::move(ctx)), round_(round) {}

  void reduce(std::int64_t key, const std::vector<std::string>& /*values*/,
              mr::TaskContext& task) override {
    if (key != task.task_index()) return;
    const MultiplyJobContext& c = *ctx_;
    const int t = task.task_index();
    const RowRange rows = stripe(c.a.rows(), c.grid_rows, t / c.grid_cols);
    const RowRange cols = stripe(c.b.cols(), c.grid_cols, t % c.grid_cols);
    if (rows.count() == 0 || cols.count() == 0) return;

    const int r = std::max(1, c.strategy.replication);
    const int s0 = round_ * r;
    const int s1 = std::min(c.segments, s0 + r);

    // The carry tile is the partial sum over segments [0, s0) written by the
    // previous round; round 0 starts from zero.
    Matrix acc = round_ == 0
                     ? Matrix(rows.count(), cols.count())
                     : read_matrix(task.fs(), carry_path(c, t, round_ - 1),
                                   &task.io());
    for (int s = s0; s < s1; ++s) {
      const RowRange seg = stripe(c.a.cols(), c.segments, s);
      if (seg.count() == 0) continue;
      const Matrix a_blk = c.a.read_block(task.fs(), rows.begin, rows.end,
                                          seg.begin, seg.end, &task.io());
      const Matrix b_blk = c.b.read_block(task.fs(), seg.begin, seg.end,
                                          cols.begin, cols.end, &task.io());
      matmul_into(a_blk, b_blk, &acc, kernels::GemmMode::kAccumulate);
      task.add_flops(kernels::kernel_cost(kernels::default_backend(),
                                          rows.count(), seg.count(),
                                          cols.count()));
    }

    const bool last = round_ == c.rounds - 1;
    const std::string out = last
                                ? dfs::join(c.dir, "MUL/C." + std::to_string(t))
                                : carry_path(c, t, round_);
    write_matrix(task.fs(), out, acc, &task.io(), c.tier);
  }

 private:
  MultiplyJobContextPtr ctx_;
  int round_;
};

}  // namespace

void plan_multiply_job(MultiplyJobContext* ctx) {
  MRI_REQUIRE(ctx != nullptr, "null multiply context");
  MRI_REQUIRE(ctx->a.cols() == ctx->b.rows(),
              "multiply shape mismatch: " << ctx->a.rows() << "x"
                                          << ctx->a.cols() << " · "
                                          << ctx->b.rows() << "x"
                                          << ctx->b.cols());
  const BlockWrapFactors f = block_wrap_factors(ctx->m0);
  ctx->grid_rows = f.f1;
  ctx->grid_cols = f.f2;

  std::vector<Tile> tiles;
  for (int t = 0; t < ctx->grid_rows * ctx->grid_cols; ++t) {
    const RowRange rows =
        stripe(ctx->a.rows(), ctx->grid_rows, t / ctx->grid_cols);
    const RowRange cols =
        stripe(ctx->b.cols(), ctx->grid_cols, t % ctx->grid_cols);
    if (rows.count() == 0 || cols.count() == 0) continue;
    Tile tile;
    tile.path = dfs::join(ctx->dir, "MUL/C." + std::to_string(t));
    tile.r0 = rows.begin;
    tile.r1 = rows.end;
    tile.c0 = cols.begin;
    tile.c1 = cols.end;
    tiles.push_back(std::move(tile));
  }
  ctx->c_out = TileSet(ctx->a.rows(), ctx->b.cols(), std::move(tiles));
}

mr::JobSpec make_multiply_job(MultiplyJobContextPtr ctx,
                              std::vector<std::string> control_files,
                              std::string job_name) {
  MRI_REQUIRE(ctx != nullptr, "null multiply context");
  mr::JobSpec spec;
  spec.name = std::move(job_name);
  spec.input_files = std::move(control_files);
  spec.num_reduce_tasks = ctx->grid_rows * ctx->grid_cols;
  spec.mapper_factory = [] { return std::make_unique<MultiplyMapper>(); };
  spec.reducer_factory = [ctx] {
    return std::make_unique<MultiplyReducer>(ctx);
  };
  return spec;
}

mr::JobSpec make_multiply_round_job(MultiplyJobContextPtr ctx, int round,
                                    std::vector<std::string> control_files,
                                    std::string job_name) {
  MRI_REQUIRE(ctx != nullptr, "null multiply context");
  MRI_REQUIRE(round >= 0 && round < ctx->rounds,
              "round " << round << " out of range [0, " << ctx->rounds << ")");
  mr::JobSpec spec;
  spec.name = std::move(job_name);
  spec.input_files = std::move(control_files);
  spec.num_reduce_tasks = ctx->grid_rows * ctx->grid_cols;
  spec.mapper_factory = [] { return std::make_unique<MultiplyMapper>(); };
  spec.reducer_factory = [ctx, round] {
    return std::make_unique<MultiRoundReducer>(ctx, round);
  };
  return spec;
}

}  // namespace mri::core
