#include "core/multiply_job.hpp"

#include "dfs/path.hpp"
#include "matrix/dfs_io.hpp"
#include "matrix/ops.hpp"

namespace mri::core {

namespace {

class MultiplyMapper : public mr::Mapper {
 public:
  void map(std::int64_t key, const std::string& value,
           mr::TaskContext& task) override {
    // Control fan-out only (the operands are already in the DFS).
    task.emit(key, value);
  }
};

class MultiplyReducer : public mr::Reducer {
 public:
  explicit MultiplyReducer(MultiplyJobContextPtr ctx) : ctx_(std::move(ctx)) {}

  void reduce(std::int64_t key, const std::vector<std::string>& /*values*/,
              mr::TaskContext& task) override {
    if (key != task.task_index()) return;
    const MultiplyJobContext& c = *ctx_;
    const int t = task.task_index();
    const RowRange rows = stripe(c.a.rows(), c.grid_rows, t / c.grid_cols);
    const RowRange cols = stripe(c.b.cols(), c.grid_cols, t % c.grid_cols);
    if (rows.count() == 0 || cols.count() == 0) return;

    const Matrix a_rows =
        c.a.read_block(task.fs(), rows.begin, rows.end, 0, c.a.cols(),
                       &task.io());
    const Matrix b_cols =
        c.b.read_block(task.fs(), 0, c.b.rows(), cols.begin, cols.end,
                       &task.io());
    const Matrix block = multiply(a_rows, b_cols);
    task.add_flops(multiply_cost(rows.count(), c.a.cols(), cols.count()));
    write_matrix(task.fs(), dfs::join(c.dir, "MUL/C." + std::to_string(t)),
                 block, &task.io(), c.tier);
  }

 private:
  MultiplyJobContextPtr ctx_;
};

}  // namespace

void plan_multiply_job(MultiplyJobContext* ctx) {
  MRI_REQUIRE(ctx != nullptr, "null multiply context");
  MRI_REQUIRE(ctx->a.cols() == ctx->b.rows(),
              "multiply shape mismatch: " << ctx->a.rows() << "x"
                                          << ctx->a.cols() << " · "
                                          << ctx->b.rows() << "x"
                                          << ctx->b.cols());
  const BlockWrapFactors f = block_wrap_factors(ctx->m0);
  ctx->grid_rows = f.f1;
  ctx->grid_cols = f.f2;

  std::vector<Tile> tiles;
  for (int t = 0; t < ctx->grid_rows * ctx->grid_cols; ++t) {
    const RowRange rows =
        stripe(ctx->a.rows(), ctx->grid_rows, t / ctx->grid_cols);
    const RowRange cols =
        stripe(ctx->b.cols(), ctx->grid_cols, t % ctx->grid_cols);
    if (rows.count() == 0 || cols.count() == 0) continue;
    Tile tile;
    tile.path = dfs::join(ctx->dir, "MUL/C." + std::to_string(t));
    tile.r0 = rows.begin;
    tile.r1 = rows.end;
    tile.c0 = cols.begin;
    tile.c1 = cols.end;
    tiles.push_back(std::move(tile));
  }
  ctx->c_out = TileSet(ctx->a.rows(), ctx->b.cols(), std::move(tiles));
}

mr::JobSpec make_multiply_job(MultiplyJobContextPtr ctx,
                              std::vector<std::string> control_files,
                              std::string job_name) {
  MRI_REQUIRE(ctx != nullptr, "null multiply context");
  mr::JobSpec spec;
  spec.name = std::move(job_name);
  spec.input_files = std::move(control_files);
  spec.num_reduce_tasks = ctx->grid_rows * ctx->grid_cols;
  spec.mapper_factory = [] { return std::make_unique<MultiplyMapper>(); };
  spec.reducer_factory = [ctx] {
    return std::make_unique<MultiplyReducer>(ctx);
  };
  return spec;
}

Matrix mapreduce_multiply(mr::Pipeline* pipeline, dfs::Dfs* fs, int m0,
                          const Matrix& a, const Matrix& b,
                          const std::string& work_dir,
                          std::vector<std::string> control_files,
                          mr::JobHandle after) {
  MRI_REQUIRE(pipeline != nullptr && fs != nullptr, "null pipeline/fs");
  // Ingest the operands pre-striped for the block wrap (the §5.2 storage
  // discipline: a reducer's stripe lives in its own files, so nobody reads
  // whole operands): A as f1 row stripes, B as f2 column stripes.
  const BlockWrapFactors f = block_wrap_factors(m0);
  const std::string mul_in = dfs::join(work_dir, "MULIN");
  if (fs->exists(mul_in)) fs->remove(mul_in, /*recursive=*/true);

  std::vector<Tile> a_tiles;
  for (int s = 0; s < f.f1; ++s) {
    const RowRange r = stripe(a.rows(), f.f1, s);
    if (r.count() == 0) continue;
    Tile t;
    t.path = dfs::join(mul_in, "a." + std::to_string(s));
    t.r0 = r.begin;
    t.r1 = r.end;
    t.c0 = 0;
    t.c1 = a.cols();
    write_matrix(*fs, t.path, a.block(r.begin, r.end, 0, a.cols()));
    a_tiles.push_back(std::move(t));
  }
  std::vector<Tile> b_tiles;
  for (int s = 0; s < f.f2; ++s) {
    const RowRange c = stripe(b.cols(), f.f2, s);
    if (c.count() == 0) continue;
    Tile t;
    t.path = dfs::join(mul_in, "b." + std::to_string(s));
    t.r0 = 0;
    t.r1 = b.rows();
    t.c0 = c.begin;
    t.c1 = c.end;
    write_matrix(*fs, t.path, b.block(0, b.rows(), c.begin, c.end));
    b_tiles.push_back(std::move(t));
  }

  auto ctx = std::make_shared<MultiplyJobContext>();
  ctx->a = TileSet(a.rows(), a.cols(), std::move(a_tiles));
  ctx->b = TileSet(b.rows(), b.cols(), std::move(b_tiles));
  ctx->dir = work_dir;
  ctx->m0 = m0;
  plan_multiply_job(ctx.get());
  if (fs->exists(dfs::join(work_dir, "MUL"))) {
    fs->remove(dfs::join(work_dir, "MUL"), /*recursive=*/true);
  }
  pipeline->wait(pipeline->submit(
      make_multiply_job(ctx, std::move(control_files), "multiply"), {after}));
  return ctx->c_out.read_all(*fs);
}

}  // namespace mri::core
