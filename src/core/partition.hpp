// The data-partitioning MapReduce job (Algorithm 3).
//
// Map-only: mapper j reads its band of consecutive input rows exactly once
// (§5.2 — "the input matrix is read only once") and writes every piece of
// every left-spine region that intersects its band. The reduce function
// does nothing.
#pragma once

#include <string>

#include "core/partition_layout.hpp"
#include "mapreduce/job.hpp"

namespace mri::core {

/// Builds the partition job spec. `input_path` must be a binary matrix file
/// of order geom.n; `control_files` are the MapInput/A.j files (one map task
/// each).
mr::JobSpec make_partition_job(const PartitionGeometry& geom,
                               std::string input_path,
                               std::vector<std::string> control_files);

}  // namespace mri::core
