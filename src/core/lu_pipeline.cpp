#include "core/lu_pipeline.hpp"

#include "core/factor_io.hpp"
#include "core/lu_job.hpp"
#include "dfs/path.hpp"
#include "linalg/lu.hpp"
#include "matrix/ops.hpp"

namespace mri::core {

LuPipeline::LuPipeline(mr::Pipeline* pipeline, dfs::Dfs* fs,
                       InversionOptions opts, int m0, double layout_penalty,
                       std::vector<std::string> control_files,
                       mr::JobHandle after)
    : pipeline_(pipeline),
      fs_(fs),
      opts_(std::move(opts)),
      m0_(m0),
      layout_penalty_(layout_penalty),
      control_files_(std::move(control_files)),
      last_job_(after) {
  MRI_REQUIRE(pipeline != nullptr && fs != nullptr, "null pipeline/fs");
  MRI_REQUIRE(m0 >= 1, "need at least one node");
}

LuNodePtr LuPipeline::factor_partitioned(const PartitionGeometry& geom) {
  return factor_spine(geom, 0);
}

LuNodePtr LuPipeline::factor_spine(const PartitionGeometry& geom, int level) {
  if (level == geom.depth) {
    return factor_leaf(region_tiles(geom, geom.depth, Region::kLeaf),
                       geom.leaf_dir);
  }
  const LevelGeometry& lv = geom.levels[static_cast<std::size_t>(level)];
  LuNodePtr first = factor_spine(geom, level + 1);
  return run_internal(lv.parent_n, lv.h,
                      region_tiles(geom, level + 1, Region::kA2),
                      region_tiles(geom, level + 1, Region::kA3),
                      region_tiles(geom, level + 1, Region::kA4),
                      std::move(first), geom.depth - level - 1, lv.dir);
}

LuNodePtr LuPipeline::factor_tiles(const TileSet& input, int depth_remaining,
                                   const std::string& dir) {
  MRI_REQUIRE(input.rows() == input.cols(), "factor_tiles needs a square region");
  if (depth_remaining == 0) return factor_leaf(input, dir);
  const Index n = input.rows();
  const Index h = split_point(n);
  LuNodePtr first =
      factor_tiles(input.window(0, h, 0, h), depth_remaining - 1,
                   dfs::join(dir, "A1"));
  return run_internal(n, h, input.window(0, h, h, n),
                      input.window(h, n, 0, h), input.window(h, n, h, n),
                      std::move(first), depth_remaining - 1, dir);
}

LuNodePtr LuPipeline::factor_leaf(const TileSet& input, const std::string& dir) {
  // Algorithm 1 on the master node (§4.2: "we decompose such small matrices
  // in the MapReduce master node").
  IoStats master_io;
  const Matrix a = input.read_all(*fs_, &master_io);
  LuResult lu = lu_decompose(a);
  auto node = std::make_unique<LuNode>();
  node->n = a.rows();
  node->leaf = true;
  node->l_path = dfs::join(dir, "l.bin");
  node->ut_path = dfs::join(dir, "ut.bin");
  node->perm_path = dfs::join(dir, "p.bin");
  write_lower_packed(*fs_, node->l_path, lu.unit_lower(), /*unit_diag=*/true,
                     &master_io, opts_.intermediate_tier());
  write_lower_packed(*fs_, node->ut_path, transpose(lu.upper()),
                     /*unit_diag=*/false, &master_io,
                     opts_.intermediate_tier());
  write_permutation(*fs_, node->perm_path, lu.perm, &master_io,
                    opts_.intermediate_tier());
  node->perm = std::move(lu.perm);
  master_io += lu_cost(node->n);
  pipeline_->add_master_work(master_io);
  return node;
}

LuNodePtr LuPipeline::run_internal(Index n, Index h, TileSet a2, TileSet a3,
                                   TileSet a4, LuNodePtr first,
                                   int child_depth, const std::string& dir) {
  auto ctx = std::make_shared<LuJobContext>();
  ctx->n = n;
  ctx->h = h;
  ctx->first = first.get();
  ctx->a2 = std::move(a2);
  ctx->a3 = std::move(a3);
  ctx->a4 = std::move(a4);
  ctx->opts = opts_;
  ctx->dir = dir;
  ctx->m0 = m0_;
  if (m0_ == 1) {
    ctx->l2_workers = 1;
    ctx->u2_workers = 1;
  } else {
    ctx->l2_workers = (m0_ + 1) / 2;
    ctx->u2_workers = m0_ - ctx->l2_workers;
  }
  ctx->layout_penalty = layout_penalty_;
  plan_lu_job_outputs(ctx.get());

  // Submit with an explicit dependency on the previous LU job (or the
  // partition job): the chain is the data-dependency order. The wait keeps
  // the master's recursion lockstep — B's geometry comes from this job's
  // planned outputs, and the next leaf reads tiles this job wrote.
  last_job_ = pipeline_->submit(make_lu_job(ctx, control_files_, "lu:" + dir),
                                {last_job_});
  pipeline_->wait(last_job_);

  // The master "partitions" B by metadata only (§5.2) and recurses.
  LuNodePtr second =
      factor_tiles(ctx->b_out, child_depth, dfs::join(dir, "B"));

  auto node = std::make_unique<LuNode>();
  node->n = n;
  node->h = h;
  node->leaf = false;
  node->l2 = ctx->l2_out;
  node->u2 = ctx->u2_out;
  node->u2_transposed = opts_.transposed_u;
  node->perm = Permutation::concat(first->perm, second->perm);
  node->first = std::move(first);
  node->second = std::move(second);

  if (!opts_.separate_intermediate_files) charge_combine_penalty(n, h);
  return node;
}

void LuPipeline::charge_combine_penalty(Index n, Index h) {
  // §6.1 ablation: without separate intermediate files the master serially
  // reads the factor files produced so far at this node (L1, L2', U1, U2 —
  // everything except the not-yet-factored B block) and rewrites them as
  // combined l/u files. Serial time on one node; no parallelism.
  const std::uint64_t elements =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) -
      static_cast<std::uint64_t>(n - h) * static_cast<std::uint64_t>(n - h);
  IoStats io;
  io.bytes_read = elements * sizeof(double);
  io.bytes_written = elements * sizeof(double);
  io.bytes_transferred = io.bytes_read;
  pipeline_->add_master_work(io);
}

}  // namespace mri::core
