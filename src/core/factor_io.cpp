#include "core/factor_io.hpp"

#include "matrix/dfs_io.hpp"

namespace mri::core {

void write_packed_lu(dfs::Dfs& fs, const std::string& path, const Matrix& packed,
                     IoStats* account) {
  MRI_REQUIRE(packed.square(), "packed LU must be square");
  write_matrix(fs, path, packed, account);
}

Matrix read_packed_lu(const dfs::Dfs& fs, const std::string& path,
                      IoStats* account) {
  Matrix m = read_matrix(fs, path, account);
  MRI_CHECK_MSG(m.square(), "packed LU file is not square: " << path);
  return m;
}

Matrix unpack_unit_lower(const Matrix& packed) {
  const Index n = packed.rows();
  Matrix l(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) l(i, j) = packed(i, j);
    l(i, i) = 1.0;
  }
  return l;
}

Matrix unpack_upper(const Matrix& packed) {
  const Index n = packed.rows();
  Matrix u(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) u(i, j) = packed(i, j);
  return u;
}

Matrix unpack_upper_transposed(const Matrix& packed) {
  const Index n = packed.rows();
  Matrix ut(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) ut(j, i) = packed(i, j);
  return ut;
}

namespace {
constexpr std::uint64_t kTriMagic = 0x4D52494E56545249ull;  // "MRINVTRI"
}  // namespace

void write_lower_packed(dfs::Dfs& fs, const std::string& path, const Matrix& m,
                        bool unit_diag, IoStats* account,
                        dfs::StorageTier tier) {
  MRI_REQUIRE(m.square(), "triangular-packed matrix must be square");
  const Index n = m.rows();
  dfs::Dfs::Writer w = fs.create(path, account, /*overwrite=*/false, tier);
  w.write_u64(kTriMagic);
  w.write_u64(static_cast<std::uint64_t>(n));
  w.write_u64(unit_diag ? 1 : 0);
  for (Index i = 0; i < n; ++i) {
    const Index len = unit_diag ? i : i + 1;
    w.write_doubles(m.row(i).subspan(0, static_cast<std::size_t>(len)));
  }
  w.close();
}

Matrix read_lower_packed(const dfs::Dfs& fs, const std::string& path,
                         IoStats* account) {
  auto r = fs.open(path, account);
  MRI_CHECK_MSG(r.read_u64() == kTriMagic,
                "bad triangular-packed magic in " << path);
  const auto n = static_cast<Index>(r.read_u64());
  const bool unit_diag = r.read_u64() != 0;
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    const Index len = unit_diag ? i : i + 1;
    r.read_doubles(m.row(i).subspan(0, static_cast<std::size_t>(len)));
    if (unit_diag) m(i, i) = 1.0;
  }
  return m;
}

void write_permutation(dfs::Dfs& fs, const std::string& path,
                       const Permutation& perm, IoStats* account,
                       dfs::StorageTier tier) {
  dfs::Dfs::Writer w = fs.create(path, account, /*overwrite=*/false, tier);
  w.write_u64(static_cast<std::uint64_t>(perm.size()));
  for (Index i = 0; i < perm.size(); ++i) {
    w.write_u64(static_cast<std::uint64_t>(perm[i]));
  }
  w.close();
}

Permutation read_permutation(const dfs::Dfs& fs, const std::string& path,
                             IoStats* account) {
  auto r = fs.open(path, account);
  const auto n = static_cast<Index>(r.read_u64());
  std::vector<Index> map(static_cast<std::size_t>(n));
  for (auto& v : map) v = static_cast<Index>(r.read_u64());
  return Permutation(std::move(map));
}

}  // namespace mri::core
