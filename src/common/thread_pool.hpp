// Fixed-size thread pool used by the MapReduce runtime and the MPI simulator
// to execute tasks with real computation.
//
// The pool is deliberately simple: submit() returns a std::future, workers
// pull from a single locked queue. Task granularity in mrinverse is coarse
// (whole map/reduce tasks), so queue contention is negligible.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace mri {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submits a callable; returns a future for its result. Exceptions thrown
  /// by the callable propagate through the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      MRI_CHECK_MSG(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// True when the calling thread is one of this pool's workers.
  bool in_worker_thread() const;

  /// Runs `fn(i)` for i in [0, count) across the pool and waits for all.
  /// Rethrows the first exception encountered. Safe to call from inside a
  /// worker thread: the iterations then run inline on the caller (waiting
  /// on pool futures from a worker would deadlock).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// A process-wide pool sized to the hardware; used when callers do not care
/// about pool identity.
ThreadPool& global_pool();

}  // namespace mri
