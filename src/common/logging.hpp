// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Logging defaults to kWarn so tests and benches stay quiet; examples turn on
// kInfo to narrate the pipeline. No global construction order issues: the
// logger is a Meyers singleton.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace mri {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace mri

#define MRI_LOG(level) ::mri::detail::LogLine(level, __FILE__, __LINE__)
#define MRI_DEBUG() MRI_LOG(::mri::LogLevel::kDebug)
#define MRI_INFO() MRI_LOG(::mri::LogLevel::kInfo)
#define MRI_WARN() MRI_LOG(::mri::LogLevel::kWarn)
#define MRI_ERROR() MRI_LOG(::mri::LogLevel::kError)
