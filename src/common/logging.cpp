#include "common/logging.hpp"

#include <cstdio>
#include <cstring>

namespace mri {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               static_cast<int>(Logger::instance().level())) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    os_ << (base ? base + 1 : file) << ":" << line << " ";
  }
}

LogLine::~LogLine() {
  if (enabled_) Logger::instance().write(level_, os_.str());
}

}  // namespace detail

}  // namespace mri
