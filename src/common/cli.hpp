// Tiny command-line option parser for examples and benchmark harnesses.
//
// Supports "--name value" and "--name=value" and boolean "--flag". Unknown
// options throw so typos in experiment scripts are caught immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mri {

class CliOptions {
 public:
  CliOptions(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. "--nodes 1,2,4,8".
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mri
