#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace mri {

CliOptions::CliOptions(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool CliOptions::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliOptions::get_string(const std::string& name,
                                   const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliOptions::get_int(const std::string& name,
                                 std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  MRI_REQUIRE(end && *end == '\0', "option --" << name << " expects an integer, got '"
                                               << it->second << "'");
  return v;
}

double CliOptions::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  MRI_REQUIRE(end && *end == '\0', "option --" << name << " expects a number, got '"
                                               << it->second << "'");
  return v;
}

bool CliOptions::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("option --" + name + " expects a boolean, got '" + v +
                        "'");
}

std::vector<std::int64_t> CliOptions::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    if (!item.empty()) {
      char* end = nullptr;
      std::int64_t v = std::strtoll(item.c_str(), &end, 10);
      MRI_REQUIRE(end && *end == '\0',
                  "option --" << name << " expects integers, got '" << item << "'");
      out.push_back(v);
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace mri
