// Human-readable formatting of byte counts, element counts and durations,
// used by the benchmark harnesses when printing the paper's tables.
#pragma once

#include <cstdint>
#include <string>

namespace mri {

/// "1.07 billion", "0.42 billion", ... (Table 3 style).
std::string format_billions(std::uint64_t count);

/// "8 GB", "3.2 GB", "200 GB" ... (Table 3 style: 1 GB = 1e9 bytes).
std::string format_gb(std::uint64_t bytes);

/// "512 B", "14.2 KB", "3.1 MB", "2.4 GB", "20.1 TB" (binary-ish display,
/// decimal units to match the paper's text).
std::string format_bytes(std::uint64_t bytes);

/// "42 s", "3.5 min", "5.1 h".
std::string format_duration(double seconds);

}  // namespace mri
