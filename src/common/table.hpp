// Plain-text table printer used by the benchmark harnesses to print the
// paper's tables and figure series in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace mri {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  /// Convenience: prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string cell(double value, int precision = 2);
std::string cell_int(long long value);

}  // namespace mri
