#include "common/units.hpp"

#include <cstdio>

namespace mri {

namespace {

std::string format_with(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_billions(std::uint64_t count) {
  return format_with(static_cast<double>(count) / 1e9, "billion");
}

std::string format_gb(std::uint64_t bytes) {
  return format_with(static_cast<double>(bytes) / 1e9, "GB");
}

std::string format_bytes(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1e12) return format_with(b / 1e12, "TB");
  if (b >= 1e9) return format_with(b / 1e9, "GB");
  if (b >= 1e6) return format_with(b / 1e6, "MB");
  if (b >= 1e3) return format_with(b / 1e3, "KB");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu B",
                static_cast<unsigned long long>(bytes));
  return buf;
}

std::string format_duration(double seconds) {
  if (seconds >= 3600.0) return format_with(seconds / 3600.0, "h");
  if (seconds >= 60.0) return format_with(seconds / 60.0, "min");
  return format_with(seconds, "s");
}

}  // namespace mri
