// Wall-clock stopwatch for measuring real (not simulated) time.
#pragma once

#include <chrono>

namespace mri {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mri
