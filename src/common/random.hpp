// Deterministic, fast pseudo-random generators.
//
// Everything in mrinverse that needs randomness (matrix generation, task
// placement jitter, failure schedules) takes an explicit seed so runs are
// reproducible; we never touch global RNG state.
#pragma once

#include <cstdint>
#include <limits>

namespace mri {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's unbiased rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace mri
