#include "common/thread_pool.hpp"

#include <algorithm>

namespace mri {

ThreadPool::ThreadPool(std::size_t num_threads) {
  MRI_REQUIRE(num_threads >= 1, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::in_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  // Nested parallelism: a worker waiting on futures that need this same
  // pool's workers deadlocks once all workers block. Run inline instead.
  if (in_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace mri
