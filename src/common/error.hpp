// Error handling primitives used across mrinverse.
//
// Following the C++ Core Guidelines (E.2, E.14) we throw exceptions derived
// from std::runtime_error for runtime failures, and use MRI_CHECK /
// MRI_REQUIRE for precondition-style checks that must hold in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mri {

/// Base class for all mrinverse errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine cannot proceed (e.g. singular matrix in LU).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A distributed-filesystem operation failed (missing path, bad rename, ...).
class DfsError : public Error {
 public:
  explicit DfsError(const std::string& what) : Error(what) {}
};

/// Every replica of a DFS block died with its datanode: the data is gone
/// and no amount of retrying this read will bring it back. Reads fail fast
/// with this (never hang, never return zeros) so callers can distinguish
/// permanent data loss from transient read errors (plain DfsError).
class UnrecoverableBlock : public DfsError {
 public:
  explicit UnrecoverableBlock(const std::string& what) : DfsError(what) {}
};

/// A MapReduce job failed permanently (all retries exhausted).
class JobError : public Error {
 public:
  explicit JobError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(std::string_view kind,
                                             std::string_view expr,
                                             std::string_view file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace mri

/// Internal invariant; active in all build types.
#define MRI_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mri::detail::throw_check_failure("MRI_CHECK", #cond, __FILE__,      \
                                         __LINE__, "");                     \
  } while (0)

#define MRI_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream mri_os_;                                           \
      mri_os_ << msg;                                                       \
      ::mri::detail::throw_check_failure("MRI_CHECK", #cond, __FILE__,      \
                                         __LINE__, mri_os_.str());          \
    }                                                                       \
  } while (0)

/// Public-API precondition; throws InvalidArgument.
#define MRI_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream mri_os_;                                           \
      mri_os_ << msg;                                                       \
      throw ::mri::InvalidArgument(mri_os_.str());                          \
    }                                                                       \
  } while (0)
