#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace mri {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  MRI_REQUIRE(row.size() == header_.size(),
              "row width " << row.size() << " != header width "
                           << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string cell_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace mri
