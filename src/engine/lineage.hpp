// Lineage graph for memory-tier intermediates.
//
// SPIN/Spark fault tolerance: an in-memory partition has one replica; if its
// node dies the partition is REBUILT by re-running the task that produced it
// (whose inputs are either base data on the replicated disk tier or other
// lineage-tracked partitions), not re-replicated. The graph records, per
// memory-tier file, the producing job, the producer task's read-set, its
// production cost (the task's full IoStats, so the simulated re-run costs
// what the original run cost), and the payload bytes themselves — the
// simulator runs real computation eagerly, so "recompute" restores the
// retained payload while charging the simulated re-execution time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/io_stats.hpp"

namespace mri::engine {

struct LineageRecord {
  /// Ordinal of the producing job in submission order.
  std::uint64_t producer_job = 0;
  std::string producer_name;
  /// Paths the producing task read (its lineage inputs). Untracked paths
  /// are base data: disk-tier, replication-protected, always readable.
  std::vector<std::string> inputs;
  std::uint64_t size = 0;
  /// 1 + max depth of tracked inputs (1 = produced from base data alone).
  /// Recovery re-runs producers in ascending-depth waves so a partition's
  /// inputs are restored before the partition itself.
  int depth = 1;
  /// The producing task's accounting, including this write — the simulated
  /// cost of one re-execution.
  IoStats production_io;
  /// Retained payload (see file header); shared so restore is copy-free.
  std::shared_ptr<const std::vector<std::byte>> payload;
  /// Tier to restore onto: kMemory normally, kDisk once the file spilled.
  bool on_memory_tier = true;
};

class LineageGraph {
 public:
  /// Registers (or replaces) the record for a produced partition. Computes
  /// depth from the currently tracked inputs.
  void record(const std::string& path, LineageRecord rec);
  void erase(const std::string& path);
  bool tracked(const std::string& path) const;
  /// Copy of the record; throws if untracked.
  LineageRecord get(const std::string& path) const;
  /// Flips the restore tier after a spill.
  void mark_spilled(const std::string& path);

  std::size_t size() const;

  /// Partitions to rebuild among `lost`, grouped into ascending-depth waves
  /// (paths sorted within each wave). Untracked paths are dropped — they
  /// are the replicated disk tier's problem.
  std::vector<std::vector<std::string>> plan_waves(
      const std::vector<std::string>& lost) const;

 private:
  std::map<std::string, LineageRecord> records_;
};

}  // namespace mri::engine
