#include "engine/spin_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace mri::engine {

SpinEngine::SpinEngine(dfs::Dfs* fs, ChaosEngine* chaos,
                       const CostModel* model, MetricsRegistry* metrics,
                       std::uint64_t cache_capacity_bytes)
    : fs_(fs),
      chaos_(chaos),
      model_(model),
      metrics_(metrics),
      cache_(fs != nullptr ? fs->num_datanodes() : 1, cache_capacity_bytes) {
  MRI_REQUIRE(fs_ != nullptr, "SpinEngine needs a filesystem");
  MRI_REQUIRE(model_ != nullptr, "SpinEngine needs a cost model");
  fs_->set_tier_listener(this);
  if (chaos_ != nullptr) {
    chaos_->set_kill_handler(ChaosEngine::TimedKillHandler(
        [this](int node, double at) { return on_kill(node, at); }));
  }
}

SpinEngine::~SpinEngine() {
  fs_->set_tier_listener(nullptr);
  if (chaos_ != nullptr) {
    // Put back the plain replication-based handler Dfs::bind_chaos installs
    // so later kills (after this inversion) keep HDFS semantics.
    dfs::Dfs* fs = fs_;
    chaos_->set_kill_handler(ChaosEngine::TimedKillHandler(
        [fs](int node, double at) { return fs->kill_datanode(node, at); }));
  }
}

IoStats SpinEngine::begin_job(const std::string& name) {
  std::uint64_t ordinal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordinal = ++job_ordinal_;
    job_name_ = name;
    ext_.job_names.push_back(name);
  }
  IoStats spill;
  for (const auto& ev : cache_.collect_evictions()) {
    fs_->spill_to_disk(ev.path, &spill);
    std::lock_guard<std::mutex> lock(mu_);
    lineage_.mark_spilled(ev.path);
    ext_.spills.push_back(SpillEvent{ordinal, ev.path, ev.size});
  }
  return spill;
}

double SpinEngine::recovery_available_at() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_available_at_;
}

EngineStats SpinEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = ext_;
    s.tracked_partitions = lineage_.size();
  }
  s.cache = cache_.stats();
  return s;
}

void SpinEngine::on_commit(const std::string& path, dfs::StorageTier tier,
                           std::uint64_t size, int node,
                           std::span<const std::byte> payload,
                           const IoStats* task_io) {
  if (tier != dfs::StorageTier::kMemory) return;
  LineageRecord rec;
  rec.size = size;
  if (task_io != nullptr) rec.production_io = *task_io;
  rec.payload = std::make_shared<const std::vector<std::byte>>(
      payload.begin(), payload.end());
  rec.on_memory_tier = true;
  // The committing thread IS the producing task: its transfer log's
  // read_paths are exactly the partition's lineage inputs.
  if (dfs::TransferLog* log = dfs::current_transfer_log()) {
    rec.inputs = log->read_paths;
  }
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec.producer_job = job_ordinal_;
    rec.producer_name = job_name_;
    epoch = job_ordinal_;
    lineage_.record(path, std::move(rec));
  }
  cache_.insert(path, node, size, epoch);
}

void SpinEngine::on_open(const std::string& path, dfs::StorageTier tier,
                         std::uint64_t /*size*/) {
  if (tier != dfs::StorageTier::kMemory) return;
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = job_ordinal_;
  }
  cache_.touch(path, epoch);
}

double SpinEngine::on_corrupt(const std::string& path, double at) {
  LineageRecord rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Untracked: base data on the disk tier — the DFS's replica/EC repair
    // paths own it, not lineage.
    if (!lineage_.tracked(path)) return 0.0;
    rec = lineage_.get(path);
  }
  const double t = model_->task_seconds(rec.production_io);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ext_.partitions_recomputed;
    ext_.recompute_seconds += t;
    ext_.recomputed_bytes += rec.size;
    ext_.recomputes.push_back(RecomputeEvent{at, t, 0, path, rec.size});
  }
  if (metrics_ != nullptr) {
    // The re-executed producer spends real (simulated) resources again.
    metrics_->add_io(rec.production_io);
    metrics_->increment("engine_partitions_recomputed");
  }
  return t;
}

void SpinEngine::on_remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    lineage_.erase(path);
  }
  cache_.erase(path);
}

NodeKillOutcome SpinEngine::on_kill(int node, double at) {
  // DFS-side repair first: replicated disk data re-replicates as before;
  // single-replica memory/spilled files on the node come back as lost.
  NodeKillOutcome out = fs_->kill_datanode(node, at);
  std::vector<std::vector<std::string>> waves;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waves = lineage_.plan_waves(out.lost_files);
  }
  if (waves.empty()) return out;

  // Recovery capacity: every surviving slot can run one producer re-run at
  // a time, so a wave takes max(longest task, total work / slots).
  const int live_slots =
      std::max(1, fs_->live_datanodes() * std::max(1, model_->slots_per_node));
  double total = model_->failure_detection_seconds;
  double wave_start = at + model_->failure_detection_seconds;
  IoStats recharged;
  std::vector<RecomputeEvent> events;
  int wave_idx = 0;
  for (const auto& wave : waves) {
    double max_task = 0.0;
    double sum_task = 0.0;
    for (const std::string& path : wave) {
      LineageRecord rec;
      {
        std::lock_guard<std::mutex> lock(mu_);
        rec = lineage_.get(path);
      }
      fs_->restore_file(
          path,
          std::span<const std::byte>(rec.payload->data(), rec.payload->size()),
          rec.on_memory_tier ? dfs::StorageTier::kMemory
                             : dfs::StorageTier::kDisk);
      if (rec.on_memory_tier) {
        const auto blocks = fs_->file_blocks(path);
        const int home =
            blocks.empty() ? -1 : blocks.front().replicas.front();
        std::uint64_t epoch;
        {
          std::lock_guard<std::mutex> lock(mu_);
          epoch = job_ordinal_;
        }
        cache_.insert(path, home, rec.size, epoch);
      }
      const double t = model_->task_seconds(rec.production_io);
      max_task = std::max(max_task, t);
      sum_task += t;
      recharged += rec.production_io;
      out.recomputed_bytes += rec.size;
      ++out.partitions_recomputed;
      events.push_back(RecomputeEvent{wave_start, t, wave_idx, path, rec.size});
    }
    const double wave_seconds =
        std::max(max_task, sum_task / static_cast<double>(live_slots));
    wave_start += wave_seconds;
    total += wave_seconds;
    ++wave_idx;
  }
  out.lineage_waves = static_cast<int>(waves.size());
  out.recompute_seconds = total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recovery_available_at_ = std::max(recovery_available_at_, at + total);
    ext_.partitions_recomputed += out.partitions_recomputed;
    ext_.lineage_waves += out.lineage_waves;
    ext_.recompute_seconds += total;
    ext_.recomputed_bytes += out.recomputed_bytes;
    ext_.recomputes.insert(ext_.recomputes.end(), events.begin(), events.end());
  }
  if (metrics_ != nullptr) {
    // The re-executed producers spend real (simulated) resources again.
    metrics_->add_io(recharged);
    metrics_->increment("engine_partitions_recomputed",
                        static_cast<std::uint64_t>(out.partitions_recomputed));
    metrics_->increment("engine_lineage_waves",
                        static_cast<std::uint64_t>(out.lineage_waves));
  }
  return out;
}

}  // namespace mri::engine
