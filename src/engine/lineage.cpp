#include "engine/lineage.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mri::engine {

void LineageGraph::record(const std::string& path, LineageRecord rec) {
  int depth = 1;
  for (const std::string& in : rec.inputs) {
    if (in == path) continue;  // self-reads (overwrite patterns) do not nest
    auto it = records_.find(in);
    if (it != records_.end()) depth = std::max(depth, it->second.depth + 1);
  }
  rec.depth = depth;
  records_[path] = std::move(rec);
}

void LineageGraph::erase(const std::string& path) { records_.erase(path); }

bool LineageGraph::tracked(const std::string& path) const {
  return records_.count(path) != 0;
}

LineageRecord LineageGraph::get(const std::string& path) const {
  auto it = records_.find(path);
  MRI_REQUIRE(it != records_.end(), "no lineage record for " << path);
  return it->second;
}

void LineageGraph::mark_spilled(const std::string& path) {
  auto it = records_.find(path);
  if (it != records_.end()) it->second.on_memory_tier = false;
}

std::size_t LineageGraph::size() const { return records_.size(); }

std::vector<std::vector<std::string>> LineageGraph::plan_waves(
    const std::vector<std::string>& lost) const {
  std::map<int, std::vector<std::string>> by_depth;
  for (const std::string& path : lost) {
    auto it = records_.find(path);
    if (it == records_.end()) continue;
    by_depth[it->second.depth].push_back(path);
  }
  std::vector<std::vector<std::string>> waves;
  waves.reserve(by_depth.size());
  for (auto& [depth, paths] : by_depth) {
    std::sort(paths.begin(), paths.end());
    waves.push_back(std::move(paths));
  }
  return waves;
}

}  // namespace mri::engine
