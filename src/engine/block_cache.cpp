#include "engine/block_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mri::engine {

BlockCache::BlockCache(int num_nodes, std::uint64_t capacity_per_node)
    : num_nodes_(num_nodes), capacity_per_node_(capacity_per_node) {
  MRI_REQUIRE(num_nodes >= 1, "block cache needs at least one node");
  node_bytes_.assign(static_cast<std::size_t>(num_nodes), 0);
}

void BlockCache::insert(const std::string& path, int node, std::uint64_t size,
                        std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    if (it->second.node >= 0) {
      node_bytes_[static_cast<std::size_t>(it->second.node)] -=
          it->second.size;
    }
    stats_.resident_bytes -= it->second.size;
    entries_.erase(it);
  }
  Entry e;
  e.node = (node >= 0 && node < num_nodes_) ? node : -1;
  e.size = size;
  e.epoch = epoch;
  entries_.emplace(path, e);
  if (e.node >= 0) node_bytes_[static_cast<std::size_t>(e.node)] += size;
  stats_.resident_bytes += size;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  ++stats_.insertions;
}

bool BlockCache::touch(const std::string& path, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return false;
  it->second.epoch = std::max(it->second.epoch, epoch);
  ++stats_.hits;
  return true;
}

void BlockCache::erase(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return;
  if (it->second.node >= 0) {
    node_bytes_[static_cast<std::size_t>(it->second.node)] -= it->second.size;
  }
  stats_.resident_bytes -= it->second.size;
  entries_.erase(it);
}

void BlockCache::pin(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it != entries_.end()) it->second.pinned = true;
}

void BlockCache::unpin(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it != entries_.end()) it->second.pinned = false;
}

bool BlockCache::resident(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(path) != 0;
}

std::uint64_t BlockCache::resident_bytes(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  MRI_REQUIRE(node >= 0 && node < num_nodes_, "resident_bytes: bad node");
  return node_bytes_[static_cast<std::size_t>(node)];
}

std::vector<BlockCache::Eviction> BlockCache::collect_evictions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Eviction> out;
  if (capacity_per_node_ == 0) return out;
  for (int node = 0; node < num_nodes_; ++node) {
    const auto idx = static_cast<std::size_t>(node);
    if (node_bytes_[idx] <= capacity_per_node_) continue;
    // Victims in ascending (epoch, path): least-recent first, path as the
    // deterministic tie-break (entries_ already iterates in path order).
    std::vector<std::pair<std::uint64_t, std::string>> candidates;
    for (const auto& [path, e] : entries_) {
      if (e.node == node && !e.pinned) candidates.emplace_back(e.epoch, path);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [epoch, path] : candidates) {
      if (node_bytes_[idx] <= capacity_per_node_) break;
      auto it = entries_.find(path);
      out.push_back(Eviction{path, node, it->second.size});
      node_bytes_[idx] -= it->second.size;
      stats_.resident_bytes -= it->second.size;
      stats_.spilled_bytes += it->second.size;
      ++stats_.evictions;
      entries_.erase(it);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Eviction& a, const Eviction& b) { return a.path < b.path; });
  return out;
}

CacheStats BlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mri::engine
