// The SPIN-style in-memory execution engine (ISSUE 7 tentpole).
//
// Wraps a Dfs + ChaosEngine pair with:
//  * a BlockCache over the DFS memory tier — per-node capacity, LRU
//    eviction at job boundaries, evictions spilled to local disk through
//    Dfs::spill_to_disk (charged as bytes_spilled, satellite-1 consistent);
//  * a LineageGraph — every memory-tier commit records its producing job,
//    the producer task's read-set and production cost, so a chaos node kill
//    REBUILDS the lost partitions by (simulated) re-execution in
//    ascending-depth waves instead of surfacing UnrecoverableBlock;
//  * pipeline fusion accounting — a consumer whose input is cache-resident
//    on its own node reads at memory bandwidth with no DFS disk/network
//    charge (the Dfs reader's mem-local path), which is the simulated
//    equivalent of eliding the inter-job materialization.
//
// Wiring: construction installs the engine as the Dfs's TierListener and —
// when a chaos engine is given — replaces the DFS kill handler with one
// that runs DFS repair first, then lineage recovery. Destruction restores
// both, so the engine can be a scoped RAII member of one inversion.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dfs/dfs.hpp"
#include "engine/block_cache.hpp"
#include "engine/lineage.hpp"
#include "sim/chaos.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"

namespace mri::engine {

/// A cache eviction spilled to disk, stamped with the 1-based ordinal of
/// the job whose admission triggered it (spills happen at job boundaries,
/// so the report maps the ordinal to that job's start time).
struct SpillEvent {
  std::uint64_t job_ordinal = 0;
  std::string path;
  std::uint64_t bytes = 0;
};

/// One partition rebuilt from lineage, on the absolute simulated timeline.
struct RecomputeEvent {
  double at = 0.0;       // when this partition's wave starts
  double duration = 0.0; // the producing task's simulated re-run time
  int wave = 0;
  std::string path;
  std::uint64_t bytes = 0;
};

struct EngineStats {
  CacheStats cache;
  std::uint64_t tracked_partitions = 0;
  int partitions_recomputed = 0;
  int lineage_waves = 0;
  double recompute_seconds = 0.0;
  std::uint64_t recomputed_bytes = 0;
  std::vector<SpillEvent> spills;
  std::vector<RecomputeEvent> recomputes;
  /// Name of each job seen by begin_job, in ordinal order.
  std::vector<std::string> job_names;
};

class SpinEngine final : public dfs::TierListener {
 public:
  /// `chaos` and `metrics` may be null; `fs` and `model` may not. The
  /// engine must outlive neither — it deregisters itself on destruction.
  SpinEngine(dfs::Dfs* fs, ChaosEngine* chaos, const CostModel* model,
             MetricsRegistry* metrics, std::uint64_t cache_capacity_bytes);
  ~SpinEngine() override;
  SpinEngine(const SpinEngine&) = delete;
  SpinEngine& operator=(const SpinEngine&) = delete;

  /// Job-boundary hook, called by JobRunner::execute before the job's tasks
  /// run (on the serialized job worker thread). Advances the cache epoch
  /// and performs the LRU eviction pass; returns the spill accounting so
  /// the runner can charge it to the admitting job's attempt timing.
  IoStats begin_job(const std::string& name);

  /// Absolute simulated time until which lineage recovery occupies the
  /// cluster; a job starting earlier stalls until this (JobRunner adds the
  /// difference as lineage_stall_seconds).
  double recovery_available_at() const;

  EngineStats stats() const;

  // -- dfs::TierListener ----------------------------------------------------
  void on_commit(const std::string& path, dfs::StorageTier tier,
                 std::uint64_t size, int node,
                 std::span<const std::byte> payload,
                 const IoStats* task_io) override;
  void on_open(const std::string& path, dfs::StorageTier tier,
               std::uint64_t size) override;
  void on_remove(const std::string& path) override;
  /// Integrity repair of a corrupted memory-tier partition: the single
  /// in-memory copy has no replica or parity, so the producing task re-runs
  /// from lineage. Accounting-only — the DFS serves corruption as an
  /// overlay over the pristine payload, so clearing the mark (done by the
  /// caller) restores the bytes; this charges the re-run's IoStats and
  /// returns its simulated duration. No restore_file: recommitting would
  /// re-place blocks mid-read.
  double on_corrupt(const std::string& path, double at) override;

 private:
  NodeKillOutcome on_kill(int node, double at);

  dfs::Dfs* fs_;
  ChaosEngine* chaos_;
  const CostModel* model_;
  MetricsRegistry* metrics_;
  BlockCache cache_;

  mutable std::mutex mu_;  // guards everything below
  LineageGraph lineage_;
  std::uint64_t job_ordinal_ = 0;  // 1-based once the first job begins
  std::string job_name_;
  double recovery_available_at_ = 0.0;
  EngineStats ext_;  // non-cache stats (cache_ keeps its own)
};

}  // namespace mri::engine
