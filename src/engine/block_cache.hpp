// Per-node block cache over the DFS memory tier.
//
// The SPIN-style engine keeps job outputs resident in the memory of the node
// that produced them. Each node has a fixed capacity; when a node is over
// budget at a job boundary the least-recently-used unpinned entries are
// evicted (spilled to that node's local disk by the engine, which owns the
// DFS call). Eviction decisions are taken ONLY at job boundaries — the
// engine's begin_job runs on the serialized job worker thread — so the
// victim set is a deterministic function of the job sequence, never of task
// interleaving. Recency is an epoch (the job ordinal): every touch within
// one job writes the same epoch, so racy touches from concurrent tasks are
// order-confluent.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mri::engine {

struct CacheStats {
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Touches of resident entries (the consumer-side cache hits that make
  /// pipeline fusion between jobs possible).
  std::uint64_t hits = 0;
  std::uint64_t resident_bytes = 0;
  /// High-water mark of total resident bytes across all nodes. Mid-job
  /// overshoot is allowed (eviction only runs at job boundaries), so the
  /// peak can exceed nodes x capacity transiently.
  std::uint64_t peak_resident_bytes = 0;
  std::uint64_t spilled_bytes = 0;
};

class BlockCache {
 public:
  /// `capacity_per_node` = 0 means unlimited (no evictions).
  BlockCache(int num_nodes, std::uint64_t capacity_per_node);

  /// Registers a resident entry (replacing any previous entry at `path`).
  void insert(const std::string& path, int node, std::uint64_t size,
              std::uint64_t epoch);
  /// Bumps recency of a resident entry and counts a hit; no-op otherwise.
  /// Returns whether the entry was resident.
  bool touch(const std::string& path, std::uint64_t epoch);
  /// Drops an entry without counting an eviction (file removed / spilled by
  /// someone else). No-op when absent.
  void erase(const std::string& path);

  /// Pinned entries are never chosen for eviction.
  void pin(const std::string& path);
  void unpin(const std::string& path);

  bool resident(const std::string& path) const;
  std::uint64_t resident_bytes(int node) const;

  struct Eviction {
    std::string path;
    int node = -1;
    std::uint64_t size = 0;
  };

  /// LRU eviction pass: for every node over capacity, selects unpinned
  /// entries in ascending (epoch, path) order until the node fits, removes
  /// them from the cache and returns them (sorted by path) for the caller
  /// to spill. Deterministic; call only from the serialized job worker.
  std::vector<Eviction> collect_evictions();

  CacheStats stats() const;

 private:
  struct Entry {
    int node = -1;
    std::uint64_t size = 0;
    std::uint64_t epoch = 0;
    bool pinned = false;
  };

  mutable std::mutex mu_;
  int num_nodes_;
  std::uint64_t capacity_per_node_;
  std::map<std::string, Entry> entries_;  // sorted: deterministic iteration
  std::vector<std::uint64_t> node_bytes_;
  CacheStats stats_;
};

}  // namespace mri::engine
