// Distributed LU factorization with partial pivoting (PDGETRF analogue).
//
// Right-looking block algorithm over the 1-D block-cyclic column
// distribution: the owner of panel k factorizes it locally (it owns entire
// columns, so the pivot search needs no communication), broadcasts the
// factored panel plus its pivot sequence down a binomial tree, and every
// rank applies the row interchanges and the triangular-solve + GEMM trailing
// update to its own blocks. This reproduces the baseline's two structural
// costs the paper identifies (§7.5, Table 1): per-rank transfer volume that
// does not shrink with the node count, and a serial panel-factorization
// critical path.
#pragma once

#include <vector>

#include "mpi/world.hpp"
#include "scalapack/distribution.hpp"

namespace mri::scalapack {

struct LocalFactors {
  /// Owned column blocks, indexed by global block number (unowned entries
  /// are empty). Each owned block is the full n x width(b) column slab in
  /// packed LU form after factorization.
  std::vector<Matrix> blocks;
  /// LAPACK-style ipiv: at elimination column j, rows j and ipiv[j] swapped.
  std::vector<Index> ipiv;
};

/// Runs on one rank inside World::run. `local` holds this rank's blocks of
/// the input matrix and is factored in place. Flops and messages are charged
/// to the rank's simulated clock.
void pdgetrf(mpi::Comm& comm, const Distribution& dist, LocalFactors* local);

/// Splits a full matrix into one rank's local blocks (test/driver helper).
LocalFactors scatter_blocks(const Matrix& a, const Distribution& dist,
                            int rank);

}  // namespace mri::scalapack
