#include "scalapack/pdgetrf.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mri::scalapack {

LocalFactors scatter_blocks(const Matrix& a, const Distribution& dist,
                            int rank) {
  MRI_REQUIRE(a.square() && a.rows() == dist.n, "matrix/distribution mismatch");
  LocalFactors local;
  local.blocks.resize(static_cast<std::size_t>(dist.num_blocks()));
  local.ipiv.assign(static_cast<std::size_t>(dist.n), 0);
  for (Index b : dist.blocks_of(rank)) {
    local.blocks[static_cast<std::size_t>(b)] =
        a.block(0, dist.n, dist.block_start(b), dist.block_end(b));
  }
  return local;
}

namespace {

/// Factorizes the panel (global columns [j0, j1), rows [j0, n)) in place on
/// its owner. Records global pivot rows into ipiv[j0..j1) and counts flops.
IoStats factor_panel(Matrix* panel, Index j0, Index j1, Index n,
                     std::vector<Index>* ipiv) {
  IoStats flops;
  const Index w = j1 - j0;
  for (Index jj = 0; jj < w; ++jj) {
    const Index j = j0 + jj;  // global elimination column
    // Pivot search over rows j..n-1 of panel column jj.
    Index pivot = j;
    double best = std::abs((*panel)(j, jj));
    for (Index i = j + 1; i < n; ++i) {
      const double v = std::abs((*panel)(i, jj));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      throw NumericalError("pdgetrf: singular matrix at column " +
                           std::to_string(j));
    }
    (*ipiv)[static_cast<std::size_t>(j)] = pivot;
    if (pivot != j) {
      std::swap_ranges(panel->row(j).begin(), panel->row(j).end(),
                       panel->row(pivot).begin());
    }
    const double inv_p = 1.0 / (*panel)(j, jj);
    for (Index i = j + 1; i < n; ++i) (*panel)(i, jj) *= inv_p;
    flops.mults += static_cast<std::uint64_t>(n - j - 1);
    // Rank-1 update of the remaining panel columns.
    for (Index i = j + 1; i < n; ++i) {
      const double lij = (*panel)(i, jj);
      if (lij == 0.0) continue;
      for (Index kk = jj + 1; kk < w; ++kk) {
        (*panel)(i, kk) -= lij * (*panel)(j, kk);
      }
    }
    flops.mults += static_cast<std::uint64_t>(n - j - 1) *
                   static_cast<std::uint64_t>(w - jj - 1);
    flops.adds += static_cast<std::uint64_t>(n - j - 1) *
                  static_cast<std::uint64_t>(w - jj - 1);
  }
  return flops;
}

}  // namespace

void pdgetrf(mpi::Comm& comm, const Distribution& dist, LocalFactors* local) {
  MRI_REQUIRE(local != nullptr, "pdgetrf needs local factors");
  const Index n = dist.n;
  const int rank = comm.rank();
  local->ipiv.assign(static_cast<std::size_t>(n), 0);

  for (Index k = 0; k < dist.num_blocks(); ++k) {
    const Index j0 = dist.block_start(k);
    const Index j1 = dist.block_end(k);
    const Index w = j1 - j0;
    const int owner = dist.owner(k);

    // --- panel factorization on the owner --------------------------------
    std::vector<double> packet;  // pivots (w) + panel rows [j0, n) x w
    if (rank == owner) {
      Matrix& panel = local->blocks[static_cast<std::size_t>(k)];
      comm.compute(factor_panel(&panel, j0, j1, n, &local->ipiv));
      packet.reserve(static_cast<std::size_t>(w + (n - j0) * w));
      for (Index j = j0; j < j1; ++j) {
        packet.push_back(
            static_cast<double>(local->ipiv[static_cast<std::size_t>(j)]));
      }
      for (Index i = j0; i < n; ++i) {
        for (Index jj = 0; jj < w; ++jj) packet.push_back(panel(i, jj));
      }
    }

    // --- broadcast panel + pivots ----------------------------------------
    if (dist.ranks > 1) comm.bcast(&packet, owner);
    // Unpack pivots everywhere (the owner already has them).
    Matrix panel_lu(n - j0, w);
    if (rank != owner) {
      for (Index jj = 0; jj < w; ++jj) {
        local->ipiv[static_cast<std::size_t>(j0 + jj)] =
            static_cast<Index>(packet[static_cast<std::size_t>(jj)]);
      }
      for (Index i = 0; i < n - j0; ++i) {
        for (Index jj = 0; jj < w; ++jj) {
          panel_lu(i, jj) = packet[static_cast<std::size_t>(w + i * w + jj)];
        }
      }
    } else {
      const Matrix& panel = local->blocks[static_cast<std::size_t>(k)];
      for (Index i = j0; i < n; ++i) {
        for (Index jj = 0; jj < w; ++jj) panel_lu(i - j0, jj) = panel(i, jj);
      }
    }

    // --- apply row interchanges to all other owned blocks ----------------
    for (Index b : dist.blocks_of(rank)) {
      if (b == k) continue;  // the panel was swapped during factorization
      Matrix& blk = local->blocks[static_cast<std::size_t>(b)];
      for (Index j = j0; j < j1; ++j) {
        const Index p = local->ipiv[static_cast<std::size_t>(j)];
        if (p != j) {
          std::swap_ranges(blk.row(j).begin(), blk.row(j).end(),
                           blk.row(p).begin());
        }
      }
    }

    // --- trailing update on owned blocks to the right of the panel -------
    IoStats flops;
    for (Index b : dist.blocks_of(rank)) {
      if (b <= k) continue;
      Matrix& blk = local->blocks[static_cast<std::size_t>(b)];
      const Index wt = dist.width(b);
      // U rows: solve unit-lower L11 (top w x w of panel_lu) * X = blk rows
      // [j0, j1): forward substitution in place.
      for (Index i = 1; i < w; ++i) {
        for (Index kk = 0; kk < i; ++kk) {
          const double lik = panel_lu(i, kk);
          if (lik == 0.0) continue;
          const double* xk = blk.row(j0 + kk).data();
          double* xi = blk.row(j0 + i).data();
          for (Index j = 0; j < wt; ++j) xi[j] -= lik * xk[j];
        }
      }
      flops.mults += static_cast<std::uint64_t>(w) *
                     static_cast<std::uint64_t>(w) *
                     static_cast<std::uint64_t>(wt) / 2;
      // GEMM: blk rows [j1, n) -= L21 * X.
      for (Index i = j1; i < n; ++i) {
        double* bi = blk.row(i).data();
        for (Index kk = 0; kk < w; ++kk) {
          const double l = panel_lu(i - j0, kk);
          if (l == 0.0) continue;
          const double* xk = blk.row(j0 + kk).data();
          for (Index j = 0; j < wt; ++j) bi[j] -= l * xk[j];
        }
      }
      const std::uint64_t gemm = static_cast<std::uint64_t>(n - j1) *
                                 static_cast<std::uint64_t>(w) *
                                 static_cast<std::uint64_t>(wt);
      flops.mults += gemm;
      flops.adds += gemm + static_cast<std::uint64_t>(w) *
                               static_cast<std::uint64_t>(w) *
                               static_cast<std::uint64_t>(wt) / 2;
    }
    comm.compute(flops);
  }
}

}  // namespace mri::scalapack
