#include "scalapack/invert.hpp"

#include <mutex>

#include "common/error.hpp"
#include "mpi/world.hpp"
#include "scalapack/pdgetri.hpp"

namespace mri::scalapack {

InvertResult invert(const Matrix& a, const Cluster& cluster,
                    const Options& options) {
  MRI_REQUIRE(a.square(), "scalapack::invert expects a square matrix");
  const Distribution dist(a.rows(), options.block_width, cluster.size());

  mpi::World world(cluster);
  std::vector<LocalInverse> per_rank(static_cast<std::size_t>(cluster.size()));
  std::mutex results_mu;
  SimReport lu_stage;

  world.run([&](mpi::Comm& comm) {
    const int rank = comm.rank();
    // Load this rank's share of the input from local storage (Table 1:
    // ScaLAPACK reads the matrix exactly once, n² elements in aggregate).
    LocalFactors local = scatter_blocks(a, dist, rank);
    comm.read_local(dist.elements_of(rank) * sizeof(double));

    pdgetrf(comm, dist, &local);

    // Stage snapshot: rank 0 records the LU-stage totals between two
    // barriers (all peers quiescent while it reads).
    comm.barrier();
    if (rank == 0) {
      lu_stage.sim_seconds = comm.clock();
      lu_stage.io = world.total_io();
    }
    comm.barrier();

    LocalInverse inv = pdgetri(comm, dist, local);

    // Store this rank's share of the result (Table 2: write n² aggregate).
    comm.write_local(dist.elements_of(rank) * sizeof(double));
    comm.barrier();

    std::lock_guard<std::mutex> lock(results_mu);
    per_rank[static_cast<std::size_t>(rank)] = std::move(inv);
  });

  InvertResult result;
  result.inverse = gather_inverse(dist, per_rank);
  result.report.sim_seconds = world.sim_seconds();
  result.report.io = world.total_io();
  result.lu_stage = lu_stage;
  result.inversion_stage.sim_seconds =
      result.report.sim_seconds - lu_stage.sim_seconds;
  result.inversion_stage.io = result.report.io - lu_stage.io;
  return result;
}

}  // namespace mri::scalapack
