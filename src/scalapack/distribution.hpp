// 1-D block-cyclic column distribution used by the ScaLAPACK-style baseline.
//
// The global n x n matrix is cut into column blocks of width `block_width`
// (the paper tunes ScaLAPACK with 128 x 128 blocks); block b lives on rank
// b mod p. Helpers here are pure index arithmetic shared by pdgetrf/pdgetri.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace mri::scalapack {

struct Distribution {
  Index n = 0;
  Index block_width = 128;
  int ranks = 1;

  Distribution(Index n_, Index block_width_, int ranks_)
      : n(n_), block_width(block_width_), ranks(ranks_) {
    MRI_REQUIRE(n >= 1 && block_width >= 1 && ranks >= 1,
                "bad distribution parameters");
  }

  Index num_blocks() const { return (n + block_width - 1) / block_width; }

  int owner(Index block) const { return static_cast<int>(block % ranks); }

  Index block_start(Index block) const { return block * block_width; }
  Index block_end(Index block) const {
    return std::min(n, (block + 1) * block_width);
  }
  Index width(Index block) const { return block_end(block) - block_start(block); }

  /// Blocks owned by `rank`, ascending.
  std::vector<Index> blocks_of(int rank) const {
    std::vector<Index> out;
    for (Index b = rank; b < num_blocks(); b += ranks) out.push_back(b);
    return out;
  }

  /// Total elements owned by `rank`.
  std::uint64_t elements_of(int rank) const {
    std::uint64_t total = 0;
    for (Index b : blocks_of(rank)) {
      total += static_cast<std::uint64_t>(n) *
               static_cast<std::uint64_t>(width(b));
    }
    return total;
  }

  /// Global column -> owning rank.
  int column_owner(Index col) const {
    return owner(col / block_width);
  }
};

}  // namespace mri::scalapack
