#include "scalapack/pdgetri.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mri::scalapack {

namespace {

/// Serializes one rank's owned blocks in ascending block order.
std::vector<double> pack_blocks(const Distribution& dist,
                                const LocalFactors& local, int rank) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(dist.elements_of(rank)));
  for (Index b : dist.blocks_of(rank)) {
    const Matrix& blk = local.blocks[static_cast<std::size_t>(b)];
    out.insert(out.end(), blk.data().begin(), blk.data().end());
  }
  return out;
}

/// Writes a serialized rank chunk into the full packed-LU matrix.
void unpack_chunk(const Distribution& dist, int src_rank,
                  const std::vector<double>& chunk, Matrix* full) {
  std::size_t pos = 0;
  for (Index b : dist.blocks_of(src_rank)) {
    const Index c0 = dist.block_start(b);
    const Index w = dist.width(b);
    for (Index i = 0; i < dist.n; ++i) {
      for (Index j = 0; j < w; ++j) (*full)(i, c0 + j) = chunk[pos++];
    }
  }
  MRI_CHECK(pos == chunk.size());
}

}  // namespace

LocalInverse pdgetri(mpi::Comm& comm, const Distribution& dist,
                     const LocalFactors& local) {
  const Index n = dist.n;
  const int p = comm.size();
  const int rank = comm.rank();

  // ---- ring allgather of the packed factors ------------------------------
  Matrix full(n, n);
  std::vector<double> chunk = pack_blocks(dist, local, rank);
  unpack_chunk(dist, rank, chunk, &full);
  for (int step = 0; step < p - 1; ++step) {
    const int src_of_chunk = ((rank - step) % p + p) % p;
    const int next = (rank + 1) % p;
    const int prev = (rank - 1 + p) % p;
    comm.send(next, std::move(chunk), /*tag=*/100 + step);
    chunk = comm.recv(prev, /*tag=*/100 + step);
    unpack_chunk(dist, ((src_of_chunk - 1) % p + p) % p, chunk, &full);
  }

  // ---- per-column substitution for owned output columns ------------------
  LocalInverse inv;
  inv.blocks.resize(static_cast<std::size_t>(dist.num_blocks()));
  IoStats flops;
  std::vector<double> x(static_cast<std::size_t>(n));
  for (Index b : dist.blocks_of(rank)) {
    Matrix out(n, dist.width(b));
    for (Index jj = 0; jj < dist.width(b); ++jj) {
      const Index c = dist.block_start(b) + jj;
      // b = P e_c via the ipiv swap sequence.
      std::fill(x.begin(), x.end(), 0.0);
      x[static_cast<std::size_t>(c)] = 1.0;
      for (Index j = 0; j < n; ++j) {
        const Index pv = local.ipiv[static_cast<std::size_t>(j)];
        if (pv != j) std::swap(x[static_cast<std::size_t>(j)],
                               x[static_cast<std::size_t>(pv)]);
      }
      // Forward solve L y = x (L unit lower in `full`), skipping the
      // leading zeros of x.
      Index first = 0;
      while (first < n && x[static_cast<std::size_t>(first)] == 0.0) ++first;
      for (Index i = first + 1; i < n; ++i) {
        double sum = x[static_cast<std::size_t>(i)];
        const double* li = full.row(i).data();
        for (Index k = first; k < i; ++k)
          sum -= li[k] * x[static_cast<std::size_t>(k)];
        x[static_cast<std::size_t>(i)] = sum;
      }
      if (first < n) {
        const std::uint64_t tri =
            static_cast<std::uint64_t>(n - first) *
            static_cast<std::uint64_t>(n - first) / 2;
        flops.mults += tri;
        flops.adds += tri;
      }
      // Back solve U z = y.
      for (Index i = n - 1; i >= 0; --i) {
        double sum = x[static_cast<std::size_t>(i)];
        const double* ui = full.row(i).data();
        for (Index k = i + 1; k < n; ++k)
          sum -= ui[k] * x[static_cast<std::size_t>(k)];
        x[static_cast<std::size_t>(i)] = sum / ui[i];
      }
      flops.mults += static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(n) / 2;
      flops.adds += static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) / 2;
      for (Index i = 0; i < n; ++i) out(i, jj) = x[static_cast<std::size_t>(i)];
    }
    inv.blocks[static_cast<std::size_t>(b)] = std::move(out);
  }
  comm.compute(flops);
  return inv;
}

Matrix gather_inverse(const Distribution& dist,
                      const std::vector<LocalInverse>& per_rank) {
  MRI_REQUIRE(static_cast<int>(per_rank.size()) == dist.ranks,
              "per-rank results size mismatch");
  Matrix out(dist.n, dist.n);
  for (int r = 0; r < dist.ranks; ++r) {
    for (Index b : dist.blocks_of(r)) {
      const Matrix& blk = per_rank[static_cast<std::size_t>(r)]
                              .blocks[static_cast<std::size_t>(b)];
      MRI_CHECK_MSG(!blk.empty(), "missing inverse block " << b);
      out.set_block(0, dist.block_start(b), blk);
    }
  }
  return out;
}

}  // namespace mri::scalapack
