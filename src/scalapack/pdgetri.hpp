// Distributed inversion from the LU factors (PDGETRI analogue).
//
// After pdgetrf, each rank ring-allgathers the packed factors — the m0·n²
// transfer volume the paper's Table 2 attributes to ScaLAPACK — and then
// computes the inverse's columns it owns by per-column substitution:
//   A·x = e_c  =>  apply ipiv to e_c, forward-solve L, back-solve U.
// The leading-zero structure of the pivoted unit vectors makes the total
// substitution work ≈ (2/3)n³, matching Table 2's flop row.
#pragma once

#include "mpi/world.hpp"
#include "scalapack/pdgetrf.hpp"

namespace mri::scalapack {

struct LocalInverse {
  /// Owned column blocks of A⁻¹ (same distribution as the input).
  std::vector<Matrix> blocks;
};

/// Runs on one rank inside World::run, after pdgetrf on the same factors.
LocalInverse pdgetri(mpi::Comm& comm, const Distribution& dist,
                     const LocalFactors& local);

/// Reassembles the distributed inverse (driver helper, no cost charged).
Matrix gather_inverse(const Distribution& dist,
                      const std::vector<LocalInverse>& per_rank);

}  // namespace mri::scalapack
