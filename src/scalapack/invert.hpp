// Facade for the ScaLAPACK-style baseline: distributed LU + inversion over
// the simulated MPI world, with the same SimReport the MapReduce pipeline
// produces, so §7.5 / Figure 8 can compare them directly.
#pragma once

#include "matrix/matrix.hpp"
#include "sim/cluster.hpp"
#include "sim/report.hpp"

namespace mri::scalapack {

struct Options {
  /// ScaLAPACK block size; the paper found 128 x 128 best on EC2.
  Index block_width = 128;
};

struct InvertResult {
  Matrix inverse;
  SimReport report;
  /// PDGETRF stage (Table 1 comparison row).
  SimReport lu_stage;
  /// PDGETRI stage (Table 2 comparison row).
  SimReport inversion_stage;
};

/// Inverts `a` on the simulated `cluster` (one MPI rank per node).
/// Throws NumericalError for singular inputs.
InvertResult invert(const Matrix& a, const Cluster& cluster,
                    const Options& options = {});

}  // namespace mri::scalapack
