#include "matrix/text_format.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"

namespace mri {

std::string matrix_to_text(const Matrix& m) {
  std::string out;
  out.reserve(static_cast<std::size_t>(m.size()) * 20);
  char buf[40];
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) {
      std::snprintf(buf, sizeof(buf), "%.17g", m(i, j));
      out += buf;
      out += (j + 1 < m.cols()) ? ' ' : '\n';
    }
  }
  return out;
}

Matrix matrix_from_text(std::string_view text) {
  std::vector<double> values;
  Index cols = -1;
  Index rows = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;

    Index line_cols = 0;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p >= end) break;
      char* after = nullptr;
      // strtod needs NUL-terminated-ish input; line views point into `text`
      // which may not end with NUL at `end`, so bound-check after parsing.
      const double v = std::strtod(p, &after);
      MRI_REQUIRE(after != p, "unparsable matrix text near: "
                                  << std::string(p, std::min<std::size_t>(
                                                        16, end - p)));
      MRI_REQUIRE(after <= end, "number ran past end of line");
      values.push_back(v);
      ++line_cols;
      p = after;
    }
    if (line_cols == 0) continue;  // blank line
    if (cols < 0) {
      cols = line_cols;
    } else {
      MRI_REQUIRE(line_cols == cols, "ragged matrix text: row " << rows
                                                                << " has "
                                                                << line_cols
                                                                << " columns");
    }
    ++rows;
  }
  if (rows == 0) return Matrix();
  return Matrix(rows, cols, std::move(values));
}

}  // namespace mri
