// Test/benchmark matrix generators.
//
// The paper's evaluation matrices are uniformly random (java.util.Random);
// such matrices are well-conditioned with overwhelming probability, which is
// why the double type passes the §7.2 residual check. We also provide
// diagonally dominant and SPD generators for tests, and a generator that
// forces pivoting so the permutation path is always exercised.
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"

namespace mri {

/// n x n with entries uniform in [-1, 1) — the paper's workload.
Matrix random_matrix(Index n, std::uint64_t seed);

/// rows x cols with entries uniform in [lo, hi).
Matrix random_matrix(Index rows, Index cols, std::uint64_t seed, double lo,
                     double hi);

/// Strictly diagonally dominant (hence invertible, no pivoting needed).
Matrix random_diagonally_dominant(Index n, std::uint64_t seed);

/// Symmetric positive definite: Bᵀ·B + n·I.
Matrix random_spd(Index n, std::uint64_t seed);

/// A matrix whose leading entries force row swaps in every LU step:
/// random but with tiny magnitudes pushed onto the diagonal.
Matrix random_pivot_hostile(Index n, std::uint64_t seed);

/// Unit lower-triangular with random sub-diagonal entries in [-1, 1).
Matrix random_unit_lower_triangular(Index n, std::uint64_t seed);

/// Upper-triangular with diagonal entries bounded away from zero.
Matrix random_upper_triangular(Index n, std::uint64_t seed);

}  // namespace mri
