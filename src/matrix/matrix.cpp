#include "matrix/matrix.hpp"

#include <cstring>

namespace mri {

Matrix::Matrix(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), 0.0) {
  MRI_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
}

Matrix::Matrix(Index rows, Index cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  MRI_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  MRI_REQUIRE(static_cast<std::size_t>(rows * cols) == data_.size(),
              "data size " << data_.size() << " != " << rows << "x" << cols);
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(Index i, Index j) {
  MRI_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
              "index (" << i << "," << j << ") out of " << rows_ << "x" << cols_);
  return (*this)(i, j);
}

double Matrix::at(Index i, Index j) const {
  MRI_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
              "index (" << i << "," << j << ") out of " << rows_ << "x" << cols_);
  return (*this)(i, j);
}

Matrix Matrix::block(Index r0, Index r1, Index c0, Index c1) const {
  MRI_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= rows_ && 0 <= c0 && c0 <= c1 &&
                  c1 <= cols_,
              "block [" << r0 << "," << r1 << ")x[" << c0 << "," << c1
                        << ") out of " << rows_ << "x" << cols_);
  Matrix out(r1 - r0, c1 - c0);
  for (Index i = r0; i < r1; ++i) {
    std::memcpy(out.row(i - r0).data(), row(i).data() + c0,
                static_cast<std::size_t>(c1 - c0) * sizeof(double));
  }
  return out;
}

void Matrix::set_block(Index r0, Index c0, const Matrix& src) {
  MRI_REQUIRE(r0 >= 0 && c0 >= 0 && r0 + src.rows() <= rows_ &&
                  c0 + src.cols() <= cols_,
              "set_block target out of range");
  for (Index i = 0; i < src.rows(); ++i) {
    std::memcpy(row(r0 + i).data() + c0, src.row(i).data(),
                static_cast<std::size_t>(src.cols()) * sizeof(double));
  }
}

}  // namespace mri
