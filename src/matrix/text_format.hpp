// Text matrix codec — the paper's "a.txt" input format: one matrix row per
// line, elements space-separated. Used to ingest matrices the way the Hadoop
// implementation does; the pipeline's intermediate data uses the binary
// format in dfs_io.hpp.
#pragma once

#include <string>
#include <string_view>

#include "matrix/matrix.hpp"

namespace mri {

/// Renders with enough digits to round-trip doubles exactly (%.17g).
std::string matrix_to_text(const Matrix& m);

/// Parses; all rows must have equal length. Blank lines are ignored.
Matrix matrix_from_text(std::string_view text);

}  // namespace mri
