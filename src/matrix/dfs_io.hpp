// Binary matrix files on the DFS.
//
// Format: u64 magic | u64 rows | u64 cols | rows*cols little-endian doubles,
// row-major. The 24-byte header lets mappers read just their stripe of rows
// with one seek + one sequential read — the paper's §5.2 I/O pattern where
// "each map function reads an equal number of consecutive rows".
#pragma once

#include <string>

#include "dfs/dfs.hpp"
#include "matrix/matrix.hpp"

namespace mri {

/// Writes `m` as a binary matrix file (optionally to the in-memory tier).
void write_matrix(dfs::Dfs& fs, const std::string& path, const Matrix& m,
                  IoStats* account = nullptr,
                  dfs::StorageTier tier = dfs::StorageTier::kDisk);

/// Reads a whole binary matrix file.
Matrix read_matrix(const dfs::Dfs& fs, const std::string& path,
                   IoStats* account = nullptr);

/// Reads only rows [r0, r1) of a binary matrix file (sequential after one
/// seek; only the stripe's bytes are charged).
Matrix read_matrix_rows(const dfs::Dfs& fs, const std::string& path, Index r0,
                        Index r1, IoStats* account = nullptr);

struct MatrixShape {
  Index rows = 0;
  Index cols = 0;
};

/// Reads just the header (cheap; charges only the 24 header bytes).
MatrixShape read_matrix_shape(const dfs::Dfs& fs, const std::string& path,
                              IoStats* account = nullptr);

/// Writes `m` in the text format (paper's a.txt style input).
void write_matrix_text(dfs::Dfs& fs, const std::string& path, const Matrix& m,
                       IoStats* account = nullptr);

/// Reads a text-format matrix file.
Matrix read_matrix_text(const dfs::Dfs& fs, const std::string& path,
                        IoStats* account = nullptr);

}  // namespace mri
