#include "matrix/layout.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mri {

int recursion_depth(Index n, Index nb) {
  MRI_REQUIRE(n >= 1 && nb >= 1, "recursion_depth needs n, nb >= 1");
  int d = 0;
  Index size = n;
  while (size > nb) {
    size = (size + 1) / 2;  // ceil(size / 2): the upper-left block
    ++d;
    MRI_CHECK(d < 63);
  }
  return d;
}

std::int64_t leaf_count(Index n, Index nb) {
  return std::int64_t{1} << recursion_depth(n, nb);
}

std::int64_t lu_job_count(Index n, Index nb) { return leaf_count(n, nb) - 1; }

std::int64_t total_job_count(Index n, Index nb) {
  return leaf_count(n, nb) + 1;  // partition + (2^d - 1) LU + final inversion
}

std::int64_t intermediate_file_count(int depth, int m0) {
  MRI_REQUIRE(depth >= 0 && m0 >= 1, "bad intermediate_file_count arguments");
  const std::int64_t leaves = std::int64_t{1} << depth;
  return leaves + (static_cast<std::int64_t>(m0) / 2) * (leaves - 1);
}

BlockWrapFactors block_wrapFactors_impl(int m0) {
  BlockWrapFactors f;
  const int root = static_cast<int>(std::sqrt(static_cast<double>(m0)));
  for (int candidate = root; candidate >= 1; --candidate) {
    if (m0 % candidate == 0) {
      f.f2 = candidate;
      f.f1 = m0 / candidate;
      break;
    }
  }
  return f;
}

BlockWrapFactors block_wrap_factors(int m0) {
  MRI_REQUIRE(m0 >= 1, "block_wrap_factors needs m0 >= 1");
  return block_wrapFactors_impl(m0);
}

std::uint64_t naive_multiply_read_elements(Index n, int m0) {
  return static_cast<std::uint64_t>(m0 + 1) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(n);
}

std::uint64_t wrapped_multiply_read_elements(Index n, int m0) {
  const auto f = block_wrap_factors(m0);
  return static_cast<std::uint64_t>(f.f1 + f.f2) *
         static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
}

Index split_point(Index n) {
  MRI_REQUIRE(n >= 2, "cannot split a matrix of order " << n);
  return (n + 1) / 2;
}

RowRange stripe(Index rows, int num_workers, int worker) {
  MRI_REQUIRE(num_workers >= 1 && worker >= 0 && worker < num_workers,
              "bad stripe worker " << worker << "/" << num_workers);
  const Index base = rows / num_workers;
  const Index extra = rows % num_workers;
  RowRange r;
  r.begin = worker * base + std::min<Index>(worker, extra);
  r.end = r.begin + base + (worker < extra ? 1 : 0);
  return r;
}

}  // namespace mri
