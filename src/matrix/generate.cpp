#include "matrix/generate.hpp"

#include <cmath>

#include "common/random.hpp"

namespace mri {

Matrix random_matrix(Index n, std::uint64_t seed) {
  return random_matrix(n, n, seed, -1.0, 1.0);
}

Matrix random_matrix(Index rows, Index cols, std::uint64_t seed, double lo,
                     double hi) {
  Matrix m(rows, cols);
  Xoshiro256 rng(seed);
  for (double& v : m.data()) v = rng.uniform(lo, hi);
  return m;
}

Matrix random_diagonally_dominant(Index n, std::uint64_t seed) {
  Matrix m = random_matrix(n, n, seed, -1.0, 1.0);
  for (Index i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (Index j = 0; j < n; ++j)
      if (j != i) row_sum += std::abs(m(i, j));
    m(i, i) = row_sum + 1.0;
  }
  return m;
}

Matrix random_spd(Index n, std::uint64_t seed) {
  Matrix b = random_matrix(n, n, seed, -1.0, 1.0);
  Matrix m(n, n);
  // m = b^T b + n I, accumulated directly to stay O(n^2) memory.
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      double sum = 0.0;
      for (Index k = 0; k < n; ++k) sum += b(k, i) * b(k, j);
      m(i, j) = sum;
    }
    m(i, i) += static_cast<double>(n);
  }
  return m;
}

Matrix random_pivot_hostile(Index n, std::uint64_t seed) {
  Matrix m = random_matrix(n, n, seed, -1.0, 1.0);
  Xoshiro256 rng(seed ^ 0x9E3779B97F4A7C15ull);
  // Shrink the diagonal so the max-|entry| pivot is almost never already on
  // the diagonal; every elimination step then performs a row swap.
  for (Index i = 0; i < n; ++i) m(i, i) *= 1e-8 * rng.next_double();
  return m;
}

Matrix random_unit_lower_triangular(Index n, std::uint64_t seed) {
  Matrix m(n, n);
  Xoshiro256 rng(seed);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < i; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
    m(i, i) = 1.0;
  }
  return m;
}

Matrix random_upper_triangular(Index n, std::uint64_t seed) {
  Matrix m(n, n);
  Xoshiro256 rng(seed);
  for (Index i = 0; i < n; ++i) {
    // Diagonal in ±[0.5, 1.5]: invertible and numerically tame.
    const double sign = rng.next_double() < 0.5 ? -1.0 : 1.0;
    m(i, i) = sign * rng.uniform(0.5, 1.5);
    for (Index j = i + 1; j < n; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

}  // namespace mri
