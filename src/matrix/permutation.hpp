// Row permutations, stored compactly as the paper's array S: row i of the
// pivoted matrix P·A is row S[i] of A (so the permutation matrix is
// P[i][l] = 1 iff l = S[i]).
//
// Two application directions matter for the inversion pipeline:
//  * apply_to_rows(A)    → P·A    (used when pivoting during decomposition)
//  * apply_to_columns(X) → X·P    (used at the very end: A⁻¹ = U⁻¹L⁻¹·P,
//                                  which places column k of X at column S[k])
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/matrix.hpp"

namespace mri {

class Permutation {
 public:
  /// Identity permutation of size n.
  explicit Permutation(Index n = 0);

  /// Adopts an explicit mapping (validated: must be a bijection).
  explicit Permutation(std::vector<Index> map);

  Index size() const { return static_cast<Index>(map_.size()); }

  Index operator[](Index i) const {
    return map_[static_cast<std::size_t>(i)];
  }

  /// Swaps the images of rows i and j (what a pivot swap does to S).
  void swap(Index i, Index j);

  /// P·A: row i of the result is row S[i] of A.
  Matrix apply_to_rows(const Matrix& a) const;

  /// X·P: column S[k] of the result is column k of X.
  Matrix apply_to_columns(const Matrix& x) const;

  /// Pᵀ·A (undoes apply_to_rows).
  Matrix apply_inverse_to_rows(const Matrix& a) const;

  /// Block-diagonal combination used by the recursive LU (Fig. 1):
  /// S = [S1, h + S2] where h = |S1|.
  static Permutation concat(const Permutation& s1, const Permutation& s2);

  Permutation inverse() const;

  /// +1 for even permutations, -1 for odd (the determinant of P).
  int parity() const;

  /// Dense 0/1 matrix P (tests only; O(n²) memory).
  Matrix to_matrix() const;

  const std::vector<Index>& map() const { return map_; }

  bool is_identity() const;

  bool operator==(const Permutation&) const = default;

 private:
  void validate() const;
  std::vector<Index> map_;
};

}  // namespace mri
