// Partition geometry for the recursive block LU pipeline (paper §4.2–§6.2).
//
// Everything here is closed-form in (n, nb, m0) and is what lets the paper
// precompute its MapReduce pipeline before any data moves:
//  * recursion_depth d  = ceil(log2(n / nb)) — the number of times the
//    matrix is halved until the leading block fits a single node;
//  * job counts        — 1 partition job + (2^d - 1) LU jobs + 1 inversion
//    job = 2^d + 1 total (Table 3: 9 / 17 / 17 / 33 / 9 for M1..M5);
//  * block-wrap factors f1 × f2 = m0 with f2 the largest divisor ≤ √m0,
//    minimizing (f1 + f2)·n² total multiply reads (§6.2);
//  * intermediate file count N(d) = 2^d + (m0/2)(2^d - 1) (§6.1).
#pragma once

#include <cstdint>

#include "matrix/matrix.hpp"

namespace mri {

/// Smallest d >= 0 such that ceil(n / 2^d) <= nb.
int recursion_depth(Index n, Index nb);

/// Number of MapReduce jobs in the LU stage: 2^d - 1 (the internal nodes of
/// the recursion tree; the 2^d leaves run on the master).
std::int64_t lu_job_count(Index n, Index nb);

/// Total pipeline length: partition + LU jobs + final inversion job.
std::int64_t total_job_count(Index n, Index nb);

/// Number of single-node LU leaves (= 2^d).
std::int64_t leaf_count(Index n, Index nb);

/// §6.1: files holding the final L (or U) factor when intermediate results
/// are kept separate: N(d) = 2^d + (m0/2)(2^d - 1).
std::int64_t intermediate_file_count(int depth, int m0);

struct BlockWrapFactors {
  int f1 = 1;  // row blocks (f1 >= f2)
  int f2 = 1;  // column blocks
};

/// f2 = largest divisor of m0 with f2 <= sqrt(m0); f1 = m0 / f2.
BlockWrapFactors block_wrap_factors(int m0);

/// Total bytes read by an n x n multiply across m0 nodes, naive vs wrapped
/// (§6.2: (m0+1)·n² vs (f1+f2)·n², in elements).
std::uint64_t naive_multiply_read_elements(Index n, int m0);
std::uint64_t wrapped_multiply_read_elements(Index n, int m0);

/// Split point for the recursive halving: the upper-left block has
/// ceil(n/2) rows/columns so leaves never exceed nb.
Index split_point(Index n);

/// Row range [begin, end) of stripe `worker` out of `num_workers` over
/// `rows` rows, balanced to within one row (paper §5.2: each mapper reads an
/// equal number of consecutive rows).
struct RowRange {
  Index begin = 0;
  Index end = 0;
  Index count() const { return end - begin; }
};
RowRange stripe(Index rows, int num_workers, int worker);

}  // namespace mri
