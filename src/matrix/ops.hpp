// Dense matrix operations over the kernel engine.
//
// Multiplication goes through ONE entry point, matmul(), which dispatches
// into src/linalg/kernels by enum-selected backend (naive | tiled | simd |
// threaded; see kernels/kernel.hpp for what each means). The historical
// free functions — multiply(), multiply_naive_ijk(), multiply_transposed_b(),
// multiply_accumulate() — survive as thin deprecated wrappers that pin the
// backend matching their old loop order, so the §6.3 ablation keeps its
// cache-hostile baseline.
//
// Different backends may round differently (summation order), so results
// are NOT bitwise identical across backends; each backend is individually
// deterministic and tests compare across backends with tolerances.
#pragma once

#include "linalg/kernels/kernel.hpp"
#include "matrix/matrix.hpp"
#include "sim/io_stats.hpp"

namespace mri {

/// How matmul() runs: which kernel backend executes the flops, whether the
/// second operand is stored transposed (the paper's §6.3 transposed-U
/// layout), and the kThreaded worker count.
struct MatmulOptions {
  kernels::Backend backend = kernels::default_backend();
  /// `b` holds Bᵀ row-major: rows of `b` are columns of the logical B.
  bool transposed_b = false;
  /// kThreaded only: workers per call (0 = hardware_concurrency).
  int threads = 0;
};

/// C = A · B (or A · Bᵀ with opts.transposed_b) through the selected kernel.
Matrix matmul(const Matrix& a, const Matrix& b, const MatmulOptions& opts = {});

/// C op= A · B into an existing matrix of matching shape (kAssign /
/// kAccumulate / kSubtract).
void matmul_into(const Matrix& a, const Matrix& b, Matrix* c,
                 kernels::GemmMode mode = kernels::GemmMode::kAccumulate,
                 const MatmulOptions& opts = {});

/// C = A · B (ikj order, row-streaming).
[[deprecated("use matmul()")]]
inline Matrix multiply(const Matrix& a, const Matrix& b) {
  return matmul(a, b);
}

/// C = A · B with the naive ijk dot-product order (column walks over B).
[[deprecated("use matmul() with Backend::kNaive")]]
inline Matrix multiply_naive_ijk(const Matrix& a, const Matrix& b) {
  return matmul(a, b, {.backend = kernels::Backend::kNaive});
}

/// C = A · Bᵀ where bt holds Bᵀ row-major (so rows of bt are columns of B).
[[deprecated("use matmul() with MatmulOptions::transposed_b")]]
inline Matrix multiply_transposed_b(const Matrix& a, const Matrix& bt) {
  return matmul(a, bt, {.transposed_b = true});
}

/// C += A · B into an existing accumulator (shapes must match).
[[deprecated("use matmul_into()")]]
inline void multiply_accumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  matmul_into(a, b, c);
}

/// Returns A + B / A - B.
Matrix add(const Matrix& a, const Matrix& b);
Matrix subtract(const Matrix& a, const Matrix& b);

/// In-place A -= B.
void subtract_in_place(Matrix* a, const Matrix& b);

Matrix transpose(const Matrix& a);

/// max_ij |A_ij|.
double max_abs(const Matrix& a);

/// max_ij |A_ij - B_ij| (shapes must match).
double max_abs_diff(const Matrix& a, const Matrix& b);

/// The paper's §7.2 correctness metric: max element of |I - A·A⁻¹|.
double inversion_residual(const Matrix& a, const Matrix& a_inv);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// Flop cost of a dense (r x k) · (k x c) multiply, for IoStats accounting.
[[deprecated("use kernels::kernel_cost(variant, r, k, c)")]]
inline IoStats multiply_cost(Index r, Index k, Index c) {
  return kernels::kernel_cost(kernels::Backend::kTiled, r, k, c);
}

}  // namespace mri
