// Dense matrix kernels.
//
// Three multiplication variants exist deliberately:
//  * multiply()              — cache-friendly i-k-j loop order (the default);
//  * multiply_naive_ijk()    — textbook dot-product order that walks columns
//                              of B; used by the §6.3 ablation to show the
//                              page/TLB-miss penalty the paper describes;
//  * multiply_transposed_b() — A · Bᵀrow-major, i.e. B is stored transposed,
//                              the paper's "storing transposed U" layout.
// All variants produce bit-identical results for the same operand values is
// NOT guaranteed (summation order differs); tests compare with tolerances.
#pragma once

#include "matrix/matrix.hpp"
#include "sim/io_stats.hpp"

namespace mri {

/// C = A · B (ikj order, row-streaming).
Matrix multiply(const Matrix& a, const Matrix& b);

/// C = A · B with the naive ijk dot-product order (column walks over B).
Matrix multiply_naive_ijk(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ where bt holds Bᵀ row-major (so rows of bt are columns of B).
Matrix multiply_transposed_b(const Matrix& a, const Matrix& bt);

/// C += A · B into an existing accumulator (shapes must match).
void multiply_accumulate(const Matrix& a, const Matrix& b, Matrix* c);

/// Returns A + B / A - B.
Matrix add(const Matrix& a, const Matrix& b);
Matrix subtract(const Matrix& a, const Matrix& b);

/// In-place A -= B.
void subtract_in_place(Matrix* a, const Matrix& b);

Matrix transpose(const Matrix& a);

/// max_ij |A_ij|.
double max_abs(const Matrix& a);

/// max_ij |A_ij - B_ij| (shapes must match).
double max_abs_diff(const Matrix& a, const Matrix& b);

/// The paper's §7.2 correctness metric: max element of |I - A·A⁻¹|.
double inversion_residual(const Matrix& a, const Matrix& a_inv);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// Flop cost of a dense (r x k) · (k x c) multiply, for IoStats accounting.
inline IoStats multiply_cost(Index r, Index k, Index c) {
  IoStats io;
  io.mults = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(k) *
             static_cast<std::uint64_t>(c);
  io.adds = io.mults;
  return io;
}

}  // namespace mri
