#include "matrix/dfs_io.hpp"

#include "matrix/text_format.hpp"

namespace mri {

namespace {
constexpr std::uint64_t kMagic = 0x4D52494E564D5458ull;  // "MRINVMTX"
constexpr std::uint64_t kHeaderBytes = 3 * sizeof(std::uint64_t);
}  // namespace

void write_matrix(dfs::Dfs& fs, const std::string& path, const Matrix& m,
                  IoStats* account, dfs::StorageTier tier) {
  dfs::Dfs::Writer w = fs.create(path, account, /*overwrite=*/false, tier);
  w.write_u64(kMagic);
  w.write_u64(static_cast<std::uint64_t>(m.rows()));
  w.write_u64(static_cast<std::uint64_t>(m.cols()));
  w.write_doubles(m.data());
  w.close();
}

namespace {

MatrixShape read_header(dfs::Dfs::Reader& r, const std::string& path) {
  MRI_CHECK_MSG(r.size() >= kHeaderBytes, "not a matrix file: " << path);
  const std::uint64_t magic = r.read_u64();
  MRI_CHECK_MSG(magic == kMagic, "bad matrix magic in " << path);
  MatrixShape shape;
  shape.rows = static_cast<Index>(r.read_u64());
  shape.cols = static_cast<Index>(r.read_u64());
  return shape;
}

}  // namespace

Matrix read_matrix(const dfs::Dfs& fs, const std::string& path,
                   IoStats* account) {
  auto r = fs.open(path, account);
  const MatrixShape shape = read_header(r, path);
  Matrix m(shape.rows, shape.cols);
  r.read_doubles(m.data());
  return m;
}

Matrix read_matrix_rows(const dfs::Dfs& fs, const std::string& path, Index r0,
                        Index r1, IoStats* account) {
  auto r = fs.open(path, account);
  const MatrixShape shape = read_header(r, path);
  MRI_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= shape.rows,
              "row range [" << r0 << "," << r1 << ") out of " << shape.rows
                            << " rows in " << path);
  Matrix m(r1 - r0, shape.cols);
  r.seek(kHeaderBytes +
         static_cast<std::uint64_t>(r0) *
             static_cast<std::uint64_t>(shape.cols) * sizeof(double));
  r.read_doubles(m.data());
  return m;
}

MatrixShape read_matrix_shape(const dfs::Dfs& fs, const std::string& path,
                              IoStats* account) {
  auto r = fs.open(path, account);
  return read_header(r, path);
}

void write_matrix_text(dfs::Dfs& fs, const std::string& path, const Matrix& m,
                       IoStats* account) {
  fs.write_text(path, matrix_to_text(m), account);
}

Matrix read_matrix_text(const dfs::Dfs& fs, const std::string& path,
                        IoStats* account) {
  return matrix_from_text(fs.read_text(path, account));
}

}  // namespace mri
