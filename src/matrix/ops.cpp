#include "matrix/ops.hpp"

#include <cmath>

namespace mri {

namespace {

void check_multiply_shapes(const Matrix& a, const Matrix& b) {
  MRI_REQUIRE(a.cols() == b.rows(), "multiply shape mismatch: "
                                        << a.rows() << "x" << a.cols() << " · "
                                        << b.rows() << "x" << b.cols());
}

}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b) {
  check_multiply_shapes(a, b);
  Matrix c(a.rows(), b.cols());
  multiply_accumulate(a, b, &c);
  return c;
}

void multiply_accumulate(const Matrix& a, const Matrix& b, Matrix* c) {
  check_multiply_shapes(a, b);
  MRI_REQUIRE(c->rows() == a.rows() && c->cols() == b.cols(),
              "accumulator shape mismatch");
  const Index n = a.rows(), k_max = a.cols(), m = b.cols();
  for (Index i = 0; i < n; ++i) {
    double* ci = c->row(i).data();
    const double* ai = a.row(i).data();
    for (Index k = 0; k < k_max; ++k) {
      const double aik = ai[k];
      if (aik == 0.0) continue;  // triangular operands are half zeros
      const double* bk = b.row(k).data();
      for (Index j = 0; j < m; ++j) ci[j] += aik * bk[j];
    }
  }
}

Matrix multiply_naive_ijk(const Matrix& a, const Matrix& b) {
  check_multiply_shapes(a, b);
  const Index n = a.rows(), k_max = a.cols(), m = b.cols();
  Matrix c(n, m);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < m; ++j) {
      double sum = 0.0;
      for (Index k = 0; k < k_max; ++k) sum += a(i, k) * b(k, j);
      c(i, j) = sum;
    }
  }
  return c;
}

Matrix multiply_transposed_b(const Matrix& a, const Matrix& bt) {
  MRI_REQUIRE(a.cols() == bt.cols(), "multiply_transposed_b shape mismatch: "
                                         << a.rows() << "x" << a.cols()
                                         << " · (" << bt.rows() << "x"
                                         << bt.cols() << ")^T");
  const Index n = a.rows(), k_max = a.cols(), m = bt.rows();
  Matrix c(n, m);
  for (Index i = 0; i < n; ++i) {
    const double* ai = a.row(i).data();
    double* ci = c.row(i).data();
    for (Index j = 0; j < m; ++j) {
      const double* btj = bt.row(j).data();
      double sum = 0.0;
      for (Index k = 0; k < k_max; ++k) sum += ai[k] * btj[k];
      ci[j] = sum;
    }
  }
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  MRI_REQUIRE(a.same_shape(b), "add shape mismatch");
  Matrix c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  subtract_in_place(&c, b);
  return c;
}

void subtract_in_place(Matrix* a, const Matrix& b) {
  MRI_REQUIRE(a->same_shape(b), "subtract shape mismatch");
  auto ad = a->data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) ad[i] -= bd[i];
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

double max_abs(const Matrix& a) {
  double m = 0.0;
  for (double v : a.data()) m = std::max(m, std::abs(v));
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  MRI_REQUIRE(a.same_shape(b), "max_abs_diff shape mismatch");
  double m = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i)
    m = std::max(m, std::abs(ad[i] - bd[i]));
  return m;
}

double inversion_residual(const Matrix& a, const Matrix& a_inv) {
  MRI_REQUIRE(a.square() && a.same_shape(a_inv),
              "inversion_residual expects square same-shape matrices");
  return max_abs_diff(Matrix::identity(a.rows()), multiply(a, a_inv));
}

double frobenius_norm(const Matrix& a) {
  double sum = 0.0;
  for (double v : a.data()) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace mri
