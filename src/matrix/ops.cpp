#include "matrix/ops.hpp"

#include <cmath>

namespace mri {

namespace {

void check_matmul_shapes(const Matrix& a, const Matrix& b,
                         const MatmulOptions& opts) {
  if (opts.transposed_b) {
    MRI_REQUIRE(a.cols() == b.cols(), "matmul shape mismatch: "
                                          << a.rows() << "x" << a.cols()
                                          << " · (" << b.rows() << "x"
                                          << b.cols() << ")^T");
  } else {
    MRI_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch: "
                                          << a.rows() << "x" << a.cols()
                                          << " · " << b.rows() << "x"
                                          << b.cols());
  }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b, const MatmulOptions& opts) {
  check_matmul_shapes(a, b, opts);
  Matrix c(a.rows(), opts.transposed_b ? b.rows() : b.cols());
  matmul_into(a, b, &c, kernels::GemmMode::kAssign, opts);
  return c;
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix* c,
                 kernels::GemmMode mode, const MatmulOptions& opts) {
  check_matmul_shapes(a, b, opts);
  MRI_REQUIRE(c != nullptr, "null matmul output");
  const Index out_cols = opts.transposed_b ? b.rows() : b.cols();
  MRI_REQUIRE(c->rows() == a.rows() && c->cols() == out_cols,
              "accumulator shape mismatch");
  kernels::KernelContext ctx{opts.backend, opts.threads};
  if (opts.transposed_b) {
    ctx.gemm_bt(mode, a.rows(), b.rows(), a.cols(), a.data().data(), a.cols(),
                b.data().data(), b.cols(), c->data().data(), c->cols());
  } else {
    ctx.gemm(mode, a.rows(), b.cols(), a.cols(), a.data().data(), a.cols(),
             b.data().data(), b.cols(), c->data().data(), c->cols());
  }
}

Matrix add(const Matrix& a, const Matrix& b) {
  MRI_REQUIRE(a.same_shape(b), "add shape mismatch");
  Matrix c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  subtract_in_place(&c, b);
  return c;
}

void subtract_in_place(Matrix* a, const Matrix& b) {
  MRI_REQUIRE(a->same_shape(b), "subtract shape mismatch");
  auto ad = a->data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) ad[i] -= bd[i];
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

double max_abs(const Matrix& a) {
  double m = 0.0;
  for (double v : a.data()) m = std::max(m, std::abs(v));
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  MRI_REQUIRE(a.same_shape(b), "max_abs_diff shape mismatch");
  double m = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i)
    m = std::max(m, std::abs(ad[i] - bd[i]));
  return m;
}

double inversion_residual(const Matrix& a, const Matrix& a_inv) {
  MRI_REQUIRE(a.square() && a.same_shape(a_inv),
              "inversion_residual expects square same-shape matrices");
  return max_abs_diff(Matrix::identity(a.rows()), matmul(a, a_inv));
}

double frobenius_norm(const Matrix& a) {
  double sum = 0.0;
  for (double v : a.data()) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace mri
