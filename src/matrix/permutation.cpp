#include "matrix/permutation.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace mri {

Permutation::Permutation(Index n) : map_(static_cast<std::size_t>(n)) {
  MRI_REQUIRE(n >= 0, "permutation size must be >= 0");
  std::iota(map_.begin(), map_.end(), Index{0});
}

Permutation::Permutation(std::vector<Index> map) : map_(std::move(map)) {
  validate();
}

void Permutation::validate() const {
  std::vector<bool> seen(map_.size(), false);
  for (Index v : map_) {
    MRI_REQUIRE(v >= 0 && v < size() && !seen[static_cast<std::size_t>(v)],
                "not a permutation");
    seen[static_cast<std::size_t>(v)] = true;
  }
}

void Permutation::swap(Index i, Index j) {
  MRI_REQUIRE(i >= 0 && i < size() && j >= 0 && j < size(),
              "swap index out of range");
  std::swap(map_[static_cast<std::size_t>(i)],
            map_[static_cast<std::size_t>(j)]);
}

Matrix Permutation::apply_to_rows(const Matrix& a) const {
  MRI_REQUIRE(a.rows() == size(), "permutation size " << size()
                                                      << " != rows " << a.rows());
  Matrix out(a.rows(), a.cols());
  for (Index i = 0; i < size(); ++i) {
    std::memcpy(out.row(i).data(), a.row((*this)[i]).data(),
                static_cast<std::size_t>(a.cols()) * sizeof(double));
  }
  return out;
}

Matrix Permutation::apply_to_columns(const Matrix& x) const {
  MRI_REQUIRE(x.cols() == size(),
              "permutation size " << size() << " != cols " << x.cols());
  Matrix out(x.rows(), x.cols());
  for (Index i = 0; i < x.rows(); ++i) {
    const double* src = x.row(i).data();
    double* dst = out.row(i).data();
    for (Index k = 0; k < size(); ++k) dst[(*this)[k]] = src[k];
  }
  return out;
}

Matrix Permutation::apply_inverse_to_rows(const Matrix& a) const {
  MRI_REQUIRE(a.rows() == size(), "permutation size " << size()
                                                      << " != rows " << a.rows());
  Matrix out(a.rows(), a.cols());
  for (Index i = 0; i < size(); ++i) {
    std::memcpy(out.row((*this)[i]).data(), a.row(i).data(),
                static_cast<std::size_t>(a.cols()) * sizeof(double));
  }
  return out;
}

Permutation Permutation::concat(const Permutation& s1, const Permutation& s2) {
  std::vector<Index> map;
  map.reserve(static_cast<std::size_t>(s1.size() + s2.size()));
  for (Index i = 0; i < s1.size(); ++i) map.push_back(s1[i]);
  for (Index i = 0; i < s2.size(); ++i) map.push_back(s1.size() + s2[i]);
  return Permutation(std::move(map));
}

Permutation Permutation::inverse() const {
  std::vector<Index> inv(map_.size());
  for (Index i = 0; i < size(); ++i) inv[static_cast<std::size_t>((*this)[i])] = i;
  return Permutation(std::move(inv));
}

int Permutation::parity() const {
  // sign = (-1)^(n - #cycles), via cycle decomposition.
  std::vector<bool> seen(map_.size(), false);
  Index cycles = 0;
  for (Index i = 0; i < size(); ++i) {
    if (seen[static_cast<std::size_t>(i)]) continue;
    ++cycles;
    Index j = i;
    while (!seen[static_cast<std::size_t>(j)]) {
      seen[static_cast<std::size_t>(j)] = true;
      j = (*this)[j];
    }
  }
  return (size() - cycles) % 2 == 0 ? 1 : -1;
}

Matrix Permutation::to_matrix() const {
  Matrix p(size(), size());
  for (Index i = 0; i < size(); ++i) p(i, (*this)[i]) = 1.0;
  return p;
}

bool Permutation::is_identity() const {
  for (Index i = 0; i < size(); ++i)
    if ((*this)[i] != i) return false;
  return true;
}

}  // namespace mri
