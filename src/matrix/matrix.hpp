// Dense row-major matrix of doubles.
//
// This is the value type that flows through the whole reproduction: the
// paper stores matrices as row-major doubles in HDFS and all kernels operate
// on row-major data (with the §6.3 optimization of storing U transposed).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mri {

using Index = std::int64_t;

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(Index rows, Index cols);

  /// rows x cols matrix adopting `data` (row-major, size must match).
  Matrix(Index rows, Index cols, std::vector<double> data);

  static Matrix identity(Index n);
  static Matrix zero(Index rows, Index cols) { return Matrix(rows, cols); }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool square() const { return rows_ == cols_; }
  Index size() const { return rows_ * cols_; }

  double& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Checked element access (for tests and debugging).
  double& at(Index i, Index j);
  double at(Index i, Index j) const;

  std::span<double> row(Index i) {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const double> row(Index i) const {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Copy of the block [r0, r1) x [c0, c1).
  Matrix block(Index r0, Index r1, Index c0, Index c1) const;

  /// Writes `src` into this matrix with its (0,0) at (r0, c0).
  void set_block(Index r0, Index c0, const Matrix& src);

  /// Copy of rows [r0, r1).
  Matrix row_range(Index r0, Index r1) const { return block(r0, r1, 0, cols_); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  bool operator==(const Matrix&) const = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mri
