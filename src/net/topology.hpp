// Cluster network topology for the flow-level network model.
//
// The paper's shuffle-bound regions (Fig 6–8) were measured on EC2, where
// the network is not a uniform pipe: hosts hang off top-of-rack switches
// whose uplinks into the core are oversubscribed, so shuffle cost is set by
// link contention, not by a per-node scalar bandwidth. Two topologies:
//
//   kFlat    — the original model: every transfer is charged at the scalar
//              network_bandwidth by the cost model. No links, no flow
//              simulation; code paths are bit-identical to the pre-topology
//              scheduler, which is what the flat-reproduces-prior-PRs check
//              in bench/net_sweep enforces.
//   kRacked  — a two-tier tree: every host has a full-duplex access link of
//              host_bandwidth into its rack's ToR switch; every rack has a
//              full-duplex uplink into a non-blocking core sized at
//              (hosts_in_rack x host_bandwidth) / oversubscription. An
//              oversubscription of 1 makes the fabric non-blocking; 4:1 or
//              8:1 reproduces the contended fabrics real Hadoop clusters
//              ran on.
//
// Links are directed and indexed compactly so FlowSim can keep flat arrays:
//   [0, H)        host h transmit (host -> ToR)
//   [H, 2H)       host h receive  (ToR -> host)
//   [2H, 2H+R)    rack r uplink   (ToR -> core)
//   [2H+R, 2H+2R) rack r downlink (core -> ToR)
// A same-rack transfer crosses {src up, dst down}; a cross-rack transfer
// additionally crosses {src rack uplink, dst rack downlink}. Node-local
// transfers (src == dst) cross nothing — they are disk traffic.
//
// Hosts map to racks contiguously (rack_of(h) = h * racks / hosts), so rack
// sizes differ by at most one host and the mapping is deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mri::net {

enum class TopologyKind { kFlat, kRacked };

struct TopologyOptions {
  TopologyKind kind = TopologyKind::kFlat;
  /// Number of ToR switches (racked only). Hosts are assigned contiguously.
  int racks = 4;
  /// Core oversubscription ratio: rack uplink capacity =
  /// hosts_in_rack * host_bandwidth / oversubscription. 1.0 = non-blocking.
  double oversubscription = 1.0;
  /// HDFS-style rack awareness: writers keep the first replica local and the
  /// second rack-local, reads prefer the closest replica, and the scheduler
  /// prefers rack-local dispatch. Off = hash placement on a racked fabric,
  /// the contended worst case bench/net_sweep contrasts against.
  bool rack_aware_placement = true;
};

/// Why bytes crossed the network — used to split per-attempt byte accounting
/// back out of the flow set (reads vs replication pipeline vs shuffle).
enum class TransferKind { kRead, kWrite, kShuffle, kRepair };

/// One point-to-point transfer recorded while a task (or the DFS repair
/// path) runs: `bytes` moved from datanode `src` to `dst`. src == dst is
/// node-local traffic that never leaves the host.
struct Transfer {
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  TransferKind kind = TransferKind::kRead;
};

class Topology {
 public:
  /// `host_bandwidth` is the access-link rate in bytes/second (the cost
  /// model's network_bandwidth). Flat topologies keep no links.
  Topology(int num_hosts, double host_bandwidth, TopologyOptions options = {});

  bool racked() const { return options_.kind == TopologyKind::kRacked; }
  int num_hosts() const { return hosts_; }
  int racks() const { return racked() ? options_.racks : 1; }
  double host_bandwidth() const { return host_bandwidth_; }
  const TopologyOptions& options() const { return options_; }

  int rack_of(int host) const;

  /// Directed links; 0 for flat topologies.
  int num_links() const { return static_cast<int>(capacity_.size()); }
  double link_capacity(int link) const;
  /// Stable human-readable name ("host3:up", "rack1:down") for reports.
  std::string link_name(int link) const;

  /// Links a src -> dst transfer crosses, in traversal order; empty when
  /// src == dst. Requires a racked topology.
  std::vector<int> path(int src, int dst) const;

 private:
  TopologyOptions options_;
  int hosts_;
  double host_bandwidth_;
  std::vector<double> capacity_;  // empty for flat
};

}  // namespace mri::net
