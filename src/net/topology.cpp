#include "net/topology.hpp"

#include "common/error.hpp"

namespace mri::net {

Topology::Topology(int num_hosts, double host_bandwidth,
                   TopologyOptions options)
    : options_(options), hosts_(num_hosts), host_bandwidth_(host_bandwidth) {
  MRI_REQUIRE(num_hosts >= 1, "topology needs at least one host");
  if (!racked()) return;
  MRI_REQUIRE(host_bandwidth > 0.0,
              "racked topology needs a positive host bandwidth");
  MRI_REQUIRE(options_.racks >= 1 && options_.racks <= num_hosts,
              "racks must be in [1, num_hosts]; got " << options_.racks
                                                      << " for " << num_hosts
                                                      << " hosts");
  MRI_REQUIRE(options_.oversubscription > 0.0,
              "oversubscription must be > 0");

  const int R = options_.racks;
  std::vector<int> hosts_in_rack(static_cast<std::size_t>(R), 0);
  for (int h = 0; h < hosts_; ++h) {
    ++hosts_in_rack[static_cast<std::size_t>(rack_of(h))];
  }
  capacity_.assign(static_cast<std::size_t>(2 * hosts_ + 2 * R), 0.0);
  for (int h = 0; h < 2 * hosts_; ++h) {
    capacity_[static_cast<std::size_t>(h)] = host_bandwidth_;
  }
  for (int r = 0; r < R; ++r) {
    const double uplink = static_cast<double>(hosts_in_rack[
                              static_cast<std::size_t>(r)]) *
                          host_bandwidth_ / options_.oversubscription;
    capacity_[static_cast<std::size_t>(2 * hosts_ + r)] = uplink;
    capacity_[static_cast<std::size_t>(2 * hosts_ + R + r)] = uplink;
  }
}

int Topology::rack_of(int host) const {
  MRI_REQUIRE(host >= 0 && host < hosts_, "host " << host << " out of range");
  if (!racked()) return 0;
  return static_cast<int>(static_cast<long long>(host) * options_.racks /
                          hosts_);
}

double Topology::link_capacity(int link) const {
  MRI_REQUIRE(link >= 0 && link < num_links(),
              "link " << link << " out of range");
  return capacity_[static_cast<std::size_t>(link)];
}

std::string Topology::link_name(int link) const {
  MRI_REQUIRE(link >= 0 && link < num_links(),
              "link " << link << " out of range");
  const int R = options_.racks;
  if (link < hosts_) return "host" + std::to_string(link) + ":up";
  if (link < 2 * hosts_) {
    return "host" + std::to_string(link - hosts_) + ":down";
  }
  if (link < 2 * hosts_ + R) {
    return "rack" + std::to_string(link - 2 * hosts_) + ":up";
  }
  return "rack" + std::to_string(link - 2 * hosts_ - R) + ":down";
}

std::vector<int> Topology::path(int src, int dst) const {
  MRI_REQUIRE(racked(), "path() needs a racked topology");
  MRI_REQUIRE(src >= 0 && src < hosts_ && dst >= 0 && dst < hosts_,
              "path(" << src << ", " << dst << ") out of range");
  if (src == dst) return {};
  const int rs = rack_of(src);
  const int rd = rack_of(dst);
  if (rs == rd) return {src, hosts_ + dst};
  return {src, 2 * hosts_ + rs, 2 * hosts_ + options_.racks + rd,
          hosts_ + dst};
}

}  // namespace mri::net
