#include "net/flow_sim.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace mri::net {

namespace {

struct ActiveFlow {
  std::size_t index;       // into the input vector
  double remaining;        // bytes left
  double rate = 0.0;       // current max-min allocation (bytes/s)
  std::vector<int> path;
};

/// Progressive filling: repeatedly find the tightest link (smallest fair
/// share avail/count over its unset flows), freeze every unset flow crossing
/// a link at that share, and subtract the frozen rates along their whole
/// paths. Classic max-min; terminates because every round freezes >= 1 flow.
void max_min_rates(const Topology& topo, std::vector<ActiveFlow>* active) {
  const int num_links = topo.num_links();
  std::vector<double> avail(static_cast<std::size_t>(num_links));
  std::vector<int> count(static_cast<std::size_t>(num_links), 0);
  for (int l = 0; l < num_links; ++l) {
    avail[static_cast<std::size_t>(l)] = topo.link_capacity(l);
  }
  for (ActiveFlow& f : *active) {
    f.rate = 0.0;
    for (int l : f.path) ++count[static_cast<std::size_t>(l)];
  }
  std::vector<bool> frozen(active->size(), false);
  std::size_t unset = active->size();
  while (unset > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (int l = 0; l < num_links; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (count[li] > 0) {
        share = std::min(share, avail[li] / static_cast<double>(count[li]));
      }
    }
    MRI_CHECK_MSG(share < std::numeric_limits<double>::infinity(),
                  "active flow crosses no links");
    // Freeze every unset flow that crosses a bottleneck link (a link whose
    // fair share equals the minimum, up to rounding).
    const double cutoff = share * (1.0 + 1e-12);
    bool froze = false;
    for (std::size_t i = 0; i < active->size(); ++i) {
      if (frozen[i]) continue;
      ActiveFlow& f = (*active)[i];
      bool bottlenecked = false;
      for (int l : f.path) {
        const auto li = static_cast<std::size_t>(l);
        if (avail[li] / static_cast<double>(count[li]) <= cutoff) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      f.rate = share;
      frozen[i] = true;
      froze = true;
      --unset;
      for (int l : f.path) {
        const auto li = static_cast<std::size_t>(l);
        avail[li] -= share;
        if (avail[li] < 0.0) avail[li] = 0.0;
        --count[li];
      }
    }
    MRI_CHECK_MSG(froze, "max-min filling made no progress");
  }
}

}  // namespace

FlowSimResult simulate_flows(const Topology& topology,
                             const std::vector<Flow>& flows) {
  MRI_REQUIRE(topology.racked(), "simulate_flows needs a racked topology");
  FlowSimResult out;
  out.finish.assign(flows.size(), 0.0);
  out.links.assign(static_cast<std::size_t>(topology.num_links()), LinkLoad{});
  if (flows.empty()) return out;

  // Arrival order: (start, input index) — deterministic for equal starts.
  std::vector<std::size_t> order(flows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (flows[a].start != flows[b].start) {
      return flows[a].start < flows[b].start;
    }
    return a < b;
  });

  std::vector<ActiveFlow> active;
  std::size_t next = 0;
  double now = 0.0;
  while (!active.empty() || next < order.size()) {
    if (active.empty()) now = flows[order[next]].start;
    // Admit every flow starting at or before `now`. Trivial flows (no
    // network path) finish instantly; real flows charge their bytes to
    // every link on their path on admission.
    while (next < order.size() && flows[order[next]].start <= now) {
      const std::size_t i = order[next];
      ++next;
      const Flow& f = flows[i];
      MRI_REQUIRE(f.start >= 0.0, "flow start must be >= 0");
      if (f.bytes == 0 || f.src == f.dst) {
        out.finish[i] = f.start;
        out.end_time = std::max(out.end_time, f.start);
        continue;
      }
      ActiveFlow a;
      a.index = i;
      a.remaining = static_cast<double>(f.bytes);
      a.path = topology.path(f.src, f.dst);
      for (int l : a.path) {
        out.links[static_cast<std::size_t>(l)].bytes += f.bytes;
      }
      active.push_back(std::move(a));
    }
    if (active.empty()) continue;

    max_min_rates(topology, &active);

    // Advance to the next event: the earliest flow completion or the next
    // arrival, whichever is sooner.
    double dt = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& f : active) {
      dt = std::min(dt, f.remaining / f.rate);
    }
    if (next < order.size()) {
      dt = std::min(dt, flows[order[next]].start - now);
    }
    MRI_CHECK_MSG(dt >= 0.0, "flow simulation time went backwards");

    // Per-link utilization over this interval.
    if (dt > 0.0) {
      std::vector<double> link_rate(out.links.size(), 0.0);
      for (const ActiveFlow& f : active) {
        for (int l : f.path) link_rate[static_cast<std::size_t>(l)] += f.rate;
      }
      for (std::size_t l = 0; l < out.links.size(); ++l) {
        if (link_rate[l] <= 0.0) continue;
        out.links[l].busy_seconds += dt;
        out.links[l].peak_utilization =
            std::max(out.links[l].peak_utilization,
                     link_rate[l] / topology.link_capacity(static_cast<int>(l)));
      }
    }

    now += dt;
    // Retire flows whose remaining bytes drain within this interval (with a
    // relative tolerance so the completion that defined dt always retires).
    for (std::size_t i = active.size(); i-- > 0;) {
      ActiveFlow& f = active[i];
      f.remaining -= f.rate * dt;
      if (f.remaining <= 1e-6 * f.rate || f.remaining <= 1e-9) {
        out.finish[f.index] = now;
        out.end_time = std::max(out.end_time, now);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  return out;
}

}  // namespace mri::net
