// Deterministic flow-level (fluid) network simulation with max-min fair
// bandwidth sharing — the standard abstraction for datacenter "what does
// this traffic matrix cost" questions (and the model replicant-opera's
// Hadoop sort simulator uses).
//
// Each flow is a point-to-point transfer that crosses the links of its
// topology path. Between events (a flow arriving or finishing) every active
// flow gets its max-min fair rate: rates are grown together by progressive
// filling until a link saturates, flows crossing that link freeze at the
// fair share, and the rest keep growing. At each event the allocation is
// recomputed from scratch — O(events x links x flows), plenty for the few
// hundred flows a phase produces, and purely double-deterministic: the same
// flow set always yields bit-identical finish times.
//
// Same-host flows (empty path) finish instantly: node-local traffic is disk
// traffic, charged elsewhere by the cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace mri::net {

struct Flow {
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  /// When the flow starts, in the caller's clock (phase-relative seconds).
  double start = 0.0;
  /// Caller-owned label (e.g. attempt index); FlowSim ignores it.
  int tag = -1;
};

/// Per-link traffic totals over one simulation.
struct LinkLoad {
  std::uint64_t bytes = 0;        // total bytes that traversed the link
  double busy_seconds = 0.0;      // time with at least one active flow
  double peak_utilization = 0.0;  // max over time of (sum rates / capacity)
};

struct FlowSimResult {
  /// Finish time per input flow (same order as the input). A zero-byte or
  /// same-host flow finishes at its start time.
  std::vector<double> finish;
  std::vector<LinkLoad> links;  // indexed by Topology link id
  double end_time = 0.0;        // max finish; 0 when there are no flows
};

/// Requires a racked topology. Flows with src == dst or bytes == 0 are
/// legal and finish instantly at their start time.
FlowSimResult simulate_flows(const Topology& topology,
                             const std::vector<Flow>& flows);

}  // namespace mri::net
