// mrinvert: a command-line matrix inverter backed by the MapReduce pipeline.
//
//   ./mrinvert_cli --input A.txt --output Ainv.txt [--nodes 8] [--nb 64]
//                  [--engine auto|mapreduce|spin|scalapack] [--cache-mb 256]
//                  [--overlap] [--trace-out trace.json]
//                  [--report-out report.json]
//                  [--storage-policy replicate|ec] [--ec k,m]
//                  [--hot-cache-mb N]
//                  [--kernel-backend naive|tiled|simd|threaded]
//                  [--solve B.txt] [--multiply-strategy wrap|multiround]
//                  [--replication r]
//   ./mrinvert_cli --generate 256 --output Ainv.txt        # random input
//   ./mrinvert_cli --serve requests.trace [--max-concurrent 2]
//                  [--queue-depth 8] [--tenant-queue-limit 0]
//                  [--memory-budget-mb 0]
//
// --engine spin selects the SPIN-style in-memory engine: intermediates live
// in per-node block caches (--cache-mb per node), consumers read resident
// inputs at memory bandwidth, and node kills recover by lineage
// recomputation. --spark is the deprecated spelling of --engine spin.
//
// --kernel-backend selects the process-wide GEMM/TRSM implementation every
// dense kernel dispatches through (default: simd when the CPU has AVX2+FMA,
// else tiled). Simulated accounting is backend-independent; only wall-clock
// speed changes.
//
// --solve B.txt solves A·X = B: the pipeline inverts A, then multiplies
// X = A⁻¹·B with MapReduce jobs scheduled by --multiply-strategy — wrap
// (the paper's §6.2 block wrap, one job) or multiround (the
// replication-parameterized multi-round scheme: --replication r segments
// per task per round, ceil(m0/r) chained jobs trading rounds for per-task
// memory).
//
// Reads a whitespace-separated text matrix from the local filesystem (the
// paper's a.txt format), inverts it on a simulated cluster, writes the
// inverse back as text, and prints the §7.2 residual and the run report.
// --trace-out writes a Chrome trace_event timeline (chrome://tracing);
// --report-out writes the machine-readable run report (schema in README.md).
//
// --serve replays a request-trace file (tenants + timed inversion requests;
// see examples/sample_requests.trace) through the multi-tenant inversion
// service: admission control, fair-share slots, per-tenant SLO percentiles.
//
// --storage-policy ec stores disk-tier DFS files as Reed-Solomon(k,m)
// stripes (--ec k,m, default 6,3) instead of 3x replication: (k+m)/k
// physical overhead, degraded reads decode lost cells from any k survivors,
// and node kills repair by reconstruction instead of re-replication.
// --hot-cache-mb N pins the hottest transposed-U factors in a namenode
// cache so repeated re-reads skip the datanodes entirely.
//
// Chaos flags (both modes; the §7.4 fault-tolerance story):
//   --kill-node id@t[,id@t...]   kill worker nodes at simulated seconds t
//                                (bare ids sample a time; needs --chaos-seed)
//   --chaos-seed N               seed for sampled fault schedules
//   --chaos-mtbf S               per-node mean time between failures
//   --chaos-horizon S            sampling horizon (default 86400)
// The run completes with a correct inverse despite the losses; the report's
// "recovery" section counts re-executed tasks and re-replicated blocks.
//
// Integrity flags (silent-corruption chaos and its defenses):
//   --corrupt-block id@t[,...]   silently flip bits in one block copy on
//                                node id at simulated seconds t
//   --bitrot-rate R              seeded background corruption, expected
//                                events/node/second (needs --chaos-seed)
//   --verify-checksums on|off    CRC32C blocks on write, verify on read,
//                                read-repair from a good copy (default off)
//   --scrub-interval S           background scrubber walks every block copy
//                                each S simulated seconds (needs
//                                --verify-checksums on)
// With verification off a corrupted read silently serves rotten bytes and
// the residual blows up; with it on every corruption is detected and
// repaired (replica copy, EC decode, or lineage recompute) and the inverse
// stays at machine epsilon. The report's "integrity" section has the counts.
#include <fstream>
#include <memory>
#include <sstream>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/adaptive.hpp"
#include "core/multiply_strategy.hpp"
#include "linalg/kernels/kernel.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "matrix/text_format.hpp"
#include "net/topology.hpp"
#include "service/loadgen.hpp"
#include "service/service.hpp"

namespace {

mri::Matrix load_text_file(const std::string& path) {
  std::ifstream in(path);
  MRI_REQUIRE(in.good(), "cannot open input file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return mri::matrix_from_text(buffer.str());
}

void save_text_file(const std::string& path, const mri::Matrix& m) {
  std::ofstream out(path);
  MRI_REQUIRE(out.good(), "cannot open output file: " << path);
  out << mri::matrix_to_text(m);
}

void save_json(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  MRI_REQUIRE(out.good(), "cannot open output file: " << path);
  out << json << '\n';
}

bool chaos_requested(const mri::CliOptions& cli) {
  return cli.has("chaos-seed") || cli.has("kill-node") ||
         cli.has("chaos-mtbf") || cli.has("corrupt-block") ||
         cli.has("bitrot-rate") || cli.has("scrub-interval");
}

// Builds the network topology from --topology/--racks/--oversub/--rack-aware
// and attaches it to both the cluster (flow-costed scheduling) and the DFS
// (rack-aware placement, transfer recording). "flat" — the default — leaves
// both untouched and reproduces the scalar network model bit-identically.
void attach_topology(const mri::CliOptions& cli, mri::Cluster* cluster,
                     mri::dfs::Dfs* fs) {
  using namespace mri;
  const std::string kind = cli.get_string("topology", "flat");
  if (kind == "flat") {
    MRI_REQUIRE(!cli.has("oversub") && !cli.has("racks"),
                "--racks/--oversub shape the racked topology; add "
                "--topology racked or drop them");
    return;
  }
  MRI_REQUIRE(kind == "racked",
              "unknown --topology '" << kind << "'; use flat or racked");
  net::TopologyOptions opts;
  opts.kind = net::TopologyKind::kRacked;
  opts.racks = static_cast<int>(cli.get_int("racks", 4));
  opts.oversubscription = cli.get_double("oversub", 1.0);
  opts.rack_aware_placement = cli.get_bool("rack-aware", true);
  auto topology = std::make_shared<const net::Topology>(
      cluster->size(), cluster->cost_model().network_bandwidth, opts);
  cluster->set_topology(topology);
  fs->set_topology(topology);
  std::printf("topology: %d racks, %.2g:1 oversubscription, rack-aware "
              "placement %s\n",
              opts.racks, opts.oversubscription,
              opts.rack_aware_placement ? "on" : "off");
}

// Builds the DFS configuration from --storage-policy/--ec/--hot-cache-mb.
// EC parameters get friendly CLI errors here; the Dfs constructor re-checks
// the same invariants.
mri::dfs::DfsConfig build_dfs_config(const mri::CliOptions& cli, int nodes) {
  using namespace mri;
  dfs::DfsConfig config;
  const std::string policy = cli.get_string("storage-policy", "replicate");
  if (policy == "ec" || policy == "erasure_coded") {
    config.storage_policy = dfs::StoragePolicy::kErasureCoded;
  } else {
    MRI_REQUIRE(policy == "replicate", "unknown --storage-policy '"
                                           << policy
                                           << "'; use replicate or ec");
    MRI_REQUIRE(!cli.has("ec"),
                "--ec k,m shapes the erasure-coded stripe, but the storage "
                "policy is replicate; add --storage-policy ec or drop --ec");
  }
  if (cli.has("ec")) {
    config.ec = dfs::parse_ec_params(cli.get_string("ec", ""));
  }
  if (config.storage_policy == dfs::StoragePolicy::kErasureCoded) {
    MRI_REQUIRE(config.ec.cells() <= nodes,
                "--ec " << config.ec.k << "," << config.ec.m
                        << " spreads " << config.ec.cells()
                        << " cells over distinct nodes, but --nodes "
                        << nodes << " is smaller; lower k+m or add nodes");
    std::printf("storage: erasure-coded RS(%d,%d) stripes (%.2fx physical "
                "overhead vs 3x replication)\n",
                config.ec.k, config.ec.m,
                static_cast<double>(config.ec.cells()) / config.ec.k);
  }
  config.hot_cache_bytes =
      static_cast<std::uint64_t>(cli.get_int("hot-cache-mb", 0)) << 20;
  if (cli.has("verify-checksums")) {
    const std::string verify = cli.get_string("verify-checksums", "");
    MRI_REQUIRE(verify == "on" || verify == "off",
                "unknown --verify-checksums '" << verify
                                               << "'; use on or off");
    config.verify_checksums = (verify == "on");
  }
  if (cli.has("scrub-interval")) {
    MRI_REQUIRE(config.verify_checksums,
                "--scrub-interval drives the background checksum scrubber, "
                "which needs checksums to verify; add --verify-checksums on");
    config.scrub_interval_seconds = cli.get_double("scrub-interval", 0.0);
    MRI_REQUIRE(config.scrub_interval_seconds > 0.0,
                "--scrub-interval must be positive seconds, got "
                    << config.scrub_interval_seconds);
  }
  return config;
}

// Applies --kernel-backend to the process-wide kernel default (both run
// modes): every GEMM/TRSM in the run dispatches through the selected
// backend. Unavailable backends get a friendly error instead of a silent
// fallback.
void apply_kernel_backend_flag(const mri::CliOptions& cli) {
  using namespace mri;
  if (!cli.has("kernel-backend")) return;
  const std::string name = cli.get_string("kernel-backend", "");
  kernels::Backend backend;
  MRI_REQUIRE(kernels::parse_backend(name, &backend),
              "unknown --kernel-backend '"
                  << name << "'; use naive (ijk baseline), tiled "
                  "(cache-blocked), simd (AVX2+FMA) or threaded");
  MRI_REQUIRE(kernels::backend_available(backend),
              "--kernel-backend " << name
                                  << " needs AVX2+FMA, which this CPU does "
                                     "not report; use tiled (cache-blocked "
                                     "scalar, auto-vectorized) instead");
  kernels::set_default_backend(backend);
}

// Builds the multiply-strategy selection from --multiply-strategy and
// --replication (both run modes). Flag combinations are validated here with
// actionable errors; the engine-compatibility checks live at the call sites
// (serve never runs ScaLAPACK, main refuses the combination explicitly).
mri::core::MultiplyStrategyOptions build_multiply_options(
    const mri::CliOptions& cli) {
  using namespace mri;
  core::MultiplyStrategyOptions opts;
  const std::string name = cli.get_string("multiply-strategy", "wrap");
  MRI_REQUIRE(core::parse_multiply_strategy(name, &opts.strategy),
              "unknown --multiply-strategy '"
                  << name << "'; use wrap (the paper's §6.2 block wrap, one "
                  "job) or multiround (replication-parameterized multi-round "
                  "multiply, ceil(m0/r) chained jobs)");
  if (cli.has("replication")) {
    MRI_REQUIRE(opts.strategy == core::MultiplyStrategyKind::kMultiRound,
                "--replication r sets how many k-segments a multiround "
                "reduce task accumulates per round; add --multiply-strategy "
                "multiround or drop --replication");
    opts.replication = static_cast<int>(cli.get_int("replication", 1));
    MRI_REQUIRE(opts.replication >= 1,
                "--replication must be >= 1, got "
                    << opts.replication << " (r = segments per task per "
                    "round; r >= m0 degenerates to a single round)");
  }
  return opts;
}

// Builds the chaos engine from the --chaos-*/--kill-node flags; null when
// none were given. Call Dfs::bind_chaos() on the result before running.
std::unique_ptr<mri::ChaosEngine> build_chaos_engine(
    const mri::CliOptions& cli, int nodes) {
  using namespace mri;
  if (!chaos_requested(cli)) return nullptr;
  MRI_REQUIRE(cli.has("chaos-seed") || !cli.has("chaos-mtbf"),
              "--chaos-mtbf samples a random fault schedule and needs "
              "--chaos-seed N to make it reproducible; add --chaos-seed");

  ChaosOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed", 0));
  opts.mtbf_seconds = cli.get_double("chaos-mtbf", 0.0);
  opts.horizon_seconds = cli.get_double("chaos-horizon", 86400.0);
  MRI_REQUIRE(opts.horizon_seconds > 0.0,
              "--chaos-horizon must be positive, got "
                  << opts.horizon_seconds);
  opts.bitrot_rate = cli.get_double("bitrot-rate", 0.0);
  auto engine = std::make_unique<ChaosEngine>(opts);
  if (cli.has("chaos-mtbf")) {
    MRI_REQUIRE(opts.mtbf_seconds > 0.0,
                "--chaos-mtbf must be positive seconds, got "
                    << opts.mtbf_seconds);
    engine->sample_faults(nodes);
  }
  if (cli.has("bitrot-rate")) {
    MRI_REQUIRE(cli.has("chaos-seed"),
                "--bitrot-rate samples a random corruption schedule and "
                "needs --chaos-seed N to make it reproducible; add "
                "--chaos-seed");
    MRI_REQUIRE(opts.bitrot_rate > 0.0,
                "--bitrot-rate must be positive (expected corruptions per "
                "node per simulated second), got " << opts.bitrot_rate);
    engine->sample_bitrot(nodes);
  }

  const std::string spec = cli.get_string("kill-node", "");
  std::istringstream tokens(spec);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) continue;
    const std::size_t at_pos = token.find('@');
    int node = -1;
    double at = -1.0;
    try {
      node = std::stoi(token.substr(0, at_pos));
      if (at_pos != std::string::npos) at = std::stod(token.substr(at_pos + 1));
    } catch (const std::exception&) {
      MRI_REQUIRE(false, "cannot parse --kill-node entry '"
                             << token << "'; expected id@seconds (3@120) or "
                                "a bare node id with --chaos-seed");
    }
    MRI_REQUIRE(node != 0,
                "--kill-node 0 would take down the master (jobtracker + "
                "namenode) and abort the run rather than stretch it; pick a "
                "worker id in 1.." << nodes - 1);
    MRI_REQUIRE(node > 0 && node < nodes,
                "--kill-node " << node << " is outside the cluster; --nodes "
                               << nodes << " has worker ids 1.." << nodes - 1);
    if (at_pos == std::string::npos) {
      MRI_REQUIRE(cli.has("chaos-seed"),
                  "--kill-node " << node
                                 << " has no kill time; give one explicitly "
                                    "(--kill-node " << node
                                 << "@3600) or add --chaos-seed N to sample "
                                    "a deterministic time");
      at = engine->sample_kill_time(node);
    }
    MRI_REQUIRE(at >= 0.0, "--kill-node " << node << "@" << at
                                          << ": kill time must be >= 0");
    ChaosEvent event;
    event.kind = ChaosEventKind::kKillNode;
    event.at = at;
    event.node = node;
    engine->add_event(event);
  }

  const std::string corrupt_spec = cli.get_string("corrupt-block", "");
  std::istringstream corrupt_tokens(corrupt_spec);
  while (std::getline(corrupt_tokens, token, ',')) {
    if (token.empty()) continue;
    const std::size_t at_pos = token.find('@');
    int node = -1;
    double at = -1.0;
    try {
      node = std::stoi(token.substr(0, at_pos));
      if (at_pos != std::string::npos) at = std::stod(token.substr(at_pos + 1));
    } catch (const std::exception&) {
      MRI_REQUIRE(false, "cannot parse --corrupt-block entry '"
                             << token << "'; expected id@seconds (3@120) or "
                                "a bare node id with --chaos-seed");
    }
    MRI_REQUIRE(node >= 0 && node < nodes,
                "--corrupt-block " << node << " is outside the cluster; "
                                      "--nodes " << nodes
                                   << " has node ids 0.." << nodes - 1);
    if (at_pos == std::string::npos) {
      MRI_REQUIRE(cli.has("chaos-seed"),
                  "--corrupt-block "
                      << node
                      << " has no corruption time; give one explicitly "
                         "(--corrupt-block " << node
                      << "@3600) or add --chaos-seed N to sample a "
                         "deterministic time");
      at = engine->sample_kill_time(node);
    }
    MRI_REQUIRE(at >= 0.0, "--corrupt-block " << node << "@" << at
                                              << ": time must be >= 0");
    ChaosEvent event;
    event.kind = ChaosEventKind::kCorruptBlock;
    event.at = at;
    event.node = node;
    event.salt = 0;  // explicit events prefer a primary copy
    engine->add_event(event);
  }
  return engine;
}

// Replays a request-trace file through the multi-tenant inversion service
// and prints the per-tenant SLO report.
int run_serve(const mri::CliOptions& cli) {
  using namespace mri;
  const std::string trace_path = cli.get_string("serve", "");
  MRI_REQUIRE(!trace_path.empty(),
              "--serve needs a request-trace file: --serve requests.trace "
              "(see examples/sample_requests.trace)");
  std::ifstream in(trace_path);
  MRI_REQUIRE(in.good(), "cannot open request trace: " << trace_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const service::RequestTrace trace =
      service::parse_request_trace(buffer.str());

  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, build_dfs_config(cli, nodes), &metrics);
  attach_topology(cli, &cluster, &fs);
  ThreadPool pool(4);
  std::unique_ptr<ChaosEngine> chaos = build_chaos_engine(cli, nodes);
  if (chaos) {
    fs.bind_chaos(chaos.get(), cluster.cost_model().network_bandwidth,
                  &cluster.cost_model());
  }

  service::ServiceOptions options;
  options.shares = trace.shares;
  options.max_concurrent = static_cast<int>(cli.get_int("max-concurrent", 2));
  options.admission.max_queue_depth =
      static_cast<int>(cli.get_int("queue-depth", 8));
  options.admission.per_tenant_queue_limit =
      static_cast<int>(cli.get_int("tenant-queue-limit", 0));
  options.inversion.nb = cli.get_int("nb", 0);
  if (options.inversion.nb <= 0) options.inversion.nb = 256;
  if (cli.get_string("engine", "") == "spin" || cli.get_bool("spark", false)) {
    options.inversion.engine = core::EngineKind::kSpin;
  }
  options.inversion.cache_capacity_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 256)) << 20;
  options.admission.memory_budget_bytes_per_tenant =
      static_cast<std::uint64_t>(cli.get_int("memory-budget-mb", 0)) << 20;
  MRI_REQUIRE(!cli.has("memory-budget-mb") ||
                  options.inversion.spin(),
              "--memory-budget-mb bounds tenants' in-memory intermediates, "
              "which only the spin engine keeps; add --engine spin or drop "
              "the budget");
  options.inversion.overlap_final_stage = cli.get_bool("overlap", false);
  options.inversion.multiply = build_multiply_options(cli);
  options.inversion.work_dir = "/svc";

  std::printf("serving %zu requests from %zu tenants (%s) on %d nodes: "
              "%d execution slots, queue depth %d\n\n",
              trace.requests.size(), trace.shares.size(), trace_path.c_str(),
              nodes, options.max_concurrent,
              options.admission.max_queue_depth);

  service::InversionService svc(&cluster, &fs, &pool, options, nullptr,
                                &metrics, chaos.get());
  const kernels::KernelCounters kernel_before = kernels::counters_snapshot();
  service::ServiceResult result = svc.run(trace.requests);
  const kernels::KernelCounters kernel_delta =
      kernels::counters_snapshot() - kernel_before;
  result.report.kernel.backend =
      kernels::backend_name(kernels::default_backend());
  result.report.kernel.multiply_strategy =
      core::multiply_strategy_name(options.inversion.multiply.strategy);
  result.report.kernel.replication = options.inversion.multiply.replication;
  result.report.kernel.gemm_calls = kernel_delta.gemm_calls;
  result.report.kernel.trsm_calls = kernel_delta.trsm_calls;
  result.report.kernel.kernel_flops = kernel_delta.flops;
  result.report.kernel.kernel_seconds = kernel_delta.seconds;
  result.report.kernel.achieved_gflops = kernel_delta.gflops();

  std::printf("%-12s %6s %8s %8s %12s %10s %10s %10s %6s\n", "tenant",
              "weight", "admitted", "rejected", "slot-sec", "p50 (s)",
              "p95 (s)", "p99 (s)", "miss");
  for (const TenantReport& t : result.report.tenants) {
    std::printf("%-12s %6d %8d %8d %12.3f %10.3f %10.3f %10.3f %6d\n",
                t.tenant.c_str(), t.weight, t.admitted, t.rejected,
                t.slot_seconds, t.latency_p50, t.latency_p95, t.latency_p99,
                t.deadline_misses);
  }
  std::printf("\n%d submitted, %d admitted, %d rejected; makespan %s; "
              "fairness index %.4f\n",
              result.submitted, result.admitted, result.rejected,
              format_duration(result.makespan).c_str(),
              result.report.fairness_index);
  if (chaos) {
    const RecoveryReport& rec = result.report.recovery;
    std::printf("chaos: %d node(s) killed, %d task(s) recomputed, %s "
                "re-replicated, %d retried, %d unrecoverable\n",
                rec.nodes_killed, rec.tasks_recomputed,
                format_bytes(rec.re_replicated_bytes).c_str(),
                rec.request_retries, rec.requests_unrecoverable);
  }

  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string report_out = cli.get_string("report-out", "");
  if (!trace_out.empty()) {
    save_json(trace_out, chrome_trace_json(result.report));
    std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                trace_out.c_str());
  }
  if (!report_out.empty()) {
    save_json(report_out, run_report_json(result.report));
    std::printf("run report written to %s\n", report_out.c_str());
  }
  return result.admitted > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const std::string engine = cli.get_string("engine", "auto");
  const std::string output = cli.get_string("output", "");
  apply_kernel_backend_flag(cli);

  if (cli.has("serve")) {
    MRI_REQUIRE(!cli.has("solve"),
                "--serve takes its workload from the trace file and runs "
                "inversions only; drop --solve");
    // Single-inversion flags make no sense against a request trace; reject
    // them with a pointer at the right alternative instead of ignoring them.
    MRI_REQUIRE(!cli.has("input") && !cli.has("generate"),
                "--serve takes its workload from the trace file; drop "
                "--input/--generate or put the matrix spec on a 'request' "
                "line of the trace");
    MRI_REQUIRE(!cli.has("output"),
                "--serve runs many inversions and writes no single inverse; "
                "drop --output (use --report-out for the per-tenant report)");
    MRI_REQUIRE(!cli.has("engine") || engine == "mapreduce" ||
                    engine == "spin",
                "--serve always drives the MapReduce pipeline (engine '"
                    << engine << "' cannot share the service's slot pool); "
                    "drop --engine or pass --engine mapreduce (or spin for "
                    "memory-tier intermediates)");
    return run_serve(cli);
  }
  MRI_REQUIRE(!(cli.has("overlap") && engine == "scalapack"),
              "--overlap schedules the final stage on the MapReduce DAG "
              "executor, which --engine scalapack never runs; drop --overlap "
              "or use --engine mapreduce (or auto)");
  MRI_REQUIRE(!(cli.has("spark") && engine == "scalapack"),
              "--spark keeps MapReduce intermediates in memory, which "
              "--engine scalapack never writes; drop --spark or use "
              "--engine spin");
  MRI_REQUIRE(!(cli.has("spark") && engine == "spin"),
              "--spark is the deprecated spelling of --engine spin; drop "
              "--spark (you already selected the spin engine)");
  MRI_REQUIRE(!(cli.has("cache-mb") && engine == "scalapack"),
              "--cache-mb sizes the spin engine's per-node block cache, "
              "which --engine scalapack never uses; drop --cache-mb or use "
              "--engine spin");
  MRI_REQUIRE(!cli.has("cache-mb") || engine == "spin" ||
                  cli.get_bool("spark", false),
              "--cache-mb sizes the spin engine's per-node block cache; add "
              "--engine spin (Hadoop-style runs keep intermediates on "
              "disk, not in a cache)");
  MRI_REQUIRE(!cli.has("memory-budget-mb"),
              "--memory-budget-mb is a --serve admission bound (per-tenant "
              "in-memory footprint); single inversions have no tenants — "
              "drop it or run --serve");
  MRI_REQUIRE(!((cli.has("corrupt-block") || cli.has("bitrot-rate") ||
                 cli.has("scrub-interval") || cli.has("verify-checksums")) &&
                engine == "scalapack"),
              "--corrupt-block/--bitrot-rate/--verify-checksums/"
              "--scrub-interval exercise DFS block integrity, and --engine "
              "scalapack never touches the DFS (it runs on MPI ranks); drop "
              "the integrity flags or use --engine mapreduce (or auto)");
  MRI_REQUIRE(!(chaos_requested(cli) && engine == "scalapack"),
              "--kill-node/--chaos-* simulate node failures, and ScaLAPACK/"
              "MPI cannot survive one — a lost rank aborts the whole run "
              "(the paper's §7.4 point); drop the chaos flags or use "
              "--engine mapreduce");
  MRI_REQUIRE(!(cli.get_string("topology", "flat") != "flat" &&
                engine == "scalapack"),
              "--topology racked models DFS and shuffle flows, which "
              "--engine scalapack never produces; drop --topology or use "
              "--engine mapreduce (or auto)");
  MRI_REQUIRE(!((cli.get_string("storage-policy", "replicate") != "replicate"
                 || cli.has("ec")) &&
                engine == "scalapack"),
              "--storage-policy ec stripes DFS blocks, which --engine "
              "scalapack never writes (it runs on MPI ranks, not the DFS); "
              "drop the EC flags or use --engine mapreduce (or auto)");
  MRI_REQUIRE(!((cli.has("multiply-strategy") || cli.has("replication")) &&
                engine == "scalapack"),
              "--multiply-strategy/--replication schedule MapReduce multiply "
              "jobs, which --engine scalapack never runs; drop the multiply "
              "flags or use --engine mapreduce (or auto)");
  MRI_REQUIRE(!(cli.has("solve") && engine == "scalapack"),
              "--solve runs X = A^-1*B as MapReduce multiply jobs after the "
              "inversion; drop --solve or use --engine mapreduce (or auto)");

  Matrix a;
  if (cli.has("generate")) {
    a = random_matrix(cli.get_int("generate", 256), /*seed=*/1);
    std::printf("generated a random %lld x %lld matrix\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()));
  } else if (cli.has("input")) {
    a = load_text_file(cli.get_string("input", ""));
    std::printf("loaded %lld x %lld matrix from %s\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()),
                cli.get_string("input", "").c_str());
  } else {
    std::fprintf(stderr,
                 "usage: mrinvert_cli (--input A.txt | --generate N) "
                 "[--output Ainv.txt] [--nodes N] [--nb N]\n"
                 "       [--engine auto|mapreduce|spin|scalapack] "
                 "[--cache-mb N] [--overlap]\n"
                 "       [--topology flat|racked] [--racks N] [--oversub X] "
                 "[--rack-aware 0|1]\n"
                 "       [--storage-policy replicate|ec] [--ec k,m] "
                 "[--hot-cache-mb N]\n"
                 "       [--kernel-backend naive|tiled|simd|threaded] "
                 "[--solve B.txt]\n"
                 "       [--multiply-strategy wrap|multiround] "
                 "[--replication r]\n"
                 "       [--kill-node id@t[,id@t...]] [--chaos-seed N] "
                 "[--chaos-mtbf S]\n"
                 "       [--corrupt-block id@t[,...]] [--bitrot-rate R] "
                 "[--verify-checksums on|off]\n"
                 "       [--scrub-interval S]\n"
                 "       mrinvert_cli --serve requests.trace "
                 "[--max-concurrent N] [--queue-depth N]\n");
    return 2;
  }
  MRI_REQUIRE(a.square(), "input matrix must be square");

  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, build_dfs_config(cli, nodes), &metrics);
  attach_topology(cli, &cluster, &fs);
  ThreadPool pool(4);
  std::unique_ptr<ChaosEngine> chaos = build_chaos_engine(cli, nodes);
  if (chaos) {
    fs.bind_chaos(chaos.get(), cluster.cost_model().network_bandwidth,
                  &cluster.cost_model());
  }

  core::InversionOptions options;
  options.nb = cli.get_int("nb", std::max<Index>(32, a.rows() / 8));
  if (cli.get_bool("spark", false)) {
    std::printf("note: --spark is deprecated; use --engine spin (same "
                "in-memory engine, now with a block cache and lineage "
                "recovery)\n");
    options.engine = core::EngineKind::kSpin;
  }
  options.cache_capacity_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 256)) << 20;
  options.overlap_final_stage = cli.get_bool("overlap", false);
  options.multiply = build_multiply_options(cli);
  const bool solving = cli.has("solve");

  std::string effective_engine = engine;
  if (engine == "spin") {
    // The spin engine rides the MapReduce pipeline; from here down it is
    // the MapReduce path with the in-memory engine selected.
    options.engine = core::EngineKind::kSpin;
    effective_engine = "mapreduce";
  }
  if (chaos && engine == "auto") {
    // The auto-picker compares fault-free predictions; chaos only makes
    // sense on the engine that can survive it.
    std::printf("note: chaos flags force the MapReduce engine (auto's "
                "ScaLAPACK candidate cannot survive node loss)\n");
    effective_engine = "mapreduce";
  }
  if (solving && effective_engine != "mapreduce") {
    std::printf("note: --solve runs its multiply jobs on the MapReduce "
                "pipeline; forcing the MapReduce engine\n");
    effective_engine = "mapreduce";
  }

  Matrix inverse;  // --solve: holds X instead of A^-1
  Matrix rhs;      // --solve: the right-hand side B
  SimReport report;
  std::vector<mr::JobResult> jobs;
  std::vector<MasterSpan> master_spans;
  engine::EngineStats engine_stats;
  core::MultiplyPlan multiply_plan;
  bool engine_active = false;
  const kernels::KernelCounters kernel_before = kernels::counters_snapshot();
  if (effective_engine == "mapreduce" && solving) {
    rhs = load_text_file(cli.get_string("solve", ""));
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                     chaos.get());
    auto r = inverter.solve(a, rhs, options);
    inverse = std::move(r.x);
    report = r.report;
    jobs = std::move(r.jobs);
    master_spans = std::move(r.master_spans);
    multiply_plan = r.multiply_plan;
    std::printf("engine: %s (%d jobs)\n",
                options.spin() ? "spin" : "mapreduce", report.jobs);
    std::printf("multiply strategy: %s (%d round(s) of %d segment(s), "
                "replication %d, peak task footprint %s)\n",
                core::multiply_strategy_name(options.multiply.strategy),
                multiply_plan.rounds, multiply_plan.segments,
                multiply_plan.replication,
                format_bytes(multiply_plan.peak_task_bytes).c_str());
  } else if (effective_engine == "mapreduce") {
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                     chaos.get());
    auto r = inverter.invert(a, options);
    inverse = std::move(r.inverse);
    report = r.report;
    jobs = std::move(r.jobs);
    master_spans = std::move(r.master_spans);
    engine_active = r.engine_active;
    engine_stats = std::move(r.engine_stats);
    std::printf("engine: %s (%d jobs)\n",
                options.spin() ? "spin" : "mapreduce", report.jobs);
    if (engine_active) {
      std::printf("spin engine: %llu cache hit(s), %llu eviction(s) (%s "
                  "spilled), %d partition(s) recomputed in %d wave(s)\n",
                  static_cast<unsigned long long>(engine_stats.cache.hits),
                  static_cast<unsigned long long>(
                      engine_stats.cache.evictions),
                  format_bytes(engine_stats.cache.spilled_bytes).c_str(),
                  engine_stats.partitions_recomputed,
                  engine_stats.lineage_waves);
    }
  } else if (engine == "scalapack") {
    auto r = scalapack::invert(a, cluster);
    inverse = std::move(r.inverse);
    report = r.report;
    std::printf("engine: scalapack\n");
  } else {
    MRI_REQUIRE(engine == "auto", "unknown engine '" << engine << "'");
    core::AdaptiveInverter inverter(&cluster, &fs, &pool, &metrics);
    auto r = inverter.invert(a, options);
    inverse = std::move(r.inverse);
    report = r.report;
    jobs = std::move(r.jobs);
    master_spans = std::move(r.master_spans);
    std::printf("engine: %s (auto; predicted mapreduce %.3g s vs scalapack "
                "%.3g s)\n",
                core::engine_name(r.engine),
                r.prediction.mapreduce_seconds,
                r.prediction.scalapack_seconds);
  }

  const kernels::KernelCounters kernel_delta =
      kernels::counters_snapshot() - kernel_before;
  if (effective_engine == "mapreduce") {
    // Wall-clock kernel identity: printed (and kept in the in-memory
    // report) for CostModel calibration, never in the JSON export.
    std::printf("kernel: %s backend, %.3g GFLOP/s achieved over %llu GEMM + "
                "%llu TRSM call(s) (CostModel assumes %.3g FLOP/s)\n",
                kernels::backend_name(kernels::default_backend()),
                kernel_delta.gflops(),
                static_cast<unsigned long long>(kernel_delta.gemm_calls),
                static_cast<unsigned long long>(kernel_delta.trsm_calls),
                cluster.cost_model().flops_per_second);
  }

  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string report_out = cli.get_string("report-out", "");
  if (!trace_out.empty() || !report_out.empty()) {
    if (jobs.empty()) {
      std::fprintf(stderr, "note: no task traces (engine did not run "
                           "MapReduce jobs); skipping trace/report export\n");
    } else {
      RunReport run_report =
          mr::build_run_report(jobs, cluster, &metrics, master_spans,
                               chaos.get(),
                               engine_active ? &engine_stats : nullptr, &fs);
      run_report.kernel.backend =
          kernels::backend_name(kernels::default_backend());
      run_report.kernel.multiply_strategy =
          core::multiply_strategy_name(options.multiply.strategy);
      run_report.kernel.replication = multiply_plan.replication;
      run_report.kernel.multiply_rounds = multiply_plan.rounds;
      run_report.kernel.gemm_calls = kernel_delta.gemm_calls;
      run_report.kernel.trsm_calls = kernel_delta.trsm_calls;
      run_report.kernel.kernel_flops = kernel_delta.flops;
      run_report.kernel.kernel_seconds = kernel_delta.seconds;
      run_report.kernel.achieved_gflops = kernel_delta.gflops();
      if (!trace_out.empty()) {
        save_json(trace_out, chrome_trace_json(run_report));
        std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                    trace_out.c_str());
      }
      if (!report_out.empty()) {
        save_json(report_out, run_report_json(run_report));
        std::printf("run report written to %s\n", report_out.c_str());
      }
    }
  }

  const double residual = solving ? max_abs_diff(matmul(a, inverse), rhs)
                                  : inversion_residual(a, inverse);
  std::printf("residual %s : %.3g\n",
              solving ? "max|A*X - B|      " : "max|I - A*Ainv|", residual);
  std::printf("simulated time           : %s on %d nodes\n",
              format_duration(report.sim_seconds).c_str(), nodes);
  std::printf("data moved               : %s read, %s written\n",
              format_bytes(report.io.bytes_read).c_str(),
              format_bytes(report.io.bytes_written).c_str());
  if (chaos) {
    const RecoveryStats rec = chaos->stats();
    int recomputed = 0;
    for (const mr::JobResult& job : jobs) recomputed += job.tasks_recomputed;
    std::printf("chaos recovery           : %d node(s) killed, %d task(s) "
                "recomputed, %s re-replicated, %d block(s) lost\n",
                rec.nodes_killed, recomputed,
                format_bytes(rec.re_replicated_bytes).c_str(),
                rec.blocks_lost);
    if (rec.ec_cells_reconstructed > 0) {
      std::printf("ec reconstruction        : %d cell(s) (%s) decoded back "
                  "from surviving stripe cells\n",
                  rec.ec_cells_reconstructed,
                  format_bytes(rec.ec_reconstructed_bytes).c_str());
    }
    if (rec.partitions_recomputed > 0) {
      std::printf("lineage recovery         : %d partition(s) (%s) rebuilt "
                  "in %d wave(s), %.3g s simulated recompute\n",
                  rec.partitions_recomputed,
                  format_bytes(rec.lineage_recomputed_bytes).c_str(),
                  rec.lineage_waves, rec.lineage_recompute_seconds);
    }
    const dfs::IntegrityStats integrity = fs.integrity_stats();
    if (integrity.corruptions_injected > 0 || integrity.scrub_passes > 0) {
      std::printf("integrity                : %lld corruption(s) injected, "
                  "%lld detected, %lld repaired (%lld copy / %lld ec / %lld "
                  "lineage)\n",
                  static_cast<long long>(integrity.corruptions_injected),
                  static_cast<long long>(integrity.corruptions_detected),
                  static_cast<long long>(integrity.cells_repaired_copy +
                                         integrity.cells_repaired_ec +
                                         integrity.cells_repaired_lineage),
                  static_cast<long long>(integrity.cells_repaired_copy),
                  static_cast<long long>(integrity.cells_repaired_ec),
                  static_cast<long long>(integrity.cells_repaired_lineage));
    }
    if (integrity.scrub_passes > 0) {
      std::printf("scrubber                 : %lld pass(es), %s scanned, "
                  "%.3g s simulated scrub time\n",
                  static_cast<long long>(integrity.scrub_passes),
                  format_bytes(integrity.scrub_bytes_scanned).c_str(),
                  integrity.scrub_seconds);
    }
  }

  if (!output.empty()) {
    save_text_file(output, inverse);
    std::printf("%s written to %s\n", solving ? "solution X" : "inverse",
                output.c_str());
  }
  return residual < 1e-5 ? 0 : 1;
}
