// mrinvert: a command-line matrix inverter backed by the MapReduce pipeline.
//
//   ./mrinvert_cli --input A.txt --output Ainv.txt [--nodes 8] [--nb 64]
//                  [--engine auto|mapreduce|scalapack] [--spark]
//   ./mrinvert_cli --generate 256 --output Ainv.txt        # random input
//
// Reads a whitespace-separated text matrix from the local filesystem (the
// paper's a.txt format), inverts it on a simulated cluster, writes the
// inverse back as text, and prints the §7.2 residual and the run report.
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/adaptive.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "matrix/text_format.hpp"

namespace {

mri::Matrix load_text_file(const std::string& path) {
  std::ifstream in(path);
  MRI_REQUIRE(in.good(), "cannot open input file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return mri::matrix_from_text(buffer.str());
}

void save_text_file(const std::string& path, const mri::Matrix& m) {
  std::ofstream out(path);
  MRI_REQUIRE(out.good(), "cannot open output file: " << path);
  out << mri::matrix_to_text(m);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const std::string engine = cli.get_string("engine", "auto");
  const std::string output = cli.get_string("output", "");

  Matrix a;
  if (cli.has("generate")) {
    a = random_matrix(cli.get_int("generate", 256), /*seed=*/1);
    std::printf("generated a random %lld x %lld matrix\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()));
  } else if (cli.has("input")) {
    a = load_text_file(cli.get_string("input", ""));
    std::printf("loaded %lld x %lld matrix from %s\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()),
                cli.get_string("input", "").c_str());
  } else {
    std::fprintf(stderr,
                 "usage: mrinvert_cli (--input A.txt | --generate N) "
                 "[--output Ainv.txt] [--nodes N] [--nb N]\n"
                 "       [--engine auto|mapreduce|scalapack] [--spark]\n");
    return 2;
  }
  MRI_REQUIRE(a.square(), "input matrix must be square");

  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);

  core::InversionOptions options;
  options.nb = cli.get_int("nb", std::max<Index>(32, a.rows() / 8));
  options.in_memory_intermediates = cli.get_bool("spark", false);

  Matrix inverse;
  SimReport report;
  if (engine == "mapreduce") {
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    auto r = inverter.invert(a, options);
    inverse = std::move(r.inverse);
    report = r.report;
    std::printf("engine: mapreduce (%d jobs)\n", report.jobs);
  } else if (engine == "scalapack") {
    auto r = scalapack::invert(a, cluster);
    inverse = std::move(r.inverse);
    report = r.report;
    std::printf("engine: scalapack\n");
  } else {
    MRI_REQUIRE(engine == "auto", "unknown engine '" << engine << "'");
    core::AdaptiveInverter inverter(&cluster, &fs, &pool, &metrics);
    auto r = inverter.invert(a, options);
    inverse = std::move(r.inverse);
    report = r.report;
    std::printf("engine: %s (auto; predicted mapreduce %.3g s vs scalapack "
                "%.3g s)\n",
                core::engine_name(r.engine),
                r.prediction.mapreduce_seconds,
                r.prediction.scalapack_seconds);
  }

  const double residual = inversion_residual(a, inverse);
  std::printf("residual max|I - A*Ainv| : %.3g\n", residual);
  std::printf("simulated time           : %s on %d nodes\n",
              format_duration(report.sim_seconds).c_str(), nodes);
  std::printf("data moved               : %s read, %s written\n",
              format_bytes(report.io.bytes_read).c_str(),
              format_bytes(report.io.bytes_written).c_str());

  if (!output.empty()) {
    save_text_file(output, inverse);
    std::printf("inverse written to %s\n", output.c_str());
  }
  return residual < 1e-5 ? 0 : 1;
}
