// mrinvert: a command-line matrix inverter backed by the MapReduce pipeline.
//
//   ./mrinvert_cli --input A.txt --output Ainv.txt [--nodes 8] [--nb 64]
//                  [--engine auto|mapreduce|scalapack] [--spark] [--overlap]
//                  [--trace-out trace.json] [--report-out report.json]
//   ./mrinvert_cli --generate 256 --output Ainv.txt        # random input
//
// Reads a whitespace-separated text matrix from the local filesystem (the
// paper's a.txt format), inverts it on a simulated cluster, writes the
// inverse back as text, and prints the §7.2 residual and the run report.
// --trace-out writes a Chrome trace_event timeline (chrome://tracing);
// --report-out writes the machine-readable run report (schema in README.md).
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/adaptive.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "matrix/text_format.hpp"

namespace {

mri::Matrix load_text_file(const std::string& path) {
  std::ifstream in(path);
  MRI_REQUIRE(in.good(), "cannot open input file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return mri::matrix_from_text(buffer.str());
}

void save_text_file(const std::string& path, const mri::Matrix& m) {
  std::ofstream out(path);
  MRI_REQUIRE(out.good(), "cannot open output file: " << path);
  out << mri::matrix_to_text(m);
}

void save_json(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  MRI_REQUIRE(out.good(), "cannot open output file: " << path);
  out << json << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const std::string engine = cli.get_string("engine", "auto");
  const std::string output = cli.get_string("output", "");

  Matrix a;
  if (cli.has("generate")) {
    a = random_matrix(cli.get_int("generate", 256), /*seed=*/1);
    std::printf("generated a random %lld x %lld matrix\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()));
  } else if (cli.has("input")) {
    a = load_text_file(cli.get_string("input", ""));
    std::printf("loaded %lld x %lld matrix from %s\n",
                static_cast<long long>(a.rows()),
                static_cast<long long>(a.cols()),
                cli.get_string("input", "").c_str());
  } else {
    std::fprintf(stderr,
                 "usage: mrinvert_cli (--input A.txt | --generate N) "
                 "[--output Ainv.txt] [--nodes N] [--nb N]\n"
                 "       [--engine auto|mapreduce|scalapack] [--spark] "
                 "[--overlap]\n");
    return 2;
  }
  MRI_REQUIRE(a.square(), "input matrix must be square");

  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);

  core::InversionOptions options;
  options.nb = cli.get_int("nb", std::max<Index>(32, a.rows() / 8));
  options.in_memory_intermediates = cli.get_bool("spark", false);
  options.overlap_final_stage = cli.get_bool("overlap", false);

  Matrix inverse;
  SimReport report;
  std::vector<mr::JobResult> jobs;
  std::vector<MasterSpan> master_spans;
  if (engine == "mapreduce") {
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    auto r = inverter.invert(a, options);
    inverse = std::move(r.inverse);
    report = r.report;
    jobs = std::move(r.jobs);
    master_spans = std::move(r.master_spans);
    std::printf("engine: mapreduce (%d jobs)\n", report.jobs);
  } else if (engine == "scalapack") {
    auto r = scalapack::invert(a, cluster);
    inverse = std::move(r.inverse);
    report = r.report;
    std::printf("engine: scalapack\n");
  } else {
    MRI_REQUIRE(engine == "auto", "unknown engine '" << engine << "'");
    core::AdaptiveInverter inverter(&cluster, &fs, &pool, &metrics);
    auto r = inverter.invert(a, options);
    inverse = std::move(r.inverse);
    report = r.report;
    jobs = std::move(r.jobs);
    master_spans = std::move(r.master_spans);
    std::printf("engine: %s (auto; predicted mapreduce %.3g s vs scalapack "
                "%.3g s)\n",
                core::engine_name(r.engine),
                r.prediction.mapreduce_seconds,
                r.prediction.scalapack_seconds);
  }

  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string report_out = cli.get_string("report-out", "");
  if (!trace_out.empty() || !report_out.empty()) {
    if (jobs.empty()) {
      std::fprintf(stderr, "note: no task traces (engine did not run "
                           "MapReduce jobs); skipping trace/report export\n");
    } else {
      const RunReport run_report =
          mr::build_run_report(jobs, cluster, &metrics, master_spans);
      if (!trace_out.empty()) {
        save_json(trace_out, chrome_trace_json(run_report));
        std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                    trace_out.c_str());
      }
      if (!report_out.empty()) {
        save_json(report_out, run_report_json(run_report));
        std::printf("run report written to %s\n", report_out.c_str());
      }
    }
  }

  const double residual = inversion_residual(a, inverse);
  std::printf("residual max|I - A*Ainv| : %.3g\n", residual);
  std::printf("simulated time           : %s on %d nodes\n",
              format_duration(report.sim_seconds).c_str(), nodes);
  std::printf("data moved               : %s read, %s written\n",
              format_bytes(report.io.bytes_read).c_str(),
              format_bytes(report.io.bytes_written).c_str());

  if (!output.empty()) {
    save_text_file(output, inverse);
    std::printf("inverse written to %s\n", output.c_str());
  }
  return residual < 1e-5 ? 0 : 1;
}
