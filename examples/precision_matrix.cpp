// Application example (paper §1, bioinformatics): protein-contact style
// analysis via precision matrices. Correlated observations are generated
// from a known sparse interaction structure; inverting the sample
// covariance (the precision matrix) recovers direct interactions while the
// covariance itself is dominated by indirect, transitive correlations —
// the insight behind protein-structure prediction from sequence variation
// (Marks et al., cited by the paper).
//
//   ./precision_matrix [--sites 48] [--samples 4000] [--nodes 4]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "core/inverter.hpp"
#include "matrix/ops.hpp"

namespace {

using mri::Index;
using mri::Matrix;

struct Interaction {
  Index a, b;
};

/// A sparse "contact map": a chain plus a few long-range contacts.
std::vector<Interaction> make_contacts(Index sites, mri::Xoshiro256& rng) {
  std::vector<Interaction> contacts;
  for (Index i = 0; i + 1 < sites; ++i) contacts.push_back({i, i + 1});
  for (int k = 0; k < static_cast<int>(sites) / 6; ++k) {
    const Index a = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(sites)));
    const Index b = static_cast<Index>(rng.next_below(
        static_cast<std::uint64_t>(sites)));
    if (std::abs(a - b) > 2) contacts.push_back({std::min(a, b), std::max(a, b)});
  }
  return contacts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const Index sites = cli.get_int("sites", 48);
  const Index samples = cli.get_int("samples", 4000);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));

  std::printf("Recovering %lld-site interaction structure from %lld "
              "correlated samples via a MapReduce-inverted covariance\n",
              static_cast<long long>(sites), static_cast<long long>(samples));

  // Ground truth: a sparse precision matrix K (diagonally dominant => SPD).
  Xoshiro256 rng(7);
  const auto contacts = make_contacts(sites, rng);
  Matrix k(sites, sites);
  for (const auto& c : contacts) {
    const double w = rng.uniform(0.3, 0.6);
    k(c.a, c.b) -= w;
    k(c.b, c.a) -= w;
  }
  for (Index i = 0; i < sites; ++i) {
    double off = 0.0;
    for (Index j = 0; j < sites; ++j)
      if (j != i) off += std::abs(k(i, j));
    k(i, i) = off + 1.0;
  }

  // Sample x ~ N(0, K^-1) via Gibbs-free trick: x = L^-T z with K = L L^T
  // is overkill here; instead draw z and smooth through K⁻¹ numerically by
  // solving K x = z (exact covariance K⁻¹ for Gaussian z).
  // Empirical covariance C = (1/m) Σ x xᵀ.
  const Matrix k_inv_true = [&] {
    // direct solve for the sampler (small, serial)
    MetricsRegistry m;
    Cluster c1(1, CostModel::ec2_medium());
    dfs::Dfs f1(1, dfs::DfsConfig{}, &m);
    ThreadPool p1(2);
    core::MapReduceInverter inv(&c1, &f1, &p1, nullptr, &m);
    core::InversionOptions o;
    o.nb = sites;
    return inv.invert(k, o).inverse;
  }();

  Matrix c(sites, sites);
  std::vector<double> z(static_cast<std::size_t>(sites));
  std::vector<double> x(static_cast<std::size_t>(sites));
  for (Index s = 0; s < samples; ++s) {
    // Approximate Gaussian via sum of uniforms; x = K⁻¹ z has covariance
    // K⁻¹·K⁻ᵀ — good enough for ranking direct couplings; to keep the
    // estimator exact we accumulate C = K⁻¹ E[zzᵀ] K⁻ᵀ = σ² K⁻¹K⁻ᵀ and
    // invert it, whose precision shares K's support pattern.
    for (auto& v : z) {
      double sum = 0.0;
      for (int r = 0; r < 12; ++r) sum += rng.next_double();
      v = sum - 6.0;
    }
    for (Index i = 0; i < sites; ++i) {
      double dot = 0.0;
      for (Index j = 0; j < sites; ++j)
        dot += k_inv_true(i, j) * z[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = dot;
    }
    for (Index i = 0; i < sites; ++i)
      for (Index j = 0; j < sites; ++j)
        c(i, j) += x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(j)];
  }
  for (double& v : c.data()) v /= static_cast<double>(samples);
  // Ridge for numerical safety with finite samples.
  for (Index i = 0; i < sites; ++i) c(i, i) += 1e-3;

  // The scalable part: invert the covariance with the MapReduce pipeline.
  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  core::InversionOptions opts;
  opts.nb = std::max<Index>(16, sites / 4);
  const auto result = inverter.invert(c, opts);
  const Matrix& precision = result.inverse;
  std::printf("inversion: %d jobs, residual %.2g\n", result.report.jobs,
              inversion_residual(c, precision));

  // Rank off-diagonal couplings by |precision| and score against the truth.
  struct Edge {
    double weight;
    Index a, b;
  };
  std::vector<Edge> edges;
  for (Index i = 0; i < sites; ++i)
    for (Index j = i + 1; j < sites; ++j)
      edges.push_back({std::abs(precision(i, j)), i, j});
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });

  auto is_contact = [&](Index a, Index b) {
    for (const auto& ct : contacts)
      if ((ct.a == a && ct.b == b) || (ct.a == b && ct.b == a)) return true;
    return false;
  };
  const std::size_t top_k = contacts.size();
  std::size_t hits = 0;
  for (std::size_t e = 0; e < top_k && e < edges.size(); ++e) {
    if (is_contact(edges[e].a, edges[e].b)) ++hits;
  }
  const double precision_at_k =
      static_cast<double>(hits) / static_cast<double>(top_k);
  std::printf("top-%zu precision-matrix edges that are true contacts: %zu "
              "(%.0f%%)\n",
              top_k, hits, 100.0 * precision_at_k);

  // Baseline: ranking by raw covariance is much worse (indirect couplings).
  std::vector<Edge> cov_edges;
  for (Index i = 0; i < sites; ++i)
    for (Index j = i + 1; j < sites; ++j)
      cov_edges.push_back({std::abs(c(i, j)), i, j});
  std::sort(cov_edges.begin(), cov_edges.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });
  std::size_t cov_hits = 0;
  for (std::size_t e = 0; e < top_k && e < cov_edges.size(); ++e) {
    if (is_contact(cov_edges[e].a, cov_edges[e].b)) ++cov_hits;
  }
  std::printf("same score using raw covariance (indirect couplings): %zu "
              "(%.0f%%)\n",
              cov_hits,
              100.0 * static_cast<double>(cov_hits) /
                  static_cast<double>(top_k));

  const bool ok = precision_at_k >= 0.7 && hits > cov_hits;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
