// Application example (paper §1): solve a batch of linear systems A·x = b
// by inverting A once with the MapReduce pipeline and reusing A⁻¹ for many
// right-hand sides — the pattern that amortizes a distributed inversion.
//
//   ./linear_solver [--n 384] [--nodes 4] [--rhs 16]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "core/inverter.hpp"
#include "linalg/solve.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 384);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const Index num_rhs = cli.get_int("rhs", 16);

  std::printf("Solving %lld systems of order %lld via one MapReduce "
              "inversion on %d nodes\n",
              static_cast<long long>(num_rhs), static_cast<long long>(n),
              nodes);

  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);

  // A diagonally dominant system (e.g. a discretized PDE operator).
  const Matrix a = random_diagonally_dominant(n, /*seed=*/7);
  const Matrix b = random_matrix(n, num_rhs, /*seed=*/8, -1.0, 1.0);

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  core::InversionOptions options;
  options.nb = std::max<Index>(32, n / 8);
  const auto result = inverter.invert(a, options);

  // x = A⁻¹ · B for all right-hand sides at once.
  const Matrix x = matmul(result.inverse, b);

  // Verify against direct LU solves and against the defining equation.
  const Matrix direct = solve_matrix(a, b);
  const double vs_direct = max_abs_diff(x, direct);
  const double residual = max_abs_diff(matmul(a, x), b);

  std::printf("simulated inversion time : %.1f s (%d jobs)\n",
              result.report.sim_seconds, result.report.jobs);
  std::printf("max |A·X - B|            : %.3g\n", residual);
  std::printf("max |X - X_direct|       : %.3g\n", vs_direct);
  const bool ok = residual < 1e-6 && vs_direct < 1e-6;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
