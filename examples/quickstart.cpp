// Quickstart: invert a random matrix on a simulated MapReduce cluster.
//
//   ./quickstart [--n 512] [--nodes 8] [--nb 64]
//
// Shows the full public API surface: build a cluster + DFS, run the
// inverter, check the paper's §7.2 residual, and read the simulation report.
#include <cstdio>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "common/units.hpp"
#include "core/inverter.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 512);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const Index nb = cli.get_int("nb", 64);
  Logger::instance().set_level(LogLevel::kInfo);

  std::printf("Inverting a %lld x %lld random matrix on %d simulated EC2 "
              "medium nodes (nb = %lld)\n",
              static_cast<long long>(n), static_cast<long long>(n), nodes,
              static_cast<long long>(nb));

  // 1. A simulated cluster, its distributed filesystem, and a thread pool
  //    that executes the real task computation.
  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);

  // 2. The input matrix (the paper evaluates on uniform random matrices).
  const Matrix a = random_matrix(n, /*seed=*/2014);

  // 3. Invert.
  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  core::InversionOptions options;
  options.nb = nb;
  Stopwatch wall;
  const auto result = inverter.invert(a, options);

  // 4. Verify and report.
  const double residual = inversion_residual(a, result.inverse);
  std::printf("\nmax |I - A*Ainv|    : %.3g  (paper's bar: < 1e-5)\n", residual);
  std::printf("pipeline            : %lld jobs (depth %d: 1 partition + %lld "
              "LU + 1 inversion)\n",
              static_cast<long long>(result.report.jobs), result.plan.depth,
              static_cast<long long>(result.plan.lu_jobs));
  std::printf("simulated time      : %s (master: %s)\n",
              format_duration(result.report.sim_seconds).c_str(),
              format_duration(result.report.master_seconds).c_str());
  std::printf("bytes written       : %s\n",
              format_bytes(result.report.io.bytes_written).c_str());
  std::printf("bytes read          : %s\n",
              format_bytes(result.report.io.bytes_read).c_str());
  std::printf("bytes transferred   : %s\n",
              format_bytes(result.report.io.bytes_transferred).c_str());
  std::printf("flops               : %.3g\n",
              static_cast<double>(result.report.io.flops()));
  std::printf("real wall time      : %.2f s\n", wall.seconds());
  return residual < 1e-5 ? 0 : 1;
}
