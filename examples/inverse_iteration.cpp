// Application example (paper §1): eigenvector refinement by inverse
// iteration,  v ← (A - μI)⁻¹ v / ||(A - μI)⁻¹ v||,  where the shifted
// inverse is computed once with the MapReduce pipeline. The paper motivates
// scalable inversion precisely for this kind of spectral computation.
//
//   ./inverse_iteration [--n 256] [--nodes 4] [--iters 40]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/inverter.hpp"
#include "linalg/qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace {

std::vector<double> matvec(const mri::Matrix& m, const std::vector<double>& v) {
  std::vector<double> out(static_cast<std::size_t>(m.rows()), 0.0);
  for (mri::Index i = 0; i < m.rows(); ++i) {
    double sum = 0.0;
    const double* row = m.row(i).data();
    for (mri::Index j = 0; j < m.cols(); ++j)
      sum += row[j] * v[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = sum;
  }
  return out;
}

double norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 256);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const int iters = static_cast<int>(cli.get_int("iters", 40));
  const double mu = cli.get_double("mu", 1.3);  // approximate eigenvalue

  std::printf("Inverse iteration on a symmetric matrix of order %lld (shift "
              "mu = %.2f) using a MapReduce-inverted operator\n",
              static_cast<long long>(n), mu);

  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);

  // A symmetric matrix with a known, well-separated spectrum (1, 2, ..., n):
  // A = Q·diag(1..n)·Qᵀ with Q from a Householder QR of a random matrix.
  // Inverse iteration with mu = 1.3 converges to the eigenvalue 1.
  const QrResult qr = qr_decompose(random_matrix(n, /*seed=*/11));
  Matrix d(n, n);
  for (Index i = 0; i < n; ++i) d(i, i) = static_cast<double>(i + 1);
  const Matrix a = matmul(matmul(qr.q, d), transpose(qr.q));
  Matrix shifted = a;
  for (Index i = 0; i < n; ++i) shifted(i, i) -= mu;

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  core::InversionOptions options;
  options.nb = std::max<Index>(32, n / 4);
  const auto result = inverter.invert(shifted, options);
  std::printf("inversion: %d jobs, %.1f simulated s\n", result.report.jobs,
              result.report.sim_seconds);

  // Iterate v <- normalize(inv * v).
  std::vector<double> v(static_cast<std::size_t>(n), 1.0);
  for (int k = 0; k < iters; ++k) {
    v = matvec(result.inverse, v);
    const double nv = norm(v);
    for (double& x : v) x /= nv;
  }

  // Rayleigh quotient and eigen-residual.
  const std::vector<double> av = matvec(a, v);
  double lambda = 0.0;
  for (Index i = 0; i < n; ++i)
    lambda += v[static_cast<std::size_t>(i)] * av[static_cast<std::size_t>(i)];
  std::vector<double> r = av;
  for (Index i = 0; i < n; ++i)
    r[static_cast<std::size_t>(i)] -= lambda * v[static_cast<std::size_t>(i)];

  std::printf("converged eigenvalue lambda = %.6f\n", lambda);
  std::printf("eigen-residual ||A v - lambda v|| = %.3g\n", norm(r));
  const bool ok = norm(r) < 1e-6;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
