// Application example (paper §1): computed-tomography style image
// reconstruction. The detector observes T = M·S where M is the projection
// matrix and S the original image; recovering S requires M⁻¹. As detector
// resolution grows, so does M's order — the paper's motivation for scalable
// inversion.
//
// We simulate a small CT setup: a synthetic "phantom" image, a projection
// matrix that mixes neighbouring pixels (blur + attenuation), the measured
// sinogram-like observation, and reconstruction via the MapReduce inverse.
//
//   ./ct_reconstruction [--pixels 20] [--nodes 4]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "core/inverter.hpp"
#include "matrix/ops.hpp"

namespace {

using mri::Index;
using mri::Matrix;

/// A simple phantom: two bright discs on a dark background.
Matrix make_phantom(Index pixels) {
  Matrix img(pixels, pixels);
  auto disc = [&](double cx, double cy, double r, double value) {
    for (Index i = 0; i < pixels; ++i) {
      for (Index j = 0; j < pixels; ++j) {
        const double dx = static_cast<double>(i) - cx;
        const double dy = static_cast<double>(j) - cy;
        if (dx * dx + dy * dy <= r * r) img(i, j) += value;
      }
    }
  };
  const double p = static_cast<double>(pixels);
  disc(p * 0.35, p * 0.35, p * 0.18, 1.0);
  disc(p * 0.65, p * 0.6, p * 0.12, 0.6);
  return img;
}

/// Projection operator on the flattened image: each measurement mixes a
/// pixel with its neighbours (point-spread) plus a depth attenuation term.
/// Diagonally dominant, hence invertible.
Matrix make_projection(Index pixels) {
  const Index n = pixels * pixels;
  Matrix m(n, n);
  auto id = [&](Index i, Index j) { return i * pixels + j; };
  for (Index i = 0; i < pixels; ++i) {
    for (Index j = 0; j < pixels; ++j) {
      const Index row = id(i, j);
      m(row, row) = 4.0 + 0.01 * static_cast<double>(i);  // attenuation
      if (i > 0) m(row, id(i - 1, j)) = 0.8;
      if (i + 1 < pixels) m(row, id(i + 1, j)) = 0.8;
      if (j > 0) m(row, id(i, j - 1)) = 0.8;
      if (j + 1 < pixels) m(row, id(i, j + 1)) = 0.8;
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mri;
  CliOptions cli(argc, argv);
  const Index pixels = cli.get_int("pixels", 20);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const Index n = pixels * pixels;

  std::printf("CT reconstruction: %lld x %lld image -> projection matrix of "
              "order %lld, inverted on %d simulated nodes\n",
              static_cast<long long>(pixels), static_cast<long long>(pixels),
              static_cast<long long>(n), nodes);

  const Matrix phantom = make_phantom(pixels);
  const Matrix projection = make_projection(pixels);

  // The detector sees T = M · S (S = flattened phantom).
  Matrix s(n, 1);
  for (Index i = 0; i < pixels; ++i)
    for (Index j = 0; j < pixels; ++j) s(i * pixels + j, 0) = phantom(i, j);
  const Matrix t = matmul(projection, s);

  // Reconstruct: S = M⁻¹ · T.
  MetricsRegistry metrics;
  Cluster cluster(nodes, CostModel::ec2_medium());
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  core::InversionOptions options;
  options.nb = std::max<Index>(32, n / 8);
  const auto result = inverter.invert(projection, options);
  const Matrix reconstructed_flat = matmul(result.inverse, t);

  double max_err = 0.0;
  for (Index k = 0; k < n; ++k)
    max_err = std::max(max_err, std::abs(reconstructed_flat(k, 0) - s(k, 0)));

  std::printf("inversion: %d jobs, %.1f simulated s\n", result.report.jobs,
              result.report.sim_seconds);
  std::printf("max reconstruction error: %.3g\n", max_err);

  // ASCII rendering of original vs reconstruction.
  const char* shades = " .:-=+*#%@";
  auto render = [&](const char* title, auto&& pixel) {
    std::printf("\n%s\n", title);
    for (Index i = 0; i < pixels; ++i) {
      for (Index j = 0; j < pixels; ++j) {
        const double v = std::min(1.0, std::max(0.0, pixel(i, j)));
        std::putchar(shades[static_cast<int>(v * 9.0 + 0.5)]);
        std::putchar(shades[static_cast<int>(v * 9.0 + 0.5)]);
      }
      std::putchar('\n');
    }
  };
  render("original phantom:", [&](Index i, Index j) { return phantom(i, j); });
  render("reconstruction:", [&](Index i, Index j) {
    return reconstructed_flat(i * pixels + j, 0);
  });

  const bool ok = max_err < 1e-7;
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
