// Table 3: the five evaluation matrices — order, element count, text/binary
// sizes, and the number of MapReduce jobs in the inversion pipeline.
//
// Sizes and job counts are closed-form and printed at the paper's full
// scale; the job counts are additionally validated by actually running the
// pipeline on uniformly scaled-down versions of each matrix (the n/nb ratio,
// and hence the pipeline, is scale-invariant).
#include "harness.hpp"

#include "core/plan.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

// The paper's text files average ~19 bytes per element ("%.15g"-ish plus a
// separator); binary is 8 bytes per element.
constexpr double kTextBytesPerElement = 19.0;

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 128.0);
  print_header("Table 3: matrices used for the experiments", "Table 3");

  TextTable table({"Matrix", "Order", "Elements", "Text", "Binary",
                   "Jobs (model)", "Jobs (paper)", "Jobs (measured)"});

  struct Row {
    PaperMatrix m;
    int paper_jobs;
  };
  const Row rows[] = {{kM1, 9}, {kM2, 17}, {kM3, 17}, {kM4, 33}, {kM5, 9}};

  for (const Row& row : rows) {
    const auto elements = static_cast<std::uint64_t>(row.m.order) *
                          static_cast<std::uint64_t>(row.m.order);
    const core::InversionPlan plan =
        core::InversionPlan::make(row.m.order, kPaperNb, 64);

    // Validate by running the scaled pipeline for real.
    const ScaledSetup setup = scaled_setup(row.m, scale);
    const MrRun run = run_mapreduce(setup, /*nodes=*/4);
    MRI_CHECK_MSG(run.residual < 1e-5, "accuracy check failed");

    table.add_row({row.m.name, cell_int(row.m.order),
                   format_billions(elements),
                   format_gb(static_cast<std::uint64_t>(
                       static_cast<double>(elements) * kTextBytesPerElement)),
                   format_gb(elements * sizeof(double)),
                   cell_int(plan.total_jobs), cell_int(row.paper_jobs),
                   cell_int(run.result.report.jobs)});
  }
  table.print();
  std::printf(
      "\nJob model: 1 partition + (2^d - 1) LU + 1 inversion, d = "
      "ceil(log2(n/nb)), nb = %lld.\nMeasured counts come from running the "
      "pipeline on 1/%.0f-scale matrices (pipeline shape is scale-free).\n",
      static_cast<long long>(kPaperNb), scale);
  return 0;
}
