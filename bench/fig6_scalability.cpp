// Figure 6: strong scalability — running time vs number of nodes for the
// matrices M1, M2, M3, against the ideal T(n) = T(1)/n line.
//
// The paper's observations to reproduce:
//  * near-ideal strong scaling, with a deviation at high node counts caused
//    by the constant MapReduce job-launch time;
//  * the larger the matrix, the closer to ideal (launch overhead amortizes).
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 40.0);
  const auto node_counts =
      cli.get_int_list("nodes", {1, 2, 4, 8, 16, 32, 64});
  print_header("Figure 6: strong scalability of the MapReduce inversion",
               "Figure 6");

  std::printf("matrices scaled 1/%.0f (M1 -> %lld, M2 -> %lld, M3 -> %lld; "
              "nb -> %lld); times quoted at paper scale\n\n",
              scale, static_cast<long long>(kM1.order / scale),
              static_cast<long long>(kM2.order / scale),
              static_cast<long long>(kM3.order / scale),
              static_cast<long long>(kPaperNb / scale));

  const PaperMatrix matrices[] = {kM1, kM2, kM3};
  TextTable table({"Nodes", "M1 (min)", "M2 (min)", "M3 (min)",
                   "ideal M3 (min)", "M3/ideal"});

  std::vector<std::vector<double>> minutes(3);
  for (std::size_t mi = 0; mi < 3; ++mi) {
    const ScaledSetup setup = scaled_setup(matrices[mi], scale);
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
      const bool verify = ni == 0;  // O(n³) residual check once per series
      const MrRun run = run_mapreduce(setup, static_cast<int>(node_counts[ni]),
                                      {}, /*seed=*/mi + 1, nullptr, verify);
      if (verify) MRI_CHECK_MSG(run.residual < 1e-5, "accuracy check failed");
      export_run_artifacts(cli, run);  // --trace-out / --report-out
      minutes[mi].push_back(run.paper_seconds / 60.0);
      std::fprintf(stderr, "  %s @ %lld nodes: %.1f paper-min\n",
                   matrices[mi].name,
                   static_cast<long long>(node_counts[ni]),
                   minutes[mi].back());
    }
  }

  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    const double ideal_m3 =
        minutes[2][0] * static_cast<double>(node_counts[0]) /
        static_cast<double>(node_counts[ni]);
    table.add_row({cell_int(node_counts[ni]), cell(minutes[0][ni], 1),
                   cell(minutes[1][ni], 1), cell(minutes[2][ni], 1),
                   cell(ideal_m3, 1), cell(minutes[2][ni] / ideal_m3, 2)});
  }
  table.print();

  // The paper's two qualitative claims, checked numerically.
  const std::size_t last = node_counts.size() - 1;
  const double speedup_m1 = minutes[0][0] / minutes[0][last];
  const double speedup_m3 = minutes[2][0] / minutes[2][last];
  const double span = static_cast<double>(node_counts[last]) /
                      static_cast<double>(node_counts[0]);
  std::printf("\nspeedup at %lldx more nodes: M1 %.1fx, M3 %.1fx (ideal "
              "%.0fx)\n",
              static_cast<long long>(span), speedup_m1, speedup_m3, span);
  std::printf("larger matrices scale better: %s\n",
              speedup_m3 >= speedup_m1 ? "yes (as in the paper)"
                                       : "NO (unexpected)");
  return 0;
}
