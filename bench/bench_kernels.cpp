// google-benchmark microbenchmarks of the kernel engine and substrates:
// dense GEMM per backend (naive/tiled/simd/threaded), the transposed-B
// variant (§6.3), blocked TRSM, the single-node LU (Algorithm 1),
// triangular inversion (Eq. 4) and the DFS data path.
//
// Run with --benchmark_format=json for machine-readable per-backend
// GFLOP/s: items_processed counts n³ multiply-adds, so items_per_second is
// directly comparable across backends (the kernels-smoke CI job asserts the
// selected non-naive backend reaches >= 3x naive on the 1024² GEMM).
#include <benchmark/benchmark.h>

#include "dfs/dfs.hpp"
#include "linalg/kernels/kernel.hpp"
#include "linalg/lu.hpp"
#include "linalg/triangular.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

void BM_Gemm(benchmark::State& state, kernels::Backend backend) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 1);
  const Matrix b = random_matrix(n, 2);
  MatmulOptions opts;
  opts.backend = backend;
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b, opts));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK_CAPTURE(BM_Gemm, naive, kernels::Backend::kNaive)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gemm, tiled, kernels::Backend::kTiled)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gemm, simd, kernels::Backend::kSimd)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gemm, threaded, kernels::Backend::kThreaded)
    ->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_GemmTransposedB(benchmark::State& state, kernels::Backend backend) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 1);
  const Matrix bt = random_matrix(n, 2);
  MatmulOptions opts;
  opts.backend = backend;
  opts.transposed_b = true;
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, bt, opts));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK_CAPTURE(BM_GemmTransposedB, naive, kernels::Backend::kNaive)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GemmTransposedB, tiled, kernels::Backend::kTiled)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GemmTransposedB, simd, kernels::Backend::kSimd)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_TrsmLowerLeft(benchmark::State& state, kernels::Backend backend) {
  const Index n = state.range(0);
  Matrix l = random_matrix(n, n, 4, -1, 1);
  for (Index i = 0; i < n; ++i) l(i, i) = 2.0 + static_cast<double>(i % 3);
  const Matrix b = random_matrix(n, n, 5, -1, 1);
  kernels::KernelContext ctx;
  ctx.backend = backend;
  for (auto _ : state) {
    Matrix x = b;
    ctx.trsm_lower_left(false, n, n, l.data().data(), n, x.data().data(), n);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 2);
}
BENCHMARK_CAPTURE(BM_TrsmLowerLeft, naive, kernels::Backend::kNaive)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrsmLowerLeft, tiled, kernels::Backend::kTiled)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TrsmLowerLeft, simd, kernels::Backend::kSimd)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_LuDecompose(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 3);
  for (auto _ : state) benchmark::DoNotOptimize(lu_decompose(a));
  state.SetItemsProcessed(state.iterations() * n * n * n / 3);
}
BENCHMARK(BM_LuDecompose)->Arg(64)->Arg(256)->Arg(512);

void BM_InvertLower(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix l = random_unit_lower_triangular(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(invert_lower(l));
  state.SetItemsProcessed(state.iterations() * n * n * n / 6);
}
BENCHMARK(BM_InvertLower)->Arg(64)->Arg(128)->Arg(256);

void BM_SolveLower(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix l = random_unit_lower_triangular(n, 5);
  const Matrix b = random_matrix(n, n / 2, 6, -1, 1);
  for (auto _ : state) benchmark::DoNotOptimize(solve_lower(l, b));
  state.SetItemsProcessed(state.iterations() * n * n * (n / 2) / 2);
}
BENCHMARK(BM_SolveLower)->Arg(64)->Arg(128)->Arg(256);

void BM_DfsWriteRead(benchmark::State& state) {
  const std::size_t kb = static_cast<std::size_t>(state.range(0));
  dfs::Dfs fs(4);
  std::vector<double> payload(kb * 128);  // kb KiB of doubles
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/bench/f." + std::to_string(i++);
    fs.write_doubles(path, payload);
    benchmark::DoNotOptimize(fs.read_doubles(path));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size() * 8 * 2));
}
BENCHMARK(BM_DfsWriteRead)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace mri

BENCHMARK_MAIN();
