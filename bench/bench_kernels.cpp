// google-benchmark microbenchmarks of the kernels and substrates: the dense
// multiply variants (§6.3), the single-node LU (Algorithm 1), triangular
// inversion (Eq. 4), the substitution solves (Eq. 6) and the DFS data path.
#include <benchmark/benchmark.h>

#include "dfs/dfs.hpp"
#include "linalg/lu.hpp"
#include "linalg/triangular.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"

namespace mri {
namespace {

void BM_MultiplyIkj(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 1);
  const Matrix b = random_matrix(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(multiply(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MultiplyIkj)->Arg(64)->Arg(128)->Arg(256);

void BM_MultiplyNaiveIjk(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 1);
  const Matrix b = random_matrix(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(multiply_naive_ijk(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MultiplyNaiveIjk)->Arg(64)->Arg(128)->Arg(256);

void BM_MultiplyTransposedB(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 1);
  const Matrix bt = random_matrix(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(multiply_transposed_b(a, bt));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MultiplyTransposedB)->Arg(64)->Arg(128)->Arg(256);

void BM_LuDecompose(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = random_matrix(n, 3);
  for (auto _ : state) benchmark::DoNotOptimize(lu_decompose(a));
  state.SetItemsProcessed(state.iterations() * n * n * n / 3);
}
BENCHMARK(BM_LuDecompose)->Arg(64)->Arg(128)->Arg(256);

void BM_InvertLower(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix l = random_unit_lower_triangular(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(invert_lower(l));
  state.SetItemsProcessed(state.iterations() * n * n * n / 6);
}
BENCHMARK(BM_InvertLower)->Arg(64)->Arg(128)->Arg(256);

void BM_SolveLower(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix l = random_unit_lower_triangular(n, 5);
  const Matrix b = random_matrix(n, n / 2, 6, -1, 1);
  for (auto _ : state) benchmark::DoNotOptimize(solve_lower(l, b));
  state.SetItemsProcessed(state.iterations() * n * n * (n / 2) / 2);
}
BENCHMARK(BM_SolveLower)->Arg(64)->Arg(128)->Arg(256);

void BM_DfsWriteRead(benchmark::State& state) {
  const std::size_t kb = static_cast<std::size_t>(state.range(0));
  dfs::Dfs fs(4);
  std::vector<double> payload(kb * 128);  // kb KiB of doubles
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/bench/f." + std::to_string(i++);
    fs.write_doubles(path, payload);
    benchmark::DoNotOptimize(fs.read_doubles(path));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size() * 8 * 2));
}
BENCHMARK(BM_DfsWriteRead)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace mri

BENCHMARK_MAIN();
