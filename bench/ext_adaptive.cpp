// Extension (§8 future work): the conditions under which to use ScaLAPACK
// vs MapReduce, and an adaptive chooser.
//
// Prints the predicted decision boundary over (matrix order, cluster size)
// and validates the prediction against the simulator on a sample of cells.
#include "harness.hpp"

#include "core/adaptive.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  print_header("Extension: adaptive engine choice (MapReduce vs ScaLAPACK)",
               "§8 (future work)");

  const CostModel model = CostModel::ec2_medium();
  const Index orders[] = {4096, 16384, 40960, 102400};
  const int clusters[] = {2, 8, 32, 128, 512};

  std::printf("predicted winner at nb = 3200 (M = MapReduce, S = "
              "ScaLAPACK):\n\n");
  TextTable grid({"Order \\ Nodes", "2", "8", "32", "128", "512"});
  for (Index n : orders) {
    std::vector<std::string> row{std::to_string(n)};
    for (int m0 : clusters) {
      const core::PredictedCost c = core::predict_cost(n, 3200, m0, model);
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s (%.1fx)",
                    c.winner() == core::Engine::kMapReduce ? "M" : "S",
                    c.winner() == core::Engine::kMapReduce
                        ? c.scalapack_seconds / c.mapreduce_seconds
                        : c.mapreduce_seconds / c.scalapack_seconds);
      row.push_back(buf);
    }
    grid.add_row(std::move(row));
  }
  grid.print();

  // Validate the chooser against the simulator on scaled-down cells.
  std::printf("\nvalidation against the simulator (M2 scaled 1/64):\n\n");
  const ScaledSetup setup = scaled_setup(kM2, 64.0);
  TextTable check({"Nodes", "predicted", "sim MapReduce (min)",
                   "sim ScaLAPACK (min)", "simulated winner", "agree"});
  int agreements = 0, cells = 0;
  for (int m0 : {2, 8, 32, 128}) {
    const core::PredictedCost c =
        core::predict_cost(setup.n, setup.nb, m0, setup.model);
    const MrRun ours = run_mapreduce(setup, m0, {}, 1, nullptr, false);
    const ScalRun theirs = run_scalapack(setup, m0, 1);
    const core::Engine simulated =
        ours.paper_seconds <= theirs.paper_seconds ? core::Engine::kMapReduce
                                                   : core::Engine::kScaLAPACK;
    const bool agree = simulated == c.winner();
    agreements += agree ? 1 : 0;
    ++cells;
    check.add_row({cell_int(m0), core::engine_name(c.winner()),
                   cell(ours.paper_seconds / 60.0, 1),
                   cell(theirs.paper_seconds / 60.0, 1),
                   core::engine_name(simulated), agree ? "yes" : "NO"});
  }
  check.print();
  std::printf("\npredictor/simulator agreement: %d / %d cells\n", agreements,
              cells);
  return 0;
}
