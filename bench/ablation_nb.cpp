// Ablation (§5): the choice of the bound value nb.
//
// The paper sets nb so the master's single-node LU time roughly equals the
// MapReduce job-launch time: too small an nb means many jobs (launch
// overhead dominates); too large means the serial master LU becomes the
// bottleneck. The sweep exhibits the U-shape that reasoning predicts.
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 32.0);
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  print_header("Ablation: choice of the bound value nb (§5)", "§5");

  const ScaledSetup base = scaled_setup(kM5, scale);
  std::printf("matrix M5 scaled to order %lld on %d nodes; paper-scale nb "
              "values shown\n\n",
              static_cast<long long>(base.n), nodes);

  const Index nb_values[] = {base.nb / 8, base.nb / 4, base.nb / 2, base.nb,
                             base.nb * 2, base.nb * 4};
  TextTable table({"nb (paper-scale)", "Jobs", "Total (min)", "Master (min)",
                   "Launch share"});

  double best_time = 1e300;
  Index best_nb = 0;
  for (Index nb : nb_values) {
    if (nb < 2) continue;
    ScaledSetup setup = base;
    setup.nb = nb;
    const MrRun run = run_mapreduce(setup, nodes, {}, 1, nullptr, false);
    const double total_min = run.paper_seconds / 60.0;
    const double master_min =
        to_paper_seconds(run.result.report.master_seconds, scale) / 60.0;
    const double launch_min =
        to_paper_seconds(run.result.report.jobs *
                             setup.model.job_launch_seconds,
                         scale) /
        60.0;
    table.add_row({cell_int(nb * static_cast<Index>(scale)),
                   cell_int(run.result.report.jobs), cell(total_min, 1),
                   cell(master_min, 1), cell(launch_min / total_min, 2)});
    if (run.paper_seconds < best_time) {
      best_time = run.paper_seconds;
      best_nb = nb;
    }
  }
  table.print();

  std::printf("\nbest nb (paper scale): %lld — the paper picked 3200 for the "
              "same balance on EC2\n",
              static_cast<long long>(best_nb * static_cast<Index>(scale)));
  return 0;
}
