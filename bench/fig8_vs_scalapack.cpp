// Figure 8: the ratio of ScaLAPACK's running time to ours, for M1–M3 over
// 1..64 nodes.
//
// Paper's observations to reproduce:
//  * at small scale ScaLAPACK is somewhat faster (ratio < 1) — the price of
//    MapReduce's job-launch overhead and HDFS round-trips;
//  * the ratio grows with the node count and with the matrix size, crossing
//    1 for the larger matrices at high node counts: ScaLAPACK's per-node
//    transfer volume (Θ(n²), Tables 1-2) and its panel critical path stop
//    scaling while our pipeline keeps shrinking.
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 40.0);
  const auto node_counts = cli.get_int_list("nodes", {1, 2, 4, 8, 16, 32, 64});
  print_header("Figure 8: ScaLAPACK running time / our running time",
               "Figure 8 / §7.5");

  const PaperMatrix matrices[] = {kM1, kM2, kM3};
  std::printf("matrices scaled 1/%.0f; ratio > 1 means our algorithm wins\n\n",
              scale);

  TextTable table({"Nodes", "M1 ratio", "M2 ratio", "M3 ratio"});
  std::vector<std::vector<double>> ratios(node_counts.size());

  std::vector<std::vector<double>> per_matrix(3);
  for (std::size_t mi = 0; mi < 3; ++mi) {
    const ScaledSetup setup = scaled_setup(matrices[mi], scale);
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
      const int nodes = static_cast<int>(node_counts[ni]);
      const MrRun ours =
          run_mapreduce(setup, nodes, {}, mi + 1, nullptr, ni == 0);
      if (ni == 0) MRI_CHECK_MSG(ours.residual < 1e-5, "accuracy failed");
      const ScalRun theirs = run_scalapack(setup, nodes, mi + 1);
      if (ni == 0)
        MRI_CHECK_MSG(theirs.residual < 1e-5, "baseline accuracy failed");
      per_matrix[mi].push_back(theirs.paper_seconds / ours.paper_seconds);
      std::fprintf(stderr, "  %s @ %d nodes: ours %.1f min, scal %.1f min\n",
                   matrices[mi].name, nodes, ours.paper_seconds / 60.0,
                   theirs.paper_seconds / 60.0);
    }
  }

  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    table.add_row({cell_int(node_counts[ni]), cell(per_matrix[0][ni], 2),
                   cell(per_matrix[1][ni], 2), cell(per_matrix[2][ni], 2)});
  }
  table.print();

  const std::size_t last = node_counts.size() - 1;
  std::printf("\nratio grows with node count (M3): %s\n",
              per_matrix[2][last] > per_matrix[2][0]
                  ? "yes (as in the paper)"
                  : "NO (unexpected)");
  std::printf("larger matrix => larger ratio at %lld nodes: %s\n",
              static_cast<long long>(node_counts[last]),
              per_matrix[2][last] >= per_matrix[0][last]
                  ? "yes (as in the paper)"
                  : "NO (unexpected)");
  std::printf("our algorithm overtakes ScaLAPACK at scale: %s\n",
              per_matrix[2][last] >= 1.0 ? "yes (as in the paper)"
                                         : "NO (unexpected)");
  return 0;
}
