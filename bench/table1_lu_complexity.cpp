// Table 1: time complexity of the LU-decomposition stage — measured element
// traffic and flops of our MapReduce pipeline vs the paper's closed forms,
// and the same for the ScaLAPACK baseline.
//
//   ours:      Write (3/2)n²   Read (l+3)n²   Transfer (l+3)n²   Mults n³/3
//              with l = (m0 + 2 f1 + 2 f2) / 4
//   ScaLAPACK: Write n²        Read n²        Transfer (2/3)m0n² Mults n³/3
#include "harness.hpp"

#include "matrix/layout.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

std::string elems(double count, double n2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f n^2", count / n2);
  return buf;
}

std::string flops(double count, double n3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f n^3", count / n3);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 640);
  const Index nb = cli.get_int("nb", 80);
  const int m0 = static_cast<int>(cli.get_int("nodes", 16));
  print_header("Table 1: LU decomposition cost (elements / flops)", "Table 1");

  const double n2 = static_cast<double>(n) * static_cast<double>(n);
  const double n3 = n2 * static_cast<double>(n);
  const BlockWrapFactors f = block_wrap_factors(m0);
  const double l = (m0 + 2.0 * f.f1 + 2.0 * f.f2) / 4.0;

  std::printf("n = %lld, nb = %lld, m0 = %d (f1 = %d, f2 = %d, l = %.1f)\n\n",
              static_cast<long long>(n), static_cast<long long>(nb), m0, f.f1,
              f.f2, l);

  // --- our pipeline, LU stage (partition + LU jobs + master leaves) --------
  ScaledSetup setup;
  setup.scale = 1.0;
  setup.n = n;
  setup.nb = nb;
  setup.model = CostModel::ec2_medium();
  const MrRun run = run_mapreduce(setup, m0);
  MRI_CHECK_MSG(run.residual < 1e-5, "accuracy check failed");
  const IoStats ours = run.result.lu_stage.io;

  // --- ScaLAPACK baseline, PDGETRF stage -----------------------------------
  const ScalRun scal = run_scalapack(setup, m0);
  MRI_CHECK_MSG(scal.residual < 1e-5, "baseline accuracy check failed");
  const IoStats theirs = scal.result.lu_stage.io;

  TextTable table({"Algorithm", "Write", "Read", "Transfer", "Mults", "Adds"});
  table.add_row({"ours (paper model)", elems(1.5 * n2, n2),
                 elems((l + 3.0) * n2, n2), elems((l + 3.0) * n2, n2),
                 flops(n3 / 3.0, n3), flops(n3 / 3.0, n3)});
  table.add_row({"ours (measured)",
                 elems(static_cast<double>(ours.bytes_written) / 8.0, n2),
                 elems(static_cast<double>(ours.bytes_read) / 8.0, n2),
                 elems(static_cast<double>(ours.bytes_transferred) / 8.0, n2),
                 flops(static_cast<double>(ours.mults), n3),
                 flops(static_cast<double>(ours.adds), n3)});
  table.add_row({"ScaLAPACK (paper model)", elems(n2, n2), elems(n2, n2),
                 elems(2.0 / 3.0 * m0 * n2, n2), flops(n3 / 3.0, n3),
                 flops(n3 / 3.0, n3)});
  table.add_row({"ScaLAPACK (measured)",
                 elems(static_cast<double>(theirs.bytes_written) / 8.0, n2),
                 elems(static_cast<double>(theirs.bytes_read) / 8.0, n2),
                 elems(static_cast<double>(theirs.bytes_transferred) / 8.0, n2),
                 flops(static_cast<double>(theirs.mults), n3),
                 flops(static_cast<double>(theirs.adds), n3)});
  table.print();

  std::printf(
      "\nNotes: our measured Write includes the partition job's one-time n² "
      "copy of A, which the paper's table omits; measured Transfer also\n"
      "counts HDFS replication-pipeline copies (writes x (replication-1)). "
      "ScaLAPACK defers its factor write to the inversion stage (its Write\n"
      "shows there). The structural point survives the bookkeeping: "
      "ScaLAPACK transfer grows ~(2/3) m0 n², ours ~(m0/4) n² — the gap "
      "behind Figure 8.\n");
  return 0;
}
