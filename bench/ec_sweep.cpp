// Erasure-coded storage tier vs 3x replication under the PR 5 fault
// scenario: storage footprint, pipelined write traffic, and single-kill
// recovery cost, swept over the HDFS-EC stripe shapes.
//
// The paper runs on a Hadoop DFS with replication 3 — every committed block
// costs 3x its size on disk and 2x on the write pipeline. HDFS-EC-style
// Reed–Solomon stripes cut both: RS(k,m) stores (k+m)/k per byte and ships
// (k+m-1)/k cells over the pipeline, while still surviving any m losses
// (degraded reads decode from k survivors; node kills repair by
// reconstruction instead of re-replication). This bench quantifies that
// trade on the actual inversion pipeline:
//
//   policies — the same inversion under replication-3 and RS (3,2), (6,3),
//              (10,4): end-of-run logical/physical footprint and pipelined
//              redundancy bytes. Asserts RS(6,3) cuts physical storage
//              >= 1.8x and pipelined write bytes >= 1.3x vs replication-3.
//   kills    — per policy, the same single-kill scenario as fault_sweep
//              (a worker dies ~40% in): recovery stretch and repair totals
//              side by side — re-replicated bytes for replication,
//              reconstructed cells for EC.
//   hot cache — RS(6,3) plus a namenode hot-block cache for the repeatedly
//              re-read ut.bin factors: hit totals.
//   deterministic — two same-seed RS(6,3) kill runs must produce
//              bit-identical run reports.
//
// Emits BENCH_pr8.json (--out PATH). --probe runs the same scenarios on a
// small matrix for the CI smoke step.
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness.hpp"
#include "sim/chaos.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct PolicySpec {
  const char* name;
  dfs::StoragePolicy policy;
  int k = 0;
  int m = 0;
};

struct EcRun {
  bool completed = false;
  std::string error;
  double sim_seconds = 0.0;
  double paper_hours = 0.0;
  double residual = 0.0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t physical_bytes = 0;
  std::uint64_t write_redundancy_bytes = 0;  // pipelined replica/cell bytes
  std::uint64_t parity_bytes = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t hot_cache_hits = 0;
  RecoveryStats stats;
  std::vector<mr::JobResult> jobs;
  std::string report_json;
};

/// One inversion on a fresh cluster/DFS under the given storage policy.
EcRun run_policy(const ScaledSetup& s, int nodes, const PolicySpec& spec,
                 std::uint64_t matrix_seed,
                 const std::vector<ChaosEvent>& events, bool verify,
                 std::uint64_t hot_cache_bytes = 0) {
  MetricsRegistry metrics;
  Cluster cluster(nodes, s.model);
  dfs::DfsConfig dfs_config;
  dfs_config.storage_policy = spec.policy;
  if (spec.policy == dfs::StoragePolicy::kErasureCoded) {
    dfs_config.ec.k = spec.k;
    dfs_config.ec.m = spec.m;
  }
  dfs_config.hot_cache_bytes = hot_cache_bytes;
  dfs::Dfs fs(nodes, dfs_config, &metrics);
  ThreadPool pool(4);

  ChaosEngine chaos;
  for (const ChaosEvent& event : events) chaos.add_event(event);
  fs.bind_chaos(&chaos, s.model.network_bandwidth, &s.model);

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                   &chaos);
  core::InversionOptions opts;
  opts.nb = s.nb;
  const Matrix a = random_matrix(s.n, matrix_seed);

  EcRun run;
  try {
    core::MapReduceInverter::Result result = inverter.invert(a, opts);
    run.completed = true;
    run.sim_seconds = result.report.sim_seconds;
    run.paper_hours = to_paper_seconds(run.sim_seconds, s.scale) / 3600.0;
    run.residual = verify ? inversion_residual(a, result.inverse) : 0.0;
    run.jobs = result.jobs;
    const RunReport report = mr::build_run_report(
        result.jobs, cluster, &metrics, result.master_spans, &chaos, nullptr,
        &fs);
    run.logical_bytes = report.storage.logical_bytes;
    run.physical_bytes = report.storage.physical_bytes;
    run.write_redundancy_bytes = report.dfs_io.bytes_replicated;
    run.parity_bytes = report.storage.parity_bytes;
    run.degraded_reads = report.storage.degraded_reads;
    run.hot_cache_hits = report.storage.hot_cache_hits;
    run.report_json = run_report_json(report);
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.stats = chaos.stats();
  return run;
}

/// Same reduce-window kill-time picker as fault_sweep: the dead node holds
/// completed map outputs, so recovery pays a recompute wave on top of the
/// storage repair this bench is about.
double pick_kill_time(const EcRun& clean, double fraction) {
  const double target = fraction * clean.sim_seconds;
  double best = -1.0;
  double best_distance = 0.0;
  for (const mr::JobResult& job : clean.jobs) {
    if (job.reduce_phase_seconds <= 0.0) continue;
    const double launch = job.sim_seconds - job.map_phase_seconds -
                          job.reduce_phase_seconds - job.recovery_seconds;
    const double reduce_start =
        job.start_seconds + launch + job.map_phase_seconds;
    const double at = reduce_start + 0.25 * job.reduce_phase_seconds;
    const double distance = std::abs(at - target);
    if (best < 0.0 || distance < best_distance) {
      best = at;
      best_distance = distance;
    }
  }
  MRI_REQUIRE(best >= 0.0, "clean run has no job with a reduce phase");
  return best;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const bool probe = cli.get_bool("probe", false);
  const int nodes = cli.get_int("nodes", 16);  // RS(10,4) needs 14 cells
  const double scale = cli.get_double("scale", 64.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("chaos-seed", 7));
  const std::string out = cli.get_string("out", "BENCH_pr8.json");
  const double residual_bound = 1e-8;

  print_header("erasure-coded DFS storage vs replication: footprint, write "
               "traffic, recovery",
               "§7.4's storage layer");

  const ScaledSetup setup = scaled_setup(probe ? kM5 : kM4, scale);
  std::printf("%s at 1/%.0f scale: order %lld, nb %lld, %d nodes%s\n\n",
              probe ? "M5" : "M4", scale, static_cast<long long>(setup.n),
              static_cast<long long>(setup.nb), nodes,
              probe ? " (probe mode)" : "");

  const std::vector<PolicySpec> policies = {
      {"replicate-3", dfs::StoragePolicy::kReplicate, 0, 0},
      {"rs-3-2", dfs::StoragePolicy::kErasureCoded, 3, 2},
      {"rs-6-3", dfs::StoragePolicy::kErasureCoded, 6, 3},
      {"rs-10-4", dfs::StoragePolicy::kErasureCoded, 10, 4},
  };

  struct PolicyPoint {
    PolicySpec spec;
    EcRun clean;
    EcRun killed;
    double kill_at = 0.0;
    double stretch = 0.0;
  };
  std::vector<PolicyPoint> points;

  std::printf("%-12s %14s %14s %12s %12s %10s\n", "policy", "logical",
              "physical", "overhead", "write-redun", "residual");
  for (const PolicySpec& spec : policies) {
    PolicyPoint p;
    p.spec = spec;
    p.clean = run_policy(setup, nodes, spec, seed, {}, true);
    MRI_REQUIRE(p.clean.completed,
                spec.name << " clean run failed: " << p.clean.error);
    std::printf("%-12s %14llu %14llu %11.2fx %12llu %10.2e\n", spec.name,
                static_cast<unsigned long long>(p.clean.logical_bytes),
                static_cast<unsigned long long>(p.clean.physical_bytes),
                static_cast<double>(p.clean.physical_bytes) /
                    static_cast<double>(p.clean.logical_bytes),
                static_cast<unsigned long long>(
                    p.clean.write_redundancy_bytes),
                p.clean.residual);
    points.push_back(std::move(p));
  }

  // ---- headline ratios: RS(6,3) vs replication-3 --------------------------
  const PolicyPoint& repl = points[0];
  const PolicyPoint& rs63 = points[2];
  const double storage_ratio =
      static_cast<double>(repl.clean.physical_bytes) /
      static_cast<double>(rs63.clean.physical_bytes);
  const double write_ratio =
      static_cast<double>(repl.clean.write_redundancy_bytes) /
      static_cast<double>(rs63.clean.write_redundancy_bytes);
  std::printf("\nrs-6-3 vs replicate-3: %.2fx less physical storage, %.2fx "
              "fewer pipelined write bytes\n",
              storage_ratio, write_ratio);
  const bool storage_ok = storage_ratio >= 1.8;
  const bool write_ok = write_ratio >= 1.3;
  const bool logical_consistent = [&] {
    for (const PolicyPoint& p : points) {
      if (p.clean.logical_bytes != repl.clean.logical_bytes) return false;
    }
    return true;
  }();

  // ---- single-kill recovery, side by side ---------------------------------
  std::printf("\nsingle kill (node %d, ~40%% in):\n", nodes - 1);
  bool kills_ok = true;
  for (PolicyPoint& p : points) {
    p.kill_at = pick_kill_time(p.clean, 0.4);
    const std::vector<ChaosEvent> events = {
        {ChaosEventKind::kKillNode, p.kill_at, nodes - 1, 1.0}};
    p.killed = run_policy(setup, nodes, p.spec, seed, events, true);
    if (!p.killed.completed) {
      std::printf("  %-12s did not recover: %s\n", p.spec.name,
                  p.killed.error.substr(0, 60).c_str());
      kills_ok = false;
      continue;
    }
    p.stretch = p.killed.paper_hours / p.clean.paper_hours;
    std::printf("  %-12s %.2fx stretch, %.4f s repair (%llu B re-replicated, "
                "%d cell(s) reconstructed), residual %.2e\n",
                p.spec.name, p.stretch,
                p.killed.stats.re_replication_seconds,
                static_cast<unsigned long long>(
                    p.killed.stats.re_replicated_bytes),
                p.killed.stats.ec_cells_reconstructed, p.killed.residual);
    if (p.killed.residual >= residual_bound) kills_ok = false;
    // The repair mechanism must match the policy.
    const bool is_ec = p.spec.policy == dfs::StoragePolicy::kErasureCoded;
    if (is_ec && p.killed.stats.ec_cells_reconstructed == 0) kills_ok = false;
    if (!is_ec && p.killed.stats.re_replicated_bytes == 0) kills_ok = false;
  }

  // ---- determinism: two same-seed RS(6,3) kill runs -----------------------
  const std::vector<ChaosEvent> det_events = {
      {ChaosEventKind::kKillNode, rs63.kill_at, nodes - 1, 1.0}};
  const EcRun det =
      run_policy(setup, nodes, rs63.spec, seed, det_events, true);
  const bool deterministic =
      det.completed && det.report_json == rs63.killed.report_json;
  std::printf("\ndeterministic  : %s (same-seed rs-6-3 reports %s)\n",
              deterministic ? "yes" : "NO",
              deterministic ? "bit-identical" : "DIFFER");

  // ---- hot-block cache on the re-read ut.bin factors ----------------------
  const EcRun hot = run_policy(setup, nodes, rs63.spec, seed, {}, true,
                               /*hot_cache_bytes=*/64ull << 20);
  const bool hot_ok = hot.completed && hot.hot_cache_hits > 0;
  std::printf("hot cache      : %llu hit(s) on cached factors%s\n",
              static_cast<unsigned long long>(hot.hot_cache_hits),
              hot_ok ? "" : " (EXPECTED > 0)");

  std::printf("\nstorage ratio >= 1.8x   : %s (%.2fx)\n",
              storage_ok ? "yes" : "NO", storage_ratio);
  std::printf("write ratio >= 1.3x     : %s (%.2fx)\n",
              write_ok ? "yes" : "NO", write_ratio);
  std::printf("kills recovered         : %s\n", kills_ok ? "yes" : "NO");

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"matrix\":\"" << (probe ? "M5" : "M4")
       << "\",\"order\":" << setup.n << ",\"nb\":" << setup.nb
       << ",\"nodes\":" << nodes << ",\"scale\":" << scale
       << ",\"seed\":" << seed << ",\"probe\":" << (probe ? "true" : "false")
       << "},\"policies\":[";
  bool first = true;
  for (const PolicyPoint& p : points) {
    if (!first) json << ',';
    first = false;
    json << "{\"policy\":\"" << p.spec.name << "\",\"ec_k\":" << p.spec.k
         << ",\"ec_m\":" << p.spec.m
         << ",\"clean\":{\"hours\":" << p.clean.paper_hours
         << ",\"residual\":" << p.clean.residual
         << ",\"logical_bytes\":" << p.clean.logical_bytes
         << ",\"physical_bytes\":" << p.clean.physical_bytes
         << ",\"write_redundancy_bytes\":" << p.clean.write_redundancy_bytes
         << ",\"parity_bytes\":" << p.clean.parity_bytes
         << "},\"killed\":{\"completed\":"
         << (p.killed.completed ? "true" : "false");
    if (p.killed.completed) {
      json << ",\"hours\":" << p.killed.paper_hours
           << ",\"stretch\":" << p.stretch
           << ",\"residual\":" << p.killed.residual
           << ",\"kill_at_sim_seconds\":" << p.kill_at
           << ",\"re_replicated_bytes\":" << p.killed.stats.re_replicated_bytes
           << ",\"ec_cells_reconstructed\":"
           << p.killed.stats.ec_cells_reconstructed
           << ",\"ec_reconstructed_bytes\":"
           << p.killed.stats.ec_reconstructed_bytes
           << ",\"repair_seconds\":"
           << p.killed.stats.re_replication_seconds
           << ",\"degraded_reads\":" << p.killed.degraded_reads;
    } else {
      json << ",\"error\":\"" << json_escape(p.killed.error.substr(0, 120))
           << "\"";
    }
    json << "}}";
  }
  json << "],\"headline\":{\"storage_ratio_rs63_vs_repl3\":" << storage_ratio
       << ",\"write_ratio_rs63_vs_repl3\":" << write_ratio
       << ",\"storage_ratio_ok\":" << (storage_ok ? "true" : "false")
       << ",\"write_ratio_ok\":" << (write_ok ? "true" : "false")
       << "},\"hot_cache\":{\"capacity_bytes\":" << (64ull << 20)
       << ",\"hits\":" << hot.hot_cache_hits
       << ",\"completed\":" << (hot.completed ? "true" : "false")
       << "},\"deterministic\":" << (deterministic ? "true" : "false")
       << ",\"residual_bound\":" << residual_bound << "}";

  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("results written to %s\n", out.c_str());

  return storage_ok && write_ok && logical_consistent && kills_ok &&
                 deterministic && hot_ok
             ? 0
             : 1;
}
