// §7.2 correctness check: "we compute In − M·M⁻¹ for matrices M1, M2, M3 and
// M5. We find that every element in the computed matrices is less than
// 1e-5, which validates our implementation and shows that the data type
// double is sufficiently precise."
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 64.0);
  print_header("§7.2 accuracy: max element of |I - M·M⁻¹| < 1e-5", "§7.2");

  TextTable table({"Matrix", "Order (scaled)", "max |I - M*Minv|", "< 1e-5"});
  bool all_ok = true;

  const PaperMatrix matrices[] = {kM1, kM2, kM3, kM5};
  for (const PaperMatrix& m : matrices) {
    const ScaledSetup setup = scaled_setup(m, scale);
    const MrRun run = run_mapreduce(setup, /*nodes=*/8, {}, /*seed=*/m.order);
    all_ok = all_ok && run.residual < 1e-5;
    table.add_row({m.name, cell_int(setup.n), cell(run.residual, 12),
                   run.residual < 1e-5 ? "yes" : "NO"});
  }

  // Beyond the paper: harder inputs through the same pipeline.
  struct Extra {
    const char* name;
    Matrix matrix;
  };
  const Index n = 400;
  Extra extras[] = {
      {"pivot-hostile", random_pivot_hostile(n, 1)},
      {"diag-dominant", random_diagonally_dominant(n, 2)},
      {"SPD", random_spd(n, 3)},
  };
  for (Extra& e : extras) {
    MetricsRegistry metrics;
    Cluster cluster(8, CostModel::ec2_medium());
    dfs::Dfs fs(8, dfs::DfsConfig{}, &metrics);
    ThreadPool pool(4);
    core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
    core::InversionOptions opts;
    opts.nb = 64;
    const auto result = inverter.invert(e.matrix, opts);
    const double residual = inversion_residual(e.matrix, result.inverse);
    all_ok = all_ok && residual < 1e-5;
    table.add_row({e.name, cell_int(n), cell(residual, 12),
                   residual < 1e-5 ? "yes" : "NO"});
  }

  table.print();
  std::printf("\n%s\n", all_ok ? "All inputs meet the paper's 1e-5 bar."
                               : "FAILED: residual above the paper's bar.");
  return all_ok ? 0 : 1;
}
