// DAG executor benchmark: the sequential pipeline vs the overlapped final
// stage (§5.4) on the Figure 6 configuration (M1, scaled).
//
// The inversion pipeline is almost entirely a dependency chain (Algorithm 2
// is sequential), but the final stage's two triangular inversions L⁻¹ and
// U⁻¹ are independent: submitted as a {invert-l, invert-u} -> invert-mul
// diamond they share the cluster's map slots through the JobGraph slot
// pool, so the makespan drops below the serial sum of the job times.
//
// Emits a machine-readable comparison (default BENCH_pr2.json; --out PATH).
#include <fstream>
#include <sstream>

#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 40.0);
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  const std::string out = cli.get_string("out", "BENCH_pr2.json");
  print_header("DAG executor: sequential pipeline vs overlapped final stage",
               "the Figure 6 configuration");

  const ScaledSetup setup = scaled_setup(kM1, scale);
  std::printf("M1 scaled 1/%.0f -> order %lld, nb %lld, %d nodes\n\n", scale,
              static_cast<long long>(setup.n),
              static_cast<long long>(setup.nb), nodes);

  const MrRun seq = run_mapreduce(setup, nodes, {}, /*seed=*/1);
  MRI_CHECK_MSG(seq.residual < 1e-5, "sequential run accuracy check failed");

  core::InversionOptions dag_opts;
  dag_opts.overlap_final_stage = true;
  const MrRun dag = run_mapreduce(setup, nodes, dag_opts, /*seed=*/1);
  MRI_CHECK_MSG(dag.residual < 1e-5, "DAG run accuracy check failed");

  // What a one-job-at-a-time Hadoop 1.x master would take for the DAG run's
  // job set: the serial sum of job times plus the master-node work.
  double serial_sum = dag.result.report.master_seconds;
  for (const mr::JobResult& job : dag.result.jobs) {
    serial_sum += job.sim_seconds;
  }

  const double seq_s = seq.result.report.sim_seconds;
  const double dag_s = dag.result.report.sim_seconds;
  TextTable table({"Pipeline", "Jobs", "Sim (s)", "Paper-scale (min)"});
  table.add_row({"sequential", cell_int(seq.result.report.jobs),
                 cell(seq_s, 3), cell(to_paper_seconds(seq_s, scale) / 60.0, 1)});
  table.add_row({"DAG overlap", cell_int(dag.result.report.jobs),
                 cell(dag_s, 3), cell(to_paper_seconds(dag_s, scale) / 60.0, 1)});
  table.add_row({"serial sum of DAG jobs", cell_int(dag.result.report.jobs),
                 cell(serial_sum, 3),
                 cell(to_paper_seconds(serial_sum, scale) / 60.0, 1)});
  table.print();

  std::printf("\nmakespan vs sequential pipeline : %.3fx\n", seq_s / dag_s);
  std::printf("makespan vs serial sum          : %.3fx\n", serial_sum / dag_s);
  std::printf("overlap makespan below serial sum: %s\n",
              dag_s < serial_sum ? "yes" : "NO (unexpected)");

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"matrix\":\"M1\",\"order\":" << setup.n
       << ",\"nb\":" << setup.nb << ",\"scale\":" << scale
       << ",\"nodes\":" << nodes << "},\"sequential_seconds\":" << seq_s
       << ",\"dag_seconds\":" << dag_s
       << ",\"serial_sum_seconds\":" << serial_sum
       << ",\"sequential_jobs\":" << seq.result.report.jobs
       << ",\"dag_jobs\":" << dag.result.report.jobs
       << ",\"speedup_vs_sequential\":" << seq_s / dag_s
       << ",\"speedup_vs_serial_sum\":" << serial_sum / dag_s << "}";
  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("comparison written to %s\n", out.c_str());

  return dag_s < serial_sum ? 0 : 1;
}
