// Extension ablation: Hadoop-style speculative execution vs node-speed
// heterogeneity (§7.4 observes "the performance variance between different
// large EC2 instances is high").
//
// A speculative backup re-runs the task from scratch on an idle node, so it
// only beats the original when the straggler's node is more than ~2x slower
// than the backup's — mild skew (the paper's ±30%) gains nothing, while a
// thrashing/failing node regime gains a lot. The sweep shows both regimes.
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 64.0);
  const int workers = static_cast<int>(cli.get_int("nodes", 64));
  print_header("Ablation: speculative execution vs node heterogeneity",
               "§7.4 (extension)");

  std::printf("matrix M4 scaled 1/%.0f on %d workers; per-node speeds drawn "
              "from [1-v, 1+v]\n\n",
              scale, workers);

  TextTable table({"Speed variance v", "no speculation (h)",
                   "speculation (h)", "speedup", "slowest/median"});
  for (double v : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    CostModel base = CostModel::ec2_medium();
    base.node_speed_variance = v;
    ScaledSetup plain = scaled_setup(kM4, scale, base);
    const MrRun without =
        run_mapreduce(plain, workers, {}, 1, nullptr, false);

    CostModel spec = base;
    spec.speculative_execution = true;
    ScaledSetup speculative = scaled_setup(kM4, scale, spec);
    const MrRun with = run_mapreduce(speculative, workers, {}, 1, nullptr,
                                     false);
    export_run_artifacts(cli, with);  // --trace-out / --report-out

    // Indicative skew of this cluster draw.
    Cluster probe(workers, base);
    double slowest = 1.0;
    for (int i = 0; i < workers; ++i)
      slowest = std::min(slowest, probe.speed_factor(i));
    table.add_row({cell(v, 1), cell(without.paper_seconds / 3600.0, 2),
                   cell(with.paper_seconds / 3600.0, 2),
                   cell(without.paper_seconds / with.paper_seconds, 3),
                   cell(1.0 / slowest, 2)});
  }
  table.print();
  std::printf(
      "\nAt the paper's measured +-30%% spread a from-scratch backup cannot "
      "beat the original (speedup ~1.0) — consistent with Hadoop\nrarely "
      "winning speculations on uniformly-skewed clusters; past ~2x node "
      "slowdown (failing hardware) backups win and cap the damage.\n");
  return 0;
}
