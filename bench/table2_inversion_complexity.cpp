// Table 2: time complexity of the triangular-inversion + final-product
// stage — measured traffic/flops of our final MapReduce job vs the paper's
// closed forms, and the same for the ScaLAPACK PDGETRI stage.
//
//   ours:      Write 2n²   Read l·n²   Transfer (l+2)n²   Mults (2/3)n³
//              with l = (m0 + f1 + f2) / 2
//   ScaLAPACK: Write n²    Read m0n²   Transfer m0n²      Mults (2/3)n³
#include "harness.hpp"

#include "matrix/layout.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

std::string elems(double count, double n2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f n^2", count / n2);
  return buf;
}

std::string flops(double count, double n3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f n^3", count / n3);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 640);
  const Index nb = cli.get_int("nb", 80);
  const int m0 = static_cast<int>(cli.get_int("nodes", 16));
  print_header(
      "Table 2: triangular inversion + final product cost (elements / flops)",
      "Table 2");

  const double n2 = static_cast<double>(n) * static_cast<double>(n);
  const double n3 = n2 * static_cast<double>(n);
  const BlockWrapFactors f = block_wrap_factors(m0);
  const double l = (m0 + f.f1 + f.f2) / 2.0;

  std::printf("n = %lld, nb = %lld, m0 = %d (f1 = %d, f2 = %d, l = %.1f)\n\n",
              static_cast<long long>(n), static_cast<long long>(nb), m0, f.f1,
              f.f2, l);

  ScaledSetup setup;
  setup.scale = 1.0;
  setup.n = n;
  setup.nb = nb;
  setup.model = CostModel::ec2_medium();
  const MrRun run = run_mapreduce(setup, m0);
  MRI_CHECK_MSG(run.residual < 1e-5, "accuracy check failed");
  const IoStats ours = run.result.inversion_stage.io;

  const ScalRun scal = run_scalapack(setup, m0);
  MRI_CHECK_MSG(scal.residual < 1e-5, "baseline accuracy check failed");
  const IoStats theirs = scal.result.inversion_stage.io;

  TextTable table({"Algorithm", "Write", "Read", "Transfer", "Mults", "Adds"});
  table.add_row({"ours (paper model)", elems(2.0 * n2, n2), elems(l * n2, n2),
                 elems((l + 2.0) * n2, n2), flops(2.0 / 3.0 * n3, n3),
                 flops(2.0 / 3.0 * n3, n3)});
  table.add_row({"ours (measured)",
                 elems(static_cast<double>(ours.bytes_written) / 8.0, n2),
                 elems(static_cast<double>(ours.bytes_read) / 8.0, n2),
                 elems(static_cast<double>(ours.bytes_transferred) / 8.0, n2),
                 flops(static_cast<double>(ours.mults), n3),
                 flops(static_cast<double>(ours.adds), n3)});
  table.add_row({"ScaLAPACK (paper model)", elems(n2, n2), elems(m0 * n2, n2),
                 elems(m0 * n2, n2), flops(2.0 / 3.0 * n3, n3),
                 flops(2.0 / 3.0 * n3, n3)});
  table.add_row({"ScaLAPACK (measured)",
                 elems(static_cast<double>(theirs.bytes_written) / 8.0, n2),
                 elems(static_cast<double>(theirs.bytes_read) / 8.0, n2),
                 elems(static_cast<double>(theirs.bytes_transferred) / 8.0, n2),
                 flops(static_cast<double>(theirs.mults), n3),
                 flops(static_cast<double>(theirs.adds), n3)});
  table.print();

  std::printf(
      "\nNotes: ScaLAPACK's PDGETRI stage allgathers the factors — Θ(m0 n²) "
      "transfer that does not shrink per node as the cluster grows (the\n"
      "paper books the allgather under both Read and Transfer; we count it "
      "once, as Transfer). Our final job reads each factor once per mapper\n"
      "(l·n²) and block-wraps the product (§6.2).\n");
  return 0;
}
