// Figure 7: effect of the two I/O optimizations on M5 — the ratio of the
// unoptimized to the optimized running time, for 4..64 nodes.
//
// Paper's observations to reproduce:
//  * separate intermediate files: up to ~1.3x slower without (the serial
//    master-side combination is constant work, so the penalty grows as the
//    parallel part shrinks — i.e. with the node count);
//  * block wrap: the benefit grows with the number of nodes (naive multiply
//    reads (m0+1)n², wrapped (f1+f2)n²).
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 32.0);
  const auto node_counts = cli.get_int_list("nodes", {4, 8, 16, 32, 64});
  print_header("Figure 7: impact of the I/O optimizations (matrix M5)",
               "Figure 7");

  const ScaledSetup setup = scaled_setup(kM5, scale);
  std::printf("M5 scaled 1/%.0f -> order %lld, nb %lld\n\n", scale,
              static_cast<long long>(setup.n),
              static_cast<long long>(setup.nb));

  TextTable table({"Nodes", "T_opt (min)", "no sep. files (ratio)",
                   "no block wrap (ratio)"});

  bool sep_grows = true, wrap_grows = true;
  double prev_sep = 0.0, prev_wrap = 0.0;
  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    const int nodes = static_cast<int>(node_counts[ni]);
    core::InversionOptions optimized;
    const MrRun base =
        run_mapreduce(setup, nodes, optimized, 1, nullptr, ni == 0);
    if (ni == 0) MRI_CHECK_MSG(base.residual < 1e-5, "accuracy check failed");
    export_run_artifacts(cli, base);  // --trace-out / --report-out

    core::InversionOptions no_sep;
    no_sep.separate_intermediate_files = false;
    const MrRun without_sep =
        run_mapreduce(setup, nodes, no_sep, 1, nullptr, false);

    core::InversionOptions no_wrap;
    no_wrap.block_wrap = false;
    const MrRun without_wrap =
        run_mapreduce(setup, nodes, no_wrap, 1, nullptr, false);

    const double sep_ratio = without_sep.paper_seconds / base.paper_seconds;
    const double wrap_ratio = without_wrap.paper_seconds / base.paper_seconds;
    table.add_row({cell_int(nodes), cell(base.paper_seconds / 60.0, 1),
                   cell(sep_ratio, 3), cell(wrap_ratio, 3)});
    if (ni > 0) {
      sep_grows = sep_grows && sep_ratio >= prev_sep - 0.02;
      wrap_grows = wrap_grows && wrap_ratio >= prev_wrap - 0.02;
    }
    prev_sep = sep_ratio;
    prev_wrap = wrap_ratio;
  }
  table.print();

  std::printf("\nseparate-files penalty grows with nodes: %s\n",
              sep_grows ? "yes (as in the paper)" : "NO (unexpected)");
  std::printf("block-wrap benefit grows with nodes:     %s\n",
              wrap_grows ? "yes (as in the paper)" : "NO (unexpected)");
  return 0;
}
