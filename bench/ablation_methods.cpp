// Ablation (§2 / §4.2): why block LU and not Gauss-Jordan, QR or SVD.
//
// Two halves of the paper's argument, measured:
//  * all methods cost Θ(n³) flops on a single node (comparable kernel
//    times), so the choice is not about arithmetic;
//  * the pipeline length differs drastically: Gauss-Jordan and QR proceed
//    one vector at a time (n sequential MapReduce jobs), block LU one block
//    at a time (~n/nb jobs) — at Hadoop launch costs this is the whole game.
#include "harness.hpp"

#include "common/stopwatch.hpp"
#include "linalg/gauss_jordan.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 320);
  print_header("Ablation: inversion-method choice (§2, §4.2)", "§2/§4.2");

  // --- single-node kernel timings ------------------------------------------
  const Matrix a = random_matrix(n, 1);
  auto time_of = [&](auto&& fn) {
    Stopwatch sw;
    fn();
    return sw.seconds();
  };
  const double t_lu = time_of([&] { invert_via_lu(a); });
  const double t_gj = time_of([&] { gauss_jordan_invert(a); });
  const double t_qr = time_of([&] { qr_invert(a); });

  TextTable kernels({"Method", "Single-node seconds", "Flops (model)"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "n=%lld", static_cast<long long>(n));
  kernels.add_row({"LU + triangular inverses", cell(t_lu, 3), "2 n^3 (2/3+2/3+2/3)"});
  kernels.add_row({"Gauss-Jordan", cell(t_gj, 3), "2 n^3"});
  kernels.add_row({"Householder QR + R^-1 Q^T", cell(t_qr, 3), "~3 n^3"});
  kernels.print();

  // --- pipeline lengths -----------------------------------------------------
  std::printf("\nMapReduce pipeline lengths (nb = 3200):\n\n");
  TextTable pipeline({"Matrix", "Order", "Block LU jobs", "Gauss-Jordan jobs",
                      "QR jobs"});
  for (const PaperMatrix& m : {kM1, kM2, kM3, kM4, kM5}) {
    pipeline.add_row({m.name, cell_int(m.order),
                      cell_int(core::InversionPlan::make(m.order, kPaperNb, 64)
                                   .total_jobs),
                      cell_int(gauss_jordan_pipeline_steps(m.order)),
                      cell_int(qr_pipeline_steps(m.order))});
  }
  pipeline.print();

  const double launch = CostModel::ec2_medium().job_launch_seconds;
  std::printf("\nAt ~%.0f s of launch overhead per Hadoop job, a 10^5-order "
              "Gauss-Jordan pipeline pays %.0f days in job launches alone;\n"
              "the paper's 33-job block-LU pipeline pays %.1f minutes.\n",
              launch, 100000.0 * launch / 86400.0, 33.0 * launch / 60.0);
  return 0;
}
