// §7.4 fault tolerance under the chaos engine: node loss, re-replication,
// recompute waves.
//
// The paper's claim: one failed mapper stretched a 5-hour M4 inversion to
// 8 hours (~1.6x), yet the run completed with a correct inverse — the
// MapReduce recovery story ScaLAPACK/MPI cannot match. This bench replays
// that claim with whole-node faults instead of one ghost attempt:
//
//   single_kill — clean baseline, then the same inversion with one node
//                 killed mid-run (inside a job's reduce window, so the dead
//                 node's completed map outputs must be recomputed). Asserts
//                 the stretch lands in [1.2, 2.5] around the paper's 1.6x
//                 and the recovered inverse still meets the residual bound.
//   sweep       — MTBF-driven seeded fault sampling at increasing failure
//                 rates: recovery overhead vs. failure rate, including runs
//                 that legitimately die when too many nodes are lost.
//   unrecoverable — replication=1 DFS plus a node kill: every replica of
//                 the dead node's blocks is gone, so the run must fail
//                 fast with UnrecoverableBlock instead of hanging.
//   deterministic — two same-seed single-kill runs must produce
//                 bit-identical run reports.
//
// Emits BENCH_pr5.json (--out PATH). --probe runs the same scenarios on a
// small matrix for the CI smoke step.
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "harness.hpp"
#include "sim/chaos.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct ChaosRun {
  bool completed = false;
  std::string error;              // empty when completed
  double sim_seconds = 0.0;
  double paper_hours = 0.0;
  double residual = 0.0;
  int tasks_recomputed = 0;
  int attempts_killed = 0;
  RecoveryStats stats;            // engine side: kills, re-replication
  std::vector<mr::JobResult> jobs;
  std::string report_json;        // run-report JSON (determinism check)
};

/// One inversion on a fresh cluster/DFS/engine. The engine's applied-event
/// state is monotonic, so every run builds its own engine; a chaos-free run
/// is just an empty schedule.
ChaosRun run_chaos(const ScaledSetup& s, int nodes, std::uint64_t matrix_seed,
                   const ChaosOptions& chaos_options,
                   const std::vector<ChaosEvent>& events, bool verify,
                   int replication = 3) {
  MetricsRegistry metrics;
  Cluster cluster(nodes, s.model);
  dfs::DfsConfig dfs_config;
  dfs_config.replication = replication;
  dfs::Dfs fs(nodes, dfs_config, &metrics);
  ThreadPool pool(4);

  ChaosEngine chaos(chaos_options);
  for (const ChaosEvent& event : events) chaos.add_event(event);
  if (chaos_options.mtbf_seconds > 0.0) chaos.sample_faults(nodes);
  fs.bind_chaos(&chaos, s.model.network_bandwidth);

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                   &chaos);
  core::InversionOptions opts;
  opts.nb = s.nb;
  const Matrix a = random_matrix(s.n, matrix_seed);

  ChaosRun run;
  try {
    core::MapReduceInverter::Result result = inverter.invert(a, opts);
    run.completed = true;
    run.sim_seconds = result.report.sim_seconds;
    run.paper_hours = to_paper_seconds(run.sim_seconds, s.scale) / 3600.0;
    run.residual = verify ? inversion_residual(a, result.inverse) : 0.0;
    run.jobs = result.jobs;
    for (const mr::JobResult& job : run.jobs) {
      run.tasks_recomputed += job.tasks_recomputed;
      run.attempts_killed += job.chaos_attempts_killed;
    }
    run.report_json = run_report_json(mr::build_run_report(
        result.jobs, cluster, &metrics, result.master_spans, &chaos));
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.stats = chaos.stats();
  return run;
}

/// Picks a kill time inside a reduce window roughly `fraction` of the way
/// through a clean run: the dead node then holds completed map outputs (a
/// recompute wave is forced) and the remaining ~1-fraction of the run pays
/// the shrunken slot pool — together the paper's "restarted when another
/// mapper finished" stretch.
double pick_kill_time(const ChaosRun& clean, double fraction) {
  const double target = fraction * clean.sim_seconds;
  double best = -1.0;
  double best_distance = 0.0;
  for (const mr::JobResult& job : clean.jobs) {
    if (job.reduce_phase_seconds <= 0.0) continue;
    const double launch = job.sim_seconds - job.map_phase_seconds -
                          job.reduce_phase_seconds - job.recovery_seconds;
    const double reduce_start =
        job.start_seconds + launch + job.map_phase_seconds;
    const double at = reduce_start + 0.25 * job.reduce_phase_seconds;
    const double distance = std::abs(at - target);
    if (best < 0.0 || distance < best_distance) {
      best = at;
      best_distance = distance;
    }
  }
  MRI_REQUIRE(best >= 0.0, "clean run has no job with a reduce phase");
  return best;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const bool probe = cli.get_bool("probe", false);
  const int nodes = cli.get_int("nodes", 4);
  const double scale = cli.get_double("scale", 64.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("chaos-seed", 7));
  const std::string out = cli.get_string("out", "BENCH_pr5.json");
  const double residual_bound = 1e-8;  // §7.2: double precision stays ~1e-12

  print_header("§7.4 fault tolerance: node loss, re-replication, recovery",
               "§7.4");

  // Probe: the smallest paper matrix, seconds of real compute — the CI
  // smoke scenario. Full: M4, the matrix the paper's 5h→8h story is about.
  const ScaledSetup setup = scaled_setup(probe ? kM5 : kM4, scale);
  std::printf("%s at 1/%.0f scale: order %lld, nb %lld, %d nodes%s\n\n",
              probe ? "M5" : "M4", scale, static_cast<long long>(setup.n),
              static_cast<long long>(setup.nb), nodes,
              probe ? " (probe mode)" : "");

  // ---- 1. single kill vs. clean baseline ----------------------------------
  const ChaosRun clean = run_chaos(setup, nodes, seed, {}, {}, true);
  MRI_REQUIRE(clean.completed, "clean baseline failed: " << clean.error);
  std::printf("clean run      : %.2f paper-hours, residual %.2e\n",
              clean.paper_hours, clean.residual);

  // Kill a worker ~40%% of the way through: the recompute wave plus the
  // remaining run on nodes-1 workers lands the stretch near the paper's
  // 8h/5h = 1.6x.
  const int kill_node = nodes - 1;
  const double kill_at = pick_kill_time(clean, 0.4);
  ChaosOptions kill_options;
  kill_options.seed = seed;
  const std::vector<ChaosEvent> kill_events = {
      {ChaosEventKind::kKillNode, kill_at, kill_node, 1.0}};
  const ChaosRun killed =
      run_chaos(setup, nodes, seed, kill_options, kill_events, true);
  MRI_REQUIRE(killed.completed,
              "single-kill run did not recover: " << killed.error);
  const double stretch = killed.paper_hours / clean.paper_hours;
  std::printf("node %d killed @ %.4f sim-s: %.2f paper-hours (%.2fx), "
              "residual %.2e\n",
              kill_node, kill_at, killed.paper_hours, stretch,
              killed.residual);
  std::printf("recovery       : %d task(s) recomputed, %d attempt(s) killed, "
              "%llu bytes re-replicated, %d block(s) lost\n",
              killed.tasks_recomputed, killed.attempts_killed,
              static_cast<unsigned long long>(killed.stats.re_replicated_bytes),
              killed.stats.blocks_lost);

  const bool stretch_ok = stretch >= 1.2 && stretch <= 2.5;
  const bool residual_ok =
      clean.residual < residual_bound && killed.residual < residual_bound;
  const bool recovery_ok = killed.tasks_recomputed > 0 &&
                           killed.stats.re_replicated_bytes > 0 &&
                           killed.stats.blocks_lost == 0;

  // ---- 2. determinism: same seed, same schedule, same report --------------
  const ChaosRun killed2 =
      run_chaos(setup, nodes, seed, kill_options, kill_events, true);
  const bool deterministic =
      killed2.completed && killed2.report_json == killed.report_json;
  std::printf("deterministic  : %s (same-seed reports %s)\n",
              deterministic ? "yes" : "NO",
              deterministic ? "bit-identical" : "DIFFER");

  // ---- 3. failure-rate sweep (MTBF-driven sampling) -----------------------
  // Per-node MTBF from "one failure expected per ~k clean runtimes" down to
  // "every node expected to fail once per run". High-rate points may
  // legitimately fail (too many nodes dead); that is part of the curve.
  const std::vector<double> mtbf_multipliers =
      probe ? std::vector<double>{8.0, 1.0}
            : std::vector<double>{8.0, 4.0, 2.0, 1.0};
  struct SweepPoint {
    double mtbf_sim = 0.0;
    ChaosRun run;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\nMTBF sweep (horizon = clean runtime %.4f sim-s):\n",
              clean.sim_seconds);
  for (double multiplier : mtbf_multipliers) {
    SweepPoint point;
    point.mtbf_sim = multiplier * clean.sim_seconds;
    ChaosOptions sample;
    sample.seed = seed;
    sample.mtbf_seconds = point.mtbf_sim;
    sample.horizon_seconds = clean.sim_seconds;
    sample.degrade_fraction = 0.3;
    point.run = run_chaos(setup, nodes, seed, sample, {}, true);
    const ChaosRun& r = point.run;
    if (r.completed) {
      std::printf("  mtbf %4.1fx runtime: %d killed, %d degraded, %d "
                  "recomputed -> %.2f h (%.2fx), residual %.2e\n",
                  multiplier, r.stats.nodes_killed, r.stats.nodes_degraded,
                  r.tasks_recomputed, r.paper_hours,
                  r.paper_hours / clean.paper_hours, r.residual);
    } else {
      std::printf("  mtbf %4.1fx runtime: %d killed -> did not survive "
                  "(%s)\n",
                  multiplier, r.stats.nodes_killed,
                  r.error.substr(0, 60).c_str());
    }
    sweep.push_back(std::move(point));
  }
  bool sweep_residuals_ok = true;
  for (const SweepPoint& p : sweep) {
    if (p.run.completed && p.run.residual >= residual_bound)
      sweep_residuals_ok = false;
  }

  // ---- 4. all replicas lost must fail fast --------------------------------
  // replication=1: the dead node's blocks have no surviving replica, so the
  // run must surface UnrecoverableBlock instead of hanging or fabricating
  // zeros.
  const ChaosRun lost = run_chaos(setup, nodes, seed, kill_options,
                                  kill_events, false, /*replication=*/1);
  const bool failed_fast =
      !lost.completed &&
      lost.error.find("nrecoverable") != std::string::npos;
  std::printf("\nreplication=1 + kill: %s\n",
              failed_fast ? "failed fast with UnrecoverableBlock"
                          : "DID NOT fail as expected");

  std::printf("\nstretch in [1.2, 2.5]   : %s (%.2fx, paper 1.6x)\n",
              stretch_ok ? "yes" : "NO", stretch);
  std::printf("residuals under %.0e  : %s\n", residual_bound,
              residual_ok && sweep_residuals_ok ? "yes" : "NO");
  std::printf("recovery counters > 0   : %s\n", recovery_ok ? "yes" : "NO");

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"matrix\":\"" << (probe ? "M5" : "M4")
       << "\",\"order\":" << setup.n << ",\"nb\":" << setup.nb
       << ",\"nodes\":" << nodes << ",\"scale\":" << scale
       << ",\"seed\":" << seed << ",\"probe\":" << (probe ? "true" : "false")
       << "},\"single_kill\":{\"clean_hours\":" << clean.paper_hours
       << ",\"kill_hours\":" << killed.paper_hours
       << ",\"stretch\":" << stretch << ",\"kill_node\":" << kill_node
       << ",\"kill_at_sim_seconds\":" << kill_at
       << ",\"residual_clean\":" << clean.residual
       << ",\"residual_kill\":" << killed.residual
       << ",\"tasks_recomputed\":" << killed.tasks_recomputed
       << ",\"attempts_killed\":" << killed.attempts_killed
       << ",\"re_replicated_bytes\":" << killed.stats.re_replicated_bytes
       << ",\"re_replicated_blocks\":" << killed.stats.re_replicated_blocks
       << ",\"blocks_lost\":" << killed.stats.blocks_lost
       << ",\"stretch_in_range\":" << (stretch_ok ? "true" : "false")
       << "},\"sweep\":[";
  bool first = true;
  for (const SweepPoint& p : sweep) {
    if (!first) json << ',';
    first = false;
    json << "{\"mtbf_over_runtime\":" << (p.mtbf_sim / clean.sim_seconds)
         << ",\"completed\":" << (p.run.completed ? "true" : "false")
         << ",\"nodes_killed\":" << p.run.stats.nodes_killed
         << ",\"nodes_degraded\":" << p.run.stats.nodes_degraded
         << ",\"tasks_recomputed\":" << p.run.tasks_recomputed
         << ",\"re_replicated_bytes\":" << p.run.stats.re_replicated_bytes;
    if (p.run.completed) {
      json << ",\"hours\":" << p.run.paper_hours
           << ",\"residual\":" << p.run.residual;
    } else {
      json << ",\"error\":\"" << json_escape(p.run.error.substr(0, 120))
           << "\"";
    }
    json << "}";
  }
  json << "],\"unrecoverable\":{\"replication\":1,\"failed_fast\":"
       << (failed_fast ? "true" : "false") << ",\"error\":\""
       << json_escape(lost.error.substr(0, 120))
       << "\"},\"deterministic\":" << (deterministic ? "true" : "false")
       << ",\"residual_bound\":" << residual_bound << "}";

  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("results written to %s\n", out.c_str());

  return stretch_ok && residual_ok && sweep_residuals_ok && recovery_ok &&
                 deterministic && failed_fast
             ? 0
             : 1;
}
