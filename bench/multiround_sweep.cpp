// Multi-round multiply sweep: the space-round tradeoff behind
// --multiply-strategy multiround (after the replication-parameterized
// schemes of arXiv:1111.2228 / 1408.2858).
//
// Sweeps the replication factor r at fixed m0 and records, per point, the
// round count, shuffle bytes moved through the pipeline, the peak per-task
// operand footprint from the MultiplyPlan, and the residual against the
// block-wrap product. Emits BENCH_pr9.json (see --out); the multiround-sweep
// CI job validates the schema and asserts the monotone tradeoff:
// rounds and total bytes fall as r grows while peak task bytes rise.
#include "harness.hpp"

#include <cinttypes>
#include <sstream>
#include <vector>

#include "core/multiply_strategy.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct SweepFixture {
  explicit SweepFixture(int m0)
      : cluster(m0, CostModel::ec2_medium()),
        fs(m0, dfs::DfsConfig{}, &metrics),
        pool(4),
        runner(&cluster, &fs, &pool, nullptr, &metrics),
        pipeline(&runner) {
    for (int j = 0; j < m0; ++j) {
      const std::string p = "/Root/MapInput/A." + std::to_string(j);
      fs.write_text(p, std::to_string(j));
      control_files.push_back(p);
    }
  }

  MetricsRegistry metrics;
  Cluster cluster;
  dfs::Dfs fs;
  ThreadPool pool;
  mr::JobRunner runner;
  mr::Pipeline pipeline;
  std::vector<std::string> control_files;
};

struct SweepPoint {
  int replication = 0;
  core::MultiplyPlan plan;
  int jobs = 0;
  IoStats io;
  double max_abs_diff_vs_wrap = 0.0;
  double sim_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const int m0 = cli.get_int("m0", 8);
  const Index n = cli.get_int("n", 128);
  const std::string out = cli.get_string("out", "BENCH_pr9.json");
  print_header("Multi-round multiply: replication vs rounds (ext.)", "§6.2");

  const Matrix a = random_matrix(n, n, /*seed=*/1, -1, 1);
  const Matrix b = random_matrix(n, n, /*seed=*/2, -1, 1);
  const Matrix exact = matmul(a, b);

  // Block-wrap baseline: one job, every reducer reads full operand slabs.
  SweepFixture wrap_fx(m0);
  core::MultiplyPlan wrap_plan;
  const Matrix wrap =
      core::mapreduce_multiply(&wrap_fx.pipeline, &wrap_fx.fs, m0, a, b,
                               "/Root", wrap_fx.control_files, {}, {},
                               &wrap_plan);
  const IoStats wrap_io = wrap_fx.pipeline.total_io();
  const double wrap_residual = max_abs_diff(wrap, exact);

  // Sweep replication factors: 1 (fully chained) .. m0 (one wrap-like round).
  std::vector<int> factors;
  for (int r = 1; r <= m0; r *= 2) factors.push_back(r);
  if (factors.back() != m0) factors.push_back(m0);

  std::vector<SweepPoint> points;
  for (const int r : factors) {
    SweepFixture fx(m0);
    SweepPoint p;
    p.replication = r;
    const Matrix c = core::mapreduce_multiply(
        &fx.pipeline, &fx.fs, m0, a, b, "/Root", fx.control_files,
        core::MultiplyStrategyOptions{core::MultiplyStrategyKind::kMultiRound,
                                      r},
        {}, &p.plan);
    p.jobs = fx.pipeline.job_count();
    p.io = fx.pipeline.total_io();
    p.max_abs_diff_vs_wrap = max_abs_diff(c, wrap);
    for (const mr::JobResult& j : fx.pipeline.jobs())
      p.sim_seconds += j.sim_seconds;
    points.push_back(p);
  }

  TextTable table({"r", "Rounds", "Jobs", "Read", "Written", "Peak task",
                   "vs wrap"});
  for (const SweepPoint& p : points) {
    std::ostringstream diff;
    diff << p.max_abs_diff_vs_wrap;
    table.add_row({std::to_string(p.replication), std::to_string(p.plan.rounds),
                   std::to_string(p.jobs), format_bytes(p.io.bytes_read),
                   format_bytes(p.io.bytes_written),
                   format_bytes(p.plan.peak_task_bytes), diff.str()});
  }
  table.print();
  std::printf("\nwrap baseline: 1 job, %s read, %s written, peak task %s, "
              "residual %.3g\n",
              format_bytes(wrap_io.bytes_read).c_str(),
              format_bytes(wrap_io.bytes_written).c_str(),
              format_bytes(wrap_plan.peak_task_bytes).c_str(), wrap_residual);

  // Headline checks mirrored by the CI validator.
  bool rounds_monotone = true, bytes_monotone = true, peak_monotone = true;
  bool residuals_ok = wrap_residual < 1e-10;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].max_abs_diff_vs_wrap > 1e-11) residuals_ok = false;
    if (i == 0) continue;
    const std::uint64_t total =
        points[i].io.bytes_read + points[i].io.bytes_written;
    const std::uint64_t prev_total =
        points[i - 1].io.bytes_read + points[i - 1].io.bytes_written;
    rounds_monotone &= points[i].plan.rounds < points[i - 1].plan.rounds;
    bytes_monotone &= total < prev_total;
    peak_monotone &=
        points[i].plan.peak_task_bytes >= points[i - 1].plan.peak_task_bytes;
  }
  std::printf("rounds monotone down: %s, shuffle bytes monotone down: %s, "
              "peak task bytes monotone up: %s, residuals ok: %s\n",
              rounds_monotone ? "yes" : "NO", bytes_monotone ? "yes" : "NO",
              peak_monotone ? "yes" : "NO", residuals_ok ? "yes" : "NO");

  std::ostringstream json;
  json << "{\"bench\":\"multiround_sweep\",\"n\":" << n << ",\"m0\":" << m0
       << ",\"wrap\":{\"jobs\":1,\"rounds\":" << wrap_plan.rounds
       << ",\"grid_rows\":" << wrap_plan.grid_rows
       << ",\"grid_cols\":" << wrap_plan.grid_cols
       << ",\"bytes_read\":" << wrap_io.bytes_read
       << ",\"bytes_written\":" << wrap_io.bytes_written
       << ",\"total_bytes\":" << (wrap_io.bytes_read + wrap_io.bytes_written)
       << ",\"peak_task_bytes\":" << wrap_plan.peak_task_bytes
       << ",\"residual\":" << wrap_residual << "},\"sweep\":[";
  bool first = true;
  for (const SweepPoint& p : points) {
    if (!first) json << ',';
    first = false;
    json << "{\"replication\":" << p.replication
         << ",\"rounds\":" << p.plan.rounds << ",\"jobs\":" << p.jobs
         << ",\"segments\":" << p.plan.segments
         << ",\"bytes_read\":" << p.io.bytes_read
         << ",\"bytes_written\":" << p.io.bytes_written
         << ",\"total_bytes\":" << (p.io.bytes_read + p.io.bytes_written)
         << ",\"peak_task_bytes\":" << p.plan.peak_task_bytes
         << ",\"sim_seconds\":" << p.sim_seconds
         << ",\"max_abs_diff_vs_wrap\":" << p.max_abs_diff_vs_wrap << "}";
  }
  json << "],\"headline\":{\"rounds_monotone_down\":"
       << (rounds_monotone ? "true" : "false")
       << ",\"total_bytes_monotone_down\":" << (bytes_monotone ? "true" : "false")
       << ",\"peak_task_bytes_monotone_up\":" << (peak_monotone ? "true" : "false")
       << ",\"residuals_ok\":" << (residuals_ok ? "true" : "false") << "}}";

  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("results written to %s\n", out.c_str());

  return rounds_monotone && bytes_monotone && peak_monotone && residuals_ok
             ? 0
             : 1;
}
