// Flow-level network model: oversubscription sweep and rack-aware placement.
//
// The paper's shuffle-bound regions (Fig 6-8) were measured on EC2, where
// the fabric between racks is oversubscribed and shuffle cost is set by
// link contention rather than a per-node scalar bandwidth. This bench pins
// down the three properties the topology-aware model must have:
//
//   flat_identical — attaching a flat Topology is a no-op: the run report
//                    is STRING-IDENTICAL to a run with no topology at all
//                    (the scalar code path is untouched).
//   oversub sweep  — on a racked fabric with hash (rack-oblivious)
//                    placement, squeezing the rack uplinks (1:1 -> 8:1)
//                    stretches the shuffle-heavy reduce phases; at >= 4:1
//                    the stretch must exceed 1.3x the scalar baseline.
//   rack_aware     — HDFS-style rack-aware placement + dispatch at the same
//                    4:1 oversubscription measurably shrinks both the
//                    cross-rack byte volume and the reduce-phase stretch.
//
// Emits BENCH_pr6.json (--out PATH). --probe runs a smaller matrix for the
// CI smoke step. Exit code = number of failed assertions.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "net/topology.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct NetRun {
  double sim_seconds = 0.0;
  double paper_hours = 0.0;
  double map_seconds = 0.0;     // sum of map phases over jobs
  double reduce_seconds = 0.0;  // sum of reduce phases (the shuffle side)
  double residual = 0.0;
  NetworkReport network;        // config + locality counters + link loads
  double peak_uplink_utilization = 0.0;
  std::string report_json;      // for the flat-identical check
};

/// One inversion on a fresh cluster/DFS, optionally under a topology. The
/// same Topology object is attached to both the Cluster (flow-level phase
/// costing) and the Dfs (placement + transfer endpoints).
NetRun run_net(const ScaledSetup& s, int nodes,
               std::shared_ptr<const net::Topology> topo, bool verify) {
  MetricsRegistry metrics;
  Cluster cluster(nodes, s.model);
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  if (topo != nullptr) {
    cluster.set_topology(topo);
    fs.set_topology(topo);
  }

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics);
  core::InversionOptions opts;
  opts.nb = s.nb;
  const Matrix a = random_matrix(s.n, /*seed=*/1);
  core::MapReduceInverter::Result result = inverter.invert(a, opts);

  NetRun run;
  run.sim_seconds = result.report.sim_seconds;
  run.paper_hours = to_paper_seconds(run.sim_seconds, s.scale) / 3600.0;
  for (const mr::JobResult& job : result.jobs) {
    run.map_seconds += job.map_phase_seconds;
    run.reduce_seconds += job.reduce_phase_seconds;
  }
  run.residual = verify ? inversion_residual(a, result.inverse) : 0.0;
  const RunReport report = mr::build_run_report(result.jobs, cluster,
                                                &metrics, result.master_spans);
  run.network = report.network;
  for (const LinkReport& link : report.network.links) {
    if (link.name.find("rack") == 0 &&
        link.name.find(":up") != std::string::npos) {
      run.peak_uplink_utilization =
          std::max(run.peak_uplink_utilization, link.peak_utilization);
    }
  }
  run.report_json = run_report_json(report);
  return run;
}

std::shared_ptr<const net::Topology> make_topology(int nodes, double bandwidth,
                                                   int racks, double oversub,
                                                   bool rack_aware) {
  net::TopologyOptions o;
  o.kind = net::TopologyKind::kRacked;
  o.racks = racks;
  o.oversubscription = oversub;
  o.rack_aware_placement = rack_aware;
  return std::make_shared<const net::Topology>(nodes, bandwidth, o);
}

void append_network_json(std::ostringstream& json, const NetRun& r) {
  json << "\"node_local_bytes\":" << r.network.node_local_bytes
       << ",\"rack_local_bytes\":" << r.network.rack_local_bytes
       << ",\"cross_rack_bytes\":" << r.network.cross_rack_bytes
       << ",\"rack_local_attempts\":" << r.network.rack_local_attempts
       << ",\"cross_rack_attempts\":" << r.network.cross_rack_attempts
       << ",\"peak_uplink_utilization\":" << r.peak_uplink_utilization;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const bool probe = cli.get_bool("probe", false);
  const int nodes = cli.get_int("nodes", 8);
  const int racks = cli.get_int("racks", 4);
  const double scale = cli.get_double("scale", 64.0);
  const std::string out = cli.get_string("out", "BENCH_pr6.json");
  const double residual_bound = 1e-8;

  print_header("flow-level network model: oversubscription and rack "
               "awareness", "§7.4");

  ScaledSetup setup = scaled_setup(probe ? kM5 : kM2, scale);
  // The EC2 presets model disk and network at the same rate, which buries
  // shuffle under compute at this scale. Contention questions are about a
  // fabric that is scarcer than local disks (the 1 GbE-vs-striped-disks
  // clusters the paper ran on), so the bench thins the network by a
  // configurable factor — applied identically to the scalar baseline and
  // every topology run, so stretches stay apples-to-apples.
  const double net_divisor = cli.get_double("net-divisor", 4.0);
  setup.model.network_bandwidth /= net_divisor;
  std::printf("%s at 1/%.0f scale: order %lld, nb %lld, %d nodes, %d racks%s\n\n",
              probe ? "M5" : "M2", scale, static_cast<long long>(setup.n),
              static_cast<long long>(setup.nb), nodes, racks,
              probe ? " (probe mode)" : "");

  // ---- 1. flat topology must reproduce the scalar model bit-identically ---
  const NetRun baseline = run_net(setup, nodes, nullptr, true);
  const NetRun flat = run_net(
      setup, nodes,
      std::make_shared<const net::Topology>(nodes,
                                            setup.model.network_bandwidth),
      false);
  const bool flat_identical = flat.report_json == baseline.report_json;
  std::printf("scalar baseline : %.4f sim-s (%.2f paper-hours), residual "
              "%.2e\n", baseline.sim_seconds, baseline.paper_hours,
              baseline.residual);
  std::printf("flat topology   : report %s\n",
              flat_identical ? "bit-identical to baseline"
                             : "DIFFERS from baseline");

  // ---- 2. oversubscription sweep, hash placement --------------------------
  const std::vector<double> oversubs =
      probe ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{1.0, 2.0, 4.0, 8.0};
  struct SweepPoint {
    double oversub = 0.0;
    NetRun run;
  };
  std::vector<SweepPoint> sweep;
  std::printf("\noversubscription sweep (rack-oblivious hash placement):\n");
  for (double oversub : oversubs) {
    SweepPoint p;
    p.oversub = oversub;
    p.run = run_net(setup, nodes,
                    make_topology(nodes, setup.model.network_bandwidth, racks,
                                  oversub, /*rack_aware=*/false),
                    false);
    std::printf("  %3.0f:1 -> shuffle %.4f s (%.2fx), total %.4f s (%.2fx), "
                "peak uplink %.0f%%\n",
                oversub, p.run.reduce_seconds,
                p.run.reduce_seconds / baseline.reduce_seconds,
                p.run.sim_seconds, p.run.sim_seconds / baseline.sim_seconds,
                100.0 * p.run.peak_uplink_utilization);
    sweep.push_back(std::move(p));
  }
  const SweepPoint& contended =
      *std::find_if(sweep.begin(), sweep.end(),
                    [](const SweepPoint& p) { return p.oversub == 4.0; });
  const double stretch4 = contended.run.reduce_seconds / baseline.reduce_seconds;
  const bool stretch_ok = stretch4 >= 1.3;

  // The sweep must be monotone in spirit: the tightest fabric is at least
  // as slow as the non-blocking one.
  const bool sweep_ordered =
      sweep.back().run.reduce_seconds >= sweep.front().run.reduce_seconds;

  // ---- 3. rack-aware placement at the contended point ----------------------
  const NetRun aware = run_net(
      setup, nodes,
      make_topology(nodes, setup.model.network_bandwidth, racks, 4.0,
                    /*rack_aware=*/true),
      true);
  const double stretch4_aware = aware.reduce_seconds / baseline.reduce_seconds;
  std::printf("\nrack-aware @ 4:1 -> shuffle %.4f s (%.2fx vs %.2fx "
              "oblivious), cross-rack %.1f MB vs %.1f MB\n",
              aware.reduce_seconds, stretch4_aware, stretch4,
              static_cast<double>(aware.network.cross_rack_bytes) / 1e6,
              static_cast<double>(contended.run.network.cross_rack_bytes) /
                  1e6);
  const bool aware_reduces_stretch =
      aware.reduce_seconds < contended.run.reduce_seconds;
  const bool aware_reduces_bytes =
      aware.network.cross_rack_bytes <
      contended.run.network.cross_rack_bytes;
  const bool residual_ok = baseline.residual < residual_bound &&
                           aware.residual < residual_bound;
  const bool counters_ok = contended.run.network.cross_rack_bytes > 0 &&
                           aware.network.node_local_bytes > 0 &&
                           contended.run.peak_uplink_utilization > 0.0;

  std::printf("\nflat reproduces scalar    : %s\n",
              flat_identical ? "yes" : "NO");
  std::printf("stretch @ 4:1 >= 1.3x     : %s (%.2fx)\n",
              stretch_ok ? "yes" : "NO", stretch4);
  std::printf("rack-aware cuts stretch   : %s (%.2fx -> %.2fx)\n",
              aware_reduces_stretch ? "yes" : "NO", stretch4, stretch4_aware);
  std::printf("rack-aware cuts x-rack B  : %s\n",
              aware_reduces_bytes ? "yes" : "NO");
  std::printf("residuals under %.0e    : %s\n", residual_bound,
              residual_ok ? "yes" : "NO");
  std::printf("locality counters sane    : %s\n", counters_ok ? "yes" : "NO");

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"matrix\":\"" << (probe ? "M5" : "M2")
       << "\",\"order\":" << setup.n << ",\"nb\":" << setup.nb
       << ",\"nodes\":" << nodes << ",\"racks\":" << racks
       << ",\"scale\":" << scale
       << ",\"probe\":" << (probe ? "true" : "false")
       << "},\"baseline\":{\"sim_seconds\":" << baseline.sim_seconds
       << ",\"map_seconds\":" << baseline.map_seconds
       << ",\"reduce_seconds\":" << baseline.reduce_seconds
       << ",\"paper_hours\":" << baseline.paper_hours
       << ",\"residual\":" << baseline.residual
       << "},\"flat_identical\":" << (flat_identical ? "true" : "false")
       << ",\"sweep\":[";
  bool first = true;
  for (const SweepPoint& p : sweep) {
    if (!first) json << ',';
    first = false;
    json << "{\"oversubscription\":" << p.oversub
         << ",\"sim_seconds\":" << p.run.sim_seconds
         << ",\"reduce_seconds\":" << p.run.reduce_seconds
         << ",\"shuffle_stretch\":"
         << (p.run.reduce_seconds / baseline.reduce_seconds)
         << ",\"total_stretch\":"
         << (p.run.sim_seconds / baseline.sim_seconds) << ",";
    append_network_json(json, p.run);
    json << "}";
  }
  json << "],\"rack_aware\":{\"oversubscription\":4"
       << ",\"sim_seconds\":" << aware.sim_seconds
       << ",\"reduce_seconds\":" << aware.reduce_seconds
       << ",\"shuffle_stretch\":" << stretch4_aware
       << ",\"residual\":" << aware.residual << ",";
  append_network_json(json, aware);
  json << "},\"assertions\":{\"flat_identical\":"
       << (flat_identical ? "true" : "false")
       << ",\"stretch_at_4x_over_1_3\":" << (stretch_ok ? "true" : "false")
       << ",\"sweep_ordered\":" << (sweep_ordered ? "true" : "false")
       << ",\"rack_aware_reduces_stretch\":"
       << (aware_reduces_stretch ? "true" : "false")
       << ",\"rack_aware_reduces_cross_rack_bytes\":"
       << (aware_reduces_bytes ? "true" : "false")
       << ",\"residuals_ok\":" << (residual_ok ? "true" : "false")
       << ",\"counters_ok\":" << (counters_ok ? "true" : "false") << "}}";

  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("\nresults written to %s\n", out.c_str());

  int failed = 0;
  for (bool ok : {flat_identical, stretch_ok, sweep_ordered,
                  aware_reduces_stretch, aware_reduces_bytes, residual_ok,
                  counters_ok}) {
    if (!ok) ++failed;
  }
  return failed;
}
