// Shared harness for the table/figure reproduction binaries.
//
// Scaling: the paper's experiments run at orders 16384–102400 with nb=3200
// on up to 128 EC2 instances. We run the same pipelines on matrices shrunk
// by a linear factor S (default 32) with nb shrunk identically, under
// CostModel::scaled_down(S) — which makes the simulated time of the scaled
// run *exactly* 1/S³ of a full-scale run under the unscaled model (see
// sim/cost_model.hpp). Every bench therefore reports
//     paper-scale time = simulated seconds × S³
// and all curve shapes (scalability, ratios, crossovers) are preserved
// exactly. Real computation still runs, so every bench also verifies the
// §7.2 residual.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/inverter.hpp"
#include "mapreduce/trace_export.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "scalapack/invert.hpp"

namespace mri::bench {

/// The paper's five evaluation matrices (Table 3).
struct PaperMatrix {
  const char* name;
  Index order;
};
inline constexpr PaperMatrix kM1{"M1", 20480};
inline constexpr PaperMatrix kM2{"M2", 32768};
inline constexpr PaperMatrix kM3{"M3", 40960};
inline constexpr PaperMatrix kM4{"M4", 102400};
inline constexpr PaperMatrix kM5{"M5", 16384};

inline constexpr Index kPaperNb = 3200;

struct ScaledSetup {
  double scale = 32.0;      // linear shrink factor S
  Index n = 0;              // scaled order
  Index nb = 0;             // scaled nb
  CostModel model;          // scaled cost model
};

inline ScaledSetup scaled_setup(const PaperMatrix& m, double scale,
                                CostModel base = CostModel::ec2_medium()) {
  ScaledSetup s;
  s.scale = scale;
  s.n = static_cast<Index>(static_cast<double>(m.order) / scale);
  s.nb = static_cast<Index>(static_cast<double>(kPaperNb) / scale);
  s.model = base.scaled_down(scale);
  return s;
}

inline double to_paper_seconds(double sim_seconds, double scale) {
  return sim_seconds * scale * scale * scale;
}

struct MrRun {
  core::MapReduceInverter::Result result;
  double residual = 0.0;
  double paper_seconds = 0.0;
  /// Aggregated per-task report for this run (waves, utilization,
  /// stragglers, failure timeline); source for the JSON exports below.
  RunReport run_report;
};

/// Runs the MapReduce pipeline on a fresh simulated cluster.
inline MrRun run_mapreduce(const ScaledSetup& s, int nodes,
                           core::InversionOptions opts = {},
                           std::uint64_t seed = 1,
                           FailureInjector* failures = nullptr,
                           bool verify = true) {
  MetricsRegistry metrics;
  Cluster cluster(nodes, s.model);
  dfs::Dfs fs(nodes, dfs::DfsConfig{}, &metrics);
  ThreadPool pool(4);
  core::MapReduceInverter inverter(&cluster, &fs, &pool, failures, &metrics);
  opts.nb = s.nb;
  const Matrix a = random_matrix(s.n, seed);
  MrRun run;
  run.result = inverter.invert(a, opts);
  // The residual check is itself O(n³); sweep benches verify once per series.
  run.residual = verify ? inversion_residual(a, run.result.inverse) : 0.0;
  run.paper_seconds = to_paper_seconds(run.result.report.sim_seconds, s.scale);
  run.run_report = mr::build_run_report(run.result.jobs, cluster, &metrics,
                                        run.result.master_spans);
  return run;
}

/// Honours the shared --trace-out / --report-out bench flags: writes the
/// run's Chrome trace / run-report JSON. Benches call this per run, so with
/// a sweep the file holds the last run that completed.
inline void export_run_artifacts(const CliOptions& cli, const MrRun& run) {
  const auto write = [](const std::string& path, const std::string& json) {
    std::ofstream out(path);
    MRI_REQUIRE(out.good(), "cannot open output file: " << path);
    out << json << '\n';
    std::fprintf(stderr, "  wrote %s\n", path.c_str());
  };
  const std::string trace = cli.get_string("trace-out", "");
  if (!trace.empty()) write(trace, chrome_trace_json(run.run_report));
  const std::string report = cli.get_string("report-out", "");
  if (!report.empty()) write(report, run_report_json(run.run_report));
}

struct ScalRun {
  scalapack::InvertResult result;
  double residual = 0.0;
  double paper_seconds = 0.0;
};

/// Runs the ScaLAPACK-style baseline on a fresh simulated cluster. The
/// paper's 128x128 block size scales with S like everything else.
inline ScalRun run_scalapack(const ScaledSetup& s, int nodes,
                             std::uint64_t seed = 1) {
  Cluster cluster(nodes, s.model);
  scalapack::Options opts;
  opts.block_width = std::max<Index>(4, static_cast<Index>(128.0 / s.scale));
  const Matrix a = random_matrix(s.n, seed);
  ScalRun run;
  run.result = scalapack::invert(a, cluster, opts);
  run.residual = inversion_residual(a, run.result.inverse);
  run.paper_seconds = to_paper_seconds(run.result.report.sim_seconds, s.scale);
  return run;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproducing %s of 'Scalable Matrix Inversion Using "
              "MapReduce', HPDC 2014)\n",
              title, paper_ref);
  std::printf("================================================================\n\n");
}

}  // namespace mri::bench
