// Ablation (§6.3): storing the upper-triangular factors transposed.
//
// Two measurements:
//  1. real kernel timing on this machine — the column-striding multiply vs
//     the transposed-B multiply (the paper reports a 2–3x end-to-end win);
//  2. the modeled end-to-end effect in the pipeline (the cost model charges
//     the column_stride_penalty to tasks running the untransposed layout).
#include "harness.hpp"

#include "common/stopwatch.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const Index n = cli.get_int("n", 512);
  print_header("Ablation: transposed-U storage (§6.3)", "§6.3");

  // --- 1. real kernel measurement ------------------------------------------
  const Matrix a = random_matrix(n, 1);
  const Matrix b = random_matrix(n, 2);
  const Matrix bt = transpose(b);

  auto time_of = [&](auto&& fn) {
    fn();  // warm-up
    Stopwatch sw;
    fn();
    return sw.seconds();
  };
  MatmulOptions naive_opts;
  naive_opts.backend = kernels::Backend::kNaive;
  MatmulOptions trans_opts;
  trans_opts.transposed_b = true;
  trans_opts.backend = kernels::Backend::kTiled;
  MatmulOptions tiled_opts;
  tiled_opts.backend = kernels::Backend::kTiled;
  const double t_naive = time_of([&] { matmul(a, b, naive_opts); });
  const double t_trans = time_of([&] { matmul(a, bt, trans_opts); });
  const double t_ikj = time_of([&] { matmul(a, b, tiled_opts); });

  TextTable kernels({"Kernel (n=512)", "Seconds", "vs transposed"});
  kernels.add_row({"naive ijk (column-strides B)", cell(t_naive, 3),
                   cell(t_naive / t_trans, 2)});
  kernels.add_row({"transposed-B (rows streamed)", cell(t_trans, 3), "1.00"});
  kernels.add_row({"tiled ikj row-streaming", cell(t_ikj, 3),
                   cell(t_ikj / t_trans, 2)});
  kernels.print();
  std::printf("\nmeasured column-stride penalty: %.2fx (paper: 2-3x; depends "
              "on cache/TLB of this machine and n)\n",
              t_naive / t_trans);

  // --- 2. modeled end-to-end effect ---------------------------------------
  const double scale = cli.get_double("scale", 32.0);
  const ScaledSetup setup = scaled_setup(kM5, scale);
  const MrRun with_opt = run_mapreduce(setup, 16, {}, 1, nullptr, false);
  core::InversionOptions no_t;
  no_t.transposed_u = false;
  const MrRun without_opt = run_mapreduce(setup, 16, no_t, 1, nullptr, false);

  std::printf("\nend-to-end pipeline (M5-scaled, 16 nodes):\n");
  std::printf("  transposed storage   : %.1f paper-min\n",
              with_opt.paper_seconds / 60.0);
  std::printf("  row-major U storage  : %.1f paper-min (%.2fx)\n",
              without_opt.paper_seconds / 60.0,
              without_opt.paper_seconds / with_opt.paper_seconds);
  std::printf("  (model charges a %.1fx flop penalty on the affected "
              "kernels; I/O volume is unchanged, so the end-to-end factor is "
              "smaller — consistent with the paper's 'improves the "
              "performance of our algorithm by a factor of 2-3' referring to "
              "the kernels)\n",
              setup.model.column_stride_penalty);
  return 0;
}
