// Silent-corruption chaos vs the block-integrity layer (PR 10): checksums
// on write, verify-on-read with read-repair, and the background scrubber,
// exercised on the actual inversion pipeline.
//
// A real Hadoop cluster checksums every block because disks lie: a read
// can succeed with rotten bytes. This bench injects deterministic
// bit-rot (kCorruptBlock chaos events) into mid-run block copies and
// measures the blast radius with the defenses off and on:
//
//   clean        — no corruption, verification off: every integrity counter
//                  must be zero (the no-chaos path pays nothing), and two
//                  same-seed runs must produce bit-identical reports.
//   verify-clean — no corruption, verification on: checksums are computed
//                  and verified, nothing is detected or repaired, and the
//                  inverse still lands at machine epsilon.
//   blind        — corruption with verification off: reads silently succeed
//                  with flipped bits and the residual blows past 1e-3.
//   repair       — the same corruption with verification on: every read of
//                  a rotten copy is detected and read-repaired in place,
//                  the residual stays at machine epsilon, and two same-seed
//                  runs stay bit-identical.
//   scrub        — verification plus a background scrubber: every injected
//                  corruption is detected (scrub passes sweep the copies
//                  reads never touch) and repaired from a replica.
//   ec-scrub     — the same under RS(6,3) striping: repairs decode the bad
//                  cell from the surviving stripe (cells_repaired_ec).
//   spin-scrub   — the spin engine's memory tier: corrupted single-copy
//                  partitions are rebuilt by lineage recomputation
//                  (cells_repaired_lineage).
//
// Emits BENCH_pr10.json (--out PATH). --probe runs the same scenarios on a
// small matrix for the CI smoke step.
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness.hpp"
#include "sim/chaos.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct ScrubConfig {
  const char* name;
  bool verify = false;
  double scrub_interval_fraction = 0.0;  // of the clean run, 0 = no scrubber
  bool ec = false;                       // RS(6,3) instead of replication-3
  bool spin = false;                     // in-memory engine, lineage repair
  std::vector<ChaosEvent> events;
};

struct ScrubRun {
  bool completed = false;
  std::string error;
  double sim_seconds = 0.0;
  double paper_hours = 0.0;
  double residual = 0.0;
  int blocks_corrupted = 0;  // chaos-side injection count
  IntegrityReport integrity;
  std::string report_json;
};

std::int64_t repaired_total(const IntegrityReport& i) {
  return i.cells_repaired_copy + i.cells_repaired_ec +
         i.cells_repaired_lineage;
}

/// One inversion on a fresh cluster/DFS under the given integrity config.
ScrubRun run_config(const ScaledSetup& s, int nodes, const ScrubConfig& spec,
                    std::uint64_t matrix_seed, double clean_seconds) {
  MetricsRegistry metrics;
  Cluster cluster(nodes, s.model);
  dfs::DfsConfig dfs_config;
  if (spec.ec) {
    dfs_config.storage_policy = dfs::StoragePolicy::kErasureCoded;
    dfs_config.ec.k = 6;
    dfs_config.ec.m = 3;
  }
  dfs_config.verify_checksums = spec.verify;
  if (spec.scrub_interval_fraction > 0.0) {
    dfs_config.scrub_interval_seconds =
        spec.scrub_interval_fraction * clean_seconds;
  }
  dfs::Dfs fs(nodes, dfs_config, &metrics);
  ThreadPool pool(4);

  ChaosEngine chaos;
  for (const ChaosEvent& event : spec.events) chaos.add_event(event);
  fs.bind_chaos(&chaos, s.model.network_bandwidth, &s.model);

  core::MapReduceInverter inverter(&cluster, &fs, &pool, nullptr, &metrics,
                                   &chaos);
  core::InversionOptions opts;
  opts.nb = s.nb;
  if (spec.spin) {
    opts.engine = core::EngineKind::kSpin;
    opts.cache_capacity_bytes = 256ull << 20;
  }
  const Matrix a = random_matrix(s.n, matrix_seed);

  ScrubRun run;
  try {
    core::MapReduceInverter::Result result = inverter.invert(a, opts);
    run.completed = true;
    run.sim_seconds = result.report.sim_seconds;
    run.paper_hours = to_paper_seconds(run.sim_seconds, s.scale) / 3600.0;
    run.residual = inversion_residual(a, result.inverse);
    const RunReport report = mr::build_run_report(
        result.jobs, cluster, &metrics, result.master_spans, &chaos,
        result.engine_active ? &result.engine_stats : nullptr, &fs);
    run.integrity = report.integrity;
    run.report_json = run_report_json(report);
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.blocks_corrupted = chaos.stats().blocks_corrupted;
  return run;
}

/// Explicit --corrupt-block-style events: primary copies of the largest
/// blocks on a few nodes, early enough that the data is still re-read.
std::vector<ChaosEvent> explicit_corruptions(double clean_seconds,
                                             int nodes) {
  std::vector<ChaosEvent> events;
  const double fractions[] = {0.15, 0.30, 0.45};
  int node = 1;
  for (double f : fractions) {
    ChaosEvent e;
    e.kind = ChaosEventKind::kCorruptBlock;
    e.at = f * clean_seconds;
    e.node = node % nodes;
    e.salt = 0;  // pick the node's largest primary copy
    events.push_back(e);
    node += 2;
  }
  return events;
}

/// Bit-rot-style salted events for the spin scenario: the salt picks the
/// victim pseudo-randomly among the node's blocks, so with a handful of
/// events some land on memory-tier partitions (lineage repair territory).
std::vector<ChaosEvent> salted_corruptions(double clean_seconds, int nodes) {
  std::vector<ChaosEvent> events;
  for (int i = 0; i < 8; ++i) {
    ChaosEvent e;
    e.kind = ChaosEventKind::kCorruptBlock;
    e.at = (0.20 + 0.07 * i) * clean_seconds;
    e.node = 1 + (i % (nodes - 1));
    e.salt = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1) | 1;
    events.push_back(e);
  }
  return events;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const bool probe = cli.get_bool("probe", false);
  const int nodes = cli.get_int("nodes", 12);  // RS(6,3) needs 9 cells
  const double scale = cli.get_double("scale", 64.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string out = cli.get_string("out", "BENCH_pr10.json");
  const double residual_bound = 1e-8;
  const double blind_bound = 1e-3;

  print_header("silent corruption vs checksums, read-repair and the "
               "scrubber",
               "end-to-end data integrity");

  const ScaledSetup setup = scaled_setup(probe ? kM5 : kM4, scale);
  std::printf("%s at 1/%.0f scale: order %lld, nb %lld, %d nodes%s\n\n",
              probe ? "M5" : "M4", scale, static_cast<long long>(setup.n),
              static_cast<long long>(setup.nb), nodes,
              probe ? " (probe mode)" : "");

  // The clean run anchors corruption times and the scrub interval.
  ScrubConfig clean_spec{"clean", false, 0.0, false, false, {}};
  const ScrubRun clean = run_config(setup, nodes, clean_spec, seed, 0.0);
  MRI_REQUIRE(clean.completed, "clean run failed: " << clean.error);
  const std::vector<ChaosEvent> corruptions =
      explicit_corruptions(clean.sim_seconds, nodes);
  const std::vector<ChaosEvent> salted =
      salted_corruptions(clean.sim_seconds, nodes);

  std::vector<ScrubConfig> configs;
  configs.push_back({"verify-clean", /*verify=*/true, 0.0, false, false, {}});
  configs.push_back({"blind", /*verify=*/false, 0.0, false, false,
                     corruptions});
  configs.push_back({"repair", /*verify=*/true, 0.0, false, false,
                     corruptions});
  configs.push_back({"scrub", /*verify=*/true, /*interval=*/0.25, false,
                     false, corruptions});
  configs.push_back({"ec-scrub", /*verify=*/true, /*interval=*/0.25,
                     /*ec=*/true, false, corruptions});
  configs.push_back({"spin-scrub", /*verify=*/true, /*interval=*/0.25, false,
                     /*spin=*/true, salted});

  struct Point {
    ScrubConfig spec;
    ScrubRun run;
  };
  std::vector<Point> points;
  points.push_back({clean_spec, clean});

  std::printf("%-12s %10s %9s %9s %9s %22s %7s %10s\n", "config", "hours",
              "injected", "detected", "repaired", "(copy/ec/lineage)",
              "scrubs", "residual");
  const auto print_row = [](const Point& p) {
    const IntegrityReport& i = p.run.integrity;
    std::printf("%-12s %10.4f %9lld %9lld %9lld %10lld/%4lld/%4lld %7lld "
                "%10.2e\n",
                p.spec.name, p.run.paper_hours,
                static_cast<long long>(i.corruptions_injected),
                static_cast<long long>(i.corruptions_detected),
                static_cast<long long>(repaired_total(i)),
                static_cast<long long>(i.cells_repaired_copy),
                static_cast<long long>(i.cells_repaired_ec),
                static_cast<long long>(i.cells_repaired_lineage),
                static_cast<long long>(i.scrub_passes), p.run.residual);
  };
  print_row(points.front());
  for (const ScrubConfig& spec : configs) {
    Point p;
    p.spec = spec;
    p.run = run_config(setup, nodes, spec, seed, clean.sim_seconds);
    MRI_REQUIRE(p.run.completed,
                spec.name << " run failed: " << p.run.error);
    print_row(p);
    points.push_back(std::move(p));
  }

  const auto find = [&](const char* name) -> const Point& {
    for (const Point& p : points) {
      if (std::strcmp(p.spec.name, name) == 0) return p;
    }
    MRI_REQUIRE(false, "no config named " << name);
    std::abort();
  };
  const Point& verify_clean = find("verify-clean");
  const Point& blind = find("blind");
  const Point& repair = find("repair");
  const Point& scrub = find("scrub");
  const Point& ec_scrub = find("ec-scrub");
  const Point& spin_scrub = find("spin-scrub");

  // ---- assertions ---------------------------------------------------------
  // clean: the integrity layer must cost literally nothing when off.
  const IntegrityReport& ci = clean.integrity;
  const bool clean_zero = !ci.verify_checksums && ci.cells_checksummed == 0 &&
                          ci.cells_verified == 0 && ci.bytes_verified == 0 &&
                          ci.corruptions_injected == 0 &&
                          ci.corruptions_detected == 0 &&
                          repaired_total(ci) == 0 &&
                          ci.cells_quarantined == 0 && ci.scrub_passes == 0 &&
                          ci.repairs.empty() && ci.scrub_spans.empty() &&
                          clean.residual < residual_bound;

  // clean determinism: a second identical run must be bit-identical.
  const ScrubRun clean2 = run_config(setup, nodes, clean_spec, seed, 0.0);
  const bool clean_deterministic =
      clean2.completed && clean2.report_json == clean.report_json;

  // verify-clean: checksums computed and verified, nothing found.
  const IntegrityReport& vi = verify_clean.run.integrity;
  const bool verify_clean_ok =
      vi.verify_checksums && vi.cells_checksummed > 0 &&
      vi.cells_verified > 0 && vi.corruptions_injected == 0 &&
      vi.corruptions_detected == 0 && repaired_total(vi) == 0 &&
      verify_clean.run.residual < residual_bound;

  // blind: corruption lands, nothing notices, the inverse is garbage.
  const IntegrityReport& bi = blind.run.integrity;
  const bool blind_ok = bi.corruptions_injected >= 1 &&
                        bi.corruptions_detected == 0 &&
                        repaired_total(bi) == 0 &&
                        blind.run.residual > blind_bound;

  // repair: verification turns the same corruption into epsilon residual.
  const IntegrityReport& ri = repair.run.integrity;
  const bool repair_ok = ri.corruptions_injected >= 1 &&
                         ri.corruptions_detected >= 1 &&
                         ri.corruptions_detected == repaired_total(ri) &&
                         ri.corruptions_detected <= ri.corruptions_injected &&
                         repair.run.residual < residual_bound;

  // repair determinism: a second identical corrupted run, bit for bit.
  const ScrubRun repair2 =
      run_config(setup, nodes, repair.spec, seed, clean.sim_seconds);
  const bool repair_deterministic =
      repair2.completed && repair2.report_json == repair.run.report_json;

  // scrub: the scrubber closes the gap — 100% of corruptions detected and
  // repaired whether or not a read ever touched the rotten copy.
  const IntegrityReport& si = scrub.run.integrity;
  const bool scrub_ok = si.scrub_passes >= 1 &&
                        si.corruptions_injected >= 1 &&
                        si.corruptions_detected == si.corruptions_injected &&
                        repaired_total(si) == si.corruptions_detected &&
                        scrub.run.residual < residual_bound;

  // ec-scrub: at least one repair decodes the cell from the stripe.
  const IntegrityReport& ei = ec_scrub.run.integrity;
  const bool ec_ok = ei.cells_repaired_ec >= 1 &&
                     ei.corruptions_detected == ei.corruptions_injected &&
                     repaired_total(ei) == ei.corruptions_detected &&
                     ec_scrub.run.residual < residual_bound;

  // spin-scrub: at least one corrupted memory-tier partition is rebuilt by
  // lineage recomputation.
  const IntegrityReport& pi = spin_scrub.run.integrity;
  const bool spin_ok = pi.cells_repaired_lineage >= 1 &&
                       repaired_total(pi) == pi.corruptions_detected &&
                       spin_scrub.run.residual < residual_bound;

  std::printf("\nclean counters all zero : %s\n", clean_zero ? "yes" : "NO");
  std::printf("clean deterministic     : %s\n",
              clean_deterministic ? "yes" : "NO");
  std::printf("verify-clean harmless   : %s\n",
              verify_clean_ok ? "yes" : "NO");
  std::printf("blind residual > %.0e  : %s (%.2e)\n", blind_bound,
              blind_ok ? "yes" : "NO", blind.run.residual);
  std::printf("repair to epsilon       : %s (%.2e)\n",
              repair_ok ? "yes" : "NO", repair.run.residual);
  std::printf("repair deterministic    : %s\n",
              repair_deterministic ? "yes" : "NO");
  std::printf("scrubber catches 100%%   : %s (%lld/%lld)\n",
              scrub_ok ? "yes" : "NO",
              static_cast<long long>(si.corruptions_detected),
              static_cast<long long>(si.corruptions_injected));
  std::printf("ec decode repair        : %s (%lld cell(s))\n",
              ec_ok ? "yes" : "NO",
              static_cast<long long>(ei.cells_repaired_ec));
  std::printf("lineage recompute repair: %s (%lld partition(s))\n",
              spin_ok ? "yes" : "NO",
              static_cast<long long>(pi.cells_repaired_lineage));

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"matrix\":\"" << (probe ? "M5" : "M4")
       << "\",\"order\":" << setup.n << ",\"nb\":" << setup.nb
       << ",\"nodes\":" << nodes << ",\"scale\":" << scale
       << ",\"seed\":" << seed << ",\"probe\":" << (probe ? "true" : "false")
       << "},\"runs\":[";
  bool first = true;
  for (const Point& p : points) {
    if (!first) json << ',';
    first = false;
    const IntegrityReport& i = p.run.integrity;
    json << "{\"config\":\"" << p.spec.name
         << "\",\"completed\":" << (p.run.completed ? "true" : "false");
    if (p.run.completed) {
      json << ",\"hours\":" << p.run.paper_hours
           << ",\"residual\":" << p.run.residual
           << ",\"verify_checksums\":"
           << (i.verify_checksums ? "true" : "false")
           << ",\"scrub_interval_seconds\":" << i.scrub_interval_seconds
           << ",\"cells_checksummed\":" << i.cells_checksummed
           << ",\"cells_verified\":" << i.cells_verified
           << ",\"corruptions_injected\":" << i.corruptions_injected
           << ",\"corruptions_detected\":" << i.corruptions_detected
           << ",\"cells_repaired_copy\":" << i.cells_repaired_copy
           << ",\"cells_repaired_ec\":" << i.cells_repaired_ec
           << ",\"cells_repaired_lineage\":" << i.cells_repaired_lineage
           << ",\"scrub_passes\":" << i.scrub_passes
           << ",\"scrub_bytes_scanned\":" << i.scrub_bytes_scanned
           << ",\"scrub_seconds\":" << i.scrub_seconds;
    } else {
      json << ",\"error\":\"" << json_escape(p.run.error.substr(0, 120))
           << "\"";
    }
    json << "}";
  }
  json << "],\"asserts\":{\"clean_zero\":" << (clean_zero ? "true" : "false")
       << ",\"clean_deterministic\":"
       << (clean_deterministic ? "true" : "false")
       << ",\"verify_clean_ok\":" << (verify_clean_ok ? "true" : "false")
       << ",\"blind_ok\":" << (blind_ok ? "true" : "false")
       << ",\"repair_ok\":" << (repair_ok ? "true" : "false")
       << ",\"repair_deterministic\":"
       << (repair_deterministic ? "true" : "false")
       << ",\"scrub_ok\":" << (scrub_ok ? "true" : "false")
       << ",\"ec_ok\":" << (ec_ok ? "true" : "false")
       << ",\"spin_ok\":" << (spin_ok ? "true" : "false")
       << "},\"blind_bound\":" << blind_bound
       << ",\"residual_bound\":" << residual_bound << "}";

  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("results written to %s\n", out.c_str());

  return clean_zero && clean_deterministic && verify_clean_ok && blind_ok &&
                 repair_ok && repair_deterministic && scrub_ok && ec_ok &&
                 spin_ok
             ? 0
             : 1;
}
