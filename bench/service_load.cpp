// Service-layer load benchmark: multi-tenant inversion service under
// uncontended, saturating and overloaded request streams.
//
// Four deterministic scenarios on one 4-node cluster configuration:
//   1. probe     — one request on an idle service: the uncontended latency
//                  every SLO ratio below is measured against.
//   2. saturate  — two equal-weight tenants burst-submit at t=0 (closed
//                  loop): fair sharing should split the cluster's
//                  slot-seconds near 50/50 (Jain index ~1).
//   3. repeat    — scenario 2 again from a fresh DFS: every percentile and
//                  the fairness index must reproduce bit-for-bit (the
//                  service loop runs on simulated time; nothing may depend
//                  on host timing).
//   4. overload  — open-loop Poisson arrivals at ~4x the measured service
//                  capacity: the admission queue stays bounded, rejections
//                  are counted per tenant, and the p99 of ACCEPTED requests
//                  stays within 3x the uncontended latency (shed load
//                  instead of building unbounded queues).
//
// Emits BENCH_pr3.json (--out PATH) with the throughput / percentile /
// fairness keys the CI service-bench step validates.
#include <cmath>
#include <fstream>
#include <sstream>

#include "harness.hpp"
#include "service/loadgen.hpp"
#include "service/service.hpp"

using namespace mri;
using namespace mri::bench;

namespace {

struct Scenario {
  service::ServiceResult result;
  std::vector<double> latencies;  // admitted requests, arrival -> finish
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double throughput = 0.0;  // admitted completions per simulated second
};

Scenario play(const Cluster& cluster, const service::ServiceOptions& options,
              const std::vector<service::InversionRequest>& requests,
              MetricsRegistry* metrics, ThreadPool* pool) {
  // Fresh DFS per scenario: request ids restart at r0, so reusing one DFS
  // would mix work directories between scenarios.
  dfs::Dfs fs(cluster.size(), dfs::DfsConfig{}, metrics);
  service::InversionService svc(&cluster, &fs, pool, options, nullptr,
                                metrics);
  Scenario s;
  s.result = svc.run(requests);
  for (const RequestStat& stat : s.result.stats) {
    if (!stat.rejected) s.latencies.push_back(stat.finish - stat.arrival);
  }
  s.p50 = percentile(s.latencies, 0.50);
  s.p95 = percentile(s.latencies, 0.95);
  s.p99 = percentile(s.latencies, 0.99);
  s.throughput = s.result.makespan > 0.0
                     ? static_cast<double>(s.result.admitted) /
                           s.result.makespan
                     : 0.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const Index order = static_cast<Index>(cli.get_int("order", 32));
  const Index nb = static_cast<Index>(cli.get_int("nb", 8));
  const double scale = cli.get_double("scale", 40.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string out = cli.get_string("out", "BENCH_pr3.json");
  print_header("Inversion service under multi-tenant load",
               "admission control, fair-share slots, SLO percentiles");

  const CostModel model = CostModel::ec2_medium().scaled_down(scale);
  Cluster cluster(nodes, model);
  ThreadPool pool(4);
  MetricsRegistry metrics;

  service::ServiceOptions options;
  options.shares = {{"alice", 1}, {"bob", 1}};
  options.max_concurrent = 2;
  options.admission.max_queue_depth = 12;
  options.inversion.nb = nb;
  options.inversion.work_dir = "/svc";

  // ---- 1. probe: uncontended latency --------------------------------------
  service::InversionRequest probe;
  probe.tenant = "alice";
  probe.order = order;
  probe.seed = seed;
  const Scenario uncontended = play(cluster, options, {probe}, &metrics, &pool);
  const double base_latency = uncontended.p50;
  MRI_CHECK_MSG(base_latency > 0.0, "probe request reported zero latency");
  std::printf("uncontended latency: %.4f sim-seconds (order %lld, nb %lld, "
              "%d nodes)\n\n",
              base_latency, static_cast<long long>(order),
              static_cast<long long>(nb), nodes);

  // ---- 2. saturate: equal-weight burst ------------------------------------
  service::LoadGenOptions burst;
  burst.closed_loop = true;
  burst.seed = seed;
  burst.tenants = {{"alice", 1, 5, 1.0, order, 0, 0.0},
                   {"bob", 1, 5, 1.0, order, 0, 0.0}};
  const auto burst_requests = service::generate_load(burst);
  const Scenario saturated =
      play(cluster, options, burst_requests, &metrics, &pool);

  double ss_alice = 0.0, ss_bob = 0.0;
  for (const TenantReport& t : saturated.result.report.tenants) {
    if (t.tenant == "alice") ss_alice = t.slot_seconds;
    if (t.tenant == "bob") ss_bob = t.slot_seconds;
  }
  const double ss_gap =
      std::abs(ss_alice - ss_bob) / std::max(ss_alice, ss_bob);
  const double fairness = saturated.result.report.fairness_index;

  TextTable table({"Tenant", "Admitted", "Rejected", "Slot-seconds",
                   "p50 (s)", "p99 (s)"});
  for (const TenantReport& t : saturated.result.report.tenants) {
    table.add_row({t.tenant, cell_int(t.admitted), cell_int(t.rejected),
                   cell(t.slot_seconds, 4), cell(t.latency_p50, 4),
                   cell(t.latency_p99, 4)});
  }
  table.print();
  std::printf("\nsaturating burst: slot-second gap %.2f%%, Jain fairness "
              "%.4f, throughput %.4f req/sim-s\n\n",
              100.0 * ss_gap, fairness, saturated.throughput);

  // ---- 3. repeat: bit-for-bit reproducibility -----------------------------
  const Scenario again =
      play(cluster, options, burst_requests, &metrics, &pool);
  const bool reproducible =
      again.p50 == saturated.p50 && again.p95 == saturated.p95 &&
      again.p99 == saturated.p99 &&
      again.result.report.fairness_index == fairness &&
      again.result.makespan == saturated.result.makespan;
  std::printf("repeat run %s (p50 %.6f vs %.6f, makespan %.6f vs %.6f)\n\n",
              reproducible ? "reproduces exactly" : "DIVERGED",
              again.p50, saturated.p50, again.result.makespan,
              saturated.result.makespan);

  // ---- 4. overload: admission sheds load ----------------------------------
  // Per-tenant arrival rate 2x the whole service's uncontended capacity
  // (max_concurrent requests every base_latency), ~4x total.
  const double capacity = options.max_concurrent / base_latency;
  // Depth sized for the SLO: an accepted request waits behind at most
  // queue_depth/max_concurrent contended service times, so a shallow queue
  // is what keeps accepted p99 near the uncontended latency — overload is
  // absorbed by rejections, not by queueing delay.
  service::ServiceOptions overload_options = options;
  overload_options.admission.max_queue_depth = 1;
  service::LoadGenOptions open;
  open.seed = seed;
  open.tenants = {{"alice", 1, 12, 2.0 * capacity, order, 0, 0.0},
                  {"bob", 1, 12, 2.0 * capacity, order, 0, 0.0}};
  const Scenario overload =
      play(cluster, overload_options, service::generate_load(open), &metrics,
           &pool);
  const double accepted_p99 = overload.p99;
  const double p99_ratio = accepted_p99 / base_latency;
  std::printf("overload (offered ~4x capacity): %d submitted, %d admitted, "
              "%d rejected; accepted p99 %.4f = %.2fx uncontended\n\n",
              overload.result.submitted, overload.result.admitted,
              overload.result.rejected, accepted_p99, p99_ratio);

  const bool fair_ok = ss_gap < 0.10;
  const bool shed_ok = overload.result.rejected > 0 && p99_ratio <= 3.0;
  std::printf("equal tenants within 10%%  : %s\n", fair_ok ? "yes" : "NO");
  std::printf("reproducible percentiles  : %s\n", reproducible ? "yes" : "NO");
  std::printf("overload shed, p99 <= 3x  : %s\n", shed_ok ? "yes" : "NO");

  std::ostringstream json;
  json.precision(17);
  json << "{\"config\":{\"nodes\":" << nodes << ",\"order\":" << order
       << ",\"nb\":" << nb << ",\"scale\":" << scale << ",\"seed\":" << seed
       << ",\"max_concurrent\":" << options.max_concurrent << "}"
       << ",\"uncontended_seconds\":" << base_latency
       << ",\"throughput_rps\":" << saturated.throughput
       << ",\"latency_p50\":" << saturated.p50
       << ",\"latency_p95\":" << saturated.p95
       << ",\"latency_p99\":" << saturated.p99
       << ",\"fairness_index\":" << fairness
       << ",\"slot_second_gap\":" << ss_gap << ",\"tenants\":[";
  bool first = true;
  for (const TenantReport& t : saturated.result.report.tenants) {
    if (!first) json << ',';
    first = false;
    json << "{\"tenant\":\"" << t.tenant << "\",\"weight\":" << t.weight
         << ",\"admitted\":" << t.admitted << ",\"rejected\":" << t.rejected
         << ",\"slot_seconds\":" << t.slot_seconds
         << ",\"latency_p99\":" << t.latency_p99 << "}";
  }
  json << "],\"overload\":{\"submitted\":" << overload.result.submitted
       << ",\"admitted\":" << overload.result.admitted
       << ",\"rejected\":" << overload.result.rejected
       << ",\"accepted_p99\":" << accepted_p99
       << ",\"p99_vs_uncontended\":" << p99_ratio << "}"
       << ",\"reproducible\":" << (reproducible ? "true" : "false") << "}";
  std::ofstream f(out);
  MRI_REQUIRE(f.good(), "cannot open output file: " << out);
  f << json.str() << '\n';
  std::printf("results written to %s\n", out.c_str());

  return fair_ok && reproducible && shed_ok ? 0 : 1;
}
