// Extension (§8 future work): "implement our matrix inversion technique on
// the Spark system... we expect that implementing our algorithm in Spark
// would improve performance by reducing read I/O."
//
// We add an in-memory intermediate tier to the DFS (single unreplicated
// copy, memory-bandwidth writes — fault tolerance by lineage, like RDDs) and
// run the identical pipeline both ways.
#include "harness.hpp"

using namespace mri;
using namespace mri::bench;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const double scale = cli.get_double("scale", 32.0);
  const auto node_counts = cli.get_int_list("nodes", {4, 8, 16, 32, 64});
  print_header("Extension: Spark-style in-memory intermediates",
               "§8 (future work)");

  const ScaledSetup setup = scaled_setup(kM5, scale);
  std::printf("matrix M5 scaled to order %lld; identical pipeline, two "
              "storage tiers\n\n",
              static_cast<long long>(setup.n));

  TextTable table({"Nodes", "HDFS tier (min)", "memory tier (min)", "speedup",
                   "disk GB written (HDFS)", "disk GB written (mem)"});

  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    const int nodes = static_cast<int>(node_counts[ni]);
    core::InversionOptions hadoop;
    const MrRun disk = run_mapreduce(setup, nodes, hadoop, 1, nullptr, ni == 0);
    if (ni == 0) MRI_CHECK_MSG(disk.residual < 1e-5, "accuracy check failed");

    core::InversionOptions spark;
    spark.in_memory_intermediates = true;
    const MrRun mem = run_mapreduce(setup, nodes, spark, 1, nullptr, false);

    const double s2 = scale * scale;
    const auto disk_gb = [&](const IoStats& io) {
      return static_cast<double>(io.bytes_written + io.bytes_replicated) *
             s2 / 1e9;
    };
    table.add_row({cell_int(nodes), cell(disk.paper_seconds / 60.0, 1),
                   cell(mem.paper_seconds / 60.0, 1),
                   cell(disk.paper_seconds / mem.paper_seconds, 2),
                   cell(disk_gb(disk.result.report.io), 1),
                   cell(disk_gb(mem.result.report.io), 1)});
  }
  table.print();

  std::printf(
      "\nAs the paper predicts, the pipeline is unchanged (same job count, "
      "same math) and the win comes from eliminating replicated\nHDFS "
      "writes of intermediates; reads remain remote fetches. Fault "
      "tolerance shifts from replication to lineage (recompute), which\n"
      "this simulator does not charge until a failure occurs.\n");
  return 0;
}
